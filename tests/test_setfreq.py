"""Tests for SetFreq commands, frequency timelines, and anchored plans."""

import pytest

from repro.errors import StrategyError
from repro.npu import FrequencyGrid, SetFreqCommand, SetFreqSpec
from repro.npu.setfreq import (
    AnchoredFrequencyPlan,
    AnchoredSwitch,
    FrequencySwitch,
    FrequencyTimeline,
)


class TestSetFreqCommand:
    def test_effect_time_includes_latency(self):
        command = SetFreqCommand(dispatch_time_us=100.0, target_mhz=1500.0)
        spec = SetFreqSpec(latency_us=1000.0, extra_delay_us=0.0)
        assert command.effect_time_us(spec) == pytest.approx(1100.0)

    def test_extra_delay_adds(self):
        command = SetFreqCommand(dispatch_time_us=0.0, target_mhz=1500.0)
        spec = SetFreqSpec(latency_us=1000.0, extra_delay_us=14_000.0)
        assert command.effect_time_us(spec) == pytest.approx(15_000.0)

    def test_negative_dispatch_rejected(self):
        with pytest.raises(StrategyError):
            SetFreqCommand(dispatch_time_us=-1.0, target_mhz=1500.0)


class TestFrequencyTimeline:
    def test_constant(self):
        timeline = FrequencyTimeline.constant(1800.0)
        assert timeline.frequency_at(0.0) == 1800.0
        assert timeline.frequency_at(1e9) == 1800.0
        assert timeline.next_switch_after(0.0) is None

    def test_switch_applies_inclusively(self):
        timeline = FrequencyTimeline(
            1800.0, (FrequencySwitch(100.0, 1200.0),)
        )
        assert timeline.frequency_at(99.9) == 1800.0
        assert timeline.frequency_at(100.0) == 1200.0

    def test_next_switch_is_strictly_after(self):
        timeline = FrequencyTimeline(
            1800.0,
            (FrequencySwitch(100.0, 1200.0), FrequencySwitch(200.0, 1500.0)),
        )
        assert timeline.next_switch_after(100.0).time_us == 200.0
        assert timeline.next_switch_after(50.0).time_us == 100.0

    def test_same_time_switches_last_write_wins(self):
        commands = [
            SetFreqCommand(0.0, 1200.0),
            SetFreqCommand(0.0, 1500.0),
        ]
        timeline = FrequencyTimeline.from_commands(
            1800.0, commands, SetFreqSpec(latency_us=10.0)
        )
        assert timeline.frequency_at(10.0) == 1500.0
        assert timeline.switch_count == 1

    def test_from_commands_applies_latency(self):
        timeline = FrequencyTimeline.from_commands(
            1800.0,
            [SetFreqCommand(500.0, 1000.0)],
            SetFreqSpec(latency_us=1000.0),
        )
        assert timeline.frequency_at(1499.0) == 1800.0
        assert timeline.frequency_at(1500.0) == 1000.0

    def test_from_commands_validates_grid(self):
        from repro.errors import FrequencyError

        with pytest.raises(FrequencyError):
            FrequencyTimeline.from_commands(
                1800.0,
                [SetFreqCommand(0.0, 1234.0)],
                SetFreqSpec(),
                grid=FrequencyGrid(),
            )

    def test_distinct_frequencies(self):
        timeline = FrequencyTimeline(
            1800.0, (FrequencySwitch(1.0, 1000.0), FrequencySwitch(2.0, 1800.0))
        )
        assert timeline.distinct_frequencies() == {1000.0, 1800.0}


class TestAnchoredFrequencyPlan:
    def test_switch_applies_at_anchor_start(self):
        plan = AnchoredFrequencyPlan(
            1800.0, [AnchoredSwitch(op_index=3, freq_mhz=1200.0)]
        )
        assert plan.frequency_at(50.0) == 1800.0
        plan.on_op_start(3, 100.0)
        assert plan.frequency_at(100.0) == 1200.0

    def test_non_anchor_ops_ignored(self):
        plan = AnchoredFrequencyPlan(
            1800.0, [AnchoredSwitch(op_index=3, freq_mhz=1200.0)]
        )
        plan.on_op_start(2, 10.0)
        assert plan.frequency_at(10.0) == 1800.0

    def test_extra_delay_lands_late(self):
        plan = AnchoredFrequencyPlan(
            1800.0,
            [AnchoredSwitch(op_index=0, freq_mhz=1000.0)],
            extra_delay_us=14_000.0,
        )
        plan.on_op_start(0, 0.0)
        assert plan.frequency_at(0.0) == 1800.0
        switch = plan.next_switch_after(0.0)
        assert switch is not None and switch.time_us == pytest.approx(14_000.0)
        assert plan.frequency_at(14_000.0) == 1000.0

    def test_reset_restores_initial(self):
        plan = AnchoredFrequencyPlan(
            1800.0, [AnchoredSwitch(op_index=0, freq_mhz=1000.0)]
        )
        plan.on_op_start(0, 0.0)
        assert plan.frequency_at(0.0) == 1000.0
        assert plan.applied_switch_count == 1
        plan.reset()
        assert plan.frequency_at(0.0) == 1800.0
        assert plan.applied_switch_count == 0

    def test_switch_count(self):
        plan = AnchoredFrequencyPlan(
            1800.0,
            [AnchoredSwitch(0, 1000.0), AnchoredSwitch(5, 1800.0)],
        )
        assert plan.switch_count == 2

    def test_negative_delay_rejected(self):
        with pytest.raises(StrategyError):
            AnchoredFrequencyPlan(1800.0, [], extra_delay_us=-1.0)

    def test_negative_index_rejected(self):
        with pytest.raises(StrategyError):
            AnchoredSwitch(op_index=-1, freq_mhz=1000.0)


class TestSameTimeTolerance:
    """Regression: collapse must tolerate float-ulp effect-time noise."""

    def test_ulp_apart_switches_collapse(self):
        # Effect times computed via dispatch + latency arithmetic can
        # differ by a few ulps for the same intended instant; exact
        # equality used to let both switches survive.
        timeline = FrequencyTimeline(
            1800.0,
            (
                FrequencySwitch(300.0, 1200.0),
                FrequencySwitch(300.0 + 1e-10, 1500.0),
            ),
        )
        assert timeline.switch_count == 1
        assert timeline.frequency_at(300.0 + 1e-10) == 1500.0

    def test_float_arithmetic_same_instant_collapses(self):
        # 0.1 + 0.2 != 0.3 in binary floating point; both commands
        # target the same instant and the later dispatch must win.
        spec = SetFreqSpec(latency_us=1000.0)
        commands = [
            SetFreqCommand(0.3, 1200.0),
            SetFreqCommand(0.1 + 0.2, 1500.0),
        ]
        assert commands[0].dispatch_time_us != commands[1].dispatch_time_us
        timeline = FrequencyTimeline.from_commands(1800.0, commands, spec)
        assert timeline.switch_count == 1
        assert timeline.frequency_at(1000.31) == 1500.0

    def test_distinct_times_do_not_collapse(self):
        timeline = FrequencyTimeline(
            1800.0,
            (
                FrequencySwitch(300.0, 1200.0),
                FrequencySwitch(300.001, 1500.0),
            ),
        )
        assert timeline.switch_count == 2


class TestBusyControllerQueue:
    """Depth-one queue semantics of the busy frequency controller."""

    def _plan(self, extra_delay_us=1000.0):
        return AnchoredFrequencyPlan(
            1800.0,
            [
                AnchoredSwitch(0, 1000.0),
                AnchoredSwitch(1, 1200.0),
                AnchoredSwitch(2, 1500.0),
            ],
            extra_delay_us=extra_delay_us,
        )

    def test_queued_request_released_after_completion(self):
        plan = self._plan()
        plan.on_op_start(0, 0.0)  # in flight until t=1000
        plan.on_op_start(1, 100.0)  # controller busy -> queued
        assert plan.frequency_at(999.0) == 1800.0
        # First change lands at 1000; queued 1200 re-issues and lands one
        # controller latency after the completion.
        assert plan.frequency_at(1000.0) == 1000.0
        nxt = plan.next_switch_after(1000.0)
        assert nxt is not None and nxt.time_us == pytest.approx(2000.0)
        assert plan.frequency_at(2000.0) == 1200.0
        assert plan.applied_switch_count == 2
        assert plan.dropped_switch_count == 0

    def test_newer_request_supersedes_queued(self):
        plan = self._plan()
        plan.on_op_start(0, 0.0)
        plan.on_op_start(1, 100.0)  # queued
        plan.on_op_start(2, 200.0)  # supersedes the held 1200 MHz
        assert plan.dropped_switch_count == 1
        assert plan.frequency_at(1000.0) == 1000.0
        # The superseded 1200 MHz never takes effect; the chip converges
        # to the latest requested frequency.
        assert plan.frequency_at(2000.0) == 1500.0
        assert plan.applied_switch_count == 2

    def test_back_to_back_faster_than_controller(self):
        # Three changes within one controller latency: only the first
        # and the last survive (Fig. 18's erosion of short LFC windows).
        plan = self._plan(extra_delay_us=5000.0)
        plan.on_op_start(0, 0.0)
        plan.on_op_start(1, 10.0)
        plan.on_op_start(2, 20.0)
        assert plan.frequency_at(4999.0) == 1800.0
        assert plan.frequency_at(5000.0) == 1000.0
        assert plan.frequency_at(10_000.0) == 1500.0
        assert plan.dropped_switch_count == 1

    def test_zero_extra_delay_never_queues(self):
        # The documented-latency case (Fig. 14): anchoring pre-dispatches
        # SetFreq, so every change lands exactly at its anchor start.
        plan = self._plan(extra_delay_us=0.0)
        plan.on_op_start(0, 0.0)
        assert plan.frequency_at(0.0) == 1000.0
        plan.on_op_start(1, 1.0)
        assert plan.frequency_at(1.0) == 1200.0
        plan.on_op_start(2, 2.0)
        assert plan.frequency_at(2.0) == 1500.0
        assert plan.dropped_switch_count == 0
        assert plan.applied_switch_count == 3

    def test_controller_frees_after_idle_gap(self):
        # Once a change completes and no request is held, the controller
        # accepts the next request without queueing.
        plan = self._plan()
        plan.on_op_start(0, 0.0)
        assert plan.frequency_at(1500.0) == 1000.0  # completed at 1000
        plan.on_op_start(1, 1500.0)  # controller free again
        assert plan.frequency_at(2500.0) == 1200.0
        assert plan.dropped_switch_count == 0

    def test_request_is_the_raw_interface(self):
        # The guard re-issues failed changes through request(); it must
        # behave exactly like an anchored dispatch.
        plan = AnchoredFrequencyPlan(1800.0, [], extra_delay_us=1000.0)
        plan.request(1200.0, 50.0)
        assert plan.frequency_at(1049.0) == 1800.0
        assert plan.frequency_at(1050.0) == 1200.0
