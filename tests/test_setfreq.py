"""Tests for SetFreq commands, frequency timelines, and anchored plans."""

import pytest

from repro.errors import StrategyError
from repro.npu import FrequencyGrid, SetFreqCommand, SetFreqSpec
from repro.npu.setfreq import (
    AnchoredFrequencyPlan,
    AnchoredSwitch,
    FrequencySwitch,
    FrequencyTimeline,
)


class TestSetFreqCommand:
    def test_effect_time_includes_latency(self):
        command = SetFreqCommand(dispatch_time_us=100.0, target_mhz=1500.0)
        spec = SetFreqSpec(latency_us=1000.0, extra_delay_us=0.0)
        assert command.effect_time_us(spec) == pytest.approx(1100.0)

    def test_extra_delay_adds(self):
        command = SetFreqCommand(dispatch_time_us=0.0, target_mhz=1500.0)
        spec = SetFreqSpec(latency_us=1000.0, extra_delay_us=14_000.0)
        assert command.effect_time_us(spec) == pytest.approx(15_000.0)

    def test_negative_dispatch_rejected(self):
        with pytest.raises(StrategyError):
            SetFreqCommand(dispatch_time_us=-1.0, target_mhz=1500.0)


class TestFrequencyTimeline:
    def test_constant(self):
        timeline = FrequencyTimeline.constant(1800.0)
        assert timeline.frequency_at(0.0) == 1800.0
        assert timeline.frequency_at(1e9) == 1800.0
        assert timeline.next_switch_after(0.0) is None

    def test_switch_applies_inclusively(self):
        timeline = FrequencyTimeline(
            1800.0, (FrequencySwitch(100.0, 1200.0),)
        )
        assert timeline.frequency_at(99.9) == 1800.0
        assert timeline.frequency_at(100.0) == 1200.0

    def test_next_switch_is_strictly_after(self):
        timeline = FrequencyTimeline(
            1800.0,
            (FrequencySwitch(100.0, 1200.0), FrequencySwitch(200.0, 1500.0)),
        )
        assert timeline.next_switch_after(100.0).time_us == 200.0
        assert timeline.next_switch_after(50.0).time_us == 100.0

    def test_same_time_switches_last_write_wins(self):
        commands = [
            SetFreqCommand(0.0, 1200.0),
            SetFreqCommand(0.0, 1500.0),
        ]
        timeline = FrequencyTimeline.from_commands(
            1800.0, commands, SetFreqSpec(latency_us=10.0)
        )
        assert timeline.frequency_at(10.0) == 1500.0
        assert timeline.switch_count == 1

    def test_from_commands_applies_latency(self):
        timeline = FrequencyTimeline.from_commands(
            1800.0,
            [SetFreqCommand(500.0, 1000.0)],
            SetFreqSpec(latency_us=1000.0),
        )
        assert timeline.frequency_at(1499.0) == 1800.0
        assert timeline.frequency_at(1500.0) == 1000.0

    def test_from_commands_validates_grid(self):
        from repro.errors import FrequencyError

        with pytest.raises(FrequencyError):
            FrequencyTimeline.from_commands(
                1800.0,
                [SetFreqCommand(0.0, 1234.0)],
                SetFreqSpec(),
                grid=FrequencyGrid(),
            )

    def test_distinct_frequencies(self):
        timeline = FrequencyTimeline(
            1800.0, (FrequencySwitch(1.0, 1000.0), FrequencySwitch(2.0, 1800.0))
        )
        assert timeline.distinct_frequencies() == {1000.0, 1800.0}


class TestAnchoredFrequencyPlan:
    def test_switch_applies_at_anchor_start(self):
        plan = AnchoredFrequencyPlan(
            1800.0, [AnchoredSwitch(op_index=3, freq_mhz=1200.0)]
        )
        assert plan.frequency_at(50.0) == 1800.0
        plan.on_op_start(3, 100.0)
        assert plan.frequency_at(100.0) == 1200.0

    def test_non_anchor_ops_ignored(self):
        plan = AnchoredFrequencyPlan(
            1800.0, [AnchoredSwitch(op_index=3, freq_mhz=1200.0)]
        )
        plan.on_op_start(2, 10.0)
        assert plan.frequency_at(10.0) == 1800.0

    def test_extra_delay_lands_late(self):
        plan = AnchoredFrequencyPlan(
            1800.0,
            [AnchoredSwitch(op_index=0, freq_mhz=1000.0)],
            extra_delay_us=14_000.0,
        )
        plan.on_op_start(0, 0.0)
        assert plan.frequency_at(0.0) == 1800.0
        switch = plan.next_switch_after(0.0)
        assert switch is not None and switch.time_us == pytest.approx(14_000.0)
        assert plan.frequency_at(14_000.0) == 1000.0

    def test_reset_restores_initial(self):
        plan = AnchoredFrequencyPlan(
            1800.0, [AnchoredSwitch(op_index=0, freq_mhz=1000.0)]
        )
        plan.on_op_start(0, 0.0)
        assert plan.frequency_at(0.0) == 1000.0
        assert plan.applied_switch_count == 1
        plan.reset()
        assert plan.frequency_at(0.0) == 1800.0
        assert plan.applied_switch_count == 0

    def test_switch_count(self):
        plan = AnchoredFrequencyPlan(
            1800.0,
            [AnchoredSwitch(0, 1000.0), AnchoredSwitch(5, 1800.0)],
        )
        assert plan.switch_count == 2

    def test_negative_delay_rejected(self):
        with pytest.raises(StrategyError):
            AnchoredFrequencyPlan(1800.0, [], extra_delay_us=-1.0)

    def test_negative_index_rejected(self):
        with pytest.raises(StrategyError):
            AnchoredSwitch(op_index=-1, freq_mhz=1000.0)
