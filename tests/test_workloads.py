"""Tests for the operator library, traces, and workload generators."""

import pytest

from repro.errors import WorkloadError
from repro.npu.pipelines import Pipe
from repro.npu.timeline import Scenario
from repro.workloads import (
    OperatorKind,
    Trace,
    TraceBuilder,
    build_trace,
    generate,
    micro_loops,
    oplib,
    workload_names,
)
from repro.workloads.generators.cnns import SHUFFLENET_OPERATOR_COUNT
from repro.workloads.registry import (
    PERF_VALIDATION_WORKLOADS,
    POWER_VALIDATION_WORKLOADS,
)
from repro.workloads.trace import TraceEntry
from tests.conftest import make_compute_op


class TestOplib:
    def test_matmul_is_cube_heavy(self):
        op = oplib.matmul("mm", 1024, 1024, 1024)
        mix = op.compute.core_mix_dict
        assert mix[Pipe.CUBE] > 0.5
        assert op.compute.scenario is Scenario.PINGPONG_INDEPENDENT

    def test_matmul_flops_to_cycles(self):
        op = oplib.matmul("mm", 512, 512, 512)
        total_cycles = op.compute.core_cycles_per_block * op.compute.n_blocks
        assert total_cycles == pytest.approx(
            2 * 512**3 / oplib.CUBE_FLOPS_PER_CYCLE
        )

    def test_matmul_rejects_bad_dims(self):
        with pytest.raises(WorkloadError):
            oplib.matmul("mm", 0, 10, 10)

    def test_conv_efficiency_increases_cycles(self):
        fast = oplib.conv2d("c1", 8, 64, 64, 28, 28, cube_efficiency=1.0)
        slow = oplib.conv2d("c2", 8, 64, 64, 28, 28, cube_efficiency=0.5)
        assert (
            slow.compute.core_cycles_per_block * slow.compute.n_blocks
            == pytest.approx(
                2 * fast.compute.core_cycles_per_block * fast.compute.n_blocks
            )
        )

    def test_conv_rejects_bad_efficiency(self):
        with pytest.raises(WorkloadError):
            oplib.conv2d("c", 1, 1, 1, 1, 1, cube_efficiency=0.0)

    def test_elementwise_moves_inputs_plus_one_tensors(self):
        op = oplib.elementwise("add", "Add", 1_000_000, inputs=2)
        assert op.total_ld_bytes() == pytest.approx(2 * 1_000_000 * 2)
        assert op.total_st_bytes() == pytest.approx(1_000_000 * 2)

    def test_elementwise_is_vector_bound(self):
        op = oplib.elementwise("gelu", "Gelu", 1_000_000, inputs=1)
        assert op.compute.core_mix_dict[Pipe.VECTOR] > 0.5

    def test_big_memory_op_gets_many_blocks(self):
        op = oplib.elementwise("big", "Add", 50_000_000)
        assert op.compute.n_blocks > 8

    def test_reduction_shrinks_output(self):
        op = oplib.reduction("rm", "ReduceMean", 1_000_000, reduce_factor=100)
        assert op.total_st_bytes() < op.total_ld_bytes() / 10

    def test_normalization_is_pingpong_dependent(self):
        op = oplib.normalization("ln", "LayerNorm", 1_000_000)
        assert op.compute.scenario is Scenario.PINGPONG_DEPENDENT

    def test_scalar_glue_is_overhead_dominated(self):
        op = oplib.scalar_glue("cast")
        assert op.compute.fixed_overhead_us >= 5.0
        assert op.compute.n_blocks == 1

    def test_transpose_serial_scenario(self):
        op = oplib.transpose("t", 1_000_000)
        assert op.compute.scenario is Scenario.PINGPONG_FREE_DEPENDENT

    def test_communication_duration_from_link(self):
        op = oplib.communication("ar", 28_000_000.0, link_gbps=28.0)
        assert op.kind is OperatorKind.COMMUNICATION
        assert op.fixed_duration_us == pytest.approx(1000.0)

    def test_communication_rejects_zero_volume(self):
        with pytest.raises(WorkloadError):
            oplib.communication("ar", 0.0)

    def test_aicpu_and_idle(self):
        assert oplib.aicpu("a", 10.0).kind is OperatorKind.AICPU
        assert oplib.idle("i", 10.0).kind is OperatorKind.IDLE


class TestTrace:
    def test_build_trace_from_specs(self):
        trace = build_trace("t", [make_compute_op("a"), make_compute_op("b")])
        assert trace.operator_count == 2

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            Trace(name="t", entries=())

    def test_unnamed_trace_rejected(self):
        with pytest.raises(WorkloadError):
            build_trace("", [make_compute_op("a")])

    def test_negative_gap_rejected(self):
        with pytest.raises(WorkloadError):
            TraceEntry(make_compute_op("a"), gap_before_us=-1.0)

    def test_negative_host_interval_rejected(self):
        with pytest.raises(WorkloadError):
            TraceEntry(make_compute_op("a"), host_interval_us=-1.0)

    def test_unique_specs_dedupes(self):
        op = make_compute_op("dup")
        trace = build_trace("t", [op, op, make_compute_op("other")])
        assert len(trace.unique_specs()) == 2

    def test_count_by_kind_and_type(self):
        trace = build_trace(
            "t",
            [
                make_compute_op("a"),
                oplib.aicpu("b", 5.0),
                oplib.communication("c", 1e6),
            ],
        )
        kinds = trace.count_by_kind()
        assert kinds[OperatorKind.COMPUTE] == 1
        assert kinds[OperatorKind.AICPU] == 1
        assert trace.count_by_type()["Test"] == 1

    def test_builder_add_repeated(self):
        builder = TraceBuilder("t")
        builder.add_repeated(make_compute_op("a"), 5)
        assert builder.pending_count == 5
        assert builder.build().operator_count == 5

    def test_builder_rejects_negative_count(self):
        with pytest.raises(WorkloadError):
            TraceBuilder("t").add_repeated(make_compute_op("a"), -1)

    def test_build_trace_rejects_garbage(self):
        with pytest.raises(WorkloadError):
            build_trace("t", ["not an op"])  # type: ignore[list-item]


class TestGenerators:
    def test_registry_names(self):
        names = workload_names()
        for expected in ("gpt3", "bert", "resnet50", "resnet152", "vgg19",
                         "alexnet", "shufflenetv2plus", "vit_base",
                         "deit_small", "llama2_inference"):
            assert expected in names

    def test_unknown_workload_rejected(self):
        with pytest.raises(WorkloadError):
            generate("nonexistent")

    @pytest.mark.parametrize("name", workload_names())
    def test_all_generators_produce_traces(self, name):
        trace = generate(name, scale=0.05)
        assert trace.operator_count > 0
        assert trace.name == name

    def test_generators_are_deterministic(self):
        a = generate("bert", scale=0.05, seed=3)
        b = generate("bert", scale=0.05, seed=3)
        assert a.entries == b.entries

    def test_seed_changes_trace(self):
        a = generate("bert", scale=0.05, seed=3)
        b = generate("bert", scale=0.05, seed=4)
        assert a.entries != b.entries

    def test_scale_shrinks_trace(self):
        small = generate("gpt3", scale=0.02)
        larger = generate("gpt3", scale=0.05)
        assert small.operator_count < larger.operator_count

    def test_gpt3_structure(self):
        trace = generate("gpt3", scale=0.05)
        kinds = trace.count_by_kind()
        assert kinds[OperatorKind.COMPUTE] > 0
        assert kinds[OperatorKind.COMMUNICATION] > 0
        assert kinds[OperatorKind.AICPU] > 0
        types = trace.count_by_type()
        assert types["MatMul"] > 0
        assert types["Gelu"] > 0
        assert types["LayerNorm"] > 0

    def test_gpt3_full_scale_operator_count(self):
        """The paper reports ~18,000 operators per GPT-3 iteration; our
        synthetic trace is the same order of magnitude."""
        trace = generate("gpt3", scale=1.0)
        assert 10_000 <= trace.operator_count <= 25_000

    def test_shufflenet_exact_compute_count(self):
        trace = generate("shufflenetv2plus")
        compute = sum(
            1 for e in trace.entries if e.spec.kind is OperatorKind.COMPUTE
        )
        assert compute == SHUFFLENET_OPERATOR_COUNT

    def test_llama2_is_host_bound(self):
        trace = generate("llama2_inference", scale=0.1)
        paced = [e for e in trace.entries if e.host_interval_us > 0]
        assert len(paced) == len(trace.entries)

    def test_validation_workload_lists_are_registered(self):
        for name in PERF_VALIDATION_WORKLOADS + POWER_VALIDATION_WORKLOADS:
            assert name in workload_names()

    def test_micro_loops(self):
        loops = micro_loops()
        trace = loops["softmax_loop"](repeats=5)
        assert trace.operator_count == 5
        assert loops["calibration_load"](repeats=2).operator_count == 4

    def test_operator_loop_rejects_zero_repeats(self):
        from repro.workloads.generators import micro

        with pytest.raises(WorkloadError):
            micro.operator_loop(make_compute_op("x"), 0)
