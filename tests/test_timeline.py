"""Tests for the four operator timeline scenarios (paper Sect. 4.2)."""

import pytest

from repro.errors import ConfigurationError
from repro.npu.pipelines import Pipe
from repro.npu.timeline import (
    BlockCosts,
    Scenario,
    Segment,
    build_timeline,
    closed_form_cycles,
)

MIX = {Pipe.CUBE: 0.7, Pipe.VECTOR: 0.2, Pipe.SCALAR: 0.1}


def costs(ld=1200.0, st=800.0, core=1500.0):
    return BlockCosts(ld_cycles=ld, st_cycles=st, core_cycles=core)


class TestClosedForms:
    def test_eq5_pingpong_free_independent(self):
        c = costs()
        n = 5
        expected = (
            c.ld_cycles + c.st_cycles + n * c.core_cycles
            + (n - 1) * max(c.ld_cycles, c.st_cycles)
        )
        got = closed_form_cycles(Scenario.PINGPONG_FREE_INDEPENDENT, n, c)
        assert got == pytest.approx(expected)

    def test_eq6_pingpong_free_dependent(self):
        c = costs()
        got = closed_form_cycles(Scenario.PINGPONG_FREE_DEPENDENT, 5, c)
        assert got == pytest.approx(5 * c.serial_cycles)

    def test_eq7_pingpong_independent(self):
        c = costs()
        n = 5
        expected = c.serial_cycles + (n - 1) * c.max_component
        got = closed_form_cycles(Scenario.PINGPONG_INDEPENDENT, n, c)
        assert got == pytest.approx(expected)

    def test_eq8_pingpong_dependent_even(self):
        c = costs()
        got = closed_form_cycles(Scenario.PINGPONG_DEPENDENT, 6, c)
        expected = max(3 * c.serial_cycles, c.max_component + 3 * c.serial_cycles)
        assert got == pytest.approx(expected)

    def test_eq8_single_block_is_serial(self):
        c = costs()
        got = closed_form_cycles(Scenario.PINGPONG_DEPENDENT, 1, c)
        assert got == pytest.approx(c.serial_cycles)

    def test_scenario_ordering(self):
        """Pingpong helps; dependence hurts (for balanced costs)."""
        c = costs()
        n = 8
        serial = closed_form_cycles(Scenario.PINGPONG_FREE_DEPENDENT, n, c)
        half = closed_form_cycles(Scenario.PINGPONG_DEPENDENT, n, c)
        pipelined = closed_form_cycles(Scenario.PINGPONG_INDEPENDENT, n, c)
        assert pipelined <= half <= serial

    def test_rejects_zero_blocks(self):
        with pytest.raises(ConfigurationError):
            closed_form_cycles(Scenario.PINGPONG_INDEPENDENT, 0, costs())

    def test_rejects_negative_costs(self):
        with pytest.raises(ConfigurationError):
            BlockCosts(ld_cycles=-1.0, st_cycles=0.0, core_cycles=0.0)


class TestScenarioEnum:
    def test_flags_roundtrip(self):
        for pingpong in (False, True):
            for dependent in (False, True):
                scenario = Scenario.from_flags(pingpong, dependent)
                assert scenario.pingpong == pingpong
                assert scenario.dependent == dependent


class TestBuildTimeline:
    @pytest.mark.parametrize("scenario", list(Scenario))
    @pytest.mark.parametrize("n", [1, 2, 3, 7])
    def test_schedule_matches_closed_form(self, scenario, n):
        c = costs()
        timeline = build_timeline(scenario, n, c, MIX)
        assert timeline.total_cycles == pytest.approx(
            closed_form_cycles(scenario, n, c)
        )
        last_end = max(s.end for s in timeline.segments)
        assert last_end <= timeline.total_cycles + 1e-6

    @pytest.mark.parametrize("scenario", list(Scenario))
    def test_busy_never_exceeds_total(self, scenario):
        timeline = build_timeline(scenario, 6, costs(), MIX)
        for pipe, busy in timeline.busy_cycles().items():
            assert busy <= timeline.total_cycles + 1e-6, pipe

    def test_core_busy_equals_n_core_cycles(self):
        c = costs()
        timeline = build_timeline(Scenario.PINGPONG_INDEPENDENT, 4, c, MIX)
        busy = timeline.busy_cycles()
        core_busy = sum(
            busy.get(p, 0.0) for p in (Pipe.CUBE, Pipe.VECTOR, Pipe.SCALAR)
        )
        assert core_busy == pytest.approx(4 * c.core_cycles)

    def test_core_mix_fractions_respected(self):
        c = costs()
        timeline = build_timeline(Scenario.PINGPONG_FREE_DEPENDENT, 3, c, MIX)
        busy = timeline.busy_cycles()
        assert busy[Pipe.CUBE] == pytest.approx(0.7 * 3 * c.core_cycles)
        assert busy[Pipe.VECTOR] == pytest.approx(0.2 * 3 * c.core_cycles)

    def test_mem_pipe_busy_without_overlap(self):
        c = costs()
        timeline = build_timeline(Scenario.PINGPONG_FREE_INDEPENDENT, 5, c, MIX)
        busy = timeline.busy_cycles()
        assert busy[Pipe.MTE2] == pytest.approx(5 * c.ld_cycles)
        assert busy[Pipe.MTE3] == pytest.approx(5 * c.st_cycles)

    def test_zero_store_has_no_mte3_segments(self):
        c = BlockCosts(ld_cycles=1000.0, st_cycles=0.0, core_cycles=500.0)
        timeline = build_timeline(Scenario.PINGPONG_INDEPENDENT, 3, c, MIX)
        assert all(s.pipe is not Pipe.MTE3 for s in timeline.segments)

    def test_stall_cycles_nonnegative_and_bounded(self):
        timeline = build_timeline(
            Scenario.PINGPONG_FREE_DEPENDENT, 4, costs(), MIX
        )
        stall = timeline.stall_cycles()
        assert 0.0 <= stall <= timeline.total_cycles

    def test_serial_scenario_stall_is_mem_time(self):
        c = costs()
        timeline = build_timeline(Scenario.PINGPONG_FREE_DEPENDENT, 4, c, MIX)
        assert timeline.stall_cycles() == pytest.approx(
            4 * (c.ld_cycles + c.st_cycles)
        )

    def test_segment_validation(self):
        with pytest.raises(ConfigurationError):
            Segment(Pipe.CUBE, 10.0, 5.0)

    def test_rejects_bad_mix(self):
        with pytest.raises(ValueError):
            build_timeline(
                Scenario.PINGPONG_INDEPENDENT, 2, costs(), {Pipe.CUBE: 0.5}
            )

    def test_overlapping_ld_counts_once_in_pingpong_dependent(self):
        """When Ld dominates, the two buffer streams' loads overlap; the
        union-based busy accounting must stay below the total."""
        c = BlockCosts(ld_cycles=5000.0, st_cycles=100.0, core_cycles=100.0)
        timeline = build_timeline(Scenario.PINGPONG_DEPENDENT, 10, c, MIX)
        busy = timeline.busy_cycles()
        assert busy[Pipe.MTE2] <= timeline.total_cycles + 1e-6
