"""Tests for frequency grid, voltage curve, memory law, pipes, thermal."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FrequencyError
from repro.npu import FrequencyGrid, MemoryHierarchy, ThermalSpec, VoltageCurve
from repro.npu.memory import smooth_max
from repro.npu.pipelines import (
    ALL_PIPES,
    CORE_PIPES,
    Pipe,
    UNCORE_PIPES,
    is_core_pipe,
    is_uncore_pipe,
    validate_core_mix,
)
from repro.npu.thermal import ThermalState


class TestFrequencyGrid:
    def test_default_grid_matches_paper(self):
        grid = FrequencyGrid()
        assert grid.points[0] == 1000.0
        assert grid.points[-1] == 1800.0
        assert grid.count == 9
        assert grid.points[1] - grid.points[0] == 100.0

    def test_validate_accepts_grid_point(self):
        assert FrequencyGrid().validate(1300.0) == 1300.0

    def test_validate_rejects_off_grid(self):
        with pytest.raises(FrequencyError):
            FrequencyGrid().validate(1350.0)

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(FrequencyError):
            FrequencyGrid().validate(900.0)

    def test_nearest_snaps(self):
        assert FrequencyGrid().nearest(1340.0) == 1300.0
        assert FrequencyGrid().nearest(1360.0) == 1400.0

    def test_nearest_tie_goes_up(self):
        assert FrequencyGrid().nearest(1350.0) == 1400.0

    def test_index_of(self):
        grid = FrequencyGrid()
        assert grid.index_of(1000.0) == 0
        assert grid.index_of(1800.0) == 8

    def test_clamp(self):
        grid = FrequencyGrid()
        assert grid.clamp(700.0) == 1000.0
        assert grid.clamp(5000.0) == 1800.0

    def test_bad_grid_rejected(self):
        with pytest.raises(FrequencyError):
            FrequencyGrid(min_mhz=1000, max_mhz=1850, step_mhz=100)
        with pytest.raises(FrequencyError):
            FrequencyGrid(min_mhz=1800, max_mhz=1000)

    def test_contains(self):
        grid = FrequencyGrid()
        assert grid.contains(1500.0)
        assert not grid.contains(1550.0)


class TestVoltageCurve:
    def test_flat_below_knee(self):
        curve = VoltageCurve()
        assert curve.volts(1000.0) == curve.volts(1300.0)

    def test_linear_above_knee(self):
        curve = VoltageCurve()
        v14, v15, v16 = (curve.volts(f) for f in (1400.0, 1500.0, 1600.0))
        assert v15 - v14 == pytest.approx(v16 - v15)
        assert v15 > v14

    def test_monotone_nondecreasing(self):
        curve = VoltageCurve()
        volts = [curve.volts(f) for f in range(1000, 1900, 100)]
        assert all(b >= a for a, b in zip(volts, volts[1:]))

    def test_vectorised(self):
        curve = VoltageCurve()
        arr = curve.volts(np.array([1000.0, 1800.0]))
        assert arr.shape == (2,)

    def test_table(self):
        rows = VoltageCurve().table((1000.0, 1800.0))
        assert len(rows) == 2
        assert rows[0][1] < rows[1][1]

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ConfigurationError):
            VoltageCurve().volts(0.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            VoltageCurve(flat_volts=-1.0)
        with pytest.raises(ConfigurationError):
            VoltageCurve(slope_volts_per_mhz=-0.1)


class TestSmoothMax:
    def test_exact_when_one_zero(self):
        assert smooth_max(0.0, 5.0, 6.0) == 5.0
        assert smooth_max(5.0, 0.0, 6.0) == 5.0

    def test_upper_bounds_max(self):
        assert smooth_max(3.0, 4.0, 6.0) >= 4.0

    def test_bounded_by_max_times_root2(self):
        # At the corner x == y the relaxation peaks at 2^(1/p) * max.
        value = smooth_max(4.0, 4.0, 6.0)
        assert value == pytest.approx(4.0 * 2 ** (1 / 6.0))

    def test_converges_to_max_with_sharpness(self):
        approx = smooth_max(3.0, 4.0, 200.0)
        assert approx == pytest.approx(4.0, rel=1e-3)

    def test_symmetry(self):
        assert smooth_max(2.0, 7.0, 6.0) == pytest.approx(smooth_max(7.0, 2.0, 6.0))

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            smooth_max(-1.0, 2.0, 6.0)


class TestMemoryHierarchy:
    def test_throughput_respects_min_law(self):
        mem = MemoryHierarchy()
        low = mem.throughput(1000.0)
        sat = mem.throughput(1800.0)
        assert low == pytest.approx(mem.core_bytes_per_cycle * 1000.0)
        assert sat == pytest.approx(mem.uncore_bandwidth())

    def test_saturation_frequency_eq2(self):
        mem = MemoryHierarchy()
        fs = mem.saturation_frequency()
        assert fs == pytest.approx(
            mem.uncore_bandwidth() / mem.core_bytes_per_cycle
        )
        # At fs both sides of the min() agree.
        assert mem.core_bytes_per_cycle * fs == pytest.approx(
            mem.uncore_bandwidth()
        )

    def test_derate_scales_bandwidth(self):
        mem = MemoryHierarchy()
        assert mem.uncore_bandwidth(0.5) == pytest.approx(
            0.5 * mem.uncore_bandwidth()
        )
        assert mem.saturation_frequency(0.5) == pytest.approx(
            0.5 * mem.saturation_frequency()
        )

    def test_transfer_cycles_zero_volume(self):
        assert MemoryHierarchy().transfer_cycles(0.0, 1500.0) == 0.0

    def test_transfer_cycles_monotone_in_frequency(self):
        mem = MemoryHierarchy()
        cycles = [mem.transfer_cycles(1e7, f) for f in (1000, 1400, 1800)]
        assert cycles[0] <= cycles[1] <= cycles[2]

    def test_transfer_time_decreases_then_flattens(self):
        mem = MemoryHierarchy()
        times = [mem.transfer_time_us(1e7, f) for f in (1000, 1400, 1800)]
        assert times[0] > times[2]
        # Above saturation the marginal gain shrinks.
        assert times[0] - times[1] > times[1] - times[2]

    def test_coefficients_match_eq4(self):
        mem = MemoryHierarchy()
        a, c = mem.transfer_cycle_coefficients(1e6)
        assert a == pytest.approx(1e6 / mem.uncore_bandwidth())
        assert c == pytest.approx(1e6 / mem.core_bytes_per_cycle)

    def test_rejects_bad_inputs(self):
        mem = MemoryHierarchy()
        with pytest.raises(ConfigurationError):
            mem.uncore_bandwidth(0.0)
        with pytest.raises(ConfigurationError):
            mem.transfer_cycle_coefficients(-1.0)
        with pytest.raises(ConfigurationError):
            mem.throughput(0.0)
        with pytest.raises(ConfigurationError):
            MemoryHierarchy(core_count=0)
        with pytest.raises(ConfigurationError):
            MemoryHierarchy(saturation_sharpness=0.5)


class TestPipes:
    def test_partition(self):
        assert CORE_PIPES | UNCORE_PIPES == frozenset(ALL_PIPES)
        assert not CORE_PIPES & UNCORE_PIPES

    def test_ld_st_are_uncore(self):
        assert is_uncore_pipe(Pipe.MTE2)
        assert is_uncore_pipe(Pipe.MTE3)
        assert not is_core_pipe(Pipe.MTE2)

    def test_cube_is_core(self):
        assert is_core_pipe(Pipe.CUBE)

    def test_validate_mix_ok(self):
        validate_core_mix({Pipe.CUBE: 0.7, Pipe.VECTOR: 0.3})

    def test_validate_mix_rejects_uncore(self):
        with pytest.raises(ValueError):
            validate_core_mix({Pipe.MTE2: 1.0})

    def test_validate_mix_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            validate_core_mix({Pipe.CUBE: 0.5})

    def test_validate_mix_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_core_mix({Pipe.CUBE: 1.5, Pipe.VECTOR: -0.5})

    def test_validate_mix_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_core_mix({})


class TestThermal:
    def test_equilibrium_is_linear_eq15(self):
        spec = ThermalSpec()
        t1 = spec.equilibrium_celsius(100.0)
        t2 = spec.equilibrium_celsius(200.0)
        assert t2 - t1 == pytest.approx(spec.celsius_per_watt * 100.0)
        assert spec.equilibrium_celsius(0.0) == spec.ambient_celsius

    def test_equilibrium_delta(self):
        spec = ThermalSpec()
        assert spec.equilibrium_delta(250.0) == pytest.approx(
            spec.celsius_per_watt * 250.0
        )

    def test_state_approaches_equilibrium(self):
        spec = ThermalSpec()
        state = ThermalState(spec)
        target = spec.equilibrium_celsius(300.0)
        state.advance(300.0, spec.time_constant_us * 10)
        assert state.celsius == pytest.approx(target, abs=0.01)

    def test_state_exact_exponential(self):
        spec = ThermalSpec()
        state = ThermalState(spec, initial_celsius=spec.ambient_celsius)
        target = spec.equilibrium_celsius(200.0)
        state.advance(200.0, spec.time_constant_us)
        expected = target + (spec.ambient_celsius - target) * np.exp(-1.0)
        assert state.celsius == pytest.approx(expected)

    def test_cooling_is_gradual(self):
        spec = ThermalSpec()
        state = ThermalState(spec, initial_celsius=80.0)
        state.advance(0.0, spec.time_constant_us / 100)
        assert 25.0 < state.celsius < 80.0
        assert state.celsius > 79.0  # barely moved in a short interval

    def test_settle_and_reset(self):
        spec = ThermalSpec()
        state = ThermalState(spec)
        state.settle(250.0)
        assert state.celsius == spec.equilibrium_celsius(250.0)
        state.reset()
        assert state.celsius == spec.ambient_celsius

    def test_split_interval_equals_single_interval(self):
        spec = ThermalSpec()
        a = ThermalState(spec, initial_celsius=30.0)
        b = ThermalState(spec, initial_celsius=30.0)
        a.advance(220.0, 2_000_000.0)
        b.advance(220.0, 800_000.0)
        b.advance(220.0, 1_200_000.0)
        assert a.celsius == pytest.approx(b.celsius)

    def test_rejects_negative_duration(self):
        state = ThermalState(ThermalSpec())
        with pytest.raises(ConfigurationError):
            state.advance(100.0, -1.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ConfigurationError):
            ThermalSpec().equilibrium_celsius(-5.0)
