"""Tests for operator specs and the ground-truth evaluator."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.npu import GroundTruthEvaluator, noise_free_spec
from repro.npu.pipelines import Pipe
from repro.npu.timeline import Scenario
from repro.workloads.operator import (
    ComputeCharacter,
    OperatorKind,
    OperatorSpec,
    make_fixed_operator,
)
from tests.conftest import make_compute_op


class TestOperatorSpec:
    def test_compute_requires_character(self):
        with pytest.raises(WorkloadError):
            OperatorSpec(name="x", op_type="T", kind=OperatorKind.COMPUTE)

    def test_noncompute_rejects_character(self):
        op = make_compute_op()
        with pytest.raises(WorkloadError):
            OperatorSpec(
                name="x",
                op_type="T",
                kind=OperatorKind.AICPU,
                compute=op.compute,
            )

    def test_noncompute_needs_duration(self):
        with pytest.raises(WorkloadError):
            make_fixed_operator("x", OperatorKind.AICPU, 0.0)

    def test_fixed_factory_rejects_compute(self):
        with pytest.raises(WorkloadError):
            make_fixed_operator("x", OperatorKind.COMPUTE, 5.0)

    def test_empty_name_rejected(self):
        with pytest.raises(WorkloadError):
            make_fixed_operator("", OperatorKind.IDLE, 5.0)

    def test_total_bytes(self):
        op = make_compute_op(n_blocks=4, ld_bytes=100.0, st_bytes=50.0)
        assert op.total_ld_bytes() == pytest.approx(400.0)
        assert op.total_st_bytes() == pytest.approx(200.0)

    def test_total_bytes_zero_for_noncompute(self):
        op = make_fixed_operator("c", OperatorKind.COMMUNICATION, 10.0)
        assert op.total_ld_bytes() == 0.0

    def test_character_is_hashable(self):
        op = make_compute_op()
        assert hash(op.compute) == hash(op.compute)

    def test_make_mix_drops_zero_entries(self):
        mix = ComputeCharacter.make_mix({Pipe.CUBE: 1.0, Pipe.VECTOR: 0.0})
        assert mix == ((Pipe.CUBE, 1.0),)

    def test_character_validation(self):
        with pytest.raises(WorkloadError):
            ComputeCharacter(
                scenario=Scenario.PINGPONG_INDEPENDENT,
                n_blocks=0,
                core_cycles_per_block=1.0,
                core_mix=ComputeCharacter.make_mix({Pipe.CUBE: 1.0}),
                ld_bytes_per_block=0.0,
                st_bytes_per_block=0.0,
            )
        with pytest.raises(WorkloadError):
            ComputeCharacter(
                scenario=Scenario.PINGPONG_INDEPENDENT,
                n_blocks=1,
                core_cycles_per_block=1.0,
                core_mix=ComputeCharacter.make_mix({Pipe.CUBE: 1.0}),
                ld_bytes_per_block=0.0,
                st_bytes_per_block=0.0,
                bandwidth_derate=0.0,
            )


class TestGroundTruthEvaluator:
    def test_duration_decreases_with_frequency(self, evaluator):
        op = make_compute_op()
        d_low = evaluator.duration_us(op, 1000.0)
        d_high = evaluator.duration_us(op, 1800.0)
        assert d_high < d_low

    def test_memory_bound_op_is_nearly_flat(self, evaluator):
        op = make_compute_op(
            core_cycles=500.0,
            ld_bytes=8_000_000.0,
            st_bytes=4_000_000.0,
            derate=0.5,
        )
        d_low = evaluator.duration_us(op, 1300.0)
        d_high = evaluator.duration_us(op, 1800.0)
        assert (d_low - d_high) / d_low < 0.08

    def test_compute_bound_op_scales_inverse_f(self, evaluator):
        op = make_compute_op(
            core_cycles=500_000.0, ld_bytes=10_000.0, st_bytes=10_000.0
        )
        d_1000 = evaluator.duration_us(op, 1000.0)
        d_1800 = evaluator.duration_us(op, 1800.0)
        assert d_1000 / d_1800 == pytest.approx(1.8, rel=0.05)

    def test_fixed_overhead_is_frequency_independent(self, evaluator):
        with_oh = make_compute_op(name="a", overhead_us=50.0)
        without = make_compute_op(name="b", overhead_us=0.0)
        for freq in (1000.0, 1800.0):
            delta = evaluator.duration_us(with_oh, freq) - (
                evaluator.duration_us(without, freq)
            )
            assert delta == pytest.approx(50.0)

    def test_rejects_off_grid_frequency(self, evaluator):
        from repro.errors import FrequencyError

        with pytest.raises(FrequencyError):
            evaluator.evaluate(make_compute_op(), 1234.0)

    def test_cache_shares_characters_across_names(self, evaluator):
        a = make_compute_op(name="alpha")
        b = make_compute_op(name="beta")
        ev_a = evaluator.evaluate(a, 1500.0)
        ev_b = evaluator.evaluate(b, 1500.0)
        assert ev_a.duration_us == ev_b.duration_us
        assert ev_b.spec.name == "beta"

    def test_utilisation_in_unit_interval(self, evaluator):
        op = make_compute_op()
        evaluation = evaluator.evaluate(op, 1400.0)
        for pipe, ratio in evaluation.utilisation.items():
            assert 0.0 <= ratio <= 1.0, pipe

    def test_noncompute_evaluation(self, evaluator):
        op = make_fixed_operator("comm", OperatorKind.COMMUNICATION, 123.0)
        evaluation = evaluator.evaluate(op, 1800.0)
        assert evaluation.duration_us == 123.0
        assert evaluation.utilisation == {}
        assert evaluation.alpha_effective == 0.0
        assert evaluation.bandwidth_utilisation > 0.0  # collectives move data

    def test_idle_has_zero_bandwidth(self, evaluator):
        op = make_fixed_operator("idle", OperatorKind.IDLE, 10.0)
        assert evaluator.evaluate(op, 1800.0).bandwidth_utilisation == 0.0

    def test_power_increases_with_temperature(self, evaluator):
        evaluation = evaluator.evaluate(make_compute_op(), 1800.0)
        assert evaluator.aicore_power(evaluation, 40.0) > (
            evaluator.aicore_power(evaluation, 0.0)
        )

    def test_soc_power_exceeds_aicore(self, evaluator):
        evaluation = evaluator.evaluate(make_compute_op(), 1800.0)
        assert evaluator.soc_power(evaluation, 30.0) > (
            evaluator.aicore_power(evaluation, 30.0)
        )

    def test_timeline_rejects_noncompute(self, evaluator):
        op = make_fixed_operator("a", OperatorKind.AICPU, 5.0)
        with pytest.raises(ConfigurationError):
            evaluator.timeline(op, 1800.0)

    def test_total_cycles_consistent_with_duration(self):
        evaluator = GroundTruthEvaluator(noise_free_spec())
        op = make_compute_op()
        evaluation = evaluator.evaluate(op, 1600.0)
        assert evaluation.total_cycles == pytest.approx(
            evaluation.duration_us * 1600.0
        )

    def test_max_utilisation_helper(self, evaluator):
        evaluation = evaluator.evaluate(make_compute_op(), 1500.0)
        pipe, ratio = evaluation.max_utilisation()
        assert pipe is not None
        assert ratio == max(evaluation.utilisation.values())
