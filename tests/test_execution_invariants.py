"""Property-based invariants of device execution (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.npu import FrequencyTimeline, NpuDevice, noise_free_spec
from repro.npu.device import IDLE_INDEX
from repro.npu.pipelines import Pipe
from repro.npu.setfreq import AnchoredFrequencyPlan, AnchoredSwitch
from repro.npu.timeline import Scenario
from repro.workloads import build_trace
from repro.workloads.trace import TraceEntry
from tests.conftest import make_compute_op

DEVICE = NpuDevice(noise_free_spec())
GRID = tuple(1000.0 + 100.0 * i for i in range(9))

op_params = st.fixed_dictionaries(
    {
        "scenario": st.sampled_from(list(Scenario)),
        "n_blocks": st.integers(1, 12),
        "core_cycles": st.floats(1_000.0, 500_000.0),
        "ld_bytes": st.floats(0.0, 5e6),
        "st_bytes": st.floats(0.0, 5e6),
        "derate": st.floats(0.5, 1.3),
        "overhead_us": st.floats(0.0, 10.0),
    }
)


def _trace(param_list, gaps=None, name="prop"):
    entries = []
    for i, params in enumerate(param_list):
        op = make_compute_op(name=f"{name}.op{i}", **params)
        gap = gaps[i] if gaps else 0.0
        entries.append(TraceEntry(op, gap_before_us=gap))
    return build_trace(name, entries)


@given(params=st.lists(op_params, min_size=1, max_size=5))
@settings(max_examples=40, deadline=None)
def test_chunks_are_contiguous_and_cover_duration(params):
    result = DEVICE.run(_trace(params))
    assert result.chunks[0].start_us == 0.0
    for prev, nxt in zip(result.chunks, result.chunks[1:]):
        assert nxt.start_us == pytest.approx(prev.end_us)
    assert result.chunks[-1].end_us == pytest.approx(result.duration_us)


@given(params=st.lists(op_params, min_size=1, max_size=5))
@settings(max_examples=40, deadline=None)
def test_energy_equals_chunk_integral(params):
    result = DEVICE.run(_trace(params))
    aicore = sum(c.aicore_watts * c.duration_us / 1e6 for c in result.chunks)
    soc = sum(c.soc_watts * c.duration_us / 1e6 for c in result.chunks)
    assert result.aicore_energy_j == pytest.approx(aicore, rel=1e-9)
    assert result.soc_energy_j == pytest.approx(soc, rel=1e-9)


@given(
    params=st.lists(op_params, min_size=1, max_size=4),
    gaps=st.lists(st.floats(0.0, 500.0), min_size=4, max_size=4),
)
@settings(max_examples=40, deadline=None)
def test_records_energy_plus_idle_equals_total(params, gaps):
    trace = _trace(params, gaps=gaps[: len(params)])
    result = DEVICE.run(trace)
    record_energy = sum(r.soc_energy_j for r in result.records)
    idle_energy = sum(
        c.soc_watts * c.duration_us / 1e6
        for c in result.chunks
        if c.op_index == IDLE_INDEX
    )
    assert result.soc_energy_j == pytest.approx(
        record_energy + idle_energy, rel=1e-9
    )


@given(
    params=st.lists(op_params, min_size=2, max_size=4),
    freq=st.sampled_from(GRID),
)
@settings(max_examples=40, deadline=None)
def test_constant_frequency_means_no_straddling(params, freq):
    result = DEVICE.run(_trace(params), FrequencyTimeline.constant(freq))
    for record in result.records:
        assert record.start_freq_mhz == freq
        assert not record.straddled_switch


@given(
    params=st.lists(op_params, min_size=3, max_size=5),
    switch_freq=st.sampled_from(GRID),
    anchor=st.integers(1, 2),
)
@settings(max_examples=40, deadline=None)
def test_anchored_switch_applies_exactly_once(params, switch_freq, anchor):
    trace = _trace(params)
    plan = AnchoredFrequencyPlan(
        1800.0, [AnchoredSwitch(anchor, switch_freq)]
    )
    result = DEVICE.run(trace, plan)
    for record in result.records:
        expected = 1800.0 if record.index < anchor else switch_freq
        assert record.start_freq_mhz == expected


@given(params=st.lists(op_params, min_size=1, max_size=4))
@settings(max_examples=30, deadline=None)
def test_higher_frequency_never_slower(params):
    trace = _trace(params)
    d_low = DEVICE.run(trace, FrequencyTimeline.constant(1000.0)).duration_us
    d_high = DEVICE.run(trace, FrequencyTimeline.constant(1800.0)).duration_us
    assert d_high <= d_low + 1e-6


@given(params=st.lists(op_params, min_size=1, max_size=4))
@settings(max_examples=30, deadline=None)
def test_utilisation_bounded_for_all_random_ops(params):
    trace = _trace(params)
    for entry in trace.entries:
        for freq in (1000.0, 1400.0, 1800.0):
            evaluation = DEVICE.evaluator.evaluate(entry.spec, freq)
            assert 0.0 <= evaluation.utilisation_sum() <= len(Pipe) + 1e-9
            for ratio in evaluation.utilisation.values():
                assert 0.0 <= ratio <= 1.0 + 1e-9


@given(
    params=st.lists(op_params, min_size=1, max_size=3),
    temps=st.tuples(st.floats(25.0, 40.0), st.floats(60.0, 90.0)),
)
@settings(max_examples=30, deadline=None)
def test_hotter_chip_draws_more_power(params, temps):
    cold_start, hot_start = temps
    trace = _trace(params)
    cold = DEVICE.run(trace, initial_celsius=cold_start)
    hot = DEVICE.run(trace, initial_celsius=hot_start)
    assert hot.soc_avg_watts > cold.soc_avg_watts
    assert hot.duration_us == pytest.approx(cold.duration_us)
