"""Tests for classification, preprocessing, scoring, GA, strategy, executor."""

import numpy as np
import pytest

from repro.dvfs import (
    Bottleneck,
    DvfsExecutor,
    DvfsStrategy,
    GaConfig,
    StageKind,
    StagePlan,
    StrategyScorer,
    bottleneck_histogram,
    classify_operator,
    classify_operators,
    constant_strategy,
    initial_population,
    preprocess,
    run_search,
    strategy_from_genes,
)
from repro.errors import StrategyError
from repro.npu.operators import OperatorKind
from repro.npu.pipelines import Pipe
from repro.npu.profiler import ProfiledOperator


def profiled(
    name="op",
    ratios=None,
    kind=OperatorKind.COMPUTE,
    duration=100.0,
    start=0.0,
    gap=0.0,
    index=0,
    freq=1800.0,
):
    return ProfiledOperator(
        index=index,
        name=name,
        op_type="T",
        kind=kind,
        start_us=start,
        duration_us=duration,
        gap_before_us=gap,
        freq_mhz=freq,
        ratios=ratios or {},
        straddled_switch=False,
    )


class TestClassification:
    def test_no_pipeline_bound(self):
        op = profiled(ratios={Pipe.CUBE: 0.3, Pipe.MTE2: 0.4})
        result = classify_operator(op)
        assert result.bottleneck is Bottleneck.NO_PIPELINE
        assert not result.frequency_sensitive

    def test_latency_bound(self):
        op = profiled(ratios={Pipe.CUBE: 0.6, Pipe.MTE2: 0.5})
        result = classify_operator(op)
        assert result.bottleneck is Bottleneck.LATENCY
        assert result.frequency_sensitive

    def test_core_bound(self):
        op = profiled(ratios={Pipe.CUBE: 0.9, Pipe.MTE2: 0.3})
        result = classify_operator(op)
        assert result.bottleneck is Bottleneck.CORE
        assert result.bound_pipe is Pipe.CUBE
        assert result.frequency_sensitive
        assert result.label == "cube-bound"

    def test_uncore_bound_ld(self):
        op = profiled(ratios={Pipe.MTE2: 0.92, Pipe.VECTOR: 0.4})
        result = classify_operator(op)
        assert result.bottleneck is Bottleneck.UNCORE
        assert result.label == "Ld-bound"
        assert not result.frequency_sensitive

    def test_uncore_bound_st(self):
        op = profiled(ratios={Pipe.MTE3: 0.95, Pipe.VECTOR: 0.4})
        assert classify_operator(op).label == "St-bound"

    def test_threshold_boundary(self):
        # Exactly 0.8 is not 'less than 0.8': core bound.
        op = profiled(ratios={Pipe.VECTOR: 0.8, Pipe.MTE2: 0.25})
        assert classify_operator(op).bottleneck is Bottleneck.CORE

    @pytest.mark.parametrize(
        "kind,expected",
        [
            (OperatorKind.AICPU, Bottleneck.AICPU),
            (OperatorKind.COMMUNICATION, Bottleneck.COMMUNICATION),
            (OperatorKind.IDLE, Bottleneck.IDLE),
        ],
    )
    def test_noncompute_kinds(self, kind, expected):
        result = classify_operator(profiled(kind=kind))
        assert result.bottleneck is expected
        assert not result.frequency_sensitive

    def test_histogram(self):
        ops = [
            profiled(name="a", ratios={Pipe.CUBE: 0.9, Pipe.MTE2: 0.2}),
            profiled(name="b", ratios={Pipe.MTE2: 0.9, Pipe.VECTOR: 0.2}),
            profiled(name="c", kind=OperatorKind.AICPU),
        ]
        hist = bottleneck_histogram(classify_operators(ops))
        assert hist[Bottleneck.CORE] == 1
        assert hist[Bottleneck.UNCORE] == 1
        assert hist[Bottleneck.AICPU] == 1


def make_sequence(spec):
    """Build a classified sequence from (duration, sensitive, gap) tuples."""
    ops = []
    clock = 0.0
    for i, (duration, sensitive, gap) in enumerate(spec):
        clock += gap
        ratios = (
            {Pipe.CUBE: 0.9, Pipe.MTE2: 0.2}
            if sensitive
            else {Pipe.MTE2: 0.9, Pipe.VECTOR: 0.2}
        )
        ops.append(
            profiled(
                name=f"op{i}", ratios=ratios, duration=duration,
                start=clock, gap=gap, index=i,
            )
        )
        clock += duration
    return classify_operators(ops)


class TestPreprocessing:
    def test_alternating_runs_become_stages(self):
        classified = make_sequence(
            [(6000, True, 0), (6000, False, 0), (6000, True, 0)]
        )
        result = preprocess(classified, adjustment_interval_us=5000.0)
        assert len(result.stages) == 3
        kinds = [s.kind for s in result.stages]
        assert kinds == [StageKind.HFC, StageKind.LFC, StageKind.HFC]

    def test_short_stage_merged(self):
        classified = make_sequence(
            [(6000, True, 0), (500, False, 0), (6000, True, 0)]
        )
        result = preprocess(classified, adjustment_interval_us=5000.0)
        # The 500 us LFC run cannot be its own candidate: it joins the
        # following group, whose dominant kind is HFC.
        assert result.raw_stage_count == 3
        assert all(s.duration_us >= 5000.0 for s in result.stages)
        assert all(s.kind is StageKind.HFC for s in result.stages)
        # All operators survive the merge.
        assert sum(len(s.op_indices) for s in result.stages) == 3

    def test_merged_groups_track_mixed_composition(self):
        classified = make_sequence(
            [(3000, True, 0), (3000, False, 0), (3000, True, 0),
             (3000, False, 0)]
        )
        result = preprocess(classified, adjustment_interval_us=5000.0)
        assert all(s.duration_us >= 5000.0 for s in result.stages)
        # Mixed groups report a fractional sensitive share.
        assert any(0.0 < s.sensitive_fraction < 1.0 for s in result.stages)

    def test_significant_gap_becomes_lfc_time(self):
        classified = make_sequence(
            [(6000, True, 0), (6000, True, 7000.0)]
        )
        result = preprocess(
            classified, adjustment_interval_us=5000.0, significant_gap_us=50.0
        )
        kinds = [s.kind for s in result.stages]
        assert StageKind.LFC in kinds
        lfc = next(s for s in result.stages if s.kind is StageKind.LFC)
        assert lfc.duration_us == pytest.approx(7000.0)
        assert lfc.op_indices == ()

    def test_small_gap_absorbed(self):
        classified = make_sequence([(6000, True, 0), (6000, True, 10.0)])
        result = preprocess(classified, adjustment_interval_us=5000.0)
        assert len(result.stages) == 1
        assert result.stages[0].duration_us == pytest.approx(12010.0)

    def test_stage_timeline_is_contiguous(self):
        classified = make_sequence(
            [(6000, True, 0), (6000, False, 30.0), (7000, True, 0)]
        )
        result = preprocess(classified, adjustment_interval_us=5000.0)
        for prev, nxt in zip(result.stages, result.stages[1:]):
            assert nxt.start_us == pytest.approx(prev.end_us)

    def test_sensitive_time_tracked(self):
        classified = make_sequence([(6000, True, 0), (500, False, 0)])
        result = preprocess(classified, adjustment_interval_us=5000.0)
        stage = result.stages[0]
        assert stage.sensitive_time_us == pytest.approx(6000.0)
        assert 0.9 < stage.sensitive_fraction <= 1.0

    def test_stage_of_op(self):
        classified = make_sequence([(6000, True, 0), (6000, False, 0)])
        result = preprocess(classified, adjustment_interval_us=5000.0)
        assert result.stage_of_op(1).kind is StageKind.LFC
        with pytest.raises(StrategyError):
            result.stage_of_op(99)

    def test_larger_interval_fewer_stages(self):
        spec = [(3000, i % 2 == 0, 0) for i in range(20)]
        fine = preprocess(make_sequence(spec), adjustment_interval_us=2000.0)
        coarse = preprocess(make_sequence(spec), adjustment_interval_us=20000.0)
        assert len(coarse.stages) < len(fine.stages)

    def test_rejects_empty(self):
        with pytest.raises(StrategyError):
            preprocess([], adjustment_interval_us=5000.0)

    def test_rejects_bad_interval(self):
        classified = make_sequence([(6000, True, 0)])
        with pytest.raises(StrategyError):
            preprocess(classified, adjustment_interval_us=0.0)


class TestStrategy:
    def plans(self):
        return (
            StagePlan(0.0, 5000.0, 1800.0, StageKind.HFC, 0),
            StagePlan(5000.0, 5000.0, 1200.0, StageKind.LFC, 3),
            StagePlan(10000.0, 5000.0, 1200.0, StageKind.LFC, 7),
            StagePlan(15000.0, 5000.0, 1800.0, StageKind.HFC, 9),
        )

    def test_switches_collapse_same_frequency(self):
        strategy = DvfsStrategy("w", 0.02, self.plans())
        assert strategy.setfreq_count == 2
        assert strategy.switches() == [(5000.0, 1200.0), (15000.0, 1800.0)]

    def test_anchored_switches(self):
        strategy = DvfsStrategy("w", 0.02, self.plans())
        assert strategy.anchored_switches() == [(3, 1200.0), (9, 1800.0)]

    def test_anchor_falls_through_idle_stage(self):
        plans = (
            StagePlan(0.0, 5000.0, 1800.0, StageKind.HFC, 0),
            StagePlan(5000.0, 5000.0, 1000.0, StageKind.LFC, None),
            StagePlan(10000.0, 5000.0, 1000.0, StageKind.LFC, 4),
        )
        strategy = DvfsStrategy("w", 0.02, plans)
        assert strategy.anchored_switches() == [(4, 1000.0)]

    def test_json_roundtrip(self, tmp_path):
        strategy = DvfsStrategy("w", 0.02, self.plans())
        path = tmp_path / "strategy.json"
        strategy.save(path)
        loaded = DvfsStrategy.load(path)
        assert loaded == strategy

    def test_malformed_json_rejected(self):
        with pytest.raises(StrategyError):
            DvfsStrategy.from_json("{not json")
        with pytest.raises(StrategyError):
            DvfsStrategy.from_json('{"workload": "w"}')

    def test_frequency_histogram(self):
        strategy = DvfsStrategy("w", 0.02, self.plans())
        histogram = strategy.frequency_histogram()
        assert histogram[1200.0] == pytest.approx(10000.0)
        assert histogram[1800.0] == pytest.approx(10000.0)

    def test_mean_lfc_freq(self):
        strategy = DvfsStrategy("w", 0.02, self.plans())
        assert strategy.mean_lfc_freq_mhz() == pytest.approx(1200.0)

    def test_mean_lfc_freq_none_without_lfc(self):
        plans = (StagePlan(0.0, 100.0, 1800.0, StageKind.HFC, 0),)
        assert DvfsStrategy("w", 0.02, plans).mean_lfc_freq_mhz() is None

    def test_unsorted_plans_rejected(self):
        plans = (
            StagePlan(5000.0, 100.0, 1800.0, StageKind.HFC, 0),
            StagePlan(0.0, 100.0, 1800.0, StageKind.HFC, 1),
        )
        with pytest.raises(StrategyError):
            DvfsStrategy("w", 0.02, plans)

    def test_empty_rejected(self):
        with pytest.raises(StrategyError):
            DvfsStrategy("w", 0.02, ())

    def test_constant_strategy(self):
        strategy = constant_strategy("w", 1300.0, 1000.0)
        assert strategy.setfreq_count == 0
        assert strategy.initial_freq_mhz == 1300.0

    def test_strategy_from_genes_validates_length(self):
        from repro.dvfs.preprocessing import Stage

        stage = Stage(0, StageKind.HFC, 0.0, 100.0, (0,), 100.0)
        with pytest.raises(StrategyError):
            strategy_from_genes("w", [stage], [0, 1], [1000.0], 0.02)


@pytest.fixture(scope="module")
def scorer_setup():
    """A small optimizer pipeline up to the scorer, shared by GA tests."""
    from repro import EnergyOptimizer, OptimizerConfig
    from repro.workloads import generate

    config = OptimizerConfig(
        performance_loss_target=0.04,
        ga=GaConfig(population_size=40, iterations=60, seed=11),
    )
    optimizer = EnergyOptimizer(config)
    trace = generate("gpt3", scale=0.03)
    bundle = optimizer.profile(trace)
    models = optimizer.build_models(bundle)
    candidates = optimizer.preprocess(bundle)
    scorer = StrategyScorer(
        trace=trace,
        stages=candidates.stages,
        perf_model=models.performance,
        power_table=models.power,
        freqs_mhz=config.npu.frequencies.points,
        performance_loss_target=0.04,
    )
    return config, trace, candidates, scorer


class TestScorer:
    def test_baseline_scores_two(self, scorer_setup):
        _, _, _, scorer = scorer_setup
        baseline = np.full((1, scorer.stage_count), 8, dtype=int)
        assert scorer.score(baseline)[0] == pytest.approx(2.0)

    def test_all_lowest_violates_target(self, scorer_setup):
        _, _, _, scorer = scorer_setup
        lowest = np.zeros((1, scorer.stage_count), dtype=int)
        breakdown = scorer.breakdown(lowest[0])
        assert not breakdown.meets_target
        assert scorer.score(lowest)[0] < 2.0

    def test_lower_frequency_lowers_power(self, scorer_setup):
        _, _, _, scorer = scorer_setup
        base = scorer.breakdown(np.full(scorer.stage_count, 8))
        low = scorer.breakdown(np.zeros(scorer.stage_count, dtype=int))
        assert low.aicore_watts < base.aicore_watts
        assert low.soc_watts < base.soc_watts
        assert low.time_us > base.time_us

    def test_population_shape_validated(self, scorer_setup):
        _, _, _, scorer = scorer_setup
        with pytest.raises(StrategyError):
            scorer.score(np.zeros((2, scorer.stage_count + 1), dtype=int))

    def test_breakdown_fields(self, scorer_setup):
        _, _, _, scorer = scorer_setup
        breakdown = scorer.breakdown(np.full(scorer.stage_count, 8))
        assert breakdown.delta_celsius > 0
        assert breakdown.performance == pytest.approx(1e6 / breakdown.time_us)


class TestGa:
    def test_initial_population_contains_baseline_and_prior(self, scorer_setup):
        config, _, candidates, scorer = scorer_setup
        rng = np.random.default_rng(0)
        population = initial_population(
            scorer, candidates.stages, config.ga,
            config.npu.frequencies.points, rng,
        )
        assert population.shape == (config.ga.population_size, scorer.stage_count)
        assert (population[0] == 8).all()  # baseline at 1800
        prior = population[1]
        for stage, gene in zip(candidates.stages, prior):
            expected = 6 if stage.kind is StageKind.LFC else 8
            assert gene == expected

    def test_search_improves_over_baseline(self, scorer_setup):
        config, _, candidates, scorer = scorer_setup
        result = run_search(
            scorer, candidates.stages, config.npu.frequencies.points, config.ga
        )
        assert result.best_score > 2.0  # beats the all-1800 baseline
        assert scorer.breakdown(result.best_genes).meets_target

    def test_history_is_monotone_with_elitism(self, scorer_setup):
        config, _, candidates, scorer = scorer_setup
        result = run_search(
            scorer, candidates.stages, config.npu.frequencies.points, config.ga
        )
        history = np.array(result.history)
        assert (np.diff(history) >= -1e-12).all()
        assert len(history) == config.ga.iterations + 1

    def test_search_is_deterministic(self, scorer_setup):
        config, _, candidates, scorer = scorer_setup
        a = run_search(
            scorer, candidates.stages, config.npu.frequencies.points, config.ga
        )
        b = run_search(
            scorer, candidates.stages, config.npu.frequencies.points, config.ga
        )
        assert np.array_equal(a.best_genes, b.best_genes)
        assert a.history == b.history

    def test_config_validation(self):
        with pytest.raises(StrategyError):
            GaConfig(population_size=2)
        with pytest.raises(StrategyError):
            GaConfig(mutation_rate=1.5)
        with pytest.raises(StrategyError):
            GaConfig(elite_count=500)
        with pytest.raises(StrategyError):
            GaConfig(iterations=0)

    def test_converged_generation(self, scorer_setup):
        config, _, candidates, scorer = scorer_setup
        result = run_search(
            scorer, candidates.stages, config.npu.frequencies.points, config.ga
        )
        assert 0 <= result.converged_generation <= config.ga.iterations


class TestExecutor:
    def test_execute_with_baseline(self, scorer_setup):
        from repro import EnergyOptimizer, OptimizerConfig
        from repro.workloads import generate

        config, trace, candidates, scorer = scorer_setup
        optimizer = EnergyOptimizer(config)
        result = run_search(
            scorer, candidates.stages, config.npu.frequencies.points, config.ga
        )
        strategy = strategy_from_genes(
            trace.name, candidates.stages, result.best_genes,
            config.npu.frequencies.points, 0.04,
        )
        executor = optimizer.executor
        outcome = executor.execute_with_baseline(trace, strategy, stable=False)
        assert outcome.aicore_power_reduction > 0
        assert outcome.performance_loss < 0.05

    def test_compile_plan_anchor_count(self, scorer_setup):
        from repro.npu import NpuDevice, default_npu_spec

        config, trace, candidates, scorer = scorer_setup
        executor = DvfsExecutor(NpuDevice(default_npu_spec()))
        genes = np.array(
            [0 if s.kind is StageKind.LFC else 8 for s in candidates.stages]
        )
        strategy = strategy_from_genes(
            trace.name, candidates.stages, genes,
            config.npu.frequencies.points, 0.04,
        )
        plan = executor.compile(strategy)
        assert plan.switch_count == len(strategy.anchored_switches())

    def test_compile_validates_grid(self):
        from repro.npu import NpuDevice, default_npu_spec
        from repro.errors import FrequencyError

        executor = DvfsExecutor(NpuDevice(default_npu_spec()))
        plans = (
            StagePlan(0.0, 100.0, 1800.0, StageKind.HFC, 0),
            StagePlan(100.0, 100.0, 1234.0, StageKind.LFC, 1),
        )
        strategy = DvfsStrategy("w", 0.02, plans)
        with pytest.raises(FrequencyError):
            executor.compile(strategy)


class TestGaPatience:
    def test_early_stop_trims_generations(self, scorer_setup):
        config, _, candidates, scorer = scorer_setup
        from repro.dvfs import GaConfig, run_search

        patient = GaConfig(
            population_size=40, iterations=500, seed=11, patience=20
        )
        result = run_search(
            scorer, candidates.stages, config.npu.frequencies.points, patient
        )
        assert result.generations < 500
        assert len(result.history) == result.generations + 1

    def test_patience_validation(self):
        from repro.dvfs import GaConfig
        from repro.errors import StrategyError

        with pytest.raises(StrategyError):
            GaConfig(patience=-1)


class TestExecutorValidation:
    def _strategy(self, workload, anchor):
        plans = (
            StagePlan(0.0, 100.0, 1800.0, StageKind.HFC, 0),
            StagePlan(100.0, 100.0, 1000.0, StageKind.LFC, anchor),
        )
        return DvfsStrategy(workload, 0.02, plans)

    def test_wrong_workload_rejected(self, ideal_device):
        from repro.workloads import build_trace
        from tests.conftest import make_compute_op

        executor = DvfsExecutor(ideal_device)
        trace = build_trace("real", [make_compute_op(name="v.op")])
        with pytest.raises(StrategyError):
            executor.execute(trace, self._strategy("other", 0))

    def test_out_of_range_anchor_rejected(self, ideal_device):
        from repro.workloads import build_trace
        from tests.conftest import make_compute_op

        executor = DvfsExecutor(ideal_device)
        trace = build_trace("real", [make_compute_op(name="v.op2")])
        with pytest.raises(StrategyError):
            executor.execute(trace, self._strategy("real", 99))

    def test_matching_strategy_accepted(self, ideal_device):
        from repro.workloads import build_trace
        from tests.conftest import make_compute_op

        executor = DvfsExecutor(ideal_device)
        trace = build_trace(
            "real",
            [make_compute_op(name=f"v.op{i}") for i in range(3)],
        )
        result = executor.execute(
            trace, self._strategy("real", 1), stable=False
        )
        assert result.records[1].start_freq_mhz == 1000.0


class TestScorerConsistency:
    def test_single_stage_time_matches_model_sum(self, scorer_setup):
        """The scorer's per-stage time tables must equal the sum of the
        per-operator model predictions plus the frequency-independent idle
        remainder."""
        from repro import EnergyOptimizer, OptimizerConfig
        from repro.workloads import generate

        config, trace, candidates, scorer = scorer_setup
        optimizer = EnergyOptimizer(config)
        bundle = optimizer.profile(trace)
        models = optimizer.build_models(bundle)
        freqs = config.npu.frequencies.points
        entries = trace.entries
        # Evaluate one all-at-one-frequency strategy per grid point and
        # compare against a direct model computation.
        for j, freq in enumerate((1000.0, 1400.0, 1800.0)):
            genes = np.full(
                scorer.stage_count, freqs.index(freq), dtype=int
            )
            breakdown = scorer.breakdown(genes)
            direct = 0.0
            for stage in candidates.stages:
                op_time = sum(
                    models.performance.predict_time_us(
                        entries[i].spec.name, freq
                    )
                    for i in stage.op_indices
                )
                op_time_base = sum(
                    models.performance.predict_time_us(
                        entries[i].spec.name, freqs[-1]
                    )
                    for i in stage.op_indices
                )
                idle = max(0.0, stage.duration_us - op_time_base)
                direct += op_time + idle
            assert breakdown.time_us == pytest.approx(direct, rel=1e-9)

    def test_power_between_idle_and_busy_bounds(self, scorer_setup):
        _, _, _, scorer = scorer_setup
        baseline = scorer.breakdown(np.full(scorer.stage_count, 8))
        assert 10.0 < baseline.aicore_watts < 80.0
        assert 150.0 < baseline.soc_watts < 350.0
