"""Trace-summary utility tests and oplib <-> classifier contract tests.

The contract tests pin the behavioural intent of each operator builder:
what the profiler-side classifier should say about it at the baseline
frequency.  If a builder's parameters drift, these catch the change.
"""

import pytest

from repro.analysis.rng import RngFactory
from repro.dvfs import Bottleneck, classify_operator
from repro.npu import CannStyleProfiler, NpuDevice, noise_free_spec
from repro.npu.pipelines import Pipe
from repro.workloads import build_trace, generate, oplib
from repro.workloads.summary import summarize_trace


def classify_single(op, freq=1800.0):
    device = NpuDevice(noise_free_spec())
    profiler = CannStyleProfiler(
        noise_free_spec(), RngFactory(0).generator("x")
    )
    from repro.npu.setfreq import FrequencyTimeline

    result = device.run(
        build_trace("single", [op]), FrequencyTimeline.constant(freq)
    )
    report = profiler.profile(result)
    return classify_operator(report.operators[0])


class TestOplibClassifierContracts:
    def test_large_matmul_is_cube_bound(self):
        classified = classify_single(oplib.matmul("c.mm", 4096, 4096, 4096))
        assert classified.bottleneck is Bottleneck.CORE
        assert classified.bound_pipe is Pipe.CUBE
        assert classified.frequency_sensitive

    def test_large_conv_is_cube_bound(self):
        classified = classify_single(
            oplib.conv2d("c.conv", 64, 256, 256, 28, 28)
        )
        assert classified.bottleneck is Bottleneck.CORE
        assert classified.frequency_sensitive

    def test_large_elementwise_is_uncore_bound(self):
        classified = classify_single(
            oplib.elementwise("c.add", "Add", 40_000_000, inputs=2)
        )
        assert classified.bottleneck is Bottleneck.UNCORE
        assert not classified.frequency_sensitive

    def test_gelu_is_uncore_bound(self):
        classified = classify_single(
            oplib.elementwise(
                "c.gelu", "Gelu", 40_000_000, inputs=1, flops_per_element=4.0
            )
        )
        assert classified.bottleneck is Bottleneck.UNCORE

    def test_softmax_is_uncore_bound(self):
        classified = classify_single(oplib.softmax("c.sm", 40_000_000))
        assert classified.bottleneck is Bottleneck.UNCORE

    def test_scalar_glue_is_no_pipeline_bound(self):
        classified = classify_single(oplib.scalar_glue("c.cast"))
        assert classified.bottleneck is Bottleneck.NO_PIPELINE
        assert not classified.frequency_sensitive

    def test_transpose_is_latency_bound(self):
        classified = classify_single(oplib.transpose("c.t", 12_000_000))
        assert classified.bottleneck is Bottleneck.LATENCY
        assert classified.frequency_sensitive

    def test_communication_kind(self):
        classified = classify_single(oplib.communication("c.ar", 50e6))
        assert classified.bottleneck is Bottleneck.COMMUNICATION

    def test_aicpu_kind(self):
        classified = classify_single(oplib.aicpu("c.cpu", 100.0))
        assert classified.bottleneck is Bottleneck.AICPU


class TestTraceSummary:
    @pytest.fixture(scope="class")
    def gpt3_summary(self):
        device = NpuDevice(noise_free_spec())
        return summarize_trace(generate("gpt3", scale=0.03), device)

    def test_totals(self, gpt3_summary):
        assert gpt3_summary.operator_count > 100
        assert gpt3_summary.duration_us > 0
        assert 0 < gpt3_summary.sensitive_time_fraction < 1

    def test_matmul_dominates_time(self, gpt3_summary):
        top = gpt3_summary.top_types(1)[0]
        assert top.op_type == "MatMul"
        assert top.time_share > 0.3

    def test_short_operator_population(self, gpt3_summary):
        """Paper Sect. 7.2: most operators are tiny but contribute almost
        no time."""
        assert gpt3_summary.short_operator_fraction > 0.4
        assert gpt3_summary.short_operator_time_fraction < 0.05

    def test_type_shares_sum_to_one(self, gpt3_summary):
        assert sum(s.time_share for s in gpt3_summary.by_type) == (
            pytest.approx(1.0)
        )

    def test_matmul_sensitive_gelu_not(self, gpt3_summary):
        by_type = {s.op_type: s for s in gpt3_summary.by_type}
        assert by_type["MatMul"].frequency_sensitive_share > 0.9
        assert by_type["Gelu"].frequency_sensitive_share < 0.1

    def test_render(self, gpt3_summary):
        text = gpt3_summary.render()
        assert "gpt3" in text
        assert "MatMul" in text
        assert "frequency-sensitive time" in text
