"""Tests for the fault-injection layer (`repro.npu.faults`)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.rng import RngFactory
from repro.errors import FaultInjectionError, ProfilingError, TelemetryError
from repro.npu import (
    CannStyleProfiler,
    FaultConfig,
    FaultInjector,
    FaultyCannStyleProfiler,
    FaultyFrequencyPlan,
    FaultyPowerTelemetry,
    FrequencyTimeline,
    PowerTelemetry,
)
from repro.npu.setfreq import AnchoredSwitch
from repro.perf import build_performance_model, patch_missing_operators
from repro.workloads import build_trace
from tests.conftest import make_compute_op


def injector_for(config: FaultConfig, seed: int = 7) -> FaultInjector:
    return FaultInjector.from_seed(config, seed)


class TestFaultConfig:
    def test_default_is_healthy(self):
        config = FaultConfig.none()
        assert not config.any_active
        assert not config.setfreq_active
        assert not config.telemetry_active
        assert not config.profiler_active
        assert not config.environment_active

    def test_uniform_enables_everything(self):
        config = FaultConfig.uniform(0.2)
        assert config.setfreq_drop_rate == 0.2
        assert config.telemetry_spike_rate == 0.2
        assert config.profiler_truncate_rate == 0.2
        assert config.ambient_step_celsius == 40.0
        assert config.any_active

    def test_uniform_zero_is_healthy(self):
        config = FaultConfig.uniform(0.0)
        assert not config.any_active
        assert config.ambient_step_celsius == 0.0

    def test_uniform_overrides(self):
        config = FaultConfig.uniform(0.1, setfreq_drop_rate=0.9)
        assert config.setfreq_drop_rate == 0.9
        assert config.setfreq_duplicate_rate == 0.1

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_bad_rates_rejected(self, rate):
        with pytest.raises(FaultInjectionError):
            FaultConfig(setfreq_drop_rate=rate)
        with pytest.raises(FaultInjectionError):
            FaultConfig.uniform(rate)

    def test_negative_magnitudes_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultConfig(setfreq_delay_max_us=-1.0)
        with pytest.raises(FaultInjectionError):
            FaultConfig(ambient_step_celsius=-5.0)

    def test_bad_keep_fraction_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultConfig(profiler_truncate_keep_fraction=0.0)
        with pytest.raises(FaultInjectionError):
            FaultConfig(profiler_truncate_keep_fraction=1.5)

    def test_ambient_needs_both_rate_and_magnitude(self):
        assert not FaultConfig(ambient_step_rate=1.0).environment_active
        assert not FaultConfig(ambient_step_celsius=40.0).environment_active
        assert FaultConfig(
            ambient_step_rate=1.0, ambient_step_celsius=40.0
        ).environment_active


class TestFaultInjectorDeterminism:
    def test_same_seed_same_schedule(self):
        config = FaultConfig.uniform(0.3)
        a = injector_for(config)
        b = injector_for(config)
        for injector in (a, b):
            for t in range(20):
                injector.setfreq_fault(float(t))
                injector.telemetry_fault(float(t))
                injector.read_frequency(1500.0, float(t))
                injector.profiler_drop()
                injector.profiler_truncation(10)
                injector.ambient_offset_celsius()
        assert a.events == b.events
        assert len(a.events) > 0

    def test_streams_are_independent(self):
        config = FaultConfig.uniform(0.5)
        a = FaultInjector.from_seed(config, 7, stream="faults-trial0")
        b = FaultInjector.from_seed(config, 7, stream="faults-trial1")
        for injector in (a, b):
            for t in range(20):
                injector.setfreq_fault(float(t))
        assert a.events != b.events

    def test_fixed_draw_count_regardless_of_outcome(self):
        # A decision must consume the same number of draws whether or
        # not it triggers, so downstream decisions stay aligned across
        # fault rates (the common-random-numbers property the
        # ext_fault_tolerance sweep relies on).
        rng_zero = np.random.default_rng(42)
        rng_one = np.random.default_rng(42)
        quiet = FaultInjector(FaultConfig.none(), rng_zero)
        noisy = FaultInjector(FaultConfig.uniform(1.0), rng_one)
        for injector in (quiet, noisy):
            injector.setfreq_fault(0.0)
            injector.telemetry_fault(0.0)
            injector.profiler_drop()
            injector.profiler_truncation(10)
            injector.ambient_offset_celsius()
        assert rng_zero.random() == rng_one.random()

    def test_clear_events_keeps_stream(self):
        injector = injector_for(FaultConfig.uniform(1.0))
        injector.setfreq_fault(0.0)
        assert injector.events
        injector.clear_events()
        assert injector.events == ()


class TestFaultyFrequencyPlan:
    def _plan(self, config, anchors=None, extra_delay_us=0.0, seed=7):
        if anchors is None:
            anchors = [AnchoredSwitch(0, 1000.0)]
        injector = injector_for(config, seed)
        return FaultyFrequencyPlan(
            1800.0, anchors, injector, extra_delay_us=extra_delay_us
        )

    def test_requires_injector(self):
        with pytest.raises(FaultInjectionError):
            FaultyFrequencyPlan(1800.0, [], None)

    def test_bad_duplicate_gap_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultyFrequencyPlan(
                1800.0, [], injector_for(FaultConfig.none()),
                duplicate_gap_us=0.0,
            )

    def test_healthy_config_behaves_like_plain_plan(self):
        plan = self._plan(FaultConfig.none())
        plan.on_op_start(0, 0.0)
        assert plan.frequency_at(0.0) == 1000.0
        assert plan.applied_switch_count == 1

    def test_dropped_dispatch_never_applies(self):
        plan = self._plan(FaultConfig(setfreq_drop_rate=1.0))
        plan.on_op_start(0, 0.0)
        assert plan.frequency_at(1e9) == 1800.0
        assert plan.applied_switch_count == 0
        assert plan.injector.events[0].kind == "dropped"

    def test_duplicated_dispatch_applies_twice(self):
        plan = self._plan(FaultConfig(setfreq_duplicate_rate=1.0))
        plan.on_op_start(0, 0.0)
        assert plan.frequency_at(0.0) == 1000.0
        redelivery = plan.next_switch_after(0.0)
        assert redelivery is not None
        assert redelivery.time_us == pytest.approx(500.0)
        assert plan.frequency_at(500.0) == 1000.0
        assert plan.applied_switch_count == 2

    def test_delayed_dispatch_lands_late(self):
        plan = self._plan(
            FaultConfig(setfreq_delay_rate=1.0, setfreq_delay_max_us=10_000.0)
        )
        plan.on_op_start(0, 0.0)
        assert plan.frequency_at(0.0) == 1800.0
        switch = plan.next_switch_after(0.0)
        assert switch is not None
        assert 0.0 < switch.time_us <= 10_000.0
        assert plan.frequency_at(10_000.0) == 1000.0

    def test_stuck_controller_holds_and_queues(self):
        plan = self._plan(
            FaultConfig(setfreq_stuck_rate=1.0, setfreq_stuck_hold_us=30_000.0),
            anchors=[
                AnchoredSwitch(0, 1000.0),
                AnchoredSwitch(1, 1200.0),
                AnchoredSwitch(2, 1500.0),
            ],
            extra_delay_us=1000.0,
        )
        plan.on_op_start(0, 0.0)  # held 30 ms; lands at 31 000
        plan.on_op_start(1, 5_000.0)  # controller busy -> queued
        plan.on_op_start(2, 10_000.0)  # supersedes the held 1200 MHz
        assert plan.dropped_switch_count == 1
        assert plan.frequency_at(30_999.0) == 1800.0
        assert plan.frequency_at(31_000.0) == 1000.0
        # The queued 1500 MHz re-issues after completion and lands one
        # controller latency later.
        assert plan.frequency_at(32_000.0) == 1500.0
        assert plan.applied_switch_count == 2

    def test_reset_clears_busy_window(self):
        plan = self._plan(
            FaultConfig(setfreq_stuck_rate=1.0, setfreq_stuck_hold_us=30_000.0)
        )
        plan.on_op_start(0, 0.0)
        plan.reset()
        assert plan.frequency_at(0.0) == 1800.0
        assert plan.applied_switch_count == 0

    def test_runs_under_device(self, device):
        # A moderately hostile plan must still drive a full execution
        # (no infinite chunk-splitting, no stuck clock).
        ops = [make_compute_op(name=f"f.op{i}") for i in range(8)]
        trace = build_trace("faulty", ops)
        plan = self._plan(
            FaultConfig.uniform(0.3),
            anchors=[
                AnchoredSwitch(1, 1000.0),
                AnchoredSwitch(3, 1500.0),
                AnchoredSwitch(5, 1200.0),
            ],
            extra_delay_us=1000.0,
        )
        result = device.run(trace, plan)
        assert result.duration_us > 0
        assert len(result.records) == 8


class TestFaultyPowerTelemetry:
    def _telemetry(self, npu_spec, config, seed=5):
        return FaultyPowerTelemetry(
            npu_spec,
            RngFactory(seed).generator("telem"),
            injector_for(config),
        )

    def _healthy(self, npu_spec, seed=5):
        return PowerTelemetry(npu_spec, RngFactory(seed).generator("telem"))

    def _chunks(self, device):
        ops = [make_compute_op(name=f"t.op{i}") for i in range(6)]
        trace = build_trace("telem", ops)
        return device.run(trace, FrequencyTimeline.constant(1800.0)).chunks

    def test_requires_injector(self, npu_spec):
        with pytest.raises(FaultInjectionError):
            FaultyPowerTelemetry(
                npu_spec, RngFactory(5).generator("telem"), None
            )

    def test_all_dropped_raises(self, npu_spec, device):
        telemetry = self._telemetry(
            npu_spec, FaultConfig(telemetry_dropout_rate=1.0)
        )
        with pytest.raises(TelemetryError):
            telemetry.sample_chunks(self._chunks(device), interval_us=50.0)

    def test_partial_dropout_thins_samples(self, npu_spec, device):
        chunks = self._chunks(device)
        healthy = self._healthy(npu_spec).sample_chunks(
            chunks, interval_us=50.0
        )
        faulty = self._telemetry(
            npu_spec, FaultConfig(telemetry_dropout_rate=0.5)
        ).sample_chunks(chunks, interval_us=50.0)
        assert 1 <= len(faulty) < len(healthy)

    def test_stuck_sensor_repeats_last_value(self, npu_spec, device):
        samples = self._telemetry(
            npu_spec, FaultConfig(telemetry_stuck_rate=1.0)
        ).sample_chunks(self._chunks(device), interval_us=50.0)
        assert len(samples) > 1
        assert len({s.soc_watts for s in samples}) == 1
        # Timestamps still advance even though the reading is frozen.
        assert samples[0].time_us < samples[-1].time_us

    def test_spike_scales_samples(self, npu_spec, device):
        chunks = self._chunks(device)
        healthy = self._healthy(npu_spec).sample_chunks(
            chunks, interval_us=50.0
        )
        spiked = self._telemetry(
            npu_spec,
            FaultConfig(
                telemetry_spike_rate=1.0, telemetry_spike_magnitude=0.5
            ),
        ).sample_chunks(chunks, interval_us=50.0)
        assert len(spiked) == len(healthy)
        for clean, spike in zip(healthy, spiked):
            assert spike.soc_watts == pytest.approx(clean.soc_watts * 1.5)

    def test_measure_spike_biases_aggregate(self, npu_spec, device):
        chunks = self._chunks(device)
        healthy = self._healthy(npu_spec).measure_chunks(chunks)
        spiked = self._telemetry(
            npu_spec,
            FaultConfig(
                telemetry_spike_rate=1.0, telemetry_spike_magnitude=0.5
            ),
        ).measure_chunks(chunks)
        assert spiked.soc_avg_watts == pytest.approx(
            healthy.soc_avg_watts * 1.5
        )

    def test_operator_power_keeps_all_names(self, npu_spec, device):
        ops = [make_compute_op(name=f"t.op{i}") for i in range(6)]
        trace = build_trace("telem", ops)
        result = device.run(trace, FrequencyTimeline.constant(1800.0))
        readings = self._telemetry(
            npu_spec, FaultConfig(telemetry_spike_rate=1.0)
        ).measure_operator_power(result)
        assert set(readings) == {op.name for op in ops}


class TestFaultyProfiler:
    def _profiler(self, npu_spec, config, seed=5):
        return FaultyCannStyleProfiler(
            npu_spec,
            RngFactory(seed).generator("prof"),
            injector_for(config),
        )

    def _result(self, device, n=10):
        ops = [make_compute_op(name=f"p.op{i}") for i in range(n)]
        trace = build_trace("prof", ops)
        return device.run(trace, FrequencyTimeline.constant(1800.0))

    def test_requires_injector(self, npu_spec):
        with pytest.raises(FaultInjectionError):
            FaultyCannStyleProfiler(
                npu_spec, RngFactory(5).generator("prof"), None
            )

    def test_healthy_config_matches_plain_profiler(self, npu_spec, device):
        result = self._result(device)
        plain = CannStyleProfiler(
            npu_spec, RngFactory(5).generator("prof")
        ).profile(result)
        faulty = self._profiler(npu_spec, FaultConfig.none()).profile(result)
        assert faulty == plain

    def test_record_loss(self, npu_spec, device):
        profiler = self._profiler(
            npu_spec, FaultConfig(profiler_drop_rate=0.5)
        )
        report = profiler.profile(self._result(device))
        assert 1 <= len(report) < 10
        kinds = {event.kind for event in profiler.injector.events}
        assert "records_dropped" in kinds

    def test_never_returns_empty_report(self, npu_spec, device):
        profiler = self._profiler(
            npu_spec, FaultConfig(profiler_drop_rate=1.0)
        )
        report = profiler.profile(self._result(device))
        assert len(report) == 1
        kinds = {event.kind for event in profiler.injector.events}
        assert "all_records_lost" in kinds

    def test_truncation_keeps_fraction(self, npu_spec, device):
        profiler = self._profiler(
            npu_spec,
            FaultConfig(
                profiler_truncate_rate=1.0,
                profiler_truncate_keep_fraction=0.6,
            ),
        )
        report = profiler.profile(self._result(device, n=10))
        assert len(report) == 6


class TestModelFaultTolerance:
    def test_missing_from_some_reports_rejected_by_default(
        self, bert_profile_reports
    ):
        victim = bert_profile_reports[0].operators[0].name
        damaged = list(bert_profile_reports)
        # 1800 MHz is an extreme, so it is always among the fit points
        # (dropping from the first report would drop the reference name).
        damaged[-1] = replace(
            damaged[-1],
            operators=tuple(
                op for op in damaged[-1].operators if op.name != victim
            ),
        )
        with pytest.raises(ProfilingError):
            build_performance_model(damaged)

    def test_allow_missing_degrades_instead(self, bert_profile_reports):
        victim = bert_profile_reports[0].operators[0].name
        damaged = list(bert_profile_reports)
        damaged[-1] = replace(
            damaged[-1],
            operators=tuple(
                op for op in damaged[-1].operators if op.name != victim
            ),
        )
        model = build_performance_model(damaged, allow_missing=True)
        assert model.predict_time_us(victim, 1400.0) > 0

    def test_allow_missing_unchanged_on_healthy_reports(
        self, bert_profile_reports
    ):
        strict = build_performance_model(bert_profile_reports)
        tolerant = build_performance_model(
            bert_profile_reports, allow_missing=True
        )
        name = next(iter(strict.operators))
        assert tolerant.predict_time_us(name, 1300.0) == pytest.approx(
            strict.predict_time_us(name, 1300.0)
        )
        assert set(tolerant.operators) == set(strict.operators)

    def test_patch_missing_operators(self, bert_profile_reports):
        victim = bert_profile_reports[0].operators[0].name
        damaged = [
            replace(
                report,
                operators=tuple(
                    op for op in report.operators if op.name != victim
                ),
            )
            for report in bert_profile_reports
        ]
        model = build_performance_model(damaged, allow_missing=True)
        assert victim not in model.operators
        patched = patch_missing_operators(model, bert_profile_reports[0])
        assert victim in patched.operators
        # The patched predictor is frequency-insensitive (constant).
        assert patched.predict_time_us(victim, 1000.0) == pytest.approx(
            patched.predict_time_us(victim, 1800.0)
        )

    def test_patch_noop_when_nothing_missing(self, bert_profile_reports):
        model = build_performance_model(bert_profile_reports)
        assert patch_missing_operators(model, bert_profile_reports[0]) is model
