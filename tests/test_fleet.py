"""Tests for the vectorized fleet layer (repro.fleet).

The numerical ground truth (fleet vs looped cluster at N <= 16) lives
in ``tests/test_fleet_equivalence.py``; this module covers the fleet's
own machinery: the hierarchical collective properties, seeded churn
determinism, the vectorized reclamation pass, the store round-trip,
the straggler top-k reporting and the CLI.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    InterconnectSpec,
    SimulatedCluster,
    build_frequency_tables,
    reclaim_slack,
)
from repro.cluster.serve import fleet_cached_reclaim, fleet_config_hash
from repro.cluster.spec import ClusterSpec
from repro.errors import ConfigurationError
from repro.fleet import (
    ChurnConfig,
    FleetSimulator,
    FleetSpec,
    FleetTopology,
    auto_retarget,
    descending_top_k,
    draw_churn,
    plan_strategy_json,
    reclaim_fleet_slack,
    straggler_summary,
)
from repro.fleet.cli import main as fleet_main
from repro.fleet.reference import compare_with_cluster
from repro.serve.store import StrategyStore
from repro.workloads import generate


@pytest.fixture(scope="module")
def tiny_trace():
    """A small GPT-3 iteration; fleet steps replay it N times."""
    return generate("gpt3", scale=0.01)


@pytest.fixture(scope="module")
def small_fleet(tiny_trace):
    return FleetSimulator(FleetSpec(n_devices=8, seed=0), tiny_trace)


class TestTopology:
    def test_rack_sizes_chunk_in_id_order(self):
        topology = FleetTopology(devices_per_rack=4)
        assert topology.rack_sizes(10) == (4, 4, 2)
        assert topology.rack_sizes(4) == (4,)
        assert topology.rack_sizes(0) == ()

    def test_rejects_empty_racks(self):
        with pytest.raises(ConfigurationError):
            FleetTopology(devices_per_rack=0)

    def test_single_rack_degenerates_to_ring_law(self):
        topology = FleetTopology(devices_per_rack=16)
        payload = 64 * 2**20
        cost = topology.breakdown(payload, topology.rack_sizes(16))
        ring = topology.intra.allreduce_us(payload, 16)
        assert cost.hierarchical_us == ring
        assert cost.chosen_us == ring

    def test_one_device_is_free(self):
        topology = FleetTopology()
        assert topology.allreduce_us(64 * 2**20, (1,)) == 0.0

    @settings(max_examples=80, deadline=None)
    @given(
        devices=st.integers(min_value=2, max_value=4096),
        per_rack=st.integers(min_value=1, max_value=64),
        payload_mb=st.floats(min_value=0.1, max_value=1024.0),
        intra_gbps=st.floats(min_value=1.0, max_value=400.0),
        inter_gbps=st.floats(min_value=0.5, max_value=400.0),
        intra_lat=st.floats(min_value=0.0, max_value=100.0),
        inter_lat=st.floats(min_value=0.0, max_value=500.0),
    )
    def test_never_slower_than_flat_ring(
        self,
        devices,
        per_rack,
        payload_mb,
        intra_gbps,
        inter_gbps,
        intra_lat,
        inter_lat,
    ):
        """Algorithm selection: the chosen schedule never loses to the
        flat ring over inter-rack-grade links, at any topology shape."""
        topology = FleetTopology(
            devices_per_rack=per_rack,
            intra=InterconnectSpec(
                link_bandwidth_gbps=intra_gbps, link_latency_us=intra_lat
            ),
            inter=InterconnectSpec(
                link_bandwidth_gbps=inter_gbps, link_latency_us=inter_lat
            ),
        )
        cost = topology.breakdown(
            payload_mb * 2**20, topology.rack_sizes(devices)
        )
        assert cost.chosen_us <= cost.flat_ring_us

    def test_hierarchical_wins_at_default_grades(self):
        """With fast intra links and a slow inter fabric, the tree beats
        the flat ring once the fleet spans multiple racks."""
        topology = FleetTopology()
        payload = 64 * 2**20
        cost = topology.breakdown(payload, topology.rack_sizes(512))
        assert cost.algorithm == "hierarchical"
        assert cost.hierarchical_us < cost.flat_ring_us

    def test_tree_hops_grow_logarithmically(self):
        topology = FleetTopology(devices_per_rack=16)
        payload = 64 * 2**20
        costs = [
            topology.breakdown(
                payload, topology.rack_sizes(16 * racks)
            ).hierarchical_us
            for racks in (2, 4, 8, 16)
        ]
        intra = topology.intra.allreduce_us(payload, 16)
        tree = [c - intra for c in costs]
        # Doubling the rack count adds one reduce + one broadcast hop.
        steps = [tree[i + 1] - tree[i] for i in range(len(tree) - 1)]
        assert all(math.isclose(s, steps[0]) for s in steps)


class TestFleetSpec:
    def test_capacity_includes_spares(self):
        spec = FleetSpec(n_devices=8, churn=ChurnConfig(max_joins=4))
        assert spec.capacity == 12
        assert len(spec.device_profiles()) == 12

    def test_spares_never_perturb_the_initial_fleet(self):
        base = FleetSpec(n_devices=8, seed=3).device_profiles()
        spare = FleetSpec(
            n_devices=8, seed=3, churn=ChurnConfig(max_joins=4)
        ).device_profiles()
        assert spare[:8] == base

    def test_profiles_match_the_cluster_reference(self):
        fleet = FleetSpec(n_devices=8, seed=5)
        cluster = ClusterSpec(n_devices=8, seed=5)
        assert fleet.device_profiles()[:8] == cluster.device_profiles()

    def test_from_cluster_round_trip(self):
        cluster = ClusterSpec(n_devices=4, seed=7)
        fleet = FleetSpec.from_cluster(cluster)
        assert fleet.cluster_spec() == cluster

    def test_rejects_min_active_beyond_fleet(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(n_devices=2, churn=ChurnConfig(min_active=3))

    def test_rejects_empty_fleet(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(n_devices=0)


class TestDurationTable:
    def test_bitwise_against_looped_probes(self, tiny_trace):
        """The stacked duration table is the per-device probe loop."""
        spec = FleetSpec(n_devices=4, seed=0)
        sim = FleetSimulator(spec, tiny_trace)
        table = sim.duration_table()
        cluster = SimulatedCluster(spec.cluster_spec())
        tables = build_frequency_tables(cluster, tiny_trace)
        for i, device in enumerate(tables):
            for j in range(len(device.freqs_mhz)):
                assert table[i, j] == device.duration_us[j]


class TestChurn:
    def test_draws_are_deterministic(self):
        config = ChurnConfig(join_rate=1.0, leave_rate=1.0, fail_rate=0.5)
        assert draw_churn(config, 0, 3) == draw_churn(config, 0, 3)

    def test_steps_draw_independent_streams(self):
        config = ChurnConfig(join_rate=5.0, leave_rate=5.0, fail_rate=5.0)
        draws = {draw_churn(config, 0, step) for step in range(8)}
        assert len(draws) > 1

    def test_no_rates_no_draws(self):
        draw = draw_churn(ChurnConfig.none(), 0, 1)
        assert (draw.joins, draw.leaves, draw.fails) == (0, 0, 0)

    def test_replay_identical(self, tiny_trace):
        spec = FleetSpec(
            n_devices=8,
            seed=2,
            churn=ChurnConfig(
                join_rate=1.0, leave_rate=1.0, fail_rate=0.5, max_joins=4
            ),
        )

        def run():
            sim = FleetSimulator(spec, tiny_trace)
            results = sim.run_steps(None, steps=4)
            return (
                sim.events,
                tuple(r.fleet_soc_energy_j for r in results),
                tuple(tuple(r.device_ids) for r in results),
            )

        assert run() == run()

    def test_min_active_floor_holds(self, tiny_trace):
        spec = FleetSpec(
            n_devices=2,
            seed=0,
            churn=ChurnConfig(leave_rate=10.0, min_active=2),
        )
        sim = FleetSimulator(spec, tiny_trace)
        sim.run_steps(None, steps=4)
        assert sim.n_active == 2
        assert all(e.kind == "churn_skipped" for e in sim.events)

    def test_join_exhaustion_is_logged(self, tiny_trace):
        spec = FleetSpec(
            n_devices=2,
            seed=0,
            churn=ChurnConfig(join_rate=10.0, max_joins=1),
        )
        sim = FleetSimulator(spec, tiny_trace)
        sim.run_steps(None, steps=3)
        kinds = [e.kind for e in sim.events]
        assert kinds.count("join") == 1
        assert "join_exhausted" in kinds
        assert sim.n_active == 3

    def test_joined_board_starts_at_its_own_ambient(self, tiny_trace):
        spec = FleetSpec(
            n_devices=2,
            seed=0,
            churn=ChurnConfig(join_rate=10.0, max_joins=1),
        )
        sim = FleetSimulator(spec, tiny_trace)
        sim.step()  # warms devices 0 and 1 above ambient
        events = sim.advance_churn(1)
        joined = [e.device_id for e in events if e.kind == "join"]
        assert joined == [2]
        base = spec.npu.thermal.ambient_celsius
        profile = spec.device_profiles()[2]
        assert sim.celsius[2] == base + profile.ambient_offset_celsius

    def test_reset_restores_initial_membership(self, tiny_trace):
        spec = FleetSpec(
            n_devices=4,
            seed=1,
            churn=ChurnConfig(leave_rate=5.0, min_active=1),
        )
        sim = FleetSimulator(spec, tiny_trace)
        sim.run_steps(None, steps=3)
        sim.reset()
        fresh = FleetSimulator(spec, tiny_trace)
        assert sim.n_active == 4
        assert sim.events == ()
        assert np.array_equal(sim.celsius, fresh.celsius)
        assert np.array_equal(sim.active_ids, fresh.active_ids)

    def test_rejects_negative_rates(self):
        with pytest.raises(ConfigurationError):
            ChurnConfig(join_rate=-1.0)
        with pytest.raises(ConfigurationError):
            ChurnConfig(min_active=0)


class TestReclaim:
    def test_matches_the_looped_cluster_plan(self, small_fleet, tiny_trace):
        spec = small_fleet.spec
        cluster = SimulatedCluster(spec.cluster_spec())
        tables = build_frequency_tables(cluster, tiny_trace)
        reference = reclaim_slack(
            tables, tiny_trace.name, allreduce_us=cluster.spec.allreduce_us
        )
        plan = reclaim_fleet_slack(small_fleet)
        assert plan.target_compute_us == reference.target_compute_us
        assert plan.straggler_id == reference.straggler_id
        assert (
            tuple(plan.freq_mhz[: spec.n_devices])
            == reference.frequencies_mhz
        )
        assert plan_strategy_json(plan) == reference.strategy_json()

    def test_straggler_keeps_max_frequency(self, small_fleet):
        plan = reclaim_fleet_slack(small_fleet)
        grid_max = small_fleet.spec.npu.frequencies.points[-1]
        assert plan.freq_mhz[plan.straggler_id] == grid_max

    def test_some_device_downclocks(self, small_fleet):
        plan = reclaim_fleet_slack(small_fleet)
        grid_max = small_fleet.spec.npu.frequencies.points[-1]
        covered = plan.freq_mhz[plan.covered]
        assert (covered < grid_max).any()

    def test_rejects_negative_margin(self, small_fleet):
        with pytest.raises(ConfigurationError):
            reclaim_fleet_slack(small_fleet, slack_margin=-0.1)

    def test_replan_covers_only_survivors(self, tiny_trace):
        spec = FleetSpec(
            n_devices=8,
            seed=0,
            churn=ChurnConfig(fail_rate=2.0, min_active=2),
        )
        sim = FleetSimulator(spec, tiny_trace)
        sim.run_steps(None, steps=3, replan=auto_retarget())
        failed = {e.device_id for e in sim.events if e.kind == "fail"}
        assert failed  # seed 0 does fail someone in three steps
        plan = reclaim_fleet_slack(sim)
        assert not any(plan.covered[list(failed)])
        assert plan.n_devices == sim.n_active

    def test_reclaimed_step_saves_energy_at_same_step_time(
        self, small_fleet
    ):
        small_fleet.reset()
        baseline = small_fleet.step()
        small_fleet.reset()
        plan = reclaim_fleet_slack(small_fleet)
        reclaimed = small_fleet.step(
            plan, target_compute_us=plan.target_compute_us
        )
        assert reclaimed.step_us == baseline.step_us
        assert reclaimed.fleet_soc_energy_j < baseline.fleet_soc_energy_j
        assert reclaimed.overrun_count == 0

    def test_stale_plan_overruns_after_degradation(self, tiny_trace):
        spec = FleetSpec(n_devices=8, seed=0)
        plan = reclaim_fleet_slack(FleetSimulator(spec, tiny_trace))
        victim = (plan.straggler_id + 1) % 8
        degraded = FleetSimulator(
            spec.with_degraded_device(victim, 1.3), tiny_trace
        )
        stale = degraded.step(
            plan, target_compute_us=plan.target_compute_us
        )
        assert stale.overrun_count >= 1
        assert victim in stale.overrun_device_ids
        retargeted = reclaim_fleet_slack(degraded)
        assert retargeted.straggler_id == victim
        fresh = degraded.step(
            retargeted, target_compute_us=retargeted.target_compute_us
        )
        assert fresh.overrun_count == 0


class TestStore:
    def test_cold_then_warm_is_byte_identical(self, tmp_path, tiny_trace):
        sim = FleetSimulator(FleetSpec(n_devices=4, seed=0), tiny_trace)
        store = StrategyStore(tmp_path)
        cold = fleet_cached_reclaim(sim, store)
        warm = fleet_cached_reclaim(sim, store)
        assert cold.computed and not warm.computed
        assert cold.hit_count == 0 and warm.hit_count == 4
        assert plan_strategy_json(cold.plan) == plan_strategy_json(warm.plan)
        assert cold.plan.target_compute_us == warm.plan.target_compute_us
        assert np.array_equal(cold.plan.freq_index, warm.plan.freq_index)

    def test_membership_change_invalidates_the_cache(
        self, tmp_path, tiny_trace
    ):
        spec = FleetSpec(
            n_devices=4, seed=0, churn=ChurnConfig(leave_rate=10.0)
        )
        sim = FleetSimulator(spec, tiny_trace)
        store = StrategyStore(tmp_path)
        before = tuple(int(i) for i in sim.active_ids)
        fleet_cached_reclaim(sim, store)
        sim.advance_churn(1)
        after = tuple(int(i) for i in sim.active_ids)
        assert after != before
        again = fleet_cached_reclaim(sim, store)
        assert again.computed
        assert fleet_config_hash(spec, before) != fleet_config_hash(
            spec, after
        )


class TestReporting:
    def test_top_k_rows_plus_remainder(self, tiny_trace):
        sim = FleetSimulator(FleetSpec(n_devices=32, seed=0), tiny_trace)
        result = sim.step()
        rows = result.device_rows(top_k=8)
        assert len(rows) == 9
        assert rows[0]["device"] == result.straggler_id
        assert rows[0]["straggler"] == "*"
        assert rows[-1]["device"] == "(+24 faster)"
        total = sum(r["soc_j"] for r in rows)
        assert total == pytest.approx(result.fleet_soc_energy_j, abs=0.5)

    def test_small_fleet_needs_no_remainder(self, small_fleet):
        small_fleet.reset()
        rows = small_fleet.step().device_rows(top_k=8)
        assert len(rows) == 8
        assert all(isinstance(r["device"], int) for r in rows)

    def test_cluster_rows_share_the_shape(self, tiny_trace):
        cluster = SimulatedCluster(ClusterSpec(n_devices=4, seed=0))
        result = cluster.run_step(tiny_trace)
        rows = result.device_rows(top_k=2)
        assert len(rows) == 3
        assert rows[0]["straggler"] == "*"
        assert rows[-1]["device"] == "(+2 faster)"
        assert set(rows[0]) == set(rows[-1])

    def test_report_render_mentions_straggler(self, small_fleet):
        small_fleet.reset()
        baseline = small_fleet.step()
        small_fleet.reset()
        report = small_fleet.step().report(baseline)
        text = report.render()
        assert "straggler" in text
        assert small_fleet.spec.name in text

    def test_straggler_summary_aggregates(self, small_fleet):
        small_fleet.reset()
        results = small_fleet.run_steps(None, steps=3)
        summary = straggler_summary(results)
        assert summary["steps"] == 3
        assert summary["devices_last"] == 8
        assert summary["overruns"] == 0


class TestDescendingTopK:
    """The O(N) top-k selection must match the old full argsort exactly."""

    @staticmethod
    def reference(values, k):
        # The path device_rows used before the argpartition rewrite.
        return np.argsort(-values, kind="stable")[:k]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("k", [0, 1, 3, 8, 50, 200, 500])
    def test_matches_stable_argsort_prefix(self, seed, k):
        values = np.random.default_rng(seed).normal(size=200)
        assert np.array_equal(
            descending_top_k(values, k), self.reference(values, k)
        )

    @pytest.mark.parametrize(
        "values",
        [
            [5.0, 5.0, 5.0, 5.0],
            [9.0, 8.0, 8.0, 8.0, 7.0],
            [1.0, 2.0, 2.0, 2.0, 2.0, 3.0],
            [0.0],
            [3.0, 3.0],
        ],
    )
    def test_tie_positions_resolve_like_stable_sort(self, values):
        arr = np.asarray(values)
        for k in range(len(values) + 2):
            assert np.array_equal(
                descending_top_k(arr, k), self.reference(arr, k)
            )

    @given(
        st.lists(
            st.integers(min_value=-5, max_value=5), min_size=1, max_size=40
        ),
        st.integers(min_value=0, max_value=45),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_equals_old_path(self, values, k):
        arr = np.asarray(values, dtype=float)
        assert np.array_equal(
            descending_top_k(arr, k), self.reference(arr, k)
        )

    def test_device_rows_match_the_old_argsort_path(self, tiny_trace):
        sim = FleetSimulator(FleetSpec(n_devices=64, seed=4), tiny_trace)
        result = sim.step()
        for top_k in (1, 8, 32):
            rows = result.device_rows(top_k)
            order = self.reference(result.arrival_us, top_k)
            expected = []
            for pos in order:
                device = int(result.device_ids[pos])
                expected.append(
                    {
                        "device": device,
                        "compute_ms": round(
                            float(result.arrival_us[pos]) / 1000.0, 3
                        ),
                        "wait_ms": round(
                            float(result.wait_us[pos]) / 1000.0, 3
                        ),
                        "idle_mhz": round(float(result.freq_mhz[pos])),
                        "soc_j": round(
                            float(result.total_soc_energy_j[pos]), 3
                        ),
                        "aicore_j": round(
                            float(result.total_aicore_energy_j[pos]), 3
                        ),
                        "straggler": (
                            "*" if device == result.straggler_id else ""
                        ),
                    }
                )
            assert rows[: len(order)] == expected


class TestComparisonHarness:
    def test_rejects_churned_specs(self, tiny_trace):
        spec = FleetSpec(
            n_devices=4, seed=0, churn=ChurnConfig(leave_rate=1.0)
        )
        with pytest.raises(ConfigurationError):
            compare_with_cluster(spec, tiny_trace)

    def test_rejects_multi_rack_fleets(self, tiny_trace):
        spec = FleetSpec(
            n_devices=8, topology=FleetTopology(devices_per_rack=4)
        )
        with pytest.raises(ConfigurationError):
            compare_with_cluster(spec, tiny_trace)


class TestCli:
    def test_run_smoke(self, capsys):
        exit_code = fleet_main(
            ["run", "gpt3", "--scale", "0.005", "--devices", "4"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "straggler" in out
        assert "fleet SoC energy" in out

    def test_bench_smoke_writes_artifact(self, capsys, tmp_path):
        output = tmp_path / "bench.json"
        exit_code = fleet_main(
            [
                "bench",
                "gpt3",
                "--scale",
                "0.005",
                "--devices",
                "32",
                "--steps",
                "2",
                "--rounds",
                "1",
                "--reference-devices",
                "2",
                "--output",
                str(output),
                "--assert-equivalence",
            ]
        )
        assert exit_code == 0
        payload = json.loads(output.read_text())
        assert payload["meta"]["devices"] == 32
        assert payload["benchmarks"]["baseline_steps_per_s"] > 0
        assert payload["equivalence"]["ok"] is True

    def test_bench_floor_violation_fails(self, capsys, tmp_path):
        exit_code = fleet_main(
            [
                "bench",
                "gpt3",
                "--scale",
                "0.005",
                "--devices",
                "4",
                "--steps",
                "1",
                "--rounds",
                "1",
                "--reference-devices",
                "2",
                "--assert-steps-per-sec",
                "1e12",
            ]
        )
        assert exit_code == 1
        assert "FAIL" in capsys.readouterr().err

    def test_unknown_workload_fails_cleanly(self, capsys):
        exit_code = fleet_main(["run", "nonsense", "--devices", "2"])
        assert exit_code == 1
        assert "error:" in capsys.readouterr().err
