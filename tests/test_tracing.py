"""Tests for Chrome-trace export and the Sect. 7.4 trace spot checks."""

import json

import pytest

from repro.errors import ProfilingError
from repro.npu import NpuDevice, noise_free_spec
from repro.npu.setfreq import AnchoredFrequencyPlan, AnchoredSwitch
from repro.npu.tracing import (
    frequency_reverts_after,
    frequency_rises_before,
    save_chrome_trace,
    to_chrome_trace,
)
from repro.workloads import build_trace
from repro.workloads.oplib import elementwise, matmul


@pytest.fixture(scope="module")
def dvfs_execution():
    """A gelu / MatMul / gelu sequence with an LFC valley around the MatMul."""
    device = NpuDevice(noise_free_spec())
    ops = [
        elementwise("t.gelu1", "Gelu", 30_000_000, inputs=1),
        matmul("t.mm", 2048, 2048, 2048),
        elementwise("t.gelu2", "Gelu", 30_000_000, inputs=1),
        matmul("t.mm2", 2048, 2048, 2048),
    ]
    trace = build_trace("trace_check", ops)
    plan = AnchoredFrequencyPlan(
        1100.0,
        [
            AnchoredSwitch(1, 1800.0),  # rise before the MatMul
            AnchoredSwitch(2, 1100.0),  # revert after it
            AnchoredSwitch(3, 1800.0),
        ],
    )
    return device.run(trace, plan)


class TestChromeTrace:
    def test_document_is_valid_json(self, dvfs_execution):
        payload = json.loads(to_chrome_trace(dvfs_execution))
        assert "traceEvents" in payload

    def test_contains_operator_spans(self, dvfs_execution):
        payload = json.loads(to_chrome_trace(dvfs_execution))
        spans = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        assert len(spans) == len(dvfs_execution.records)
        names = {span["name"] for span in spans}
        assert {"Gelu", "MatMul"} <= names

    def test_contains_frequency_counter(self, dvfs_execution):
        payload = json.loads(to_chrome_trace(dvfs_execution))
        counters = [
            e
            for e in payload["traceEvents"]
            if e.get("ph") == "C" and "frequency" in e["name"]
        ]
        values = {c["args"]["MHz"] for c in counters}
        assert {1100.0, 1800.0} <= values

    def test_span_frequency_annotation(self, dvfs_execution):
        payload = json.loads(to_chrome_trace(dvfs_execution))
        matmul_spans = [
            e
            for e in payload["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "MatMul"
        ]
        assert matmul_spans[0]["args"]["freq_mhz"] == 1800.0

    def test_save(self, dvfs_execution, tmp_path):
        path = tmp_path / "trace.json"
        save_chrome_trace(dvfs_execution, path)
        assert json.loads(path.read_text())["traceEvents"]

    def test_empty_execution_rejected(self):
        from repro.npu.device import ExecutionResult

        empty = ExecutionResult(
            trace_name="x",
            duration_us=1.0,
            aicore_energy_j=0.0,
            soc_energy_j=0.0,
            records=(),
            chunks=(),
            start_celsius=25.0,
            end_celsius=25.0,
        )
        with pytest.raises(ProfilingError):
            to_chrome_trace(empty)


class TestSpotChecks:
    def test_rise_before_matmul_detected(self, dvfs_execution):
        """The paper's Sect. 7.4 observation, as a predicate: frequency
        rises right before the compute-bound MatMuls."""
        indices = frequency_rises_before(dvfs_execution, "MatMul")
        assert indices == [1, 3]

    def test_revert_after_matmul_detected(self, dvfs_execution):
        assert frequency_reverts_after(dvfs_execution, 1)

    def test_no_rise_for_gelu(self, dvfs_execution):
        assert frequency_rises_before(dvfs_execution, "Gelu") == []

    def test_revert_bounds(self, dvfs_execution):
        assert not frequency_reverts_after(dvfs_execution, 99)
        # The final operator has no successor to revert into.
        last = len(dvfs_execution.records) - 1
        assert not frequency_reverts_after(dvfs_execution, last)

    def test_end_to_end_policy_contains_rises(self):
        """On a real optimized GPT-3 policy, the trace inspection finds
        frequency rises ahead of compute-bound MatMuls (Sect. 7.4)."""
        from repro import EnergyOptimizer, OptimizerConfig
        from repro.dvfs import GaConfig
        from repro.workloads import generate

        config = OptimizerConfig(
            performance_loss_target=0.10,
            ga=GaConfig(population_size=80, iterations=150, seed=0),
        )
        optimizer = EnergyOptimizer(config)
        trace = generate("gpt3", scale=0.05)
        report = optimizer.optimize(trace)
        plan = optimizer.executor.compile(report.strategy)
        result = optimizer.device.run(trace, plan)
        rises = frequency_rises_before(result, "MatMul")
        assert rises, "expected at least one frequency rise before a MatMul"
