"""Property-based tests (hypothesis) for the guarded DVFS runtime.

Two universally quantified safety claims:

* **Envelope**: for any seeded fault schedule at any rate, the measured
  performance loss never exceeds the strategy's target plus the guard
  margin — the guard converts unrecoverable runs into baseline runs
  rather than letting them violate the contract.
* **Replayability**: the incident log is a pure function of the fault
  seed — running the same schedule twice yields the identical log,
  outcome, and injection event trace.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dvfs import (
    DvfsExecutor,
    DvfsStrategy,
    GuardConfig,
    GuardedDvfsExecutor,
    StageKind,
    StagePlan,
)
from repro.npu import FaultConfig, FaultInjector, NpuDevice
from repro.npu.spec import default_npu_spec
from repro.workloads import build_trace
from tests.conftest import make_compute_op

TRACE = build_trace(
    "w",
    [
        make_compute_op(name=f"w.op{i}", core_cycles=300_000.0)
        for i in range(6)
    ],
)

_PLANS = (
    StagePlan(0.0, 400.0, 1800.0, StageKind.HFC, 0),
    StagePlan(400.0, 600.0, 1000.0, StageKind.LFC, 2),
    StagePlan(1000.0, 600.0, 1800.0, StageKind.HFC, 4),
)

#: A deliberately unmeetable target: the dip costs ~15%, so even the
#: healthy run violates it and the envelope must clamp the loss to zero.
STRATEGY = DvfsStrategy("w", 0.02, _PLANS)

#: The same plan with a target the dip actually meets — the guard has no
#: reason to intervene, so a zero-rate run must be fully transparent.
LENIENT_STRATEGY = DvfsStrategy("w", 0.5, _PLANS)

GUARD = GuardConfig(
    max_retries=2,
    backoff_base_us=20.0,
    backoff_cap_us=100.0,
    readback_grace_us=10.0,
)


def run_guarded(rate: float, seed: int, strategy: DvfsStrategy = STRATEGY):
    device = NpuDevice(default_npu_spec())
    injector = FaultInjector.from_seed(FaultConfig.uniform(rate), seed)
    guarded = GuardedDvfsExecutor(
        DvfsExecutor(device), config=GUARD, injector=injector
    )
    outcome = guarded.execute_with_baseline(TRACE, strategy)
    return outcome, injector


@settings(max_examples=25, deadline=None)
@given(
    rate=st.sampled_from([0.05, 0.2, 0.5, 0.8, 1.0]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_loss_never_exceeds_target_plus_margin(rate, seed):
    outcome, _ = run_guarded(rate, seed)
    limit = STRATEGY.performance_loss_target + GUARD.loss_margin
    assert outcome.performance_loss <= limit + 1e-9


@settings(max_examples=10, deadline=None)
@given(
    rate=st.sampled_from([0.1, 0.4, 0.9]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_incident_log_replays_from_seed(rate, seed):
    first, injector_a = run_guarded(rate, seed)
    second, injector_b = run_guarded(rate, seed)
    assert first.incidents == second.incidents
    assert first.fell_back == second.fell_back
    assert first.result == second.result
    assert injector_a.events == injector_b.events


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_zero_rate_is_transparent(seed):
    # An all-zero fault config must never perturb the outcome, whatever
    # the seed: the guard compiles the plain plan and stays silent.
    outcome, injector = run_guarded(0.0, seed, strategy=LENIENT_STRATEGY)
    plain = DvfsExecutor(NpuDevice(default_npu_spec()))
    reference = plain.execute_with_baseline(TRACE, LENIENT_STRATEGY)
    assert outcome.result == reference.result
    assert outcome.incidents == ()
    assert injector.events == ()


def test_module_guards_are_consistent():
    # The constants above must describe a strategy the executor accepts.
    DvfsExecutor(NpuDevice(default_npu_spec())).validate(TRACE, STRATEGY)
    assert GUARD.loss_margin > 0
