"""Property-based tests (hypothesis) for the core invariants.

These encode the paper's mathematical claims as universally quantified
properties over randomly drawn operators and model parameters:

* every scenario's cycle function is convex with non-decreasing slopes
  (Sect. 4.2.5);
* the explicit timeline schedule always agrees with the closed forms
  (Eqs. 5-8) and never reports a pipe busier than the total;
* Func. 2's closed-form fit interpolates its two samples exactly;
* the smooth-max relaxation is bounded between max and 2^(1/p) * max;
* the thermal fixed point converges and satisfies both equations;
* strategies survive JSON round-trips.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.convexity import is_convex_samples
from repro.dvfs import DvfsStrategy, StageKind, StagePlan
from repro.npu.frequency import FrequencyGrid
from repro.npu.memory import MemoryHierarchy, smooth_max
from repro.npu.pipelines import Pipe
from repro.npu.power import solve_equilibrium_power
from repro.npu.timeline import (
    BlockCosts,
    Scenario,
    build_timeline,
    closed_form_cycles,
)
from repro.perf.fitting import fit_func2

GRID = [1000.0 + 100.0 * i for i in range(9)]
MIX = {Pipe.CUBE: 0.6, Pipe.VECTOR: 0.3, Pipe.SCALAR: 0.1}

block_costs = st.builds(
    BlockCosts,
    ld_cycles=st.floats(0.0, 1e6),
    st_cycles=st.floats(0.0, 1e6),
    core_cycles=st.floats(0.0, 1e6),
)

scenarios = st.sampled_from(list(Scenario))
block_counts = st.integers(1, 40)


@given(scenario=scenarios, n=block_counts, costs=block_costs)
@settings(max_examples=150, deadline=None)
def test_timeline_matches_closed_form(scenario, n, costs):
    timeline = build_timeline(scenario, n, costs, MIX)
    assert math.isclose(
        timeline.total_cycles,
        closed_form_cycles(scenario, n, costs),
        rel_tol=1e-12,
        abs_tol=1e-9,
    )


@given(scenario=scenarios, n=block_counts, costs=block_costs)
@settings(max_examples=150, deadline=None)
def test_busy_cycles_bounded_by_total(scenario, n, costs):
    timeline = build_timeline(scenario, n, costs, MIX)
    for pipe, busy in timeline.busy_cycles().items():
        assert busy <= timeline.total_cycles + 1e-6, pipe


@given(scenario=scenarios, n=block_counts, costs=block_costs)
@settings(max_examples=150, deadline=None)
def test_stall_cycles_in_range(scenario, n, costs):
    timeline = build_timeline(scenario, n, costs, MIX)
    assert -1e-6 <= timeline.stall_cycles() <= timeline.total_cycles + 1e-6


@given(
    scenario=scenarios,
    n=block_counts,
    ld_bytes=st.floats(0.0, 5e7),
    st_bytes=st.floats(0.0, 5e7),
    core=st.floats(0.0, 1e6),
    derate=st.floats(0.3, 1.5),
    overhead=st.floats(0.0, 20.0),
)
@settings(max_examples=150, deadline=None)
def test_operator_cycles_convex_in_frequency(
    scenario, n, ld_bytes, st_bytes, core, derate, overhead
):
    """Sect. 4.2.5's conclusion over the full operator parameter space."""
    memory = MemoryHierarchy()

    def cycles(freq):
        costs = BlockCosts(
            ld_cycles=memory.transfer_cycles(ld_bytes, freq, derate),
            st_cycles=memory.transfer_cycles(st_bytes, freq, derate),
            core_cycles=core,
        )
        return closed_form_cycles(scenario, n, costs) + overhead * freq

    samples = [cycles(f) for f in GRID]
    assert is_convex_samples(GRID, samples, rel_tol=1e-7)


@given(
    scenario=scenarios,
    n=block_counts,
    ld_bytes=st.floats(0.0, 5e7),
    core=st.floats(0.0, 1e6),
)
@settings(max_examples=100, deadline=None)
def test_duration_never_increases_with_frequency(scenario, n, ld_bytes, core):
    memory = MemoryHierarchy()

    def duration(freq):
        costs = BlockCosts(
            ld_cycles=memory.transfer_cycles(ld_bytes, freq),
            st_cycles=0.0,
            core_cycles=core,
        )
        return closed_form_cycles(scenario, n, costs) / freq

    durations = [duration(f) for f in GRID]
    assert all(b <= a + 1e-9 for a, b in zip(durations, durations[1:]))


@given(
    a=st.floats(1e-4, 1.0),
    c=st.floats(1.0, 1e6),
    f1=st.sampled_from(GRID[:4]),
    f2=st.sampled_from(GRID[5:]),
)
@settings(max_examples=100, deadline=None)
def test_func2_exact_on_its_own_family(a, c, f1, f2):
    times = [a * f + c / f for f in (f1, f2)]
    fit = fit_func2([f1, f2], times)
    for f in GRID:
        assert fit.predict_time_us(f) == pytest.approx(a * f + c / f, rel=1e-9)


@given(x=st.floats(0.0, 1e9), y=st.floats(0.0, 1e9), p=st.floats(1.0, 64.0))
@settings(max_examples=200, deadline=None)
def test_smooth_max_bounds(x, y, p):
    value = smooth_max(x, y, p)
    top = max(x, y)
    assert top <= value <= top * 2 ** (1.0 / p) + 1e-9


@given(
    base=st.floats(1.0, 500.0),
    gain=st.floats(0.0, 2.0),
    k=st.floats(0.01, 0.3),
)
@settings(max_examples=200, deadline=None)
def test_equilibrium_solution_satisfies_both_equations(base, gain, k):
    if gain * k >= 0.99:
        return  # near/over runaway: rejected by the solver, tested elsewhere
    power, delta = solve_equilibrium_power(base, gain, k)
    assert power == pytest.approx(base + gain * delta, rel=1e-9)
    assert delta == pytest.approx(k * power, rel=1e-9)


@given(
    freqs=st.lists(
        st.sampled_from(GRID), min_size=1, max_size=12
    ),
    target=st.floats(0.01, 0.2),
)
@settings(max_examples=100, deadline=None)
def test_strategy_json_roundtrip(freqs, target):
    clock = 0.0
    plans = []
    for i, freq in enumerate(freqs):
        plans.append(
            StagePlan(
                start_us=clock,
                duration_us=5000.0 + i,
                freq_mhz=freq,
                kind=StageKind.LFC if i % 2 else StageKind.HFC,
                anchor_op_index=i * 3,
            )
        )
        clock += 5000.0 + i
    strategy = DvfsStrategy("w", target, tuple(plans))
    assert DvfsStrategy.from_json(strategy.to_json()) == strategy
    assert strategy.setfreq_count <= max(0, len(freqs) - 1)


@given(freq=st.floats(900.0, 1900.0))
@settings(max_examples=200, deadline=None)
def test_grid_nearest_is_valid_and_closest(freq):
    grid = FrequencyGrid()
    nearest = grid.nearest(freq)
    assert grid.contains(nearest)
    for point in grid.points:
        assert abs(nearest - freq) <= abs(point - freq) + 1e-9


@given(
    volume=st.floats(1.0, 1e9),
    derate=st.floats(0.2, 2.0),
)
@settings(max_examples=100, deadline=None)
def test_transfer_time_monotone_nonincreasing(volume, derate):
    memory = MemoryHierarchy()
    times = [memory.transfer_time_us(volume, f, derate) for f in GRID]
    assert all(b <= a + 1e-12 for a, b in zip(times, times[1:]))


@given(
    utils=st.dictionaries(
        st.sampled_from(list(Pipe)), st.floats(0.0, 1.0), max_size=6
    )
)
@settings(max_examples=100, deadline=None)
def test_effective_alpha_monotone_in_utilisation(utils):
    from repro.npu.power import PowerSpec

    spec = PowerSpec()
    alpha = spec.effective_alpha(utils)
    boosted = {pipe: min(1.0, value + 0.1) for pipe, value in utils.items()}
    assert spec.effective_alpha(boosted) >= alpha - 1e-12


@given(
    runs=st.lists(
        st.tuples(
            st.floats(100.0, 20_000.0),   # duration
            st.booleans(),                # sensitive?
            st.floats(0.0, 200.0),        # gap
        ),
        min_size=1,
        max_size=25,
    ),
    interval=st.sampled_from([1_000.0, 5_000.0, 20_000.0]),
)
@settings(max_examples=80, deadline=None)
def test_preprocessing_invariants(runs, interval):
    """Fig. 13 preprocessing invariants over random operator sequences:
    every operator lands in exactly one stage, stages tile the timeline,
    and every candidate except possibly a lone first one meets the
    adjustment interval."""
    from repro.dvfs import classify_operators, preprocess
    from repro.npu.operators import OperatorKind
    from repro.npu.pipelines import Pipe
    from repro.npu.profiler import ProfiledOperator

    ops = []
    clock = 0.0
    for i, (duration, sensitive, gap) in enumerate(runs):
        clock += gap
        ratios = (
            {Pipe.CUBE: 0.9, Pipe.MTE2: 0.2}
            if sensitive
            else {Pipe.MTE2: 0.9, Pipe.VECTOR: 0.2}
        )
        ops.append(
            ProfiledOperator(
                index=i, name=f"p{i}", op_type="T",
                kind=OperatorKind.COMPUTE, start_us=clock,
                duration_us=duration, gap_before_us=gap, freq_mhz=1800.0,
                ratios=ratios, straddled_switch=False,
            )
        )
        clock += duration
    result = preprocess(
        classify_operators(ops), adjustment_interval_us=interval
    )
    covered = sorted(
        index for stage in result.stages for index in stage.op_indices
    )
    assert covered == list(range(len(runs)))
    for prev, nxt in zip(result.stages, result.stages[1:]):
        assert nxt.start_us == pytest.approx(prev.end_us)
    for stage in result.stages[:-1] if len(result.stages) > 1 else []:
        assert stage.duration_us >= interval - 1e-6
    for stage in result.stages:
        assert 0.0 <= stage.sensitive_fraction <= 1.0 + 1e-9
