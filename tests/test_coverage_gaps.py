"""Tests for corners not covered by the per-module suites."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.rng import RngFactory
from repro.dvfs import GaConfig, StrategyScorer
from repro.errors import WorkloadError
from repro.workloads import generate
from repro.workloads.generators.base import (
    ShapeJitter,
    generator_rng,
    scaled_layer_count,
)


class TestGeneratorHelpers:
    def test_scaled_layer_count_floor(self):
        assert scaled_layer_count(96, 0.001) == 1
        assert scaled_layer_count(96, 0.5) == 48
        assert scaled_layer_count(96, 1.0) == 96

    def test_scaled_layer_count_rejects_bad_scale(self):
        with pytest.raises(WorkloadError):
            scaled_layer_count(10, 0.0)

    def test_jitter_bounds(self):
        jitter = ShapeJitter(np.random.default_rng(0), spread=0.1)
        for _ in range(100):
            value = jitter.scale(1000.0)
            assert 900.0 <= value <= 1100.0

    def test_jitter_size_minimum(self):
        jitter = ShapeJitter(np.random.default_rng(0), spread=0.5)
        assert all(jitter.size(1, minimum=1) >= 1 for _ in range(50))

    def test_zero_spread_identity(self):
        jitter = ShapeJitter(np.random.default_rng(0), spread=0.0)
        assert jitter.scale(123.0) == 123.0

    def test_generator_rng_deterministic(self):
        a = generator_rng("w", 5).random(3)
        b = generator_rng("w", 5).random(3)
        assert np.array_equal(a, b)


@given(
    name=st.sampled_from(["bert", "resnet50", "llama2_inference"]),
    seed=st.integers(0, 5),
)
@settings(max_examples=12, deadline=None)
def test_generator_invariants(name, seed):
    """Structural invariants over generators: positive gaps/intervals,
    non-empty, deterministic per seed."""
    trace = generate(name, scale=0.05, seed=seed)
    assert trace.operator_count > 0
    for entry in trace.entries:
        assert entry.gap_before_us >= 0
        assert entry.host_interval_us >= 0
    again = generate(name, scale=0.05, seed=seed)
    assert again.entries == trace.entries


def test_trace_names_unique_within_trace():
    trace = generate("gpt3", scale=0.03)
    names = [entry.spec.name for entry in trace.entries]
    assert len(names) == len(set(names))


def test_whole_trace_faster_at_higher_frequency(ideal_device):
    from repro.npu import FrequencyTimeline

    trace = generate("bert", scale=0.05)
    slow = ideal_device.run(trace, FrequencyTimeline.constant(1000.0))
    fast = ideal_device.run(trace, FrequencyTimeline.constant(1800.0))
    assert fast.duration_us < slow.duration_us
    assert fast.aicore_avg_watts > slow.aicore_avg_watts


class TestSocObjective:
    @pytest.fixture(scope="class")
    def soc_setup(self):
        from repro import EnergyOptimizer, OptimizerConfig

        config = OptimizerConfig(
            objective="soc",
            performance_loss_target=0.04,
            ga=GaConfig(population_size=40, iterations=60, seed=1),
        )
        optimizer = EnergyOptimizer(config)
        trace = generate("gpt3", scale=0.03)
        bundle = optimizer.profile(trace)
        models = optimizer.build_models(bundle)
        candidates = optimizer.preprocess(bundle)
        return optimizer, trace, models, candidates

    def test_soc_scorer_baseline(self, soc_setup):
        optimizer, trace, models, candidates = soc_setup
        scorer = StrategyScorer(
            trace=trace,
            stages=candidates.stages,
            perf_model=models.performance,
            power_table=models.power,
            freqs_mhz=optimizer.config.npu.frequencies.points,
            performance_loss_target=0.04,
            objective="soc",
        )
        baseline = np.full((1, scorer.stage_count), 8, dtype=int)
        assert scorer.score(baseline)[0] == pytest.approx(2.0)

    def test_soc_objective_end_to_end(self, soc_setup):
        optimizer, trace, _, _ = soc_setup
        report = optimizer.optimize(trace)
        assert report.soc_power_reduction > 0

    def test_soc_vs_aicore_objectives_can_differ(self, soc_setup):
        """The two objectives normalise against different rails; both must
        produce feasible strategies."""
        from repro import EnergyOptimizer, OptimizerConfig

        _, trace, _, _ = soc_setup
        aicore_report = EnergyOptimizer(
            OptimizerConfig(
                objective="aicore",
                performance_loss_target=0.04,
                ga=GaConfig(population_size=40, iterations=60, seed=1),
            )
        ).optimize(trace)
        assert aicore_report.performance_loss < 0.05


class TestExperimentBaseFormatting:
    def test_fmt_float_list(self):
        from repro.experiments.base import _fmt

        assert _fmt([0.123456, 1.0]) == "[0.1235, 1]"
        assert _fmt(0.125) == "0.125"
        assert _fmt("x") == "x"

    def test_result_render_without_rows(self):
        from repro.experiments.base import ExperimentResult

        result = ExperimentResult(
            experiment_id="e", title="t", paper_reference={}, measured={}
        )
        assert "== e: t ==" in result.render()


class TestRngFactorySeedIsolation:
    def test_profiler_and_telemetry_streams_differ(self):
        factory = RngFactory(0)
        a = factory.generator("profiler").random(4)
        b = factory.generator("telemetry").random(4)
        assert not np.array_equal(a, b)
