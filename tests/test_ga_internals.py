"""Focused tests for GA internals and the model-free scorer."""

import numpy as np
import pytest

from repro.dvfs.ga import GaConfig, _nearest_index, _roulette_pick
from repro.dvfs.model_free import ModelFreeScorer
from repro.dvfs.preprocessing import Stage, StageKind
from repro.errors import StrategyError
from repro.npu import NpuDevice, noise_free_spec
from repro.workloads import build_trace
from tests.conftest import make_compute_op

FREQS = tuple(1000.0 + 100.0 * i for i in range(9))


class TestRouletteSelection:
    def test_prefers_high_scores(self):
        rng = np.random.default_rng(0)
        scores = np.array([1.0, 1.0, 1.0, 100.0])
        cumulative = np.cumsum(scores)
        picks = _roulette_pick(rng, cumulative, 2000)
        assert np.mean(picks == 3) > 0.9

    def test_uniform_scores_uniform_picks(self):
        rng = np.random.default_rng(0)
        cumulative = np.cumsum(np.ones(4))
        picks = _roulette_pick(rng, cumulative, 4000)
        counts = np.bincount(picks, minlength=4) / 4000
        assert np.all(np.abs(counts - 0.25) < 0.05)

    def test_picks_in_range(self):
        rng = np.random.default_rng(1)
        cumulative = np.cumsum(np.array([0.5, 2.0, 0.1]))
        picks = _roulette_pick(rng, cumulative, 500)
        assert picks.min() >= 0 and picks.max() <= 2


class TestNearestIndex:
    def test_exact(self):
        assert _nearest_index(FREQS, 1600.0) == 6

    def test_between(self):
        assert _nearest_index(FREQS, 1640.0) == 6
        assert _nearest_index(FREQS, 1770.0) == 8

    def test_out_of_range_clamps(self):
        assert _nearest_index(FREQS, 100.0) == 0
        assert _nearest_index(FREQS, 9999.0) == 8


class TestGaConfigPriors:
    def test_prior_levels_on_grid(self):
        config = GaConfig()
        assert config.prior_lfc_mhz in FREQS
        assert config.prior_hfc_mhz in FREQS


def _stages(n=3, duration=10_000.0):
    return tuple(
        Stage(
            index=i,
            kind=StageKind.LFC if i % 2 else StageKind.HFC,
            start_us=i * duration,
            duration_us=duration,
            op_indices=(i,),
            sensitive_time_us=duration if i % 2 == 0 else 0.0,
        )
        for i in range(n)
    )


@pytest.fixture(scope="module")
def model_free_setup():
    device = NpuDevice(noise_free_spec())
    ops = [
        make_compute_op(name=f"mf.op{i}", core_cycles=200_000.0)
        for i in range(3)
    ]
    trace = build_trace("mf", ops)
    durations = [
        device.evaluator.duration_us(op, 1800.0) for op in ops
    ]
    clock = 0.0
    stages = []
    for i, duration in enumerate(durations):
        stages.append(
            Stage(
                index=i,
                kind=StageKind.HFC,
                start_us=clock,
                duration_us=duration,
                op_indices=(i,),
                sensitive_time_us=duration,
            )
        )
        clock += duration
    scorer = ModelFreeScorer(
        device=device,
        trace=trace,
        stages=tuple(stages),
        freqs_mhz=FREQS,
        performance_loss_target=0.10,
    )
    return scorer


class TestModelFreeScorer:
    def test_baseline_scores_two(self, model_free_setup):
        scorer = model_free_setup
        baseline = np.full((1, scorer.stage_count), 8, dtype=int)
        assert scorer.score(baseline)[0] == pytest.approx(2.0, rel=1e-6)

    def test_counts_evaluations_and_time(self, model_free_setup):
        scorer = model_free_setup
        before = scorer.evaluations
        scorer.score(np.array([[7, 7, 7]]))
        assert scorer.evaluations == before + 1
        assert scorer.simulated_seconds > 0

    def test_caches_repeated_individuals(self, model_free_setup):
        scorer = model_free_setup
        population = np.array([[6, 6, 6], [6, 6, 6]])
        before = scorer.evaluations
        scores = scorer.score(population)
        assert scores[0] == scores[1]
        assert scorer.evaluations == before + 1

    def test_infeasible_strategy_scores_below_two(self, model_free_setup):
        scorer = model_free_setup
        lowest = np.zeros((1, scorer.stage_count), dtype=int)
        # All compute-bound ops at 1000 MHz: an 80% slowdown, infeasible
        # under the 10% target, so no 2x feasibility bonus.
        assert scorer.score(lowest)[0] < 2.0

    def test_shape_validation(self, model_free_setup):
        with pytest.raises(StrategyError):
            model_free_setup.score(np.zeros((1, 99), dtype=int))

    def test_objective_validation(self):
        device = NpuDevice(noise_free_spec())
        trace = build_trace("x", [make_compute_op(name="x0")])
        with pytest.raises(StrategyError):
            ModelFreeScorer(
                device=device,
                trace=trace,
                stages=_stages(1),
                freqs_mhz=FREQS,
                objective="bogus",
            )
