"""Tests for the generic numerical helpers in repro.analysis."""

import numpy as np
import pytest

from repro.analysis import (
    RngFactory,
    bucket_fractions,
    empirical_cdf,
    fit_line,
    fixed_point_iterate,
    is_convex_samples,
    max_convexity_violation,
    mean_absolute_percentage_error,
    relative_errors,
    second_differences,
    solve_two_basis,
    solve_two_point_line,
    summarize_errors,
)
from repro.errors import ConvergenceError, FittingError


class TestStats:
    def test_relative_errors_basic(self):
        errors = relative_errors([11.0, 9.0], [10.0, 10.0])
        assert errors == pytest.approx([0.1, 0.1])

    def test_relative_errors_rejects_zero_actual(self):
        with pytest.raises(ValueError):
            relative_errors([1.0], [0.0])

    def test_relative_errors_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_errors([1.0, 2.0], [1.0])

    def test_mape(self):
        assert mean_absolute_percentage_error([11, 9], [10, 10]) == pytest.approx(0.1)

    def test_empirical_cdf_monotone(self):
        xs, ps = empirical_cdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(ps) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empirical_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_bucket_fractions_table2_shape(self):
        # Errors: 0.5%, 3%, 7%, 20% -> one per Table 2 bucket.
        fractions = bucket_fractions([0.005, 0.03, 0.07, 0.2], (0.01, 0.05, 0.10))
        assert fractions == pytest.approx([0.25, 0.25, 0.25, 0.25])

    def test_bucket_fractions_sum_to_one(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.0001, 0.5, size=200)
        fractions = bucket_fractions(values, (0.01, 0.05, 0.10))
        assert sum(fractions) == pytest.approx(1.0)

    def test_bucket_fractions_bad_edges(self):
        with pytest.raises(ValueError):
            bucket_fractions([0.1], (0.05, 0.05))

    def test_summarize_errors_fields(self):
        summary = summarize_errors([0.01, 0.02, 0.03, 0.2])
        assert summary.count == 4
        assert summary.mean == pytest.approx(0.065)
        assert summary.within_5pct == pytest.approx(0.75)
        assert summary.within_10pct == pytest.approx(0.75)
        assert summary.max == pytest.approx(0.2)

    def test_summarize_rejects_negative(self):
        with pytest.raises(ValueError):
            summarize_errors([-0.1])

    def test_summary_as_dict(self):
        d = summarize_errors([0.01]).as_dict()
        assert d["count"] == 1.0 and "p90" in d


class TestLinear:
    def test_fit_line_exact(self):
        fit = fit_line([0, 1, 2], [1, 3, 5])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_fit_line_predict(self):
        fit = fit_line([0, 1], [0, 2])
        assert fit.predict(3.0) == pytest.approx(6.0)

    def test_fit_line_requires_two_distinct_x(self):
        with pytest.raises(FittingError):
            fit_line([1, 1], [2, 3])

    def test_fit_line_constant_y_r_squared(self):
        fit = fit_line([0, 1, 2], [5, 5, 5])
        assert fit.r_squared == pytest.approx(1.0)

    def test_two_point_line(self):
        slope, intercept = solve_two_point_line(1, 2, 3, 6)
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(0.0)

    def test_two_point_line_rejects_same_x(self):
        with pytest.raises(FittingError):
            solve_two_point_line(1, 2, 1, 6)

    def test_solve_two_basis_recovers_parameters(self):
        # y = 3*x + 5/x
        a, b = solve_two_basis(
            1.0, 8.0, 2.0, 8.5, lambda x: x, lambda x: 1.0 / x
        )
        assert a == pytest.approx(3.0)
        assert b == pytest.approx(5.0)

    def test_solve_two_basis_singular(self):
        with pytest.raises(FittingError):
            solve_two_basis(1.0, 1.0, 2.0, 2.0, lambda x: x, lambda x: 2 * x)


class TestConvexity:
    def test_convex_quadratic(self):
        xs = np.linspace(1, 10, 20)
        assert is_convex_samples(xs, xs**2)

    def test_concave_rejected(self):
        xs = np.linspace(1, 10, 20)
        assert not is_convex_samples(xs, -(xs**2))

    def test_linear_is_convex(self):
        xs = np.linspace(0, 5, 10)
        assert is_convex_samples(xs, 3 * xs + 1)

    def test_piecewise_max_is_convex(self):
        xs = np.linspace(0, 10, 50)
        ys = np.maximum(2 * xs, xs + 5)
        assert is_convex_samples(xs, ys)

    def test_violation_magnitude(self):
        xs = [0.0, 1.0, 2.0]
        ys = [0.0, 2.0, 3.0]  # slopes 2 then 1 -> violation 1
        assert max_convexity_violation(xs, ys) == pytest.approx(1.0)

    def test_second_differences_requires_three(self):
        with pytest.raises(ValueError):
            second_differences([0, 1], [0, 1])

    def test_second_differences_requires_increasing_x(self):
        with pytest.raises(ValueError):
            second_differences([0, 0, 1], [0, 1, 2])


class TestFixedPoint:
    def test_converges_to_fixed_point(self):
        # x = 0.5 x + 2 -> x* = 4
        result = fixed_point_iterate(lambda x: 0.5 * x + 2.0, initial=0.0)
        assert result.value == pytest.approx(4.0, abs=1e-5)
        assert result.converged

    def test_iteration_count_small_for_contraction(self):
        # The paper's AT iteration converges in <= 4 steps; loop gain there
        # is ~k*gamma*V ~ 0.05, far smaller than this 0.5.
        result = fixed_point_iterate(lambda x: 0.5 * x + 2.0, tol=1e-3)
        assert result.iterations <= 12

    def test_divergence_raises(self):
        with pytest.raises(ConvergenceError):
            fixed_point_iterate(lambda x: 2.0 * x + 1.0, max_iterations=30)

    def test_budget_exhaustion_raises(self):
        with pytest.raises(ConvergenceError):
            fixed_point_iterate(
                lambda x: 0.999 * x + 1.0, tol=1e-12, max_iterations=3
            )


class TestRngFactory:
    def test_same_name_same_stream(self):
        factory = RngFactory(42)
        a = factory.generator("x").random(5)
        b = factory.generator("x").random(5)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        factory = RngFactory(42)
        a = factory.generator("x").random(5)
        b = factory.generator("y").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngFactory(1).generator("x").random(5)
        b = RngFactory(2).generator("x").random(5)
        assert not np.array_equal(a, b)

    def test_child_factory_independent(self):
        parent = RngFactory(7)
        child = parent.child("sub")
        assert child.seed != parent.seed
        a = parent.generator("x").random(3)
        b = child.generator("x").random(3)
        assert not np.array_equal(a, b)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            RngFactory(0).generator("")

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            RngFactory("seed")  # type: ignore[arg-type]
