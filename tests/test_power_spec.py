"""Tests for the ground-truth power physics (paper Sect. 5.2)."""

import pytest

from repro.errors import ConfigurationError
from repro.npu import PowerSpec, solve_equilibrium_power
from repro.npu.pipelines import Pipe


class TestPowerSpec:
    def test_idle_power_increases_with_frequency(self):
        spec = PowerSpec()
        assert spec.aicore_idle_power(1800.0, 0.945) > spec.aicore_idle_power(
            1000.0, 0.78
        )

    def test_idle_power_composition_eq12(self):
        spec = PowerSpec()
        f, v = 1500.0, 0.9
        expected = spec.beta_w_per_ghz_v2 * 1.5 * v * v + spec.theta_w_per_v * v
        assert spec.aicore_idle_power(f, v) == pytest.approx(expected)

    def test_active_power_scales_with_fv2(self):
        spec = PowerSpec()
        base = spec.aicore_active_power(10.0, 1000.0, 0.8)
        double_f = spec.aicore_active_power(10.0, 2000.0, 0.8)
        assert double_f == pytest.approx(2 * base)

    def test_effective_alpha_weights_utilisation(self):
        spec = PowerSpec()
        full_cube = spec.effective_alpha({Pipe.CUBE: 1.0})
        half_cube = spec.effective_alpha({Pipe.CUBE: 0.5})
        assert full_cube == pytest.approx(2 * half_cube)

    def test_effective_alpha_clamps_utilisation(self):
        spec = PowerSpec()
        assert spec.effective_alpha({Pipe.CUBE: 1.5}) == pytest.approx(
            spec.effective_alpha({Pipe.CUBE: 1.0})
        )

    def test_effective_alpha_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            PowerSpec().effective_alpha({Pipe.CUBE: -0.1})

    def test_thermal_power_linear_in_delta(self):
        spec = PowerSpec()
        assert spec.aicore_thermal_power(20.0, 0.9) == pytest.approx(
            2 * spec.aicore_thermal_power(10.0, 0.9)
        )

    def test_soc_power_is_sum_of_parts(self):
        spec = PowerSpec()
        util = {Pipe.CUBE: 0.8}
        f, v, dt, bw = 1800.0, 0.945, 30.0, 0.5
        total = spec.soc_power(util, f, v, dt, bw)
        parts = (
            spec.aicore_power(util, f, v, dt)
            + spec.coupled_power(f, v)
            + spec.uncore_power(bw, dt)
        )
        assert total == pytest.approx(parts)

    def test_uncore_power_caps_bandwidth(self):
        spec = PowerSpec()
        assert spec.uncore_power(1.5, 0.0) == pytest.approx(
            spec.uncore_power(1.0, 0.0)
        )

    def test_uncore_power_rejects_negative_bandwidth(self):
        with pytest.raises(ConfigurationError):
            PowerSpec().uncore_power(-0.1, 0.0)

    def test_uncore_share_is_dominant(self):
        """Sect. 8.2: the uncore averages ~80% of SoC power."""
        spec = PowerSpec()
        util = {Pipe.CUBE: 0.8, Pipe.MTE2: 0.3}
        soc = spec.soc_power(util, 1800.0, 0.945, 30.0, 0.6)
        uncore = spec.uncore_power(0.6, 30.0)
        assert 0.6 < uncore / soc < 0.95

    def test_missing_pipe_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerSpec(pipe_alpha_w_per_ghz_v2={Pipe.CUBE: 10.0})

    def test_negative_constant_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerSpec(beta_w_per_ghz_v2=-1.0)


class TestEquilibriumSolver:
    def test_no_feedback(self):
        power, delta = solve_equilibrium_power(200.0, 0.0, 0.14)
        assert power == pytest.approx(200.0)
        assert delta == pytest.approx(28.0)

    def test_feedback_raises_power(self):
        power, _ = solve_equilibrium_power(200.0, 0.5, 0.14)
        assert power > 200.0
        # Exact closed form: P = base / (1 - g*k)
        assert power == pytest.approx(200.0 / (1 - 0.5 * 0.14))

    def test_consistency(self):
        power, delta = solve_equilibrium_power(180.0, 0.4, 0.14)
        assert power == pytest.approx(180.0 + 0.4 * delta)
        assert delta == pytest.approx(0.14 * power)

    def test_thermal_runaway_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_equilibrium_power(200.0, 8.0, 0.14)

    def test_default_spec_is_stable(self):
        spec = PowerSpec()
        gain = spec.thermal_feedback_gain(0.945)
        assert gain * 0.14 < 1.0
