"""Tests for the NPU spec validator and the uncore-frequency extension."""

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.npu import (
    FrequencyGrid,
    NpuSpec,
    PowerSpec,
    SetFreqSpec,
    ThermalSpec,
    VoltageCurve,
    default_npu_spec,
)
from repro.npu.pipelines import Pipe
from repro.npu.validation import validate_spec
from repro.units import ms_to_us


class TestValidateSpec:
    def test_default_spec_is_clean(self):
        report = validate_spec(default_npu_spec())
        assert report.ok
        assert not report.errors

    def test_thermal_runaway_detected(self):
        spec = NpuSpec(
            thermal=ThermalSpec(celsius_per_watt=0.9),
            power=PowerSpec(
                gamma_aicore_w_per_c_v=1.0, gamma_uncore_w_per_c_v=1.0
            ),
        )
        report = validate_spec(spec)
        assert not report.ok
        assert any(f.code == "thermal-runaway" for f in report.errors)

    def test_flat_voltage_warned(self):
        spec = NpuSpec(voltage=VoltageCurve(knee_mhz=5000.0))
        report = validate_spec(spec)
        assert any(f.code == "flat-voltage" for f in report.warnings)
        assert report.ok  # warning only

    def test_zero_pipe_alpha_warned(self):
        alphas = dict(PowerSpec().pipe_alpha_w_per_ghz_v2)
        alphas[Pipe.SCALAR] = 0.0
        spec = NpuSpec(power=PowerSpec(pipe_alpha_w_per_ghz_v2=alphas))
        report = validate_spec(spec)
        assert any(f.code == "zero-pipe-alpha" for f in report.warnings)

    def test_no_dynamic_range_is_error(self):
        alphas = {pipe: 0.0 for pipe in PowerSpec().pipe_alpha_w_per_ghz_v2}
        spec = NpuSpec(power=PowerSpec(pipe_alpha_w_per_ghz_v2=alphas))
        report = validate_spec(spec)
        assert any(f.code == "no-dynamic-range" for f in report.errors)

    def test_slow_setfreq_warned(self):
        spec = NpuSpec(
            setfreq=SetFreqSpec(extra_delay_us=ms_to_us(100.0))
        )
        report = validate_spec(spec)
        assert any(f.code == "slow-setfreq" for f in report.warnings)

    def test_saturation_band_warning(self):
        spec = NpuSpec(
            memory=replace(
                default_npu_spec().memory, uncore_bandwidth_gbps=20_000.0
            )
        )
        report = validate_spec(spec)
        assert any(
            f.code == "saturation-far-from-grid" for f in report.warnings
        )

    def test_render(self):
        report = validate_spec(default_npu_spec())
        assert "ok" in report.render()
        bad = validate_spec(
            NpuSpec(voltage=VoltageCurve(knee_mhz=5000.0))
        )
        assert "flat-voltage" in bad.render()

    def test_custom_grid_spec_validates(self):
        spec = NpuSpec(
            name="custom",
            frequencies=FrequencyGrid(810.0, 1410.0, 75.0),
            voltage=VoltageCurve(flat_volts=0.75, knee_mhz=1000.0,
                                 slope_volts_per_mhz=0.00045),
        )
        report = validate_spec(spec)
        assert report.ok


class TestUncoreFrequencyExtension:
    def test_bandwidth_scales(self):
        base = default_npu_spec()
        scaled = base.with_uncore_frequency(0.5)
        assert scaled.memory.uncore_bandwidth_gbps == pytest.approx(
            0.5 * base.memory.uncore_bandwidth_gbps
        )

    def test_power_scales_only_dynamic_share(self):
        base = default_npu_spec()
        scaled = base.with_uncore_frequency(0.5)
        dynamic = base.power.uncore_dynamic_fraction
        expected = base.power.uncore_idle_watts * (1 - dynamic + dynamic * 0.5)
        assert scaled.power.uncore_idle_watts == pytest.approx(expected)
        assert scaled.power.uncore_bandwidth_watts == pytest.approx(
            0.5 * base.power.uncore_bandwidth_watts
        )

    def test_unit_scale_is_identity(self):
        base = default_npu_spec()
        same = base.with_uncore_frequency(1.0)
        assert same.memory.uncore_bandwidth_gbps == (
            base.memory.uncore_bandwidth_gbps
        )
        assert same.power.uncore_idle_watts == pytest.approx(
            base.power.uncore_idle_watts
        )

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ConfigurationError):
            default_npu_spec().with_uncore_frequency(0.0)

    def test_scaled_spec_still_validates(self):
        report = validate_spec(default_npu_spec().with_uncore_frequency(0.7))
        assert report.ok

    def test_bad_dynamic_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerSpec(uncore_dynamic_fraction=1.5)


class TestShippedProfiles:
    def test_all_profiles_validate_clean(self):
        from repro.npu import PROFILES, get_profile, validate_spec

        for name in PROFILES:
            report = validate_spec(get_profile(name))
            assert report.ok, f"{name}: {report.render()}"

    def test_unknown_profile_rejected(self):
        from repro.npu import get_profile

        with pytest.raises(KeyError):
            get_profile("tpu-v9")

    def test_pipeline_runs_on_edge_profile(self):
        """The Sect. 8.3 claim against a radically different device: the
        identical pipeline optimises a workload on a 2-core edge NPU."""
        from repro import EnergyOptimizer, OptimizerConfig
        from repro.dvfs import GaConfig
        from repro.npu import edge_npu_spec
        from repro.workloads import generate

        spec = edge_npu_spec()
        config = OptimizerConfig(
            npu=spec,
            performance_loss_target=0.04,
            profile_freqs_mhz=(400.0, 600.0, 800.0),
            ga=GaConfig(
                population_size=40, iterations=80,
                prior_lfc_mhz=500.0, prior_hfc_mhz=800.0, seed=0,
            ),
        )
        optimizer = EnergyOptimizer(config)
        trace = generate("llama2_inference", scale=0.05, batch=1,
                         hidden=1024, host_interval_us=400.0)
        report = optimizer.optimize(trace)
        assert report.performance_loss < 0.06
        assert report.baseline.aicore_watts < 5.0  # edge-scale envelope
