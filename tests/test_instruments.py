"""Tests for the profiler and telemetry instruments."""

import pytest

from repro.errors import ProfilingError
from repro.npu import (
    CannStyleProfiler,
    FrequencyTimeline,
    NpuDevice,
    PowerTelemetry,
    merge_reports,
)
from repro.workloads import build_trace
from repro.workloads.operator import OperatorKind, make_fixed_operator
from tests.conftest import make_compute_op


@pytest.fixture()
def profiler(npu_spec, rng_factory):
    return CannStyleProfiler(npu_spec, rng_factory.generator("prof"))


@pytest.fixture()
def ideal_profiler(ideal_spec, rng_factory):
    return CannStyleProfiler(ideal_spec, rng_factory.generator("prof"))


@pytest.fixture()
def telemetry(npu_spec, rng_factory):
    return PowerTelemetry(npu_spec, rng_factory.generator("telem"))


@pytest.fixture()
def ideal_telemetry(ideal_spec, rng_factory):
    return PowerTelemetry(ideal_spec, rng_factory.generator("telem"))


def run_simple(device, n=4, freq=1800.0):
    ops = [make_compute_op(name=f"p.op{i}") for i in range(n)]
    trace = build_trace("p", ops)
    return device.run(trace, FrequencyTimeline.constant(freq))


class TestProfiler:
    def test_report_covers_all_ops(self, device, profiler):
        report = profiler.profile(run_simple(device, n=5))
        assert len(report) == 5

    def test_noise_free_durations_exact(self, ideal_device, ideal_profiler):
        result = run_simple(ideal_device, n=3)
        report = ideal_profiler.profile(result)
        for record, op in zip(result.records, report.operators):
            assert op.duration_us == pytest.approx(record.duration_us)

    def test_noisy_durations_near_truth(self, device, profiler):
        result = run_simple(device, n=30)
        report = profiler.profile(result)
        for record, op in zip(result.records, report.operators):
            assert abs(op.duration_us / record.duration_us - 1.0) < 0.1

    def test_ratios_clipped_to_unit(self, device, profiler):
        report = profiler.profile(run_simple(device, n=10))
        for op in report.operators:
            for ratio in op.ratios.values():
                assert 0.0 <= ratio <= 1.0

    def test_freq_label(self, device, profiler):
        report = profiler.profile(run_simple(device, freq=1300.0))
        assert report.freq_label_mhz == 1300.0

    def test_significant_filter(self, ideal_device, ideal_profiler):
        big = make_compute_op(name="big", core_cycles=200_000.0)
        tiny = make_fixed_operator("tiny", OperatorKind.AICPU, 3.0)
        trace = build_trace("mix", [big, tiny])
        report = ideal_profiler.profile(ideal_device.run(trace))
        names = [op.name for op in report.significant_operators()]
        assert names == ["big"]

    def test_compute_operator_filter(self, ideal_device, ideal_profiler):
        big = make_compute_op(name="big2")
        comm = make_fixed_operator("comm", OperatorKind.COMMUNICATION, 100.0)
        trace = build_trace("mix2", [big, comm])
        report = ideal_profiler.profile(ideal_device.run(trace))
        assert [op.name for op in report.compute_operators()] == ["big2"]

    def test_durations_by_name_averages_instances(
        self, ideal_device, ideal_profiler
    ):
        op = make_compute_op(name="rep")
        trace = build_trace("rep", [op, op, op])
        report = ideal_profiler.profile(ideal_device.run(trace))
        durations = report.durations_by_name()
        assert len(durations) == 1
        assert durations["rep"] > 0

    def test_gap_reported(self, ideal_device, ideal_profiler):
        from repro.workloads.trace import TraceEntry

        op = make_compute_op(name="g")
        trace = build_trace(
            "g", [TraceEntry(op), TraceEntry(op, gap_before_us=250.0)]
        )
        report = ideal_profiler.profile(ideal_device.run(trace))
        assert report.operators[1].gap_before_us == pytest.approx(250.0)

    def test_merge_reports_sorts_and_validates(self, device, profiler):
        r1 = profiler.profile(run_simple(device, freq=1800.0))
        r2 = profiler.profile(run_simple(device, freq=1000.0))
        merged = merge_reports([r1, r2])
        assert [r.freq_label_mhz for r in merged] == [1000.0, 1800.0]

    def test_merge_rejects_duplicates(self, device, profiler):
        r1 = profiler.profile(run_simple(device))
        with pytest.raises(ProfilingError):
            merge_reports([r1, r1])

    def test_merge_rejects_mixed_traces(self, ideal_device, ideal_profiler):
        a = ideal_profiler.profile(
            ideal_device.run(build_trace("a", [make_compute_op(name="x")]))
        )
        b = ideal_profiler.profile(
            ideal_device.run(build_trace("b", [make_compute_op(name="y")]))
        )
        with pytest.raises(ProfilingError):
            merge_reports([a, b])

    def test_merge_rejects_empty(self):
        with pytest.raises(ProfilingError):
            merge_reports([])


class TestTelemetry:
    def test_measure_noise_free_exact(self, ideal_device, ideal_telemetry):
        result = run_simple(ideal_device)
        measurement = ideal_telemetry.measure(result)
        assert measurement.soc_avg_watts == pytest.approx(result.soc_avg_watts)
        assert measurement.aicore_avg_watts == pytest.approx(
            result.aicore_avg_watts
        )

    def test_measure_noisy_near_truth(self, device, telemetry):
        result = run_simple(device, n=10)
        measurement = telemetry.measure(result)
        assert abs(measurement.soc_avg_watts / result.soc_avg_watts - 1) < 0.2

    def test_sample_chunks_interval(self, ideal_device, ideal_telemetry):
        chunks = ideal_device.run_idle(10_000.0, 1800.0, steps=10)
        samples = ideal_telemetry.sample_chunks(chunks, interval_us=1000.0)
        assert len(samples) == 10
        assert samples[1].time_us - samples[0].time_us == pytest.approx(1000.0)

    def test_sample_chunks_rejects_empty(self, ideal_telemetry):
        with pytest.raises(ProfilingError):
            ideal_telemetry.sample_chunks([], interval_us=10.0)

    def test_per_operator_power_attribution(self, ideal_device, ideal_telemetry):
        hot = make_compute_op(name="hot", core_cycles=200_000.0)
        cold = make_fixed_operator("cold", OperatorKind.IDLE, 200.0)
        trace = build_trace("attr", [hot, cold])
        result = ideal_device.run(trace)
        readings = ideal_telemetry.measure_operator_power(result)
        assert set(readings) == {"hot", "cold"}
        assert readings["hot"][0] > readings["cold"][0]

    def test_true_average_power(self, ideal_device, ideal_telemetry):
        result = run_simple(ideal_device)
        aicore, soc = PowerTelemetry.true_average_power(result.chunks)
        assert aicore == pytest.approx(result.aicore_avg_watts)
        assert soc == pytest.approx(result.soc_avg_watts)

    def test_energy_reading(self, ideal_device, ideal_telemetry):
        result = run_simple(ideal_device)
        aicore_j, soc_j = ideal_telemetry.energy_joules(result)
        assert aicore_j == pytest.approx(result.aicore_energy_j)
        assert soc_j == pytest.approx(result.soc_energy_j)

    def test_measure_chunks_aggregate(self, ideal_device, ideal_telemetry):
        chunks = ideal_device.run_idle(5000.0, 1000.0, steps=5)
        measurement = ideal_telemetry.measure_chunks(chunks)
        assert measurement.duration_us == pytest.approx(5000.0)
        assert measurement.soc_avg_watts > 0
