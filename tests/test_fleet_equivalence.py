"""Fleet <-> cluster equivalence: the vectorization must not change physics.

The fleet stacks every device's compiled affine solution into arrays;
the looped :class:`~repro.cluster.simulator.SimulatedCluster` runs each
device through the full engine.  Both must agree — per-device arrivals
bitwise, energies and temperatures to <= 1e-9 (in practice ~1e-15,
summation association only), reclaimed plans byte-identical — across
fleet sizes, seeds, margins and explicit degradations.  This is the
acceptance bar of the ``repro.fleet`` subsystem; everything else in the
fleet package builds on the comparison passing here.
"""

import pytest

from repro.fleet.reference import (
    EQUIVALENCE_TOLERANCE,
    compare_with_cluster,
)
from repro.fleet.spec import FleetSpec
from repro.workloads import generate


@pytest.fixture(scope="module")
def tiny_trace():
    return generate("gpt3", scale=0.01)


@pytest.mark.parametrize(
    ("n_devices", "seed"),
    [(1, 0), (2, 0), (2, 1), (8, 0), (8, 3), (16, 0), (16, 7)],
)
def test_fleet_matches_cluster(tiny_trace, n_devices, seed):
    comparison = compare_with_cluster(
        FleetSpec(n_devices=n_devices, seed=seed), tiny_trace
    )
    assert comparison.plans_byte_identical
    assert comparison.overruns_equal
    # Durations flow through the identical closed-form scan: bitwise.
    assert comparison.max_rel_duration == 0.0
    assert comparison.max_rel_err <= EQUIVALENCE_TOLERANCE
    assert comparison.ok()


def test_fleet_matches_cluster_with_slack_margin(tiny_trace):
    comparison = compare_with_cluster(
        FleetSpec(n_devices=8, seed=0), tiny_trace, slack_margin=0.02
    )
    assert comparison.plans_byte_identical
    assert comparison.ok()


def test_fleet_matches_cluster_under_degradation(tiny_trace):
    spec = FleetSpec(n_devices=8, seed=0).with_degraded_device(
        3, 1.3, reason="equivalence degradation"
    )
    comparison = compare_with_cluster(spec, tiny_trace)
    assert comparison.plans_byte_identical
    assert comparison.max_rel_duration == 0.0
    assert comparison.ok()


def test_fleet_matches_cluster_on_three_steps(tiny_trace):
    """Thermal state carried across more steps stays within the bar."""
    comparison = compare_with_cluster(
        FleetSpec(n_devices=4, seed=2), tiny_trace, steps=3
    )
    assert comparison.ok()
