"""Tests for the guarded, self-healing DVFS runtime (`repro.dvfs.guard`)."""

import pytest

from repro.dvfs import (
    DvfsExecutor,
    DvfsStrategy,
    GuardConfig,
    GuardedDvfsExecutor,
    GuardedFrequencyPlan,
    StageKind,
    StagePlan,
)
from repro.dvfs.guard import Incident, IncidentLog
from repro.errors import ConfigurationError, SetFreqTimeoutError
from repro.npu import FaultConfig, FaultInjector
from repro.npu.faults import FaultyFrequencyPlan
from repro.npu.setfreq import AnchoredFrequencyPlan, AnchoredSwitch
from repro.workloads import build_trace
from tests.conftest import make_compute_op


def make_trace(n=8, name="w", core_cycles=300_000.0):
    ops = [
        make_compute_op(name=f"{name}.op{i}", core_cycles=core_cycles)
        for i in range(n)
    ]
    return build_trace(name, ops)


def make_strategy(loss_target=0.5, name="w"):
    """HFC -> LFC dip at op 2 -> HFC recovery at op 5."""
    plans = (
        StagePlan(0.0, 400.0, 1800.0, StageKind.HFC, 0),
        StagePlan(400.0, 600.0, 1000.0, StageKind.LFC, 2),
        StagePlan(1000.0, 600.0, 1800.0, StageKind.HFC, 5),
    )
    return DvfsStrategy(name, loss_target, plans)


def fast_guard(**overrides):
    """Backoffs short enough that retries resolve inside a small trace."""
    settings = dict(
        max_retries=2,
        backoff_base_us=20.0,
        backoff_cap_us=100.0,
        readback_grace_us=10.0,
    )
    settings.update(overrides)
    return GuardConfig(**settings)


def injector_for(config, seed=7, stream="faults"):
    return FaultInjector.from_seed(config, seed, stream=stream)


def drive(plan, limit=200):
    """Walk the plan the way the device does, boundary by boundary."""
    t = 0.0
    plan.frequency_at(t)
    for _ in range(limit):
        nxt = plan.next_switch_after(t)
        if nxt is None:
            break
        t = nxt.time_us
        plan.frequency_at(t)
    return t


class TestGuardConfig:
    def test_backoff_doubles_and_caps(self):
        config = GuardConfig(backoff_base_us=500.0, backoff_cap_us=8_000.0)
        assert config.backoff_us(0) == 500.0
        assert config.backoff_us(1) == 1_000.0
        assert config.backoff_us(2) == 2_000.0
        assert config.backoff_us(10) == 8_000.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_us": 0.0},
            {"backoff_base_us": 100.0, "backoff_cap_us": 50.0},
            {"readback_grace_us": -1.0},
            {"loss_margin": -0.01},
            {"throttle_celsius": 0.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            GuardConfig(**kwargs)


class TestIncidentLog:
    def test_record_and_counts(self):
        log = IncidentLog()
        log.record("setfreq_retry", time_us=10.0, op_index=2, attempt=1)
        log.record("setfreq_retry", time_us=20.0, op_index=2, attempt=2)
        log.record("baseline_revert", detail="gave up")
        assert len(log) == 3
        assert log.counts_by_kind() == {
            "setfreq_retry": 2,
            "baseline_revert": 1,
        }
        rows = log.to_rows()
        assert rows[0]["attempt"] == 1
        assert rows[2]["kind"] == "baseline_revert"
        log.clear()
        assert len(log) == 0

    def test_incident_row_blanks_missing_fields(self):
        row = Incident(kind="throttle_detected").to_row()
        assert row["time_us"] == ""
        assert row["op_index"] == ""


class TestGuardedPlanOnline:
    def _guarded(self, config=None, fault=None, seed=7,
                 revert_latency_us=100.0):
        config = config or fast_guard()
        anchors = {0: 1000.0}
        injector = None
        if fault is not None and fault.setfreq_active:
            injector = injector_for(fault, seed)
            inner = FaultyFrequencyPlan(
                1800.0,
                [AnchoredSwitch(i, f) for i, f in anchors.items()],
                injector,
            )
        else:
            inner = AnchoredFrequencyPlan(
                1800.0, [AnchoredSwitch(i, f) for i, f in anchors.items()]
            )
            if fault is not None:
                injector = injector_for(fault, seed)
        log = IncidentLog()
        plan = GuardedFrequencyPlan(
            inner=inner,
            anchors=anchors,
            baseline_mhz=1800.0,
            extra_delay_us=0.0,
            revert_latency_us=revert_latency_us,
            config=config,
            log=log,
            injector=injector,
        )
        return plan, log

    def test_healthy_change_verifies_silently(self):
        plan, log = self._guarded()
        plan.on_op_start(0, 0.0)
        assert plan.frequency_at(0.0) == 1000.0
        drive(plan)
        assert len(log) == 0
        assert not plan.fallback_engaged

    def test_dropped_change_retries_then_reverts(self):
        plan, log = self._guarded(fault=FaultConfig(setfreq_drop_rate=1.0))
        plan.on_op_start(0, 0.0)
        drive(plan)
        assert plan.fallback_engaged
        counts = log.counts_by_kind()
        assert counts["setfreq_unverified"] == 3  # initial + 2 retries
        assert counts["setfreq_retry"] == 2
        assert counts["baseline_revert"] == 1
        # After the revert the plan pins the baseline frequency.
        assert plan.frequency_at(1e9) == 1800.0

    def test_fallback_waits_one_revert_latency(self):
        plan, log = self._guarded(
            fault=FaultConfig(setfreq_drop_rate=1.0), revert_latency_us=500.0
        )
        plan.on_op_start(0, 0.0)
        drive(plan)
        revert = next(
            i for i in log.incidents if i.kind == "baseline_revert"
        )
        # The revert is itself a SetFreq: it lands one controller latency
        # after the decision, not instantaneously.
        boundary = plan.next_switch_after(revert.time_us)
        assert boundary is not None
        assert boundary.time_us == pytest.approx(revert.time_us + 500.0)
        assert boundary.freq_mhz == 1800.0

    def test_readback_dropout_counts_against_budget(self):
        # The true frequency is fine; only the verification channel is
        # down.  The guard cannot distinguish the two, so it retries and
        # eventually reverts (safe but conservative).
        plan, log = self._guarded(
            fault=FaultConfig(telemetry_dropout_rate=1.0)
        )
        plan.on_op_start(0, 0.0)
        drive(plan)
        assert plan.fallback_engaged
        counts = log.counts_by_kind()
        assert counts["readback_dropout"] == 3
        assert counts["baseline_revert"] == 1

    def test_raises_when_revert_disabled(self):
        plan, _ = self._guarded(
            config=fast_guard(revert_on_failure=False),
            fault=FaultConfig(setfreq_drop_rate=1.0),
        )
        plan.on_op_start(0, 0.0)
        with pytest.raises(SetFreqTimeoutError):
            drive(plan)

    def test_newer_anchor_supersedes_outstanding_watch(self):
        config = fast_guard()
        anchors = {0: 1000.0, 1: 1200.0}
        injector = injector_for(FaultConfig(setfreq_drop_rate=1.0))
        inner = FaultyFrequencyPlan(
            1800.0,
            [AnchoredSwitch(i, f) for i, f in anchors.items()],
            injector,
        )
        log = IncidentLog()
        plan = GuardedFrequencyPlan(
            inner=inner,
            anchors=anchors,
            baseline_mhz=1800.0,
            extra_delay_us=0.0,
            revert_latency_us=100.0,
            config=config,
            log=log,
            injector=injector,
        )
        plan.on_op_start(0, 0.0)
        plan.on_op_start(1, 5.0)  # before op 0's watch deadline
        drive(plan)
        # Every incident refers to the superseding change; the stale
        # op-0 verification was cancelled.
        assert {i.op_index for i in log.incidents} == {1}

    def test_reset_clears_state_but_keeps_log(self):
        plan, log = self._guarded(fault=FaultConfig(setfreq_drop_rate=1.0))
        plan.on_op_start(0, 0.0)
        drive(plan)
        assert plan.fallback_engaged
        recorded = len(log)
        assert recorded > 0
        plan.reset()
        assert not plan.fallback_engaged
        assert len(log) == recorded
        assert plan.frequency_at(0.0) == 1800.0

    def test_delegated_counters(self):
        plan, _ = self._guarded()
        assert plan.initial_mhz == 1800.0
        assert plan.switch_count == 1
        plan.on_op_start(0, 0.0)
        plan.frequency_at(0.0)
        assert plan.applied_switch_count == 1
        assert plan.dropped_switch_count == 0


class TestGuardedExecutorHealthy:
    def test_byte_identical_to_plain_executor(self, device):
        trace = make_trace()
        strategy = make_strategy()
        plain = DvfsExecutor(device)
        guarded = GuardedDvfsExecutor(plain)
        a = plain.execute_with_baseline(trace, strategy)
        b = guarded.execute_with_baseline(trace, strategy)
        assert b.result == a.result
        assert b.baseline == a.baseline
        assert b.incidents == ()
        assert not b.fell_back
        assert b.intervention_count == 0

    def test_healthy_compile_is_the_plain_plan(self, device):
        strategy = make_strategy()
        plain = DvfsExecutor(device)
        guarded = GuardedDvfsExecutor(plain)
        plan = guarded.compile(strategy)
        assert type(plan) is AnchoredFrequencyPlan

    def test_telemetry_only_faults_keep_plain_plan(self, device):
        # Telemetry faults corrupt instruments, not SetFreq; the control
        # plan stays unguarded (and the execution byte-identical).
        strategy = make_strategy()
        guarded = GuardedDvfsExecutor(
            DvfsExecutor(device),
            injector=injector_for(FaultConfig(telemetry_spike_rate=1.0)),
        )
        assert type(guarded.compile(strategy)) is AnchoredFrequencyPlan

    def test_setfreq_faults_compile_guarded_plan(self, device):
        strategy = make_strategy()
        guarded = GuardedDvfsExecutor(
            DvfsExecutor(device),
            injector=injector_for(FaultConfig(setfreq_drop_rate=1.0)),
        )
        plan = guarded.compile(strategy)
        assert isinstance(plan, GuardedFrequencyPlan)

    def test_validate_delegates(self, device):
        guarded = GuardedDvfsExecutor(DvfsExecutor(device))
        from repro.errors import StrategyError

        with pytest.raises(StrategyError):
            guarded.validate(make_trace(name="other"), make_strategy())


class TestGuardedExecutorFaulty:
    def _guarded(self, device, fault, seed=7, **config_overrides):
        return GuardedDvfsExecutor(
            DvfsExecutor(device),
            config=fast_guard(**config_overrides),
            injector=injector_for(fault, seed),
        )

    def test_dropped_setfreq_reverts_to_baseline(self, device):
        trace = make_trace()
        guarded = self._guarded(device, FaultConfig(setfreq_drop_rate=1.0))
        outcome = guarded.execute_with_baseline(trace, make_strategy())
        assert outcome.fell_back
        # The online fallback runs the remainder at the baseline
        # frequency: no savings, and a loss within the envelope.
        assert outcome.performance_loss == pytest.approx(0.0, abs=1e-3)
        assert outcome.aicore_power_reduction == pytest.approx(0.0, abs=0.01)
        kinds = {incident.kind for incident in outcome.incidents}
        assert "baseline_revert" in kinds
        assert guarded.incidents == outcome.incidents

    def test_revert_disabled_raises(self, device):
        trace = make_trace()
        guarded = self._guarded(
            device,
            FaultConfig(setfreq_drop_rate=1.0),
            revert_on_failure=False,
        )
        with pytest.raises(SetFreqTimeoutError):
            guarded.execute_with_baseline(trace, make_strategy())

    def test_ambient_step_triggers_throttle_revert(self, device):
        trace = make_trace()
        guarded = self._guarded(
            device,
            FaultConfig(ambient_step_rate=1.0, ambient_step_celsius=40.0),
        )
        outcome = guarded.execute_with_baseline(trace, make_strategy())
        kinds = {incident.kind for incident in outcome.incidents}
        assert "ambient_step" in kinds
        assert "throttle_detected" in kinds
        assert outcome.fell_back
        assert outcome.result == outcome.baseline

    def test_loss_violation_reverts(self, device):
        # A healthy control plane but an unmeetable target: the post-hoc
        # check catches the violation and replaces the run.
        trace = make_trace()
        strategy = make_strategy(loss_target=1e-6)
        guarded = GuardedDvfsExecutor(
            DvfsExecutor(device), config=fast_guard(loss_margin=0.0)
        )
        outcome = guarded.execute_with_baseline(trace, strategy)
        kinds = {incident.kind for incident in outcome.incidents}
        assert "loss_violation" in kinds
        assert outcome.fell_back
        assert outcome.performance_loss == pytest.approx(0.0)

    def test_loss_never_exceeds_envelope(self, device):
        trace = make_trace()
        strategy = make_strategy(loss_target=0.02)
        for rate in (0.2, 0.5, 1.0):
            guarded = self._guarded(device, FaultConfig.uniform(rate))
            outcome = guarded.execute_with_baseline(trace, strategy)
            limit = (
                strategy.performance_loss_target
                + guarded.config.loss_margin
            )
            assert outcome.performance_loss <= limit + 1e-9

    def test_same_seed_same_incident_log(self, device):
        trace = make_trace()
        strategy = make_strategy()
        fault = FaultConfig.uniform(0.4)
        outcomes = []
        for _ in range(2):
            guarded = self._guarded(device, fault, seed=11)
            outcomes.append(
                guarded.execute_with_baseline(trace, strategy)
            )
        assert outcomes[0].incidents == outcomes[1].incidents
        assert outcomes[0].fell_back == outcomes[1].fell_back
        assert outcomes[0].result == outcomes[1].result

    def test_different_seeds_can_differ(self, device):
        trace = make_trace()
        strategy = make_strategy()
        fault = FaultConfig.uniform(0.4)
        a = self._guarded(device, fault, seed=11).execute_with_baseline(
            trace, strategy
        )
        b = self._guarded(device, fault, seed=12).execute_with_baseline(
            trace, strategy
        )
        assert a.incidents != b.incidents


class TestSlowControllerSemantics:
    def test_anchor_verify_skipped_with_extra_delay(self, npu_spec):
        # On a slow controller (Fig. 18) changes legitimately land late;
        # the post-hoc anchor check must not flag them.
        from dataclasses import replace

        from repro.npu import NpuDevice

        slow = replace(
            npu_spec, setfreq=replace(npu_spec.setfreq, extra_delay_us=14_000.0)
        )
        device = NpuDevice(slow)
        trace = make_trace()
        guarded = GuardedDvfsExecutor(DvfsExecutor(device))
        outcome = guarded.execute_with_baseline(trace, make_strategy())
        kinds = {incident.kind for incident in outcome.incidents}
        assert "anchor_mismatch" not in kinds
