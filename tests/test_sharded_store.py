"""Tests for the sharded store + shared-memory hot tier (repro.serve)."""

from __future__ import annotations

import json

import pytest

from repro.dvfs.strategy import constant_strategy
from repro.errors import ServeError
from repro.serve import (
    SharedMemoryHotTier,
    ShardedStrategyStore,
    StrategyStore,
    shard_index,
)
from repro.serve.shards import ShardLayout


def _fingerprint(i: int) -> str:
    return f"{i:02x}" * 32


def _strategies(count: int):
    return [
        (_fingerprint(i), constant_strategy(f"w{i}", 1500.0 + i, 80.0))
        for i in range(count)
    ]


class TestShardIndex:
    def test_stable_and_bounded(self):
        for i in range(64):
            fp = _fingerprint(i)
            index = shard_index(fp, 8)
            assert 0 <= index < 8
            assert index == shard_index(fp, 8)

    def test_shard_count_bounds(self, tmp_path):
        with pytest.raises(ServeError):
            ShardedStrategyStore(tmp_path / "s", shards=0)
        with pytest.raises(ServeError):
            ShardedStrategyStore(tmp_path / "s", shards=257)


class TestPartitionEquivalence:
    def test_sharded_records_partition_flat_store(self, tmp_path):
        """The shards hold exactly the flat store's records, byte for
        byte — only the directory level above the fan-out differs."""
        flat = StrategyStore(tmp_path / "flat")
        with ShardedStrategyStore(
            tmp_path / "sharded", shards=4, hot_slots=0
        ) as sharded:
            for fp, strategy in _strategies(16):
                flat.put(fp, strategy, "cfg", "spec")
                sharded.put(fp, strategy, "cfg", "spec")
            assert list(sharded.fingerprints()) == list(flat.fingerprints())
            assert len(sharded) == len(flat) == 16
            for fp, _ in _strategies(16):
                flat_bytes = flat.path_for(fp).read_bytes()
                shard_bytes = sharded.path_for(fp).read_bytes()
                assert flat_bytes == shard_bytes
                owner = shard_index(fp, 4)
                assert f"shard-{owner:02d}" in str(sharded.path_for(fp))

    def test_lookup_tiers(self, tmp_path):
        with ShardedStrategyStore(
            tmp_path / "s", shards=2, hot_slots=8
        ) as store:
            fp, strategy = _strategies(1)[0]
            store.put(fp, strategy, "cfg", "spec")
            assert store.lookup(fp, "cfg", "spec").tier == "memory"
            store.clear_memory()
            hit = store.lookup(fp, "cfg", "spec")
            assert hit.tier == "hot"
            assert hit.strategy == strategy
            # The hot hit repopulated the LRU.
            assert store.lookup(fp, "cfg", "spec").tier == "memory"
            counters = store.aggregate_counters()
            assert counters.hot_hits == 1
            assert counters.memory_hits == 2

    def test_disk_fallback_when_hot_disabled(self, tmp_path):
        with ShardedStrategyStore(
            tmp_path / "s", shards=2, hot_slots=0
        ) as store:
            fp, strategy = _strategies(1)[0]
            store.put(fp, strategy, "cfg", "spec")
            store.clear_memory()
            assert store.lookup(fp, "cfg", "spec").tier == "disk"

    def test_quarantine_aggregates_across_shards(self, tmp_path):
        with ShardedStrategyStore(
            tmp_path / "s", shards=4, hot_slots=0
        ) as store:
            pairs = _strategies(4)
            for fp, strategy in pairs:
                store.put(fp, strategy, "cfg", "spec")
            store.clear_memory()
            victim = store.path_for(pairs[0][0])
            victim.write_text("{truncated", encoding="utf-8")
            assert store.lookup(pairs[0][0], "cfg", "spec") is None
            assert not victim.exists()
            quarantined = list(store.quarantined_files())
            assert len(quarantined) == 1
            assert quarantined[0].name.endswith(".corrupt")
            assert store.aggregate_counters().quarantined == 1
            # The other shards are untouched.
            assert store.lookup(pairs[1][0], "cfg", "spec") is not None

    def test_clear_and_counter_rows(self, tmp_path):
        with ShardedStrategyStore(
            tmp_path / "s", shards=2, hot_slots=4
        ) as store:
            for fp, strategy in _strategies(6):
                store.put(fp, strategy, "cfg", "spec")
            rows = {row["counter"] for row in store.counter_rows()}
            assert {"puts", "shards", "hot_tier_slots"} <= rows
            assert store.clear() == 6
            assert len(store) == 0


class TestShardLayout:
    def test_detects_sharded(self, tmp_path):
        with ShardedStrategyStore(
            tmp_path / "s", shards=3, hot_slots=0
        ) as store:
            fp, strategy = _strategies(1)[0]
            store.put(fp, strategy, "cfg", "spec")
        layout = ShardLayout.detect(tmp_path / "s")
        assert layout.sharded and layout.shards == 3

    def test_detects_flat_and_missing(self, tmp_path):
        flat = StrategyStore(tmp_path / "flat")
        fp, strategy = _strategies(1)[0]
        flat.put(fp, strategy, "cfg", "spec")
        assert not ShardLayout.detect(tmp_path / "flat").sharded
        assert not ShardLayout.detect(tmp_path / "nowhere").sharded


class TestSharedMemoryHotTier:
    def test_roundtrip_and_eviction(self):
        with SharedMemoryHotTier(slots=2, slot_bytes=64) as tier:
            payloads = {
                _fingerprint(i): f"payload-{i}".encode() for i in range(3)
            }
            for fp, payload in payloads.items():
                assert tier.put(fp, payload)
            # Ring of 2: the oldest record was overwritten.
            assert tier.get(_fingerprint(0)) is None
            assert tier.get(_fingerprint(1)) == b"payload-1"
            assert tier.get(_fingerprint(2)) == b"payload-2"
            assert len(tier) == 2
            assert tier.writes == 3

    def test_oversize_payload_not_cached(self):
        with SharedMemoryHotTier(slots=2, slot_bytes=8) as tier:
            assert not tier.put(_fingerprint(1), b"x" * 9)
            assert tier.oversize == 1
            assert tier.get(_fingerprint(1)) is None

    def test_attach_reads_owner_writes(self):
        with SharedMemoryHotTier(slots=4, slot_bytes=64) as owner:
            if not owner.shared:
                pytest.skip("platform has no POSIX shared memory")
            owner.put(_fingerprint(7), b"cross-process bytes")
            reader = SharedMemoryHotTier.attach(owner.name)
            try:
                assert reader.get(_fingerprint(7)) == b"cross-process bytes"
                with pytest.raises(ServeError):
                    reader.put(_fingerprint(8), b"nope")
                # Writes after attach are visible on the next get.
                owner.put(_fingerprint(9), b"late write")
                assert reader.get(_fingerprint(9)) == b"late write"
            finally:
                reader.close()

    def test_torn_write_read_as_miss(self):
        from repro.serve.hotmem import _HEADER, _SLOT_HEADER

        with SharedMemoryHotTier(slots=1, slot_bytes=64) as tier:
            fp = _fingerprint(3)
            assert tier.put(fp, b"committed")
            # Forge a mid-write state: odd sequence number.
            offset = _HEADER.size
            seq, raw, length = _SLOT_HEADER.unpack_from(tier._buf, offset)
            _SLOT_HEADER.pack_into(tier._buf, offset, seq + 1, raw, length)
            assert tier.get(fp) is None

    def test_validation(self):
        with pytest.raises(ServeError):
            SharedMemoryHotTier(slots=0)
        with pytest.raises(ServeError):
            SharedMemoryHotTier(slots=1, slot_bytes=0)
        with SharedMemoryHotTier(slots=1, slot_bytes=8) as tier:
            with pytest.raises(ServeError):
                tier.get("zz")  # not a fingerprint

    def test_close_idempotent(self):
        tier = SharedMemoryHotTier(slots=1, slot_bytes=8)
        tier.close()
        tier.close()


class TestHotTierValidation:
    def test_damaged_hot_record_falls_through_to_disk(self, tmp_path):
        """A corrupted hot-tier payload is never served: the lookup
        falls through to the disk shard (source of truth)."""
        with ShardedStrategyStore(
            tmp_path / "s", shards=1, hot_slots=4
        ) as store:
            fp, strategy = _strategies(1)[0]
            store.put(fp, strategy, "cfg", "spec")
            store.clear_memory()
            # Poison the hot-tier copy with structurally bad JSON.
            store.hot_tier.put(fp, b"{definitely not a record")
            hit = store.lookup(fp, "cfg", "spec")
            assert hit is not None
            assert hit.tier == "disk"
            assert hit.strategy == strategy

    def test_hash_drift_in_hot_record_falls_through(self, tmp_path):
        with ShardedStrategyStore(
            tmp_path / "s", shards=1, hot_slots=4
        ) as store:
            fp, strategy = _strategies(1)[0]
            store.put(fp, strategy, "cfg-old", "spec")
            store.clear_memory()
            # Under new hashes the hot record is stale; the disk tier
            # then invalidates the record entirely.
            assert store.lookup(fp, "cfg-new", "spec") is None
            assert store.aggregate_counters().invalidations == 1


class TestStatsCli:
    def test_stats_renders_sharded_store(self, tmp_path, capsys):
        from repro.serve.cli import main

        root = tmp_path / "s"
        with ShardedStrategyStore(root, shards=2, hot_slots=0) as store:
            pairs = _strategies(3)
            for fp, strategy in pairs:
                store.put(fp, strategy, "cfg", "spec")
            # One structurally damaged record to quarantine on scan.
            store.path_for(pairs[0][0]).write_text(
                "{oops", encoding="utf-8"
            )
        assert main(["stats", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert "sharded store (2 shards)" in out
        assert "2 valid record(s)" in out
        assert "1 quarantined file(s)" in out
        assert "quarantined" in out
        assert "shard-00" in out and "shard-01" in out

    def test_stats_renders_flat_store(self, tmp_path, capsys):
        from repro.serve.cli import main

        root = tmp_path / "flat"
        flat = StrategyStore(root)
        fp, strategy = _strategies(1)[0]
        flat.put(fp, strategy, "cfg", "spec")
        assert main(["stats", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert "flat store" in out
        assert "1 valid record(s)" in out


def test_record_schema_is_json(tmp_path):
    """Shard records stay plain JSON envelopes (tooling contract)."""
    with ShardedStrategyStore(
        tmp_path / "s", shards=1, hot_slots=0
    ) as store:
        fp, strategy = _strategies(1)[0]
        path = store.put(fp, strategy, "cfg", "spec")
        record = json.loads(path.read_text(encoding="utf-8"))
    assert record["fingerprint"] == fp
    assert record["config_hash"] == "cfg"
