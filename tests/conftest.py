"""Shared fixtures for the test suite.

Expensive artifacts (profiled reports, calibration constants) are session
scoped: they are deterministic for a fixed seed, and many tests only read
them.
"""

from __future__ import annotations

import pytest

from repro.analysis.rng import RngFactory
from repro.npu import (
    CannStyleProfiler,
    FrequencyTimeline,
    GroundTruthEvaluator,
    NpuDevice,
    PowerTelemetry,
    default_npu_spec,
    noise_free_spec,
)
from repro.npu.pipelines import Pipe
from repro.npu.timeline import Scenario
from repro.workloads import generate
from repro.workloads.operator import ComputeCharacter, OperatorSpec


@pytest.fixture(scope="session")
def npu_spec():
    """The default calibrated NPU description."""
    return default_npu_spec()


@pytest.fixture(scope="session")
def ideal_spec():
    """An NPU with noise-free instruments."""
    return noise_free_spec()


@pytest.fixture(scope="session")
def device(npu_spec):
    """A device over the default spec (shared evaluator cache)."""
    return NpuDevice(npu_spec)


@pytest.fixture(scope="session")
def ideal_device(ideal_spec):
    """A device whose instruments report exact values."""
    return NpuDevice(ideal_spec)


@pytest.fixture(scope="session")
def evaluator(npu_spec):
    """A memoised ground-truth evaluator."""
    return GroundTruthEvaluator(npu_spec)


@pytest.fixture()
def rng_factory():
    """A fresh deterministic RNG factory per test."""
    return RngFactory(1234)


@pytest.fixture(scope="session")
def small_bert_trace():
    """A small but structurally complete transformer iteration."""
    return generate("bert", scale=0.1)


@pytest.fixture(scope="session")
def small_gpt3_trace():
    """A small GPT-3 iteration (two layers)."""
    return generate("gpt3", scale=0.02)


@pytest.fixture(scope="session")
def bert_profile_reports(npu_spec, device, small_bert_trace):
    """Profiler reports for the small BERT trace at four frequencies."""
    profiler = CannStyleProfiler(npu_spec, RngFactory(7).generator("prof"))
    reports = []
    for freq in (1000.0, 1300.0, 1500.0, 1800.0):
        result = device.run(
            small_bert_trace,
            FrequencyTimeline.constant(freq),
            initial_celsius=60.0,
        )
        reports.append(profiler.profile(result))
    return reports


@pytest.fixture(scope="session")
def calibration(device, npu_spec):
    """Offline calibration constants for the default device."""
    from repro.power import run_offline_calibration
    from repro.workloads.generators import micro

    telemetry = PowerTelemetry(npu_spec, RngFactory(9).generator("telem"))
    return run_offline_calibration(
        device,
        telemetry,
        micro.mixed_calibration_load(repeats=10),
        k_loads=[micro.matmul_loop(repeats=20), micro.gelu_loop(repeats=20)],
    )


def make_compute_op(
    name: str = "op",
    scenario: Scenario = Scenario.PINGPONG_INDEPENDENT,
    n_blocks: int = 6,
    core_cycles: float = 30_000.0,
    ld_bytes: float = 1_500_000.0,
    st_bytes: float = 600_000.0,
    derate: float = 1.0,
    overhead_us: float = 1.0,
    mix: dict | None = None,
) -> OperatorSpec:
    """Handy compute-operator factory for unit tests."""
    mix = mix or {Pipe.CUBE: 0.8, Pipe.SCALAR: 0.2}
    character = ComputeCharacter(
        scenario=scenario,
        n_blocks=n_blocks,
        core_cycles_per_block=core_cycles,
        core_mix=ComputeCharacter.make_mix(mix),
        ld_bytes_per_block=ld_bytes,
        st_bytes_per_block=st_bytes,
        bandwidth_derate=derate,
        fixed_overhead_us=overhead_us,
    )
    return OperatorSpec(name=name, op_type="Test", compute=character)
