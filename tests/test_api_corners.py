"""Tests for remaining public API corners."""

import pytest

from repro.npu import NoiseSpec, default_npu_spec
from repro.npu.setfreq import AnchoredFrequencyPlan, AnchoredSwitch
from repro.perf import OperatorCycleModel
from repro.power import LoadPowerModel
from repro.workloads import build_trace
from repro.workloads.trace import TraceEntry
from tests.conftest import make_compute_op


def test_dropped_switch_count_tracks_superseded_requests():
    plan = AnchoredFrequencyPlan(
        1800.0,
        [
            AnchoredSwitch(0, 1000.0),
            AnchoredSwitch(1, 1200.0),
            AnchoredSwitch(2, 1400.0),
        ],
        extra_delay_us=10_000.0,
    )
    plan.on_op_start(0, 0.0)      # in flight until t=10,000
    plan.on_op_start(1, 100.0)    # queued
    plan.on_op_start(2, 200.0)    # supersedes the queued request
    assert plan.dropped_switch_count == 1
    assert plan.frequency_at(10_000.0) == 1000.0
    assert plan.frequency_at(20_000.0) == 1400.0  # the superseding target
    plan.reset()
    assert plan.dropped_switch_count == 0


def test_predict_many_matches_pointwise(calibration):
    model = LoadPowerModel(
        name="x", alpha_aicore=12.0, alpha_soc=20.0, constants=calibration
    )
    freqs = [1000.0, 1400.0, 1800.0]
    many = model.predict_many(freqs)
    assert len(many) == 3
    for prediction, freq in zip(many, freqs):
        assert prediction.freq_mhz == freq
        assert prediction.soc_watts == pytest.approx(
            model.predict(freq).soc_watts
        )


def test_spec_frequency_properties():
    spec = default_npu_spec()
    assert spec.min_frequency_mhz == 1000.0
    assert spec.max_frequency_mhz == 1800.0


def test_with_noise_returns_modified_copy():
    base = default_npu_spec()
    quiet = base.with_noise(
        NoiseSpec(
            duration_sigma=0.0,
            power_sigma=0.0,
            temperature_sigma_celsius=0.0,
            utilisation_sigma=0.0,
        )
    )
    assert quiet.noise.duration_sigma == 0.0
    assert base.noise.duration_sigma > 0.0
    assert quiet.memory is base.memory


def test_store_law_coefficients(npu_spec):
    op = make_compute_op(st_bytes=2_000_000.0, derate=1.0)
    model = OperatorCycleModel(op, npu_spec.memory)
    law = model.store_law
    assert law.c_cycles == pytest.approx(
        2_000_000.0 / npu_spec.memory.core_bytes_per_cycle
    )
    assert law.saturation_mhz == pytest.approx(
        npu_spec.memory.saturation_frequency()
    )


def test_trace_total_gap():
    op = make_compute_op(name="gap.op")
    trace = build_trace(
        "gap",
        [TraceEntry(op, gap_before_us=10.0), TraceEntry(op, gap_before_us=5.0)],
    )
    assert trace.total_gap_us() == pytest.approx(15.0)
