"""Tests for the exact PWL algebra and the sensitivity analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dvfs.sensitivity import (
    operator_trade_curve,
    rank_by_exchange_rate,
)
from repro.errors import ConfigurationError, FittingError
from repro.npu import MemoryHierarchy
from repro.npu.timeline import Scenario
from repro.perf.piecewise import (
    PiecewiseLinear,
    ideal_cycle_pwl,
    ideal_transfer_pwl,
)
from repro.workloads.operator import OperatorKind, make_fixed_operator
from tests.conftest import make_compute_op

DOMAIN = (1000.0, 1800.0)


class TestPiecewiseLinear:
    def test_linear_evaluation(self):
        f = PiecewiseLinear.linear(2.0, 1.0, DOMAIN)
        assert f(1000.0) == pytest.approx(2001.0)
        assert f(1400.0) == pytest.approx(2801.0)
        assert f.segment_count() == 1

    def test_constant(self):
        f = PiecewiseLinear.constant(7.0, DOMAIN)
        assert f(1234.5) == 7.0
        assert f.slopes() == [0.0]

    def test_out_of_domain_rejected(self):
        f = PiecewiseLinear.constant(1.0, DOMAIN)
        with pytest.raises(ConfigurationError):
            f(999.0)

    def test_addition(self):
        f = PiecewiseLinear.linear(1.0, 0.0, DOMAIN)
        g = PiecewiseLinear.linear(2.0, 5.0, DOMAIN)
        h = f + g
        assert h(1500.0) == pytest.approx(1500.0 + 3005.0)
        assert h.segment_count() == 1

    def test_maximum_inserts_crossing(self):
        rising = PiecewiseLinear.linear(1.0, 0.0, DOMAIN)
        flat = PiecewiseLinear.constant(1400.0, DOMAIN)
        m = rising.maximum(flat)
        assert m.breakpoints() == pytest.approx([1400.0])
        assert m(1200.0) == 1400.0
        assert m(1600.0) == 1600.0

    def test_maximum_without_crossing_has_one_segment(self):
        f = PiecewiseLinear.linear(1.0, 0.0, DOMAIN)
        g = PiecewiseLinear.linear(1.0, -100.0, DOMAIN)
        assert f.maximum(g).segment_count() == 1

    def test_scaled(self):
        f = PiecewiseLinear.linear(1.0, 1.0, DOMAIN)
        assert f.scaled(3.0)(1000.0) == pytest.approx(3003.0)
        with pytest.raises(ConfigurationError):
            f.scaled(-1.0)

    def test_domain_mismatch_rejected(self):
        f = PiecewiseLinear.constant(1.0, DOMAIN)
        g = PiecewiseLinear.constant(1.0, (500.0, 1800.0))
        with pytest.raises(ConfigurationError):
            _ = f + g

    @given(
        s1=st.floats(-5.0, 5.0), b1=st.floats(-1e4, 1e4),
        s2=st.floats(-5.0, 5.0), b2=st.floats(-1e4, 1e4),
        x=st.floats(1000.0, 1800.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_max_matches_pointwise(self, s1, b1, s2, b2, x):
        f = PiecewiseLinear.linear(s1, b1, DOMAIN)
        g = PiecewiseLinear.linear(s2, b2, DOMAIN)
        assert f.maximum(g)(x) == pytest.approx(
            max(s1 * x + b1, s2 * x + b2), abs=1e-6, rel=1e-9
        )

    @given(
        s1=st.floats(-5.0, 5.0), b1=st.floats(-1e4, 1e4),
        s2=st.floats(-5.0, 5.0), b2=st.floats(-1e4, 1e4),
        x=st.floats(1000.0, 1800.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_add_matches_pointwise(self, s1, b1, s2, b2, x):
        f = PiecewiseLinear.linear(s1, b1, DOMAIN)
        g = PiecewiseLinear.linear(s2, b2, DOMAIN)
        assert (f + g)(x) == pytest.approx(
            (s1 + s2) * x + b1 + b2, abs=1e-6, rel=1e-9
        )


class TestIdealCycleModel:
    def test_transfer_breakpoint_at_saturation(self):
        memory = MemoryHierarchy()
        derate = 1.0
        pwl = ideal_transfer_pwl(5_000_000.0, memory, derate, DOMAIN)
        fs = memory.saturation_frequency(derate)
        assert pwl.breakpoints() == pytest.approx([fs])

    def test_transfer_outside_range_has_single_segment(self):
        memory = MemoryHierarchy()
        # fs below 1000 MHz: fully saturated across the domain.
        pwl = ideal_transfer_pwl(5_000_000.0, memory, 0.5, DOMAIN)
        assert pwl.segment_count() == 1

    def test_zero_volume_constant(self):
        pwl = ideal_transfer_pwl(0.0, MemoryHierarchy(), 1.0, DOMAIN)
        assert pwl(1400.0) == 0.0

    @pytest.mark.parametrize("scenario", list(Scenario))
    def test_all_scenarios_convex(self, scenario, npu_spec):
        op = make_compute_op(scenario=scenario, derate=0.9)
        pwl = ideal_cycle_pwl(op, npu_spec.memory)
        assert pwl.is_convex()

    @pytest.mark.parametrize("scenario", list(Scenario))
    def test_segment_count_in_paper_band(self, scenario, npu_spec):
        """Sect. 4.3: the ideal model has one to five linear segments
        within the DVFS range (for one Ld/St saturation point each)."""
        op = make_compute_op(
            scenario=scenario,
            derate=0.9,
            ld_bytes=2_000_000.0,
            st_bytes=900_000.0,
        )
        pwl = ideal_cycle_pwl(op, npu_spec.memory)
        assert 1 <= pwl.segment_count() <= 5

    def test_compute_bound_has_no_breakpoints(self, npu_spec):
        op = make_compute_op(
            core_cycles=1e6, ld_bytes=1000.0, st_bytes=1000.0, derate=1.0
        )
        pwl = ideal_cycle_pwl(op, npu_spec.memory)
        assert pwl.segment_count() <= 2

    def test_matches_smoothed_model_away_from_corner(self, npu_spec, evaluator):
        """Far from the saturation corner the ideal and smoothed models
        agree; near the corner they differ by at most the 2^(1/p) bound."""
        op = make_compute_op(derate=1.0)
        pwl = ideal_cycle_pwl(op, npu_spec.memory)
        for freq in (1000.0, 1800.0):
            smoothed = evaluator.duration_us(op, freq) * freq
            ideal = pwl(freq)
            assert smoothed == pytest.approx(ideal, rel=0.12)
            assert smoothed >= ideal - 1e-6

    def test_rejects_noncompute(self, npu_spec):
        op = make_fixed_operator("a", OperatorKind.AICPU, 5.0)
        with pytest.raises(ConfigurationError):
            ideal_cycle_pwl(op, npu_spec.memory)


@pytest.fixture(scope="module")
def fitted_models():
    from repro import EnergyOptimizer, OptimizerConfig
    from repro.dvfs import GaConfig
    from repro.workloads import generate

    optimizer = EnergyOptimizer(
        OptimizerConfig(ga=GaConfig(population_size=40, iterations=40))
    )
    trace = generate("gpt3", scale=0.02)
    bundle = optimizer.profile(trace)
    models = optimizer.build_models(bundle)
    freqs = optimizer.config.npu.frequencies.points
    return models, freqs


class TestSensitivity:
    def test_trade_curve_shape(self, fitted_models):
        models, freqs = fitted_models
        name = next(
            n for n, m in models.performance.operators.items()
            if m.op_type == "MatMul"
        )
        curve = operator_trade_curve(
            name, models.performance, models.power, freqs
        )
        assert len(curve.points) == len(freqs)
        baseline = curve.points[-1]
        assert baseline.performance_loss == pytest.approx(0.0)
        assert baseline.power_gain == pytest.approx(0.0)
        lowest = curve.points[0]
        assert lowest.performance_loss > 0.3  # compute bound: ~1/f
        assert lowest.power_gain > 0.2

    def test_memory_op_better_exchange_than_matmul(self, fitted_models):
        models, freqs = fitted_models
        matmul = next(
            n for n, m in models.performance.operators.items()
            if m.op_type == "MatMul"
        )
        gelu = next(
            n for n, m in models.performance.operators.items()
            if m.op_type == "Gelu"
        )
        matmul_curve = operator_trade_curve(
            matmul, models.performance, models.power, freqs
        )
        gelu_curve = operator_trade_curve(
            gelu, models.performance, models.power, freqs
        )
        assert gelu_curve.at(1300.0).exchange_rate > (
            matmul_curve.at(1300.0).exchange_rate
        )

    def test_unknown_operator_rejected(self, fitted_models):
        models, freqs = fitted_models
        with pytest.raises(FittingError):
            operator_trade_curve(
                "nope", models.performance, models.power, freqs
            )

    def test_at_unknown_frequency_rejected(self, fitted_models):
        models, freqs = fitted_models
        name = next(iter(models.performance.operators))
        curve = operator_trade_curve(
            name, models.performance, models.power, freqs
        )
        with pytest.raises(FittingError):
            curve.at(1234.0)

    def test_ranking_sorted_by_exchange(self, fitted_models):
        models, freqs = fitted_models
        ranking = rank_by_exchange_rate(
            models.performance, models.power, freqs, max_loss=0.05
        )
        assert ranking, "expected at least one candidate under 5% loss"
        rates = [point.exchange_rate for _, point in ranking]
        finite = [r for r in rates if np.isfinite(r)]
        assert finite == sorted(finite, reverse=True)

    def test_best_exchange_respects_cap(self, fitted_models):
        models, freqs = fitted_models
        name = next(
            n for n, m in models.performance.operators.items()
            if m.op_type == "MatMul"
        )
        curve = operator_trade_curve(
            name, models.performance, models.power, freqs
        )
        best = curve.best_exchange(max_loss=0.03)
        if best is not None:
            assert best.performance_loss <= 0.03
