"""Tests for the synthetic traffic generator and driver (repro.traffic)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import OptimizerConfig
from repro.dvfs import GaConfig
from repro.errors import WorkloadError
from repro.serve.gateway import GatewayConfig
from repro.serve.shards import ShardedStrategyStore
from repro.traffic import (
    TrafficConfig,
    build_schedule,
    build_workload_population,
    diurnal_multiplier,
    drive_traffic,
    run_bench,
    zipf_weights,
)
from repro.traffic.driver import _percentiles

TINY_GA = GaConfig(population_size=8, iterations=6, seed=0, patience=4)


@pytest.fixture(scope="module")
def tiny_optimizer_config():
    return OptimizerConfig(ga=TINY_GA, seed=0)


class TestZipf:
    def test_normalized_and_monotonic(self):
        weights = zipf_weights(100, 1.1)
        assert weights.shape == (100,)
        assert np.isclose(weights.sum(), 1.0)
        assert np.all(np.diff(weights) <= 0)

    def test_zero_exponent_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            zipf_weights(0, 1.0)
        with pytest.raises(WorkloadError):
            zipf_weights(10, -0.1)


class TestDiurnal:
    def test_oscillates_around_one(self):
        t = np.linspace(0.0, 100.0, 1000)
        values = diurnal_multiplier(t, period_seconds=100.0, amplitude=0.5)
        assert values.max() <= 1.5 + 1e-9
        assert values.min() >= 0.5 - 1e-9
        assert np.isclose(np.mean(values), 1.0, atol=0.01)

    def test_clipped_at_floor(self):
        values = diurnal_multiplier(
            np.linspace(0.0, 10.0, 100), period_seconds=10.0, amplitude=2.0
        )
        assert values.min() >= 0.05

    def test_validation(self):
        with pytest.raises(WorkloadError):
            diurnal_multiplier(0.0, period_seconds=0.0, amplitude=0.5)


class TestSchedule:
    def test_deterministic_for_seed(self):
        first = build_schedule(
            5000, 16, np.random.default_rng(7), base_rate=10_000.0
        )
        second = build_schedule(
            5000, 16, np.random.default_rng(7), base_rate=10_000.0
        )
        assert np.array_equal(first.arrival_s, second.arrival_s)
        assert np.array_equal(first.workload_idx, second.workload_idx)
        assert np.array_equal(first.source_idx, second.source_idx)
        assert np.array_equal(first.bursts, second.bursts)

    def test_shapes_and_ranges(self):
        schedule = build_schedule(
            2000, 8, np.random.default_rng(0), sources=4
        )
        assert len(schedule) == 2000
        assert np.all(np.diff(schedule.arrival_s) >= 0)
        assert schedule.workload_idx.min() >= 0
        assert schedule.workload_idx.max() < 8
        assert schedule.source_idx.min() >= 0
        assert schedule.source_idx.max() < 4

    def test_bursts_do_not_stack(self):
        """Regression: overlapping burst windows must not compound —
        the effective multiplier is bounded by the largest magnitude,
        so the schedule's virtual duration stays near the nominal
        ``requests / base_rate`` horizon instead of collapsing."""
        requests, base_rate = 20_000, 50_000.0
        schedule = build_schedule(
            requests,
            16,
            np.random.default_rng(0),
            base_rate=base_rate,
            burst_count=12,
            burst_magnitude=4.0,
        )
        horizon = requests / base_rate
        # Max instantaneous rate is base * (1 + amplitude) * magnitude,
        # so the duration can shrink at most ~6.4x; the stacking bug
        # compressed it ~15x.
        assert schedule.duration_s > horizon / 7.0
        assert schedule.duration_s < horizon * 3.0
        grid = np.linspace(0.0, schedule.duration_s, 512)
        assert schedule.burst_multiplier_at(grid).max() <= 4.0

    def test_zipf_popularity_skews_traffic(self):
        schedule = build_schedule(
            20_000, 32, np.random.default_rng(0), zipf_s=1.1
        )
        counts = np.bincount(schedule.workload_idx, minlength=32)
        assert counts[0] > counts[16] > 0

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(WorkloadError):
            build_schedule(0, 4, rng)
        with pytest.raises(WorkloadError):
            build_schedule(10, 4, rng, sources=0)
        with pytest.raises(WorkloadError):
            build_schedule(10, 4, rng, base_rate=0.0)
        with pytest.raises(WorkloadError):
            build_schedule(10, 4, rng, burst_magnitude=0.5)


class TestWorkloadPopulation:
    def test_deterministic_distinct_fingerprints(self):
        first = build_workload_population(12, seed=3)
        second = build_workload_population(12, seed=3)
        fingerprints = [trace.fingerprint() for trace in first]
        assert fingerprints == [trace.fingerprint() for trace in second]
        assert len(set(fingerprints)) == 12

    def test_seed_changes_population(self):
        a = build_workload_population(4, seed=0)[0].fingerprint()
        b = build_workload_population(4, seed=1)[0].fingerprint()
        assert a != b

    def test_validation(self):
        with pytest.raises(WorkloadError):
            build_workload_population(0)


class TestPercentiles:
    def test_zero_safe(self):
        assert _percentiles(np.array([])) == {
            "p50": 0.0, "p90": 0.0, "p99": 0.0, "p999": 0.0, "max": 0.0
        }

    def test_ordering(self):
        values = _percentiles(np.arange(1, 1001, dtype=np.float64))
        assert values["p50"] <= values["p90"] <= values["p99"]
        assert values["p99"] <= values["p999"] <= values["max"] == 1000.0


class TestTrafficConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            TrafficConfig(requests=0)
        with pytest.raises(WorkloadError):
            TrafficConfig(workloads=0)
        with pytest.raises(WorkloadError):
            TrafficConfig(window=0)
        with pytest.raises(WorkloadError):
            TrafficConfig(verify=-1)


class TestDrive:
    def test_small_drive_invariants(self, tmp_path, tiny_optimizer_config):
        config = TrafficConfig(
            requests=300, workloads=4, window=64, seed=0, verify=0
        )
        with ShardedStrategyStore(
            tmp_path / "store", shards=2, hot_slots=16
        ) as store:
            report = drive_traffic(
                config, tiny_optimizer_config, store=store
            )
        assert report.offered == 300
        assert report.admitted + report.shed == 300
        assert report.failed == 0
        assert report.ga_runs == 4  # one per distinct workload
        assert 0.0 <= report.hit_rate <= 1.0
        assert report.latency_us["p50"] <= report.latency_us["p99"]
        # Computed (miss) latencies are reported separately from hits and
        # dominate them: a miss pays a GA run, a hit a store lookup.
        assert report.miss_latency_us["p50"] <= report.miss_latency_us["p99"]
        assert report.miss_latency_us["p50"] > report.hit_latency_us["p99"]
        assert report.surrogate_runs == 0  # surrogate off by default
        rows = {row["metric"]: row["value"] for row in report.rows()}
        assert rows["miss_p50_us"] == f"{report.miss_latency_us['p50']:.1f}"
        assert rows["hit_p99_us"] == f"{report.hit_latency_us['p99']:.1f}"
        assert rows["surrogate_runs"] == 0
        # The report serializes cleanly (what BENCH_serve.json holds).
        document = report.to_dict()
        json.dumps(document)
        assert document["miss_latency_us"] == report.miss_latency_us
        assert sum(report.source_counts.values()) == report.offered

    def test_surrogate_drive_counts_runs(self, tmp_path):
        from repro.dvfs.surrogate import SurrogateConfig

        optimizer_config = OptimizerConfig(
            ga=TINY_GA, seed=0
        ).with_surrogate(
            SurrogateConfig(
                enabled=True, train_size=32, holdout_size=16, r2_floor=-1e9
            )
        )
        config = TrafficConfig(
            requests=200, workloads=3, window=64, seed=0, verify=0
        )
        with ShardedStrategyStore(
            tmp_path / "store", shards=2, hot_slots=16
        ) as store:
            report = drive_traffic(config, optimizer_config, store=store)
        # The r2 floor is disarmed, so every GA miss took the surrogate.
        assert report.ga_runs == 3
        assert report.surrogate_runs == report.ga_runs
        assert report.failed == 0

    def test_rate_limited_drive_sheds(self, tmp_path, tiny_optimizer_config):
        config = TrafficConfig(
            requests=400, workloads=2, window=64, seed=0, verify=0,
            base_rate=10_000.0, prewarm=True,
        )
        gateway_config = GatewayConfig(
            rate_per_source=100.0, burst_per_source=5.0
        )
        with ShardedStrategyStore(
            tmp_path / "store", shards=1, hot_slots=0
        ) as store:
            report = drive_traffic(
                config, tiny_optimizer_config, gateway_config, store=store
            )
        assert report.shed > 0
        assert report.shed_by_reason.get("rate_limited", 0) == report.shed
        assert report.admitted + report.shed == 400
        assert report.failed == 0

    def test_run_bench_writes_report_and_verifies(
        self, tmp_path, tiny_optimizer_config
    ):
        output = tmp_path / "BENCH_serve.json"
        config = TrafficConfig(
            requests=200, workloads=3, window=64, seed=0, verify=3
        )
        report = run_bench(
            config,
            tiny_optimizer_config,
            store_root=tmp_path / "bench-root",
            shards=2,
            hot_slots=16,
            output=output,
        )
        assert report.byte_identical is True
        assert report.verified_workloads == 3
        document = json.loads(output.read_text(encoding="utf-8"))
        assert document["meta"]["requests"] == 200
        assert document["traffic"]["byte_identical"] is True

    def test_bench_cli_smoke(self, tmp_path, capsys):
        from repro.serve.cli import main

        exit_code = main([
            "bench-traffic",
            "--requests", "200",
            "--workloads", "3",
            "--window", "64",
            "--population", "8",
            "--iterations", "6",
            "--patience", "4",
            "--verify", "2",
            "--assert-max-shed-rate", "0.0",
            "--output", str(tmp_path / "bench.json"),
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "byte_identical" in out
        assert (tmp_path / "bench.json").exists()
