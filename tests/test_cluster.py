"""Tests for the multi-device cluster layer (repro.cluster)."""

import math

import numpy as np
import pytest

from repro.cluster import (
    ClusterScorer,
    ClusterSpec,
    InterconnectSpec,
    SimulatedCluster,
    VariedEvaluator,
    build_frequency_tables,
    cached_reclaim,
    device_request_fingerprint,
    reclaim_slack,
    search_cluster_frequencies,
)
from repro.cluster.cli import main as cluster_main
from repro.cluster.spec import DeviceOverride, DeviceVariation
from repro.core.config import OptimizerConfig
from repro.dvfs.ga import GaConfig
from repro.errors import ConfigurationError, StrategyError
from repro.npu.execution import GroundTruthEvaluator
from repro.serve.store import StrategyStore
from repro.units import gbps_to_bytes_per_us
from repro.workloads import generate


@pytest.fixture(scope="module")
def tiny_trace():
    """A small GPT-3 iteration; cluster runs replay it N times."""
    return generate("gpt3", scale=0.01)


@pytest.fixture(scope="module")
def small_cluster():
    return SimulatedCluster(ClusterSpec(n_devices=4, seed=0))


@pytest.fixture(scope="module")
def small_tables(small_cluster, tiny_trace):
    return build_frequency_tables(small_cluster, tiny_trace)


class TestClusterSpec:
    def test_profiles_are_deterministic(self):
        spec = ClusterSpec(n_devices=8, seed=3)
        assert spec.device_profiles() == spec.device_profiles()
        assert (
            spec.device_profiles()
            == ClusterSpec(n_devices=8, seed=3).device_profiles()
        )

    def test_different_seeds_differ(self):
        a = ClusterSpec(n_devices=8, seed=0).device_profiles()
        b = ClusterSpec(n_devices=8, seed=1).device_profiles()
        assert a != b

    def test_growing_the_cluster_preserves_prefix(self):
        """Profile i depends only on (seed, i): 2 draws per device."""
        small = ClusterSpec(n_devices=4, seed=0).device_profiles()
        grown = ClusterSpec(n_devices=8, seed=0).device_profiles()
        assert grown[:4] == small

    def test_draw_clamps_respected(self):
        variation = DeviceVariation(
            speed_sigma=10.0,
            max_speed_spread=0.05,
            ambient_sigma_celsius=100.0,
            max_ambient_spread_celsius=3.0,
        )
        for profile in ClusterSpec(
            n_devices=32, variation=variation, seed=0
        ).device_profiles():
            assert 0.95 <= profile.duration_scale <= 1.05
            assert -3.0 <= profile.ambient_offset_celsius <= 3.0

    def test_no_variation_means_identical_devices(self):
        profiles = ClusterSpec(
            n_devices=4, variation=DeviceVariation.none(), seed=0
        ).device_profiles()
        assert all(p.duration_scale == 1.0 for p in profiles)
        assert all(p.ambient_offset_celsius == 0.0 for p in profiles)

    def test_override_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(
                n_devices=2, overrides=(DeviceOverride(device_id=5),)
            )

    def test_duplicate_override_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(
                n_devices=4,
                overrides=(
                    DeviceOverride(device_id=1),
                    DeviceOverride(device_id=1),
                ),
            )

    def test_with_degraded_device_replaces_existing_override(self):
        spec = ClusterSpec(n_devices=4).with_degraded_device(2, 1.2)
        spec = spec.with_degraded_device(2, 1.5)
        assert len(spec.overrides) == 1
        assert spec.overrides[0].extra_duration_scale == 1.5
        profile = spec.device_profiles()[2]
        assert profile.degraded
        assert profile.total_duration_scale == pytest.approx(
            profile.duration_scale * 1.5
        )


class TestCollective:
    def test_ring_allreduce_law(self):
        spec = InterconnectSpec(link_bandwidth_gbps=50.0, link_latency_us=12.0)
        payload, n = 64 * 2**20, 8
        expected = (
            2 * (n - 1) / n * payload / gbps_to_bytes_per_us(50.0)
            + 2 * (n - 1) * 12.0
        )
        assert spec.allreduce_us(payload, n) == pytest.approx(expected)

    def test_single_device_is_free(self):
        assert InterconnectSpec().allreduce_us(2**30, 1) == 0.0

    def test_bandwidth_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            InterconnectSpec(link_bandwidth_gbps=0.0)


class TestVariedEvaluator:
    def test_scales_duration_only(self, npu_spec, small_bert_trace):
        inner = GroundTruthEvaluator(npu_spec)
        varied = VariedEvaluator(inner, 1.07)
        spec = small_bert_trace.entries[0].spec
        base = inner.evaluate(spec, 1800.0)
        scaled = varied.evaluate(spec, 1800.0)
        assert scaled.duration_us == pytest.approx(base.duration_us * 1.07)
        assert varied.soc_power(base, 5.0) == inner.soc_power(base, 5.0)
        assert varied.idle_soc_power(1800.0, 0.0) == inner.idle_soc_power(
            1800.0, 0.0
        )


class TestBarrierSemantics:
    def test_step_is_straggler_plus_allreduce(
        self, small_cluster, tiny_trace
    ):
        result = small_cluster.run_step(tiny_trace)
        arrivals = [d.compute_us for d in result.devices]
        assert result.compute_us == max(arrivals)
        assert result.straggler_id == arrivals.index(max(arrivals))
        assert result.step_us == pytest.approx(
            max(arrivals) + small_cluster.spec.allreduce_us
        )

    def test_straggler_never_waits(self, small_cluster, tiny_trace):
        result = small_cluster.run_step(tiny_trace)
        straggler = result.devices[result.straggler_id]
        assert straggler.wait_us == 0.0
        for outcome in result.devices:
            assert outcome.wait_us == pytest.approx(
                result.compute_us - outcome.compute_us
            )

    def test_barrier_wait_costs_energy(self, small_cluster, tiny_trace):
        result = small_cluster.run_step(tiny_trace)
        for outcome in result.devices:
            assert outcome.idle_soc_energy_j > 0.0
            assert (
                outcome.total_soc_energy_j
                > outcome.soc_energy_j
            )

    def test_strategy_count_mismatch_rejected(
        self, small_cluster, tiny_trace, small_tables
    ):
        plan = reclaim_slack(small_tables, tiny_trace.name)
        with pytest.raises(ConfigurationError):
            small_cluster.run_step(tiny_trace, plan.strategies[:2])


class TestSlackReclamation:
    def test_zero_regression_and_energy_savings(
        self, small_cluster, tiny_trace, small_tables
    ):
        spec = small_cluster.spec
        baseline = small_cluster.run_step(tiny_trace)
        plan = reclaim_slack(
            small_tables, tiny_trace.name, allreduce_us=spec.allreduce_us
        )
        reclaimed = small_cluster.run_step(
            tiny_trace,
            plan.strategies,
            target_compute_us=plan.target_compute_us,
        )
        report = reclaimed.report(baseline)
        assert report.step_time_regression <= 0.005
        assert report.soc_energy_savings > 0.0
        assert reclaimed.incidents == ()

    def test_straggler_keeps_max_frequency(self, small_tables, tiny_trace):
        plan = reclaim_slack(small_tables, tiny_trace.name)
        grid_max = small_tables[0].freqs_mhz[-1]
        assert plan.frequencies_mhz[plan.straggler_id] == grid_max
        assert min(plan.frequencies_mhz) < grid_max

    def test_slack_margin_downclocks_deeper(self, small_tables, tiny_trace):
        tight = reclaim_slack(small_tables, tiny_trace.name)
        loose = reclaim_slack(
            small_tables, tiny_trace.name, slack_margin=0.05
        )
        assert sum(loose.frequencies_mhz) <= sum(tight.frequencies_mhz)
        assert loose.target_compute_us > tight.target_compute_us

    def test_infeasible_barrier_raises(self, small_tables):
        with pytest.raises(StrategyError):
            small_tables[0].lowest_index_meeting(1.0)


class TestClusterScorer:
    def test_baseline_individual_scores_two(self, small_cluster, small_tables):
        scorer = ClusterScorer(
            small_tables, small_cluster.spec.allreduce_us
        )
        baseline = np.full(
            (1, scorer.stage_count), scorer.frequency_count - 1
        )
        assert scorer.score(baseline)[0] == pytest.approx(2.0)

    def test_ga_never_loses_to_uniform_max(
        self, small_cluster, small_tables, tiny_trace
    ):
        plan, result, breakdown = search_cluster_frequencies(
            small_tables,
            tiny_trace.name,
            allreduce_us=small_cluster.spec.allreduce_us,
            config=GaConfig(population_size=16, iterations=20, seed=0),
        )
        scorer = ClusterScorer(
            small_tables, small_cluster.spec.allreduce_us
        )
        assert breakdown.feasible
        assert result.best_score >= 2.0
        assert breakdown.fleet_soc_energy_j <= scorer.baseline_energy_j


class TestDeterminismAndCaching:
    def test_tables_identical_across_worker_counts(
        self, small_cluster, tiny_trace, small_tables
    ):
        pooled = build_frequency_tables(
            small_cluster, tiny_trace, workers=2
        )
        assert pooled == small_tables

    def test_cached_reclaim_round_trip(
        self, small_cluster, tiny_trace, small_tables, tmp_path
    ):
        store = StrategyStore(tmp_path)
        cold = cached_reclaim(small_cluster, tiny_trace, store)
        warm = cached_reclaim(small_cluster, tiny_trace, store)
        assert cold.computed and cold.hit_count == 0
        assert not warm.computed
        assert warm.hit_count == small_cluster.spec.n_devices
        direct = reclaim_slack(
            small_tables,
            tiny_trace.name,
            allreduce_us=small_cluster.spec.allreduce_us,
        )
        assert warm.strategy.strategy_json() == direct.strategy_json()

    def test_degraded_device_changes_only_its_fingerprint(
        self, small_cluster, tiny_trace
    ):
        spec = small_cluster.spec
        degraded = spec.with_degraded_device(1, 1.3)
        healthy = {
            p.device_id: device_request_fingerprint(tiny_trace, spec, p)
            for p in spec.device_profiles()
        }
        after = {
            p.device_id: device_request_fingerprint(tiny_trace, degraded, p)
            for p in degraded.device_profiles()
        }
        assert healthy[1] != after[1]
        for device_id in (0, 2, 3):
            # Same profile hash; only the shared config hash differs via
            # nothing — overrides are not part of the config hash.
            assert healthy[device_id] == after[device_id]


class TestFaultStory:
    def test_degradation_retargets_and_logs(self, tiny_trace):
        spec = ClusterSpec(n_devices=4, seed=0)
        cluster = SimulatedCluster(spec)
        plan = reclaim_slack(
            build_frequency_tables(cluster, tiny_trace),
            tiny_trace.name,
            allreduce_us=spec.allreduce_us,
        )
        baseline = cluster.run_step(tiny_trace)
        victim = (baseline.straggler_id + 1) % spec.n_devices
        degraded = SimulatedCluster(
            spec.with_degraded_device(victim, 1.4, reason="test")
        )
        stale = degraded.run_step(
            tiny_trace,
            plan.strategies,
            target_compute_us=plan.target_compute_us,
        )
        overruns = [
            i for i in stale.incidents if i.kind == "barrier_overrun"
        ]
        assert overruns
        assert any(f"device {victim} " in i.detail for i in overruns)
        assert len(degraded.incident_log) >= len(overruns)
        events = degraded.devices[victim].injector.events
        assert any(e.kind == "degraded" for e in events)
        new_plan = reclaim_slack(
            build_frequency_tables(degraded, tiny_trace),
            tiny_trace.name,
            allreduce_us=spec.allreduce_us,
        )
        assert new_plan.straggler_id == victim
        retargeted = degraded.run_step(
            tiny_trace,
            new_plan.strategies,
            target_compute_us=new_plan.target_compute_us,
        )
        assert retargeted.incidents == ()


class TestWiring:
    def test_optimizer_config_accepts_cluster(self):
        spec = ClusterSpec(n_devices=2)
        config = OptimizerConfig().with_cluster(spec)
        assert config.cluster is spec
        assert OptimizerConfig().cluster is None

    def test_optimizer_config_rejects_non_cluster(self):
        with pytest.raises(ConfigurationError):
            OptimizerConfig(cluster="not a cluster")

    def test_cluster_result_render(self, small_cluster, tiny_trace):
        baseline = small_cluster.run_step(tiny_trace)
        report = small_cluster.run_step(tiny_trace).report(baseline)
        text = report.render()
        assert small_cluster.spec.name in text
        assert tiny_trace.name in text
        assert "straggler" in text
        assert math.isclose(report.step_time_regression, 0.0, abs_tol=1e-9)

    def test_cli_smoke(self, capsys):
        exit_code = cluster_main(
            ["gpt3", "--scale", "0.005", "--devices", "2"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "slack reclamation" in out

    def test_cli_unknown_workload_fails_cleanly(self, capsys):
        exit_code = cluster_main(["nonsense", "--devices", "2"])
        assert exit_code == 1
        assert "error:" in capsys.readouterr().err
