"""Equivalence suite for the batched cold-path pipeline.

The batched implementations (one-pass grid profiling, stacked model
fitting, grouped scorer tables, vectorised GA crossover) must reproduce
the scalar reference paths bit for bit — or, where a different-but-exact
algorithm replaces an iterative one (Func. 1's linear least squares vs
``curve_fit``), to within 1e-9 relative.  Property-based tests draw
random operating points; the pipeline-level tests run both arms of the
real optimizer and compare everything downstream of the noise streams.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import batching
from repro.core.config import OptimizerConfig
from repro.core.optimizer import EnergyOptimizer
from repro.dvfs.ga import GaConfig, run_search
from repro.dvfs.scoring import StrategyScorer
from repro.perf.fitting import (
    BATCH_FITTERS,
    FitFunction,
    fit_func1_batch,
    fit_func2_batch,
    fit_performance,
)
from repro.perf.model import build_performance_model_batched
from repro.power.model import PowerObservation, solve_alpha, solve_alpha_batch
from repro.workloads import generate

GRID3 = (1000.0, 1400.0, 1800.0)
GRID2 = (1000.0, 1800.0)

durations3 = st.tuples(
    st.floats(0.5, 5000.0),
    st.floats(0.5, 5000.0),
    st.floats(0.5, 5000.0),
)


@pytest.fixture(scope="module")
def constants():
    """One offline calibration, shared by the alpha-solve tests."""
    return EnergyOptimizer(OptimizerConfig()).calibrate()


@pytest.fixture(scope="module")
def pipeline():
    """One profiled+modelled gpt3 pipeline under the batched cold path."""
    trace = generate("gpt3", scale=0.02)
    config = OptimizerConfig()
    optimizer = EnergyOptimizer(config)
    bundle = optimizer.profile(trace)
    models = optimizer.build_models(bundle)
    candidates = optimizer.preprocess(bundle)
    return trace, config, bundle, models, candidates


def _scorer(pipeline_parts):
    trace, config, _, models, candidates = pipeline_parts
    return StrategyScorer(
        trace=trace,
        stages=candidates.stages,
        perf_model=models.performance,
        power_table=models.power,
        freqs_mhz=config.npu.frequencies.points,
        performance_loss_target=config.performance_loss_target,
        objective=config.objective,
    )


class TestBatchedFitters:
    @given(st.lists(durations3, min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_func2_three_point_bitwise(self, rows):
        times = np.array(rows)
        params, valid = fit_func2_batch(GRID3, times)
        assert bool(valid.all())
        for i, row in enumerate(rows):
            scalar = fit_performance(
                GRID3, list(row), FitFunction.QUADRATIC_NO_LINEAR
            )
            assert tuple(params[i]) == scalar.params

    @given(st.lists(st.tuples(st.floats(0.5, 5000.0), st.floats(0.5, 5000.0)), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_func2_two_point_bitwise(self, rows):
        times = np.array(rows)
        params, valid = fit_func2_batch(GRID2, times)
        assert bool(valid.all())
        for i, row in enumerate(rows):
            scalar = fit_performance(
                GRID2, list(row), FitFunction.QUADRATIC_NO_LINEAR
            )
            assert tuple(params[i]) == scalar.params

    @given(st.lists(durations3, min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_func1_matches_curve_fit_within_tolerance(self, rows):
        times = np.array(rows)
        params, valid = fit_func1_batch(GRID3, times)
        assert bool(valid.all())
        grid = np.linspace(1000.0, 1800.0, 9)
        f = np.asarray(GRID3)
        basis = np.column_stack([f, np.ones_like(f), 1.0 / f])
        for i, row in enumerate(rows):
            # Func. 1 is linear in its parameters, so the batched fit must
            # be the exact least-squares optimum: compare against an
            # independent normal-equations solve at 1e-9.
            exact = np.linalg.solve(
                basis.T @ basis, basis.T @ np.asarray(row)
            )
            scalar = fit_performance(GRID3, list(row), FitFunction.QUADRATIC)
            batched_fit = scalar.__class__(
                FitFunction.QUADRATIC, tuple(float(p) for p in params[i])
            )
            exact_fit = scalar.__class__(
                FitFunction.QUADRATIC, tuple(float(p) for p in exact)
            )
            got = batched_fit.predict_time_us(grid)
            want = exact_fit.predict_time_us(grid)
            rel = np.abs(got - want) / np.maximum(np.abs(want), 1e-300)
            assert float(rel.max()) <= 1e-9
            # curve_fit is iterative; its own xtol dominates this bound.
            approx = scalar.predict_time_us(grid)
            rel = np.abs(got - approx) / np.maximum(np.abs(approx), 1e-300)
            assert float(rel.max()) <= 1e-6

    def test_invalid_samples_masked_not_raised(self):
        times = np.array([[10.0, 8.0, 6.0], [0.0, 8.0, 6.0]])
        params, valid = fit_func2_batch(GRID3, times)
        assert valid.tolist() == [True, False]
        params, valid = fit_func1_batch(GRID3, times)
        assert valid.tolist() == [True, False]

    def test_func3_has_no_batch_fitter(self):
        assert FitFunction.EXPONENTIAL not in BATCH_FITTERS


class TestBatchedAlphaSolve:
    @given(
        st.lists(
            st.tuples(st.floats(5.0, 400.0), st.floats(10.0, 500.0)),
            min_size=1,
            max_size=40,
        ),
        st.sampled_from([1000.0, 1400.0, 1800.0]),
    )
    @settings(max_examples=100, deadline=None)
    def test_bitwise_vs_scalar(self, constants, rows, freq):
        aicore = np.array([a for a, _ in rows])
        soc = np.array([s for _, s in rows])
        alpha_a, alpha_s = solve_alpha_batch(freq, aicore, soc, constants)
        for i, (a, s) in enumerate(rows):
            obs = PowerObservation(freq_mhz=freq, aicore_watts=a, soc_watts=s)
            exp_a, exp_s = solve_alpha(obs, constants)
            assert float(alpha_a[i]) == exp_a
            assert float(alpha_s[i]) == exp_s


class TestOnePassProfiling:
    def test_reports_and_readings_match_sequential(self):
        trace = generate("bert", scale=0.02)

        def profile(flagged):
            batching.set_batched_cold_path(flagged)
            try:
                return EnergyOptimizer(OptimizerConfig()).profile(trace)
            finally:
                batching.set_batched_cold_path(True)

        batched = profile(True)
        reference = profile(False)
        assert batched.grid is not None
        assert reference.grid is None
        assert len(batched.reports) == len(reference.reports)
        for got, want in zip(batched.reports, reference.reports):
            assert got.freq_label_mhz == want.freq_label_mhz
            assert got.trace_name == want.trace_name
            assert got.total_duration_us == want.total_duration_us
            assert got.operators == want.operators
        assert batched.power_readings == reference.power_readings
        assert (
            batched.baseline_report.operators
            == reference.baseline_report.operators
        )

    def test_power_array_table_matches_dict_builder(self, pipeline, constants):
        from repro.power.optable import (
            build_operator_power_table_arrays,
            build_operator_power_table_batched,
        )

        _, _, bundle, _, _ = pipeline
        assert bundle.power_arrays  # the batched bundle carries the arrays
        from_arrays = build_operator_power_table_arrays(
            bundle.grid.names, bundle.power_arrays, constants
        )
        from_dicts = build_operator_power_table_batched(
            bundle.power_readings, constants
        )
        assert set(from_arrays.entries) == set(from_dicts.entries)
        for name, want in from_dicts.entries.items():
            got = from_arrays.entries[name]
            assert got.alpha_aicore == want.alpha_aicore
            assert got.alpha_soc == want.alpha_soc

    def test_lazy_power_readings_behave_like_dicts(self, pipeline):
        _, _, bundle, _, _ = pipeline
        readings = bundle.power_readings
        assert len(readings) == len(bundle.power_arrays)
        for freq in readings:
            assert freq in readings
            per_op = readings[freq]
            read_a, read_s = bundle.power_arrays[freq]
            assert list(per_op) == list(bundle.grid.names)
            for i, name in enumerate(bundle.grid.names):
                assert per_op[name] == (float(read_a[i]), float(read_s[i]))

    def test_grid_durations_match_reports(self, pipeline):
        _, config, bundle, _, _ = pipeline
        grid = bundle.grid
        assert grid is not None
        for col, freq in enumerate(grid.freqs_mhz):
            report = next(
                r for r in bundle.reports if r.freq_label_mhz == freq
            )
            measured = np.array([op.duration_us for op in report.operators])
            assert np.array_equal(grid.durations[:, col], measured)

    def test_batched_model_matches_scalar_model(self, pipeline):
        _, config, bundle, models, _ = pipeline
        from repro.perf.model import build_performance_model

        scalar = build_performance_model(
            list(bundle.reports),
            function=config.fit_function,
            fit_freqs_mhz=config.profile_freqs_mhz,
        )
        batched = build_performance_model_batched(
            bundle.grid,
            function=config.fit_function,
            fit_freqs_mhz=config.profile_freqs_mhz,
        )
        assert set(scalar.operators) == set(batched.operators)
        for name, want in scalar.operators.items():
            got = batched.operators[name]
            assert got.constant_us == want.constant_us
            assert got.kind is want.kind
            if want.fit is None:
                assert got.fit is None
            else:
                assert got.fit.params == want.fit.params


class TestGroupedScorer:
    def test_tables_bitwise_vs_per_stage_loop(self, pipeline):
        batching.set_batched_cold_path(False)
        try:
            reference = _scorer(pipeline)
        finally:
            batching.set_batched_cold_path(True)
        grouped = _scorer(pipeline)
        for attr in (
            "_stage_time",
            "_stage_aicore_energy",
            "_stage_soc_energy",
        ):
            assert np.array_equal(
                getattr(reference, attr), getattr(grouped, attr)
            )
        assert reference.baseline_time_us == grouped.baseline_time_us

    def test_population_scores_identical(self, pipeline):
        batching.set_batched_cold_path(False)
        try:
            reference = _scorer(pipeline)
        finally:
            batching.set_batched_cold_path(True)
        grouped = _scorer(pipeline)
        rng = np.random.default_rng(123)
        population = rng.integers(
            0,
            grouped.frequency_count,
            size=(64, grouped.stage_count),
        )
        assert np.array_equal(
            reference.score(population), grouped.score(population)
        )


class TestGaRegression:
    """The vectorised crossover must not move a single gene."""

    PINNED = {
        0: "d2ddbe07d0c95d661060e3a50ec1cdf23f0fcec2ac6c723e8fae582f185f9f50",
        1: "3da80f03753967fedce6a89b385b543ce48f8169e8240bf291e63b4e26f65464",
        2: "2f00d6e675149e616825eef21be634b00b382725fc1f2c04341c208fb0ed8105",
    }
    PINNED_GENES_SEED0 = [8, 3, 8, 8, 8, 3, 7, 8, 8, 8, 8, 6, 3, 8, 7, 7, 1]

    def test_best_genes_pinned(self, pipeline):
        trace, config, _, models, candidates = pipeline
        scorer = _scorer(pipeline)
        freqs = config.npu.frequencies.points
        for seed, digest in self.PINNED.items():
            result = run_search(
                scorer,
                candidates.stages,
                freqs,
                GaConfig(population_size=48, iterations=40, seed=seed),
            )
            got = hashlib.sha256(
                np.ascontiguousarray(
                    result.best_genes, dtype=np.int64
                ).tobytes()
            ).hexdigest()
            assert got == digest, f"seed {seed} drifted"
            if seed == 0:
                assert result.best_genes.tolist() == self.PINNED_GENES_SEED0


class TestEndToEndByteIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_optimize_batched_vs_reference(self, seed):
        trace = generate("gpt3", scale=0.02)

        def run(flagged):
            batching.set_batched_cold_path(flagged)
            try:
                config = OptimizerConfig(
                    ga=GaConfig(
                        population_size=48, iterations=16, seed=seed
                    ),
                    seed=seed,
                )
                return EnergyOptimizer(config).optimize(trace)
            finally:
                batching.set_batched_cold_path(True)

        batched = run(True)
        reference = run(False)
        assert (
            batched.search.best_genes.tobytes()
            == reference.search.best_genes.tobytes()
        )
        assert batched.search.best_score == reference.search.best_score
        assert batched.predicted == reference.predicted
        assert batched.under_dvfs == reference.under_dvfs


class TestPatienceKnob:
    def test_with_patience_copies_config(self):
        config = OptimizerConfig()
        assert config.ga.patience == 0
        patient = config.with_patience(25)
        assert patient.ga.patience == 25
        assert config.ga.patience == 0
        assert patient.ga.iterations == config.ga.iterations

    def test_patience_changes_fingerprint(self):
        from repro.serve.fingerprint import config_fingerprint

        config = OptimizerConfig()
        assert config_fingerprint(config) != config_fingerprint(
            config.with_patience(10)
        )

    def test_service_counts_trimmed_generations(self, tmp_path):
        from repro.serve.service import StrategyService
        from repro.serve.store import StrategyStore

        trace = generate("bert", scale=0.02)
        config = OptimizerConfig(
            ga=GaConfig(population_size=48, iterations=80, seed=0)
        ).with_patience(8)
        with StrategyService(
            config=config, store=StrategyStore(tmp_path)
        ) as service:
            service.request(trace)
            stats = service.stats
            assert stats.ga_runs == 1
            assert stats.ga_generations >= 1
            assert (
                stats.ga_generations + stats.ga_generations_trimmed
                == config.ga.iterations
            )
            rows = {row["counter"]: row["value"] for row in stats.rows()}
            assert rows["ga_generations_trimmed"] == (
                stats.ga_generations_trimmed
            )
