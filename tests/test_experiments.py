"""Tests for the experiment harness (fast experiments run end to end)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import experiment_ids, run_experiment
from repro.experiments.base import ExperimentResult, downsample, percent
from repro.experiments.cli import build_parser, main


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = experiment_ids()
        for expected in (
            "fig09", "fig10", "fig15", "fig16", "fig17", "fig18",
            "table2", "table3", "sec43", "sec84",
        ):
            assert expected in ids

    def test_unknown_id_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")

    def test_unknown_id_error_lists_known_experiments(self):
        with pytest.raises(ExperimentError) as exc_info:
            run_experiment("fig99")
        message = str(exc_info.value)
        assert "fig99" in message
        for known in experiment_ids():
            assert known in message

    def test_unknown_id_error_suggests_close_match(self):
        with pytest.raises(ExperimentError) as exc_info:
            run_experiment("ext_clutser")
        message = str(exc_info.value)
        assert "did you mean" in message
        assert "ext_cluster" in message


class TestBaseHelpers:
    def test_percent(self):
        assert percent(0.1234) == "12.34%"

    def test_downsample_short_series_unchanged(self):
        assert downsample([1.0, 2.0], points=10) == [1.0, 2.0]

    def test_downsample_keeps_endpoints(self):
        series = list(range(100))
        thinned = downsample(series, points=10)
        assert thinned[0] == 0
        assert thinned[-1] == 99
        assert len(thinned) <= 12

    def test_render_contains_sections(self):
        result = ExperimentResult(
            experiment_id="x",
            title="T",
            paper_reference={"a": 1.0},
            measured={"b": 2.0},
            rows=[{"c": 3}],
            notes="note",
        )
        text = result.render()
        assert "== x: T ==" in text
        assert "paper reports:" in text
        assert "note" in text


class TestFastExperiments:
    def test_fig09(self):
        result = run_experiment("fig09")
        assert result.measured["flat_below_knee"]
        assert result.measured["linear_above_knee"]
        assert len(result.rows) == 9

    def test_fig10_small(self):
        result = run_experiment("fig10", scale=0.15)
        assert result.measured["all_linear"]
        assert 0.08 < result.measured["mean_k"] < 0.2

    def test_sec84_small(self):
        result = run_experiment("sec84", scale=0.1)
        assert result.measured["aicore_reduction"] > 0.1
        assert result.measured["perf_loss"] < 0.1

    def test_sec43_small(self):
        result = run_experiment("sec43", scale=0.1)
        assert result.measured["func2_wins"]
        assert result.measured["operators"] > 100

    def test_fig16(self):
        result = run_experiment("fig16")
        assert result.measured["func2_mean_error"] < 0.06
        operators = {row["operator"] for row in result.rows}
        assert operators == {
            "Add", "RealDiv", "ReduceMean", "Conv2D", "BNTrainingUpdate",
        }


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out and "table3" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig15" in capsys.readouterr().out

    def test_run_fig09(self, capsys):
        assert main(["fig09"]) == 0
        out = capsys.readouterr().out
        assert "Voltage-frequency" in out
        assert "finished in" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["nope"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_parser_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["table3", "--scale", "0.2", "--iterations", "50",
             "--population", "40", "--seed", "7"]
        )
        assert args.experiment == "table3"
        assert args.scale == 0.2
        assert args.iterations == 50
        assert args.population == 40
        assert args.seed == 7

    def test_quick_flag_sets_defaults(self):
        from repro.experiments.cli import _kwargs_for

        parser = build_parser()
        args = parser.parse_args(["table3", "--quick"])
        kwargs = _kwargs_for("table3", args)
        assert kwargs["scale"] == 0.05
        assert kwargs["iterations"] == 120
        # Non-GA experiments don't receive GA kwargs.
        kwargs = _kwargs_for("fig09", parser.parse_args(["fig09", "--quick"]))
        assert "iterations" not in kwargs


class TestExtensionExperiments:
    def test_sec81_small(self):
        result = run_experiment("sec81", scale=0.02, model_free_budget=6)
        assert result.measured["speed_ratio"] > 10.0
        assert result.measured["model_based_strategies_per_second"] > 100.0

    def test_fig14_small(self):
        result = run_experiment(
            "fig14", scale=0.04, iterations=120, population=60
        )
        assert result.measured["anchoring_helps"]

    def test_ext_whole_program_small(self):
        result = run_experiment(
            "ext_whole_program", scale=0.03, iterations=120, population=60
        )
        assert result.measured["fine_grained_wins"]

    def test_ext_uncore_small(self):
        result = run_experiment("ext_uncore", scale=0.03)
        assert result.measured["savings_scale_with_uncore"]

    def test_sec6_small(self):
        result = run_experiment("sec6", scale=0.03)
        assert result.measured["gelu_exchange_beats_matmul"]

    def test_result_json_roundtrip(self):
        import json

        result = run_experiment("fig09")
        payload = json.loads(result.to_json())
        assert payload["experiment_id"] == "fig09"
        assert payload["rows"]

    def test_cli_json_output(self, tmp_path, capsys):
        path = tmp_path / "fig09.json"
        assert main(["fig09", "--json", str(path)]) == 0
        capsys.readouterr()
        import json

        assert json.loads(path.read_text())["experiment_id"] == "fig09"

    def test_ext_robustness_small(self):
        result = run_experiment(
            "ext_robustness", scale=0.03, iterations=120,
            population=60, seeds=2,
        )
        assert result.measured["all_losses_within_target"]
        assert len(result.rows) == 2
