"""Tests for the NPU device execution engine."""

import pytest

from repro.npu import FrequencyTimeline
from repro.npu.device import IDLE_INDEX
from repro.npu.setfreq import AnchoredFrequencyPlan, AnchoredSwitch, FrequencySwitch
from repro.workloads import build_trace
from repro.workloads.operator import OperatorKind, make_fixed_operator
from repro.workloads.trace import TraceEntry
from tests.conftest import make_compute_op


def simple_trace(n_ops=4, name="t"):
    ops = [make_compute_op(name=f"{name}.op{i}") for i in range(n_ops)]
    return build_trace(name, ops)


class TestBasicExecution:
    def test_duration_is_sum_of_op_durations(self, ideal_device):
        trace = simple_trace(3)
        result = ideal_device.run(trace)
        expected = sum(
            ideal_device.evaluator.duration_us(e.spec, 1800.0)
            for e in trace.entries
        )
        assert result.duration_us == pytest.approx(expected)

    def test_records_cover_all_ops(self, ideal_device):
        trace = simple_trace(5)
        result = ideal_device.run(trace)
        assert len(result.records) == 5
        assert [r.index for r in result.records] == list(range(5))

    def test_records_are_contiguous(self, ideal_device):
        result = ideal_device.run(simple_trace(4))
        for prev, nxt in zip(result.records, result.records[1:]):
            assert nxt.start_us == pytest.approx(prev.end_us)

    def test_lower_frequency_is_slower_and_cheaper(self, ideal_device):
        trace = simple_trace(3)
        fast = ideal_device.run(trace, FrequencyTimeline.constant(1800.0))
        slow = ideal_device.run(trace, FrequencyTimeline.constant(1000.0))
        assert slow.duration_us > fast.duration_us
        assert slow.aicore_avg_watts < fast.aicore_avg_watts

    def test_energy_equals_power_times_time(self, ideal_device):
        result = ideal_device.run(simple_trace(3))
        recomputed = sum(
            c.aicore_watts * c.duration_us / 1e6 for c in result.chunks
        )
        assert result.aicore_energy_j == pytest.approx(recomputed)

    def test_gap_produces_idle_chunk(self, ideal_device):
        op = make_compute_op(name="g.op")
        trace = build_trace(
            "g", [TraceEntry(op), TraceEntry(op, gap_before_us=500.0)]
        )
        result = ideal_device.run(trace)
        idle_chunks = [c for c in result.chunks if c.op_index == IDLE_INDEX]
        assert sum(c.duration_us for c in idle_chunks) == pytest.approx(500.0)

    def test_host_interval_paces_dispatch(self, ideal_device):
        op = make_fixed_operator("a", OperatorKind.AICPU, 10.0)
        entries = [
            TraceEntry(op),
            TraceEntry(op, host_interval_us=100.0),
            TraceEntry(op, host_interval_us=100.0),
        ]
        trace = build_trace("host", entries)
        result = ideal_device.run(trace)
        # Each op takes 10us but starts are spaced 100us apart.
        assert result.duration_us == pytest.approx(210.0)

    def test_host_interval_no_wait_when_slower(self, ideal_device):
        op = make_fixed_operator("a", OperatorKind.AICPU, 200.0)
        entries = [TraceEntry(op), TraceEntry(op, host_interval_us=100.0)]
        trace = build_trace("host2", entries)
        result = ideal_device.run(trace)
        assert result.duration_us == pytest.approx(400.0)

    def test_temperature_rises_under_load(self, ideal_device):
        trace = simple_trace(8)
        result = ideal_device.run(trace)
        assert result.end_celsius > result.start_celsius


class TestFrequencySwitching:
    def test_mid_op_switch_splits_execution(self, ideal_device):
        op = make_compute_op(name="m.op", core_cycles=500_000.0,
                             ld_bytes=1000.0, st_bytes=1000.0)
        trace = build_trace("m", [op])
        d1800 = ideal_device.evaluator.duration_us(op, 1800.0)
        switch_at = d1800 / 2
        timeline = FrequencyTimeline(
            1800.0, (FrequencySwitch(switch_at, 1000.0),)
        )
        result = ideal_device.run(trace, timeline)
        # First half at 1800 (progress 0.5), remainder at 1000.
        d1000 = ideal_device.evaluator.duration_us(op, 1000.0)
        expected = switch_at + 0.5 * d1000
        assert result.duration_us == pytest.approx(expected, rel=1e-6)
        assert result.records[0].straddled_switch

    def test_anchored_plan_switches_at_op_start(self, ideal_device):
        trace = simple_trace(4, name="anch")
        plan = AnchoredFrequencyPlan(
            1800.0, [AnchoredSwitch(op_index=2, freq_mhz=1000.0)]
        )
        result = ideal_device.run(trace, plan)
        assert result.records[1].start_freq_mhz == 1800.0
        assert result.records[2].start_freq_mhz == 1000.0
        assert not result.records[2].straddled_switch

    def test_anchored_plan_reusable_across_runs(self, ideal_device):
        trace = simple_trace(3, name="reuse")
        plan = AnchoredFrequencyPlan(
            1800.0, [AnchoredSwitch(op_index=1, freq_mhz=1200.0)]
        )
        first = ideal_device.run(trace, plan)
        second = ideal_device.run(trace, plan)
        assert first.duration_us == pytest.approx(second.duration_us)

    def test_extra_delay_erodes_energy_savings(self, ideal_device):
        """With a V100-like delay, down-switches land late, so operators
        meant to run at low frequency burn high-frequency power — the
        energy saving shrinks (Fig. 18's mechanism)."""
        ops = [
            make_compute_op(name=f"d.op{i}", core_cycles=300_000.0)
            for i in range(4)
        ]
        trace = build_trace("d", ops)
        anchors = [AnchoredSwitch(1, 1000.0), AnchoredSwitch(3, 1800.0)]
        exact = ideal_device.run(
            trace, AnchoredFrequencyPlan(1800.0, anchors)
        )
        late = ideal_device.run(
            trace,
            AnchoredFrequencyPlan(1800.0, anchors, extra_delay_us=14_000.0),
        )
        assert late.aicore_energy_j > exact.aicore_energy_j


class TestRunStable:
    def test_stable_run_starts_near_equilibrium(self, ideal_device):
        trace = simple_trace(10, name="st")
        result = ideal_device.run_stable(trace)
        equilibrium = ideal_device.npu.thermal.equilibrium_celsius(
            result.soc_avg_watts
        )
        assert result.start_celsius == pytest.approx(equilibrium, abs=1.0)

    def test_stable_power_exceeds_cold_power(self, ideal_device):
        trace = simple_trace(10, name="st2")
        cold = ideal_device.run(trace)
        stable = ideal_device.run_stable(trace)
        assert stable.aicore_avg_watts > cold.aicore_avg_watts


class TestRunIdle:
    def test_cooldown_decays_toward_idle_equilibrium(self, ideal_device):
        chunks = ideal_device.run_idle(
            60_000_000.0, 1000.0, initial_celsius=80.0, steps=50
        )
        assert chunks[0].celsius == pytest.approx(80.0)
        assert chunks[-1].celsius < chunks[0].celsius
        # Power decays along with temperature.
        assert chunks[-1].soc_watts < chunks[0].soc_watts

    def test_idle_chunks_are_contiguous(self, ideal_device):
        chunks = ideal_device.run_idle(1000.0, 1800.0, steps=4)
        for prev, nxt in zip(chunks, chunks[1:]):
            assert nxt.start_us == pytest.approx(prev.end_us)

    def test_rejects_bad_arguments(self, ideal_device):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ideal_device.run_idle(0.0, 1800.0)
        with pytest.raises(ConfigurationError):
            ideal_device.run_idle(100.0, 1800.0, steps=0)


class TestExecutionResult:
    def test_average_power_definition(self, ideal_device):
        result = ideal_device.run(simple_trace(3, name="avg"))
        assert result.aicore_avg_watts == pytest.approx(
            result.aicore_energy_j / (result.duration_us / 1e6)
        )

    def test_performance_is_inverse_duration(self, ideal_device):
        result = ideal_device.run(simple_trace(2, name="perf"))
        assert result.performance == pytest.approx(1e6 / result.duration_us)

    def test_record_for(self, ideal_device):
        result = ideal_device.run(simple_trace(3, name="rec"))
        assert result.record_for(1).index == 1
