"""Tests for the surrogate-assisted multi-fidelity GA (repro.dvfs.surrogate).

The contract under test is the NeuroScalar-style split: the ridge
surrogate may shape *where* the GA looks, but every score that leaves
:func:`run_search` — and the returned strategy in particular — comes from
the analytical Eq. (17) oracle.  Alongside that bitwise guarantee the
suite pins the oracle-evaluation accounting, the holdout-R^2 fallback,
the process-global kill switch, and the serving/fingerprint plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import OptimizerConfig
from repro.core.optimizer import EnergyOptimizer
from repro.dvfs.ga import GaConfig, run_search
from repro.dvfs.scoring import StrategyScorer
from repro.dvfs.surrogate import (
    SurrogateConfig,
    exact_search_only,
    fit_surrogate,
    set_surrogate_search_allowed,
    surrogate_search_allowed,
)
from repro.errors import StrategyError
from repro.workloads import generate

#: Small but non-trivial search used throughout; large enough that the
#: surrogate's holdout R^2 clears the default floor on every seed below.
GA = GaConfig(population_size=48, iterations=40, seed=0)
SURROGATE = SurrogateConfig(enabled=True)
#: Gate that always passes/fails regardless of fit quality.
ALWAYS_PASS = SurrogateConfig(enabled=True, r2_floor=-1e9)
ALWAYS_FAIL = SurrogateConfig(enabled=True, r2_floor=2.0)


def _pipeline(workload: str):
    trace = generate(workload, scale=0.02)
    config = OptimizerConfig()
    optimizer = EnergyOptimizer(config)
    bundle = optimizer.profile(trace)
    models = optimizer.build_models(bundle)
    candidates = optimizer.preprocess(bundle)
    scorer = StrategyScorer(
        trace=trace,
        stages=candidates.stages,
        perf_model=models.performance,
        power_table=models.power,
        freqs_mhz=config.npu.frequencies.points,
        performance_loss_target=config.performance_loss_target,
        objective=config.objective,
    )
    return config, candidates, scorer


@pytest.fixture(scope="module")
def gpt3():
    return _pipeline("gpt3")


@pytest.fixture(scope="module")
def llama2():
    return _pipeline("llama2_inference")


class TestSurrogateConfig:
    def test_defaults_disabled(self):
        assert SurrogateConfig().enabled is False
        assert OptimizerConfig().surrogate.enabled is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"train_size": 7},
            {"holdout_size": 3},
            {"ridge_lambda": -0.1},
            {"explore_multiplier": 0},
            {"oracle_top_k": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(StrategyError):
            SurrogateConfig(**kwargs)

    def test_with_surrogate_bool_and_instance(self):
        base = OptimizerConfig()
        on = base.with_surrogate()
        assert on.surrogate.enabled is True
        assert base.surrogate.enabled is False  # original untouched
        custom = base.with_surrogate(SurrogateConfig(enabled=True, oracle_top_k=8))
        assert custom.surrogate.oracle_top_k == 8

    def test_surrogate_changes_fingerprint(self):
        from repro.serve.fingerprint import config_fingerprint

        base = OptimizerConfig()
        assert config_fingerprint(base) != config_fingerprint(
            base.with_surrogate()
        )

    def test_kill_switch_not_fingerprinted(self):
        from repro.serve.fingerprint import config_fingerprint

        config = OptimizerConfig().with_surrogate()
        before = config_fingerprint(config)
        with exact_search_only():
            assert config_fingerprint(config) == before


class TestOracleGuarantee:
    """Satellite: best_genes must score exactly what the oracle says."""

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_best_score_is_oracle_bitwise(self, gpt3, seed):
        config, candidates, scorer = gpt3
        result = run_search(
            scorer,
            candidates.stages,
            config.npu.frequencies.points,
            GaConfig(population_size=32, iterations=12, seed=seed),
            surrogate=ALWAYS_PASS,
        )
        assert result.surrogate_used is True
        oracle = float(scorer.score(result.best_genes[None, :])[0])
        assert oracle == result.best_score

    def test_history_is_monotone_oracle_prefix(self, gpt3):
        config, candidates, scorer = gpt3
        result = run_search(
            scorer,
            candidates.stages,
            config.npu.frequencies.points,
            GA,
            surrogate=SURROGATE,
        )
        history = np.asarray(result.history)
        assert np.all(np.diff(history) >= 0.0)
        assert result.best_score == history[-1]


class TestQuality:
    """Satellite: within 1% of the exact GA on seeds 0-4, both workloads."""

    @pytest.mark.parametrize("workload", ["gpt3", "llama2"])
    def test_within_one_percent_seeds_0_to_4(self, workload, request):
        config, candidates, scorer = request.getfixturevalue(workload)
        freqs = config.npu.frequencies.points
        for seed in range(5):
            ga = GaConfig(population_size=48, iterations=40, seed=seed)
            exact = run_search(scorer, candidates.stages, freqs, ga)
            surr = run_search(
                scorer, candidates.stages, freqs, ga, surrogate=SURROGATE
            )
            assert surr.surrogate_used, f"gate fell back on seed {seed}"
            assert surr.surrogate_r2 is not None
            assert surr.surrogate_r2 >= SURROGATE.r2_floor
            if surr.best_genes.tobytes() != exact.best_genes.tobytes():
                ratio = surr.best_score / exact.best_score
                assert ratio >= 0.99, f"seed {seed}: ratio {ratio:.5f}"


class TestGateFallback:
    def test_failed_gate_matches_exact_plus_fit_rows(self, gpt3):
        config, candidates, scorer = gpt3
        freqs = config.npu.frequencies.points
        exact = run_search(scorer, candidates.stages, freqs, GA)
        fallen = run_search(
            scorer, candidates.stages, freqs, GA, surrogate=ALWAYS_FAIL
        )
        assert fallen.surrogate_used is False
        assert fallen.surrogate_r2 is None
        assert fallen.best_genes.tobytes() == exact.best_genes.tobytes()
        assert fallen.best_score == exact.best_score
        assert fallen.history == exact.history
        fit_rows = ALWAYS_FAIL.train_size + ALWAYS_FAIL.holdout_size
        assert fallen.evaluations == exact.evaluations + fit_rows

    def test_fit_surrogate_returns_none_below_floor(self, gpt3):
        _, _, scorer = gpt3
        rng = np.random.default_rng(0)
        model, evaluations = fit_surrogate(scorer, ALWAYS_FAIL, rng)
        assert model is None
        assert evaluations == ALWAYS_FAIL.train_size + ALWAYS_FAIL.holdout_size

    def test_fit_surrogate_passes_default_floor(self, gpt3):
        _, _, scorer = gpt3
        model, _ = fit_surrogate(scorer, SURROGATE, np.random.default_rng(0))
        assert model is not None
        assert model.holdout_r2 >= SURROGATE.r2_floor
        assert model.stage_count == scorer.stage_count


class TestKillSwitch:
    def test_context_manager_forces_exact(self, gpt3):
        config, candidates, scorer = gpt3
        freqs = config.npu.frequencies.points
        exact = run_search(scorer, candidates.stages, freqs, GA)
        assert surrogate_search_allowed() is True
        with exact_search_only():
            assert surrogate_search_allowed() is False
            forced = run_search(
                scorer, candidates.stages, freqs, GA, surrogate=ALWAYS_PASS
            )
        assert surrogate_search_allowed() is True
        assert forced.surrogate_used is False
        assert forced.best_genes.tobytes() == exact.best_genes.tobytes()
        assert forced.evaluations == exact.evaluations

    def test_setter_round_trip(self):
        set_surrogate_search_allowed(False)
        try:
            assert surrogate_search_allowed() is False
        finally:
            set_surrogate_search_allowed(True)
        assert surrogate_search_allowed() is True


class TestEvaluationAccounting:
    """Satellite: GaResult.evaluations counts oracle calls only."""

    def test_exact_formula(self, gpt3):
        config, candidates, scorer = gpt3
        freqs = config.npu.frequencies.points
        for elite in (0, 2, 5):
            ga = GaConfig(
                population_size=24, iterations=10, seed=0, elite_count=elite
            )
            result = run_search(scorer, candidates.stages, freqs, ga)
            assert result.generations == ga.iterations
            assert result.evaluations == ga.population_size + (
                result.generations * (ga.population_size - elite)
            )

    def test_exact_formula_under_patience(self, gpt3):
        config, candidates, scorer = gpt3
        freqs = config.npu.frequencies.points
        ga = GaConfig(
            population_size=24, iterations=400, seed=0, patience=5
        )
        result = run_search(scorer, candidates.stages, freqs, ga)
        assert result.generations < ga.iterations  # patience actually fired
        assert result.evaluations == ga.population_size + (
            result.generations * (ga.population_size - ga.elite_count)
        )

    def test_surrogate_formula(self, gpt3):
        config, candidates, scorer = gpt3
        freqs = config.npu.frequencies.points
        surrogate = SurrogateConfig(
            enabled=True, r2_floor=-1e9, explore_multiplier=3, oracle_top_k=5
        )
        ga = GaConfig(population_size=24, iterations=10, seed=0)
        result = run_search(
            scorer, candidates.stages, freqs, ga, surrogate=surrogate
        )
        assert result.surrogate_used is True
        fit_rows = surrogate.train_size + surrogate.holdout_size
        final_population = ga.population_size * surrogate.explore_multiplier
        assert result.evaluations == (
            fit_rows
            + surrogate.oracle_top_k * (result.generations + 1)
            + final_population
        )

    def test_surrogate_needs_far_fewer_oracle_calls(self, gpt3):
        config, candidates, scorer = gpt3
        freqs = config.npu.frequencies.points
        exact = run_search(scorer, candidates.stages, freqs, GA)
        surr = run_search(
            scorer, candidates.stages, freqs, GA, surrogate=SURROGATE
        )
        assert surr.surrogate_used is True
        assert surr.evaluations < exact.evaluations / 2


class TestSurrogateModel:
    def test_score_matches_table_gather_with_exact_doubling(self, gpt3):
        _, _, scorer = gpt3
        model, _ = fit_surrogate(
            scorer, ALWAYS_PASS, np.random.default_rng(3)
        )
        rng = np.random.default_rng(7)
        population = rng.integers(
            0, scorer.frequency_count, size=(32, scorer.stage_count)
        )
        rows = np.arange(population.shape[1])[None, :]
        base = model.weights[rows, population].sum(axis=1) + model.bias
        times = model.time_us[rows, population].sum(axis=1)
        meets = times <= model.time_lower_bound_us
        expected = np.where(meets, 2.0 * base, base)
        assert np.array_equal(model.score(population), expected)
        # The feasibility test uses the *exact* time table, never a fit.
        tables = scorer.stage_tables()
        assert np.array_equal(model.time_us, tables.time_us)
        assert model.time_lower_bound_us == scorer.time_lower_bound_us


class TestServingIntegration:
    def test_service_counts_surrogate_runs(self, tmp_path):
        from repro.serve.service import StrategyService
        from repro.serve.store import StrategyStore

        trace = generate("bert", scale=0.02)
        config = OptimizerConfig(
            ga=GaConfig(population_size=16, iterations=6, seed=0)
        ).with_surrogate(
            SurrogateConfig(
                enabled=True, train_size=32, holdout_size=16, r2_floor=-1e9
            )
        )
        with StrategyService(
            config=config, store=StrategyStore(tmp_path)
        ) as service:
            first = service.request(trace)
            second = service.request(trace)
            stats = service.stats
            assert first.source == "computed"
            assert second.source in ("memory", "disk")
            assert stats.ga_runs == 1
            assert stats.surrogate_runs == 1
            rows = {row["counter"]: row["value"] for row in stats.rows()}
            assert rows["surrogate_runs"] == 1

    def test_exact_service_reports_zero_surrogate_runs(self, tmp_path):
        from repro.serve.service import StrategyService
        from repro.serve.store import StrategyStore

        trace = generate("bert", scale=0.02)
        config = OptimizerConfig(
            ga=GaConfig(population_size=16, iterations=6, seed=0)
        )
        with StrategyService(
            config=config, store=StrategyStore(tmp_path)
        ) as service:
            service.request(trace)
            assert service.stats.surrogate_runs == 0

    def test_cli_flags_parse(self):
        from repro.serve.cli import build_bench_parser, build_parser

        warm = build_parser().parse_args(["--surrogate", "gpt3"])
        assert warm.surrogate is True
        bench = build_bench_parser().parse_args(
            ["--requests", "10", "--surrogate"]
        )
        assert bench.surrogate is True
