"""Equivalence and behaviour tests for the compiled-trace fast path.

The engine (:mod:`repro.npu.engine`) must be *numerically equivalent* to
the reference per-chunk loop of :class:`NpuDevice` — same durations, same
energies, same thermal trajectory, same per-operator records and power
chunks — for every eligible plan: constant timelines, switching wall-clock
timelines (including switches landing mid-operator), and zero-delay
anchored plans.  Ineligible plans (fault-injecting, guarded, anchored with
extra controller delay) must transparently keep the reference loop.

Aggregates are compared at 1e-9 relative tolerance (the documented
budget); per-record/per-chunk fields at 1e-7 relative with a small
absolute floor, since ``dt = chunk_end - clock`` arithmetic differs by an
ulp of the absolute clock between the two implementations.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.npu import (
    FrequencySwitch,
    FrequencyTimeline,
    GroundTruthEvaluator,
    NpuDevice,
    default_npu_spec,
)
from repro.npu.engine import (
    CompiledTrace,
    TraceEngine,
    _LazySeq,
    fast_path_enabled,
    reference_only,
    set_fast_path_enabled,
)
from repro.npu.faults import FaultConfig, FaultInjector, FaultyFrequencyPlan
from repro.npu.operators import OperatorKind, make_fixed_operator
from repro.npu.pipelines import Pipe
from repro.npu.setfreq import AnchoredFrequencyPlan, AnchoredSwitch
from repro.npu.timeline import (
    BlockCosts,
    Scenario,
    analytical_busy_stall,
    build_timeline,
)
from repro.workloads.trace import Trace, TraceEntry

from tests.conftest import make_compute_op

GRID = tuple(1000.0 + 100.0 * i for i in range(9))

# Aggregate budget from the issue; per-item floors absorb clock-ulp noise.
AGG_REL = 1e-9
ITEM_REL = 1e-7
ITEM_ABS = 1e-9


def _close(a: float, b: float, rel: float, abs_tol: float = 0.0) -> bool:
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)


def assert_results_equivalent(fast, ref) -> None:
    """Field-by-field equivalence of a fast-path and a reference result."""
    assert fast.trace_name == ref.trace_name
    assert _close(fast.duration_us, ref.duration_us, AGG_REL)
    assert _close(fast.aicore_energy_j, ref.aicore_energy_j, AGG_REL)
    assert _close(fast.soc_energy_j, ref.soc_energy_j, AGG_REL)
    assert _close(fast.start_celsius, ref.start_celsius, AGG_REL)
    assert _close(fast.end_celsius, ref.end_celsius, AGG_REL, 1e-9)

    assert len(fast.records) == len(ref.records)
    for fr, rr in zip(fast.records, ref.records):
        assert fr.index == rr.index
        assert fr.start_freq_mhz == rr.start_freq_mhz
        assert fr.end_freq_mhz == rr.end_freq_mhz
        assert _close(fr.start_us, rr.start_us, ITEM_REL, ITEM_ABS)
        assert _close(fr.end_us, rr.end_us, ITEM_REL, ITEM_ABS)
        assert _close(fr.aicore_energy_j, rr.aicore_energy_j, ITEM_REL, ITEM_ABS)
        assert _close(fr.soc_energy_j, rr.soc_energy_j, ITEM_REL, ITEM_ABS)
        assert fr.evaluation.duration_us == rr.evaluation.duration_us

    # A gap below one float ulp of the running clock may round into a
    # degenerate (sub-femtosecond) idle chunk in one accumulation order
    # and not the other; such chunks carry no energy or time at the
    # 1e-9 contract and are excluded from the structural comparison.
    fast_chunks = [c for c in fast.chunks if c.end_us - c.start_us > 1e-9]
    ref_chunks = [c for c in ref.chunks if c.end_us - c.start_us > 1e-9]
    assert len(fast_chunks) == len(ref_chunks)
    for fc, rc in zip(fast_chunks, ref_chunks):
        assert fc.op_index == rc.op_index
        assert fc.freq_mhz == rc.freq_mhz
        assert _close(fc.start_us, rc.start_us, ITEM_REL, ITEM_ABS)
        assert _close(fc.end_us, rc.end_us, ITEM_REL, ITEM_ABS)
        assert _close(fc.aicore_watts, rc.aicore_watts, ITEM_REL, ITEM_ABS)
        assert _close(fc.soc_watts, rc.soc_watts, ITEM_REL, ITEM_ABS)
        assert _close(fc.celsius, rc.celsius, ITEM_REL, ITEM_ABS)


# ---------------------------------------------------------------------------
# Random-trace strategies
# ---------------------------------------------------------------------------

_MIXES = (
    {Pipe.CUBE: 1.0},
    {Pipe.VECTOR: 1.0},
    {Pipe.CUBE: 0.7, Pipe.VECTOR: 0.3},
    {Pipe.CUBE: 0.5, Pipe.VECTOR: 0.3, Pipe.SCALAR: 0.2},
)


@st.composite
def entries(draw):
    """One trace entry: a compute or fixed-time operator with gaps."""
    gap = draw(st.floats(0.0, 400.0))
    host = draw(st.sampled_from((0.0, 0.0, 500.0, 2000.0)))
    if draw(st.booleans()):
        spec = make_compute_op(
            name=f"op{draw(st.integers(0, 7))}",
            scenario=draw(st.sampled_from(list(Scenario))),
            n_blocks=draw(st.integers(1, 12)),
            core_cycles=draw(st.floats(1_000.0, 200_000.0)),
            ld_bytes=draw(st.floats(0.0, 4e6)),
            st_bytes=draw(st.floats(0.0, 2e6)),
            overhead_us=draw(st.floats(0.0, 10.0)),
            mix=draw(st.sampled_from(_MIXES)),
        )
    else:
        kind = draw(
            st.sampled_from((OperatorKind.AICPU, OperatorKind.COMMUNICATION))
        )
        spec = make_fixed_operator(
            f"fixed{draw(st.integers(0, 3))}",
            kind,
            draw(st.floats(5.0, 2_000.0)),
        )
    return TraceEntry(spec=spec, gap_before_us=gap, host_interval_us=host)


@st.composite
def traces(draw, min_ops: int = 1, max_ops: int = 12):
    items = draw(st.lists(entries(), min_size=min_ops, max_size=max_ops))
    return Trace(name="hypo", entries=tuple(items))


@st.composite
def switching_timelines(draw):
    """A wall-clock timeline with 0-5 switches inside a typical run."""
    initial = draw(st.sampled_from(GRID))
    n = draw(st.integers(0, 5))
    switches = tuple(
        FrequencySwitch(
            time_us=draw(st.floats(0.0, 30_000.0)),
            freq_mhz=draw(st.sampled_from(GRID)),
        )
        for _ in range(n)
    )
    return FrequencyTimeline(initial, switches)


@st.composite
def anchored_plans(draw, max_ops: int = 12):
    initial = draw(st.sampled_from(GRID))
    n = draw(st.integers(0, 4))
    anchors = [
        AnchoredSwitch(
            op_index=draw(st.integers(0, max_ops - 1)),
            freq_mhz=draw(st.sampled_from(GRID)),
        )
        for _ in range(n)
    ]
    return AnchoredFrequencyPlan(initial, anchors)


def _fresh_pair():
    """Two devices over one spec: one fast-path, one reference-only."""
    spec = default_npu_spec()
    evaluator = GroundTruthEvaluator(spec)
    fast = NpuDevice(spec, evaluator=evaluator)
    ref = NpuDevice(spec, evaluator=evaluator, engine=False)
    return fast, ref


# ---------------------------------------------------------------------------
# Hypothesis equivalence properties
# ---------------------------------------------------------------------------


@given(
    trace=traces(),
    timeline=switching_timelines(),
    celsius0=st.floats(25.0, 95.0),
)
@settings(max_examples=60, deadline=None)
def test_fast_path_matches_reference_on_timelines(trace, timeline, celsius0):
    fast_dev, ref_dev = _fresh_pair()
    fast = fast_dev.run(trace, timeline, initial_celsius=celsius0)
    ref = ref_dev.run(trace, timeline, initial_celsius=celsius0)
    assert fast_dev.fast_path_runs == 1
    assert ref_dev.reference_runs == 1
    assert_results_equivalent(fast, ref)


@given(
    trace=traces(),
    plan=anchored_plans(),
    celsius0=st.floats(25.0, 95.0),
)
@settings(max_examples=60, deadline=None)
def test_fast_path_matches_reference_on_anchored_plans(trace, plan, celsius0):
    fast_dev, ref_dev = _fresh_pair()
    fast = fast_dev.run(trace, plan, initial_celsius=celsius0)
    applied_fast = plan.applied_switch_count
    ref = ref_dev.run(trace, plan, initial_celsius=celsius0)
    assert plan.applied_switch_count == applied_fast
    assert fast_dev.fast_path_runs == 1
    assert_results_equivalent(fast, ref)


@given(trace=traces(), freq=st.sampled_from(GRID))
@settings(max_examples=40, deadline=None)
def test_run_stable_and_iterations_match_reference(trace, freq):
    timeline = FrequencyTimeline.constant(freq)
    fast_dev, ref_dev = _fresh_pair()
    assert_results_equivalent(
        fast_dev.run_stable(trace, timeline),
        ref_dev.run_stable(trace, timeline),
    )
    for fast, ref in zip(
        fast_dev.run_iterations(trace, timeline, iterations=3),
        ref_dev.run_iterations(trace, timeline, iterations=3),
    ):
        assert_results_equivalent(fast, ref)


def test_switch_mid_operator_splits_identically(small_bert_trace):
    """A switch landing strictly inside an operator splits the chunk."""
    fast_dev, ref_dev = _fresh_pair()
    # Find an operator interior on the reference path, then re-run both.
    probe = ref_dev.run(small_bert_trace, FrequencyTimeline.constant(1800.0))
    record = next(r for r in probe.records if r.duration_us > 2.0)
    mid = (record.start_us + record.end_us) / 2.0
    timeline = FrequencyTimeline(
        1800.0, (FrequencySwitch(time_us=mid, freq_mhz=1000.0),)
    )
    fast = fast_dev.run(small_bert_trace, timeline)
    ref = ref_dev.run(small_bert_trace, timeline)
    assert_results_equivalent(fast, ref)
    assert any(r.straddled_switch for r in fast.records)


# ---------------------------------------------------------------------------
# Eligibility and routing
# ---------------------------------------------------------------------------


def test_fault_and_delayed_plans_keep_reference_loop(small_bert_trace):
    spec = default_npu_spec()
    device = NpuDevice(spec)
    injector = FaultInjector.from_seed(FaultConfig(setfreq_drop_rate=1.0), 3)
    faulty = FaultyFrequencyPlan(
        1800.0, [AnchoredSwitch(op_index=1, freq_mhz=1200.0)], injector
    )
    device.run(small_bert_trace, faulty)
    assert device.reference_runs == 1
    assert device.fast_path_runs == 0

    delayed = AnchoredFrequencyPlan(
        1800.0,
        [AnchoredSwitch(op_index=1, freq_mhz=1200.0)],
        extra_delay_us=250.0,
    )
    device.run(small_bert_trace, delayed)
    assert device.reference_runs == 2

    device.run(small_bert_trace, FrequencyTimeline.constant(1500.0))
    assert device.fast_path_runs == 1


def test_timeline_subclass_is_not_eligible():
    class Subclassed(FrequencyTimeline):
        pass

    spec = default_npu_spec()
    engine = TraceEngine(spec, GroundTruthEvaluator(spec))
    assert engine.supports(FrequencyTimeline.constant(1500.0))
    assert not engine.supports(Subclassed(1500.0))


def test_reference_only_context_restores_flag(small_bert_trace):
    device = NpuDevice(default_npu_spec())
    assert fast_path_enabled()
    with reference_only():
        assert not fast_path_enabled()
        device.run(small_bert_trace, FrequencyTimeline.constant(1800.0))
    assert fast_path_enabled()
    assert device.reference_runs == 1

    set_fast_path_enabled(False)
    try:
        device.run(small_bert_trace, FrequencyTimeline.constant(1800.0))
        assert device.reference_runs == 2
    finally:
        set_fast_path_enabled(True)


def test_engine_disabled_per_device(small_bert_trace):
    device = NpuDevice(default_npu_spec(), engine=False)
    assert device.engine is None
    device.run(small_bert_trace, FrequencyTimeline.constant(1800.0))
    assert device.reference_runs == 1


# ---------------------------------------------------------------------------
# Compiled-trace cache and lazy sequences
# ---------------------------------------------------------------------------


def test_compiled_trace_is_cached_per_trace(small_bert_trace):
    device = NpuDevice(default_npu_spec())
    timeline = FrequencyTimeline.constant(1800.0)
    device.run(small_bert_trace, timeline)
    device.run(small_bert_trace, timeline)
    engine = device.engine
    assert engine.stats.compiled_traces == 1
    assert engine.stats.fast_path_runs == 2
    compiled = engine.compiled(small_bert_trace)
    assert isinstance(compiled, CompiledTrace)
    assert compiled.unique_operator_count <= compiled.n_ops


def test_lazy_sequence_semantics(small_bert_trace):
    device = NpuDevice(default_npu_spec())
    result = device.run(small_bert_trace, FrequencyTimeline.constant(1800.0))
    records = result.records
    assert isinstance(records, _LazySeq)
    n = len(records)
    assert n == len(small_bert_trace.entries)
    # Single-item access (including negative) without materialising.
    assert records[0].index == 0
    assert records[-1].index == n - 1
    with pytest.raises(IndexError):
        records[n]
    # Slices and iteration materialise consistently.
    assert list(records[:3]) == [records[0], records[1], records[2]]
    assert tuple(records) == records  # __eq__ against a tuple
    assert records == list(records)
    assert len(result.chunks[:2]) == 2


# ---------------------------------------------------------------------------
# Analytical busy/stall closed form
# ---------------------------------------------------------------------------

_BLOCK_COSTS = st.builds(
    BlockCosts,
    ld_cycles=st.floats(0.0, 1e6),
    st_cycles=st.floats(0.0, 1e6),
    core_cycles=st.floats(0.0, 1e6),
)
_MIX = {Pipe.CUBE: 0.6, Pipe.VECTOR: 0.3, Pipe.SCALAR: 0.1}


@given(
    scenario=st.sampled_from(list(Scenario)),
    n=st.integers(1, 40),
    costs=_BLOCK_COSTS,
)
@settings(max_examples=200, deadline=None)
def test_analytical_busy_stall_matches_timeline(scenario, n, costs):
    timeline = build_timeline(scenario, n, costs, _MIX)
    busy, stall = analytical_busy_stall(scenario, n, costs, _MIX)
    ref_busy = timeline.busy_cycles()
    for pipe in set(busy) | set(ref_busy):
        assert math.isclose(
            busy.get(pipe, 0.0),
            ref_busy.get(pipe, 0.0),
            rel_tol=1e-9,
            abs_tol=1e-6,
        ), (scenario, n, pipe)
    assert math.isclose(
        stall, timeline.stall_cycles(), rel_tol=1e-9, abs_tol=1e-6
    )


# ---------------------------------------------------------------------------
# Satellite behaviours: evaluator LRU, duration_matrix vectorisation
# ---------------------------------------------------------------------------


def test_evaluator_cache_counters_and_eviction():
    spec = default_npu_spec()
    evaluator = GroundTruthEvaluator(spec, cache_size=2)
    ops = [make_compute_op(name=f"op{i}", n_blocks=i + 1) for i in range(3)]
    evaluator.evaluate(ops[0], 1800.0)
    evaluator.evaluate(ops[0], 1800.0)
    info = evaluator.cache_info()
    assert info["hits"] == 1 and info["misses"] == 1
    assert evaluator.cache_hits == 1 and evaluator.cache_misses == 1

    evaluator.evaluate(ops[1], 1800.0)
    evaluator.evaluate(ops[2], 1800.0)  # evicts ops[0] (least recent)
    assert evaluator.cache_info()["size"] == 2
    evaluator.evaluate(ops[0], 1800.0)  # must recompute
    assert evaluator.cache_misses == 4

    evaluator.clear_cache()
    assert evaluator.cache_info() == {
        "hits": 0, "misses": 0, "size": 0, "capacity": 2,
    }


def test_evaluator_cache_size_must_be_positive():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        GroundTruthEvaluator(default_npu_spec(), cache_size=0)


def test_duration_matrix_matches_scalar_predictions(bert_profile_reports):
    from repro.perf.model import build_performance_model

    model = build_performance_model(bert_profile_reports)
    names = list(model.operators)[:8]
    freqs = list(GRID)
    matrix = model.duration_matrix(names, freqs)
    assert matrix.shape == (len(names), len(freqs))
    for i, name in enumerate(names):
        for j, freq in enumerate(freqs):
            assert math.isclose(
                matrix[i, j],
                model.predict_time_us(name, freq),
                rel_tol=1e-12,
            )


def test_duration_matrix_unknown_name_raises(bert_profile_reports):
    from repro.errors import FittingError
    from repro.perf.model import build_performance_model

    model = build_performance_model(bert_profile_reports)
    with pytest.raises(FittingError):
        model.duration_matrix(["no-such-operator"], [1800.0])
