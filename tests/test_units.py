"""Unit-convention helpers."""

import pytest

from repro import units


def test_us_mhz_product_is_cycles():
    assert units.cycles(10.0, 1500.0) == 15_000.0


def test_time_from_cycles_roundtrip():
    cycles = units.cycles(12.5, 1300.0)
    assert units.time_us_from_cycles(cycles, 1300.0) == pytest.approx(12.5)


def test_time_from_cycles_rejects_nonpositive_frequency():
    with pytest.raises(ValueError):
        units.time_us_from_cycles(100.0, 0.0)


def test_seconds_roundtrip():
    assert units.us_to_seconds(units.seconds_to_us(3.5)) == pytest.approx(3.5)


def test_ms_roundtrip():
    assert units.us_to_ms(units.ms_to_us(7.25)) == pytest.approx(7.25)


def test_gbps_conversion():
    # 1 GB/s == 1000 bytes per microsecond.
    assert units.gbps_to_bytes_per_us(1.0) == pytest.approx(1000.0)
    assert units.bytes_per_us_to_gbps(2500.0) == pytest.approx(2.5)


def test_one_second_is_million_us():
    assert units.seconds_to_us(1.0) == 1_000_000.0
