"""Property tests: DvfsStrategy JSON round-trips and the store envelope.

Hypothesis generates arbitrary well-formed strategies — any number of
stage plans with grid frequencies, LFC/HFC kinds, optional anchors and
non-decreasing start times — and asserts that serialisation is lossless:
the parsed strategy equals the original, and every derived quantity the
executor consumes (switches, anchored switches, SetFreq count) survives
the round trip.  The store envelope must preserve the same strategy and
carry the current schema version.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dvfs import DvfsStrategy, StageKind, StagePlan
from repro.serve.store import (
    STORE_SCHEMA_VERSION,
    decode_record,
    encode_record,
)

GRID_MHZ = tuple(1000.0 + 100.0 * i for i in range(9))

_plan_parts = st.tuples(
    st.floats(min_value=1.0, max_value=50_000.0, allow_nan=False),
    st.sampled_from(GRID_MHZ),
    st.sampled_from(tuple(StageKind)),
    st.one_of(st.none(), st.integers(min_value=0, max_value=20_000)),
)


@st.composite
def strategies_(draw) -> DvfsStrategy:
    parts = draw(st.lists(_plan_parts, min_size=1, max_size=12))
    plans = []
    start_us = 0.0
    for duration_us, freq_mhz, kind, anchor in parts:
        plans.append(
            StagePlan(
                start_us=start_us,
                duration_us=duration_us,
                freq_mhz=freq_mhz,
                kind=kind,
                anchor_op_index=anchor,
            )
        )
        start_us += duration_us
    target = draw(
        st.floats(min_value=1e-6, max_value=0.5, allow_nan=False)
    )
    name = draw(st.text(min_size=1, max_size=24))
    return DvfsStrategy(
        workload=name,
        performance_loss_target=target,
        plans=tuple(plans),
    )


@settings(max_examples=60, deadline=None)
@given(strategy=strategies_())
def test_json_roundtrip_is_lossless(strategy):
    restored = DvfsStrategy.from_json(strategy.to_json())
    assert restored == strategy


@settings(max_examples=60, deadline=None)
@given(strategy=strategies_())
def test_roundtrip_preserves_executor_view(strategy):
    restored = DvfsStrategy.from_json(strategy.to_json())
    assert restored.switches() == strategy.switches()
    assert restored.anchored_switches() == strategy.anchored_switches()
    assert restored.setfreq_count == strategy.setfreq_count
    assert restored.initial_freq_mhz == strategy.initial_freq_mhz
    assert restored.frequency_histogram() == strategy.frequency_histogram()


@settings(max_examples=60, deadline=None)
@given(strategy=strategies_())
def test_store_envelope_roundtrip(strategy):
    fingerprint = "ab" * 32
    record = encode_record(fingerprint, strategy, "cfg-hash", "spec-hash")
    assert record["schema_version"] == STORE_SCHEMA_VERSION
    # The envelope must survive a JSON round trip (what the disk does).
    reloaded = json.loads(json.dumps(record))
    restored = decode_record(
        reloaded, fingerprint, "cfg-hash", "spec-hash"
    )
    assert restored == strategy
