"""Tests for the async serving gateway (repro.serve.gateway)."""

from __future__ import annotations

import asyncio

import pytest

from repro.core import OptimizerConfig
from repro.dvfs import GaConfig
from repro.errors import Overloaded, ServeError
from repro.serve import (
    AsyncGateway,
    GatewayConfig,
    StrategyService,
    StrategyStore,
    TokenBucket,
)
from repro.serve.service import ServeResult, ServiceStats
from repro.workloads import build_trace
from tests.conftest import make_compute_op

TINY_GA = GaConfig(population_size=10, iterations=8, seed=0, patience=5)


@pytest.fixture(scope="module")
def tiny_config():
    return OptimizerConfig(ga=TINY_GA, seed=0)


def _trace(tag: str, cycles: float = 100_000.0):
    return build_trace(
        f"gw_{tag}", [make_compute_op(name=f"{tag}_op", core_cycles=cycles)]
    )


def _service(tmp_path, config, name="store"):
    return StrategyService(config=config, store=StrategyStore(tmp_path / name))


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert not bucket.try_take(0.5)
        assert bucket.try_take(1.5)

    def test_capacity_capped_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=1.0)
        assert bucket.try_take(0.0)
        # A long idle period refills at most one token.
        assert bucket.try_take(100.0)
        assert not bucket.try_take(100.0)

    def test_non_monotonic_now_is_safe(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.try_take(5.0)
        # Clock going backwards never mints tokens.
        assert not bucket.try_take(4.0)
        assert bucket.try_take(6.5)


class TestGatewayConfig:
    def test_defaults_valid(self):
        config = GatewayConfig()
        assert config.max_queue_depth >= 1
        assert config.dispatchers >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue_depth": 0},
            {"dispatchers": 0},
            {"rate_per_source": -1.0},
            {"burst_per_source": -1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ServeError):
            GatewayConfig(**kwargs)

    def test_effective_burst_defaults_to_rate(self):
        assert GatewayConfig(rate_per_source=50.0).effective_burst == 50.0
        assert GatewayConfig(
            rate_per_source=50.0, burst_per_source=7.0
        ).effective_burst == 7.0


class TestAsyncGateway:
    def test_unstarted_gateway_rejects(self, tmp_path, tiny_config):
        with _service(tmp_path, tiny_config) as service:
            gateway = AsyncGateway(service)
            with pytest.raises(ServeError):
                gateway.submit_nowait(_trace("unstarted"))

    def test_hit_resolves_synchronously(self, tmp_path, tiny_config):
        trace = _trace("hot")
        with _service(tmp_path, tiny_config) as service:
            service.request(trace)  # warm the store

            async def run():
                async with AsyncGateway(service) as gateway:
                    outcome = gateway.submit_nowait(trace)
                    assert isinstance(outcome, ServeResult)
                    assert outcome.source == "memory"
                    return gateway.stats

            stats = asyncio.run(run())
        assert stats.memory_hits == 1
        assert stats.ga_runs == 0

    def test_miss_matches_serial_service(self, tmp_path, tiny_config):
        """Determinism bar: gateway strategies are byte-identical to a
        serial StrategyService run of the same trace."""
        trace = _trace("identical")

        async def run(service):
            async with AsyncGateway(service) as gateway:
                return await gateway.submit(trace)

        with _service(tmp_path, tiny_config, "gw") as service:
            via_gateway = asyncio.run(run(service))
        with _service(tmp_path, tiny_config, "serial") as serial:
            reference = serial.request(trace)
        assert via_gateway.source == "computed"
        assert (
            via_gateway.strategy.to_json() == reference.strategy.to_json()
        )
        # ... and the committed store records carry the same bytes.
        gw_record = (
            StrategyStore(tmp_path / "gw")
            .path_for(via_gateway.fingerprint)
            .read_text(encoding="utf-8")
        )
        serial_record = (
            StrategyStore(tmp_path / "serial")
            .path_for(reference.fingerprint)
            .read_text(encoding="utf-8")
        )
        assert gw_record == serial_record

    def test_coalescing_one_ga_run_many_waiters(self, tmp_path, tiny_config):
        """N concurrent submissions of one cold fingerprint run the GA
        exactly once and all receive the identical strategy."""
        trace = _trace("coalesce")
        waiters = 8

        async def run(service):
            async with AsyncGateway(service) as gateway:
                outcomes = [
                    gateway.submit_nowait(trace) for _ in range(waiters)
                ]
                assert gateway.inflight == 1
                results = await asyncio.gather(*outcomes)
                return results, gateway.stats

        with _service(tmp_path, tiny_config) as service:
            results, stats = asyncio.run(run(service))
        assert stats.ga_runs == 1
        sources = sorted(result.source for result in results)
        assert sources.count("computed") == 1
        assert sources.count("coalesced") == waiters - 1
        documents = {result.strategy.to_json() for result in results}
        assert len(documents) == 1

    def test_queue_full_sheds_typed(self, tmp_path, tiny_config):
        config = GatewayConfig(max_queue_depth=1, dispatchers=1)
        traces = [_trace(f"qf{i}", cycles=90_000.0 + i) for i in range(3)]

        async def run(service):
            async with AsyncGateway(service, config) as gateway:
                # Submitted back-to-back with no suspension point: the
                # dispatcher never gets the loop, so the queue fills.
                first = gateway.submit_nowait(traces[0])
                with pytest.raises(Overloaded) as excinfo:
                    for trace in traces[1:]:
                        gateway.submit_nowait(trace)
                assert excinfo.value.reason == "queue_full"
                await first
                return gateway.stats

        with _service(tmp_path, tiny_config) as service:
            stats = asyncio.run(run(service))
        assert stats.shed >= 1
        assert stats.shed_rate > 0.0

    def test_rate_limit_sheds_on_virtual_clock(self, tmp_path, tiny_config):
        trace = _trace("ratelimited")
        config = GatewayConfig(rate_per_source=1.0, burst_per_source=1.0)

        async def run(service):
            async with AsyncGateway(service, config) as gateway:
                assert isinstance(
                    gateway.submit_nowait(trace, source="a", now=0.0),
                    ServeResult,
                )
                with pytest.raises(Overloaded) as excinfo:
                    gateway.submit_nowait(trace, source="a", now=0.1)
                assert excinfo.value.reason == "rate_limited"
                # An independent source has its own bucket.
                assert isinstance(
                    gateway.submit_nowait(trace, source="b", now=0.1),
                    ServeResult,
                )
                # ... and the original source recovers after a refill.
                assert isinstance(
                    gateway.submit_nowait(trace, source="a", now=1.2),
                    ServeResult,
                )
                return gateway.stats

        with _service(tmp_path, tiny_config) as service:
            service.request(trace)  # warm: hits resolve synchronously
            stats = asyncio.run(run(service))
        assert stats.shed == 1
        assert stats.requests == 3

    def test_drain_rejects_new_finishes_admitted(self, tmp_path, tiny_config):
        cold = _trace("drain_cold")
        late = _trace("drain_late", cycles=123_456.0)

        async def run(service):
            async with AsyncGateway(service) as gateway:
                admitted = gateway.submit_nowait(cold)
                drain = asyncio.create_task(gateway.drain())
                await asyncio.sleep(0)  # let drain flip the flag
                assert gateway.draining
                with pytest.raises(Overloaded) as excinfo:
                    gateway.submit_nowait(late)
                assert excinfo.value.reason == "draining"
                result = await admitted
                await drain
                return result

        with _service(tmp_path, tiny_config) as service:
            result = asyncio.run(run(service))
        # The admitted request survived the drain and was committed.
        assert result.source == "computed"
        assert service.store.get(result.fingerprint) is not None


class TestServiceStatsZeroSafety:
    def test_all_aggregates_defined_at_zero(self):
        stats = ServiceStats()
        assert stats.hit_rate == 0.0
        assert stats.shed_rate == 0.0
        assert stats.mean_latency_seconds == 0.0
        assert stats.offered == 0
        assert {row["counter"] for row in stats.rows()} >= {
            "requests",
            "shed",
            "hit_rate",
            "shed_rate",
        }

    def test_shed_only_traffic(self):
        stats = ServiceStats()
        for _ in range(5):
            stats.record_shed()
        assert stats.offered == 5
        assert stats.shed_rate == 1.0
        assert stats.hit_rate == 0.0

    def test_source_counts_always_complete(self):
        assert set(ServiceStats().source_counts()) == {
            "memory",
            "hot",
            "disk",
            "coalesced",
            "computed",
            "shed",
        }
