"""Tests for the fleet-serving subsystem (repro.serve)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core import OptimizerConfig
from repro.dvfs import GaConfig
from repro.dvfs.strategy import DvfsStrategy
from repro.errors import ServeError
from repro.serve import (
    OptimizerPool,
    StrategyService,
    StrategyStore,
    config_fingerprint,
    derive_job_seed,
    request_fingerprint,
    spec_fingerprint,
)
from repro.serve.pool import job_config, optimize_job
from repro.serve.store import STORE_SCHEMA_VERSION, encode_record
from repro.workloads import build_trace, generate
from repro.workloads.trace import Trace
from tests.conftest import make_compute_op

QUICK_GA = GaConfig(population_size=20, iterations=25, seed=0, patience=15)


@pytest.fixture(scope="module")
def quick_serve_config():
    return OptimizerConfig(ga=QUICK_GA, seed=0)


@pytest.fixture(scope="module")
def bert_trace():
    return generate("bert", scale=0.02, seed=0)


@pytest.fixture(scope="module")
def resnet_trace():
    return generate("resnet50", scale=0.02, seed=1)


class TestFingerprint:
    def test_stable_across_calls(self, bert_trace):
        assert bert_trace.fingerprint() == bert_trace.fingerprint()

    def test_name_and_description_excluded(self, bert_trace):
        renamed = Trace(
            name="different-job-name",
            entries=bert_trace.entries,
            description="resubmitted by another device",
        )
        assert renamed.fingerprint() == bert_trace.fingerprint()

    def test_content_changes_fingerprint(self):
        a = build_trace("w", [make_compute_op(name="op0")])
        b = build_trace(
            "w", [make_compute_op(name="op0", core_cycles=999_999.0)]
        )
        assert a.fingerprint() != b.fingerprint()

    def test_gap_changes_fingerprint(self):
        spec = make_compute_op(name="op0")
        from repro.workloads.trace import TraceEntry

        a = build_trace("w", [TraceEntry(spec=spec)])
        b = build_trace("w", [TraceEntry(spec=spec, gap_before_us=50.0)])
        assert a.fingerprint() != b.fingerprint()

    def test_config_fingerprint_tracks_strategy_knobs(
        self, quick_serve_config
    ):
        base = config_fingerprint(quick_serve_config)
        assert base == config_fingerprint(quick_serve_config)
        assert base != config_fingerprint(
            quick_serve_config.with_loss_target(0.05)
        )
        assert base != config_fingerprint(
            quick_serve_config.with_interval(100_000.0)
        )

    def test_spec_fingerprint_tracks_hardware(self, quick_serve_config):
        spec = quick_serve_config.npu
        assert spec_fingerprint(spec) == spec_fingerprint(spec)
        assert spec_fingerprint(spec) != spec_fingerprint(
            spec.with_uncore_frequency(0.8)
        )

    def test_request_fingerprint_is_hex_digest(
        self, bert_trace, quick_serve_config
    ):
        fingerprint = request_fingerprint(bert_trace, quick_serve_config)
        assert len(fingerprint) == 64
        assert set(fingerprint) <= set("0123456789abcdef")

    def test_derived_seed_depends_on_both_inputs(self):
        assert derive_job_seed(0, "aa") == derive_job_seed(0, "aa")
        assert derive_job_seed(0, "aa") != derive_job_seed(1, "aa")
        assert derive_job_seed(0, "aa") != derive_job_seed(0, "ab")
        assert derive_job_seed(0, "aa") >= 0

    def test_job_config_applies_derived_seed(self, quick_serve_config):
        derived = job_config(quick_serve_config, "ff" * 32)
        assert derived.seed == derive_job_seed(0, "ff" * 32)
        assert derived.ga.seed == derived.seed
        assert derived.performance_loss_target == (
            quick_serve_config.performance_loss_target
        )


class TestStore:
    def _strategy(self, trace, config, store_key="00" * 32):
        return DvfsStrategy.from_json(
            optimize_job(store_key, trace, config).strategy_json
        )

    def test_roundtrip_and_tiers(self, tmp_path, bert_trace, quick_serve_config):
        store = StrategyStore(tmp_path / "store")
        fingerprint = request_fingerprint(bert_trace, quick_serve_config)
        assert store.lookup(fingerprint) is None
        strategy = self._strategy(bert_trace, quick_serve_config)
        store.put(fingerprint, strategy, "cfg", "spec")
        hit = store.lookup(fingerprint, "cfg", "spec")
        assert hit is not None and hit.tier == "memory"
        assert hit.strategy == strategy
        store.clear_memory()
        hit = store.lookup(fingerprint, "cfg", "spec")
        assert hit is not None and hit.tier == "disk"
        # back in the LRU after the disk hit
        assert store.lookup(fingerprint).tier == "memory"
        assert len(store) == 1
        assert list(store.fingerprints()) == [fingerprint]

    def test_schema_version_mismatch_invalidates(
        self, tmp_path, bert_trace, quick_serve_config
    ):
        store = StrategyStore(tmp_path / "store")
        fingerprint = request_fingerprint(bert_trace, quick_serve_config)
        strategy = self._strategy(bert_trace, quick_serve_config)
        path = store.put(fingerprint, strategy, "cfg", "spec")
        record = json.loads(path.read_text(encoding="utf-8"))
        record["schema_version"] = STORE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(record), encoding="utf-8")
        store.clear_memory()
        assert store.lookup(fingerprint) is None
        assert store.counters.invalidations == 1
        assert not path.exists()

    def test_config_hash_drift_invalidates(
        self, tmp_path, bert_trace, quick_serve_config
    ):
        store = StrategyStore(tmp_path / "store")
        fingerprint = request_fingerprint(bert_trace, quick_serve_config)
        strategy = self._strategy(bert_trace, quick_serve_config)
        store.put(fingerprint, strategy, "cfg-old", "spec")
        store.clear_memory()
        assert store.lookup(fingerprint, "cfg-new", "spec") is None
        assert store.counters.invalidations == 1

    def test_corrupt_record_invalidates(
        self, tmp_path, bert_trace, quick_serve_config
    ):
        store = StrategyStore(tmp_path / "store")
        fingerprint = request_fingerprint(bert_trace, quick_serve_config)
        strategy = self._strategy(bert_trace, quick_serve_config)
        path = store.put(fingerprint, strategy, "cfg", "spec")
        path.write_text("{not json", encoding="utf-8")
        store.clear_memory()
        assert store.lookup(fingerprint) is None
        assert not path.exists()

    @pytest.mark.parametrize(
        "damage",
        [
            pytest.param(lambda doc: doc[: len(doc) // 2], id="truncated"),
            pytest.param(lambda doc: "{garbled" + doc, id="garbled"),
            pytest.param(lambda doc: '["not", "an", "envelope"]', id="list"),
            pytest.param(
                lambda doc: json.dumps(
                    {**json.loads(doc), "strategy": {"nope": 1}}
                ),
                id="malformed-strategy",
            ),
        ],
    )
    def test_damaged_record_quarantined(
        self, tmp_path, bert_trace, quick_serve_config, damage
    ):
        """Structural damage is quarantined (``.corrupt``), counted, and
        treated as a plain miss — lookups never raise."""
        store = StrategyStore(tmp_path / "store")
        fingerprint = request_fingerprint(bert_trace, quick_serve_config)
        strategy = self._strategy(bert_trace, quick_serve_config)
        path = store.put(fingerprint, strategy, "cfg", "spec")
        path.write_text(
            damage(path.read_text(encoding="utf-8")), encoding="utf-8"
        )
        store.clear_memory()
        assert store.lookup(fingerprint, "cfg", "spec") is None
        assert store.counters.quarantined == 1
        assert store.counters.misses == 1
        assert not path.exists()
        quarantined = list(store.quarantined_files())
        assert [p.name for p in quarantined] == [path.name + ".corrupt"]
        # A later lookup is an ordinary miss, not a second quarantine.
        assert store.lookup(fingerprint, "cfg", "spec") is None
        assert store.counters.quarantined == 1
        # ... and a fresh put simply replaces the record.
        store.put(fingerprint, strategy, "cfg", "spec")
        store.clear_memory()
        assert store.lookup(fingerprint, "cfg", "spec").tier == "disk"

    def test_binary_garbage_quarantined(
        self, tmp_path, bert_trace, quick_serve_config
    ):
        store = StrategyStore(tmp_path / "store")
        fingerprint = request_fingerprint(bert_trace, quick_serve_config)
        strategy = self._strategy(bert_trace, quick_serve_config)
        path = store.put(fingerprint, strategy, "cfg", "spec")
        path.write_bytes(b"\x00\xff\xfe not utf-8 \x80")
        store.clear_memory()
        assert store.lookup(fingerprint) is None
        assert store.counters.quarantined == 1
        assert list(store.quarantined_files())

    def test_wrong_address_quarantined(
        self, tmp_path, bert_trace, quick_serve_config
    ):
        """A record whose envelope names a different fingerprint than
        its address is corrupt, not merely stale."""
        store = StrategyStore(tmp_path / "store")
        fingerprint = request_fingerprint(bert_trace, quick_serve_config)
        strategy = self._strategy(bert_trace, quick_serve_config)
        path = store.put(fingerprint, strategy, "cfg", "spec")
        record = json.loads(path.read_text(encoding="utf-8"))
        record["fingerprint"] = "00" * 32
        path.write_text(json.dumps(record), encoding="utf-8")
        store.clear_memory()
        assert store.lookup(fingerprint) is None
        assert store.counters.quarantined == 1

    def test_lru_capacity_bounded(self, tmp_path):
        store = StrategyStore(tmp_path / "store", memory_capacity=2)
        from repro.dvfs.strategy import constant_strategy

        for i in range(4):
            store.put(
                f"{i:02d}" * 32,
                constant_strategy(f"w{i}", 1800.0, 100.0),
                "cfg",
                "spec",
            )
        assert store.memory_size() == 2
        assert len(store) == 4

    def test_bad_fingerprint_rejected(self, tmp_path):
        store = StrategyStore(tmp_path / "store")
        with pytest.raises(ServeError):
            store.path_for("../escape")
        with pytest.raises(ServeError):
            store.path_for("short")

    def test_negative_capacity_rejected(self, tmp_path):
        with pytest.raises(ServeError):
            StrategyStore(tmp_path / "store", memory_capacity=-1)

    def test_clear_removes_records(self, tmp_path):
        store = StrategyStore(tmp_path / "store")
        from repro.dvfs.strategy import constant_strategy

        store.put("ab" * 32, constant_strategy("w", 1800.0, 1.0), "c", "s")
        assert store.clear() == 1
        assert len(store) == 0

    def test_encode_record_carries_schema_version(self):
        from repro.dvfs.strategy import constant_strategy

        record = encode_record(
            "ab" * 32, constant_strategy("w", 1800.0, 1.0), "cfg", "spec"
        )
        assert record["schema_version"] == STORE_SCHEMA_VERSION
        assert record["config_hash"] == "cfg"
        assert record["spec_hash"] == "spec"


class TestPoolDeterminism:
    def test_parallel_matches_serial_end_to_end(
        self, bert_trace, resnet_trace, quick_serve_config
    ):
        """The same batch on 2 and 4 workers and serially is byte-identical.

        This is the end-to-end concurrency-determinism contract: worker
        count, scheduling order and process boundaries must not change a
        single byte of any strategy JSON.
        """
        config = quick_serve_config
        jobs = [
            (request_fingerprint(bert_trace, config), bert_trace),
            (request_fingerprint(resnet_trace, config), resnet_trace),
        ]
        serial = OptimizerPool(workers=0).optimize_batch(jobs, config)
        for workers in (2, 4):
            with OptimizerPool(workers=workers) as pool:
                parallel = pool.optimize_batch(jobs, config)
            assert parallel.keys() == serial.keys()
            for fingerprint in serial:
                assert (
                    parallel[fingerprint].strategy_json
                    == serial[fingerprint].strategy_json
                )

    def test_batch_order_irrelevant(
        self, bert_trace, resnet_trace, quick_serve_config
    ):
        config = quick_serve_config
        jobs = [
            (request_fingerprint(bert_trace, config), bert_trace),
            (request_fingerprint(resnet_trace, config), resnet_trace),
        ]
        forward = OptimizerPool(workers=0).optimize_batch(jobs, config)
        reverse = OptimizerPool(workers=0).optimize_batch(jobs[::-1], config)
        for fingerprint in forward:
            assert (
                forward[fingerprint].strategy_json
                == reverse[fingerprint].strategy_json
            )

    def test_duplicate_fingerprints_rejected(
        self, bert_trace, quick_serve_config
    ):
        fingerprint = request_fingerprint(bert_trace, quick_serve_config)
        with pytest.raises(ServeError):
            OptimizerPool(workers=0).optimize_batch(
                [(fingerprint, bert_trace), (fingerprint, bert_trace)],
                quick_serve_config,
            )

    def test_negative_workers_rejected(self):
        with pytest.raises(ServeError):
            OptimizerPool(workers=-1)


class TestStrategyService:
    def test_compute_then_hit(self, tmp_path, bert_trace, quick_serve_config):
        with StrategyService(
            config=quick_serve_config, store=StrategyStore(tmp_path / "s")
        ) as service:
            first = service.request(bert_trace)
            second = service.request(bert_trace)
        assert first.source == "computed"
        assert second.source == "memory"
        assert first.strategy.to_json() == second.strategy.to_json()
        assert service.stats.ga_runs == 1
        assert service.stats.hit_rate == 0.5

    def test_store_survives_restart(
        self, tmp_path, bert_trace, quick_serve_config
    ):
        root = tmp_path / "s"
        with StrategyService(
            config=quick_serve_config, store=StrategyStore(root)
        ) as service:
            computed = service.request(bert_trace)
        with StrategyService(
            config=quick_serve_config, store=StrategyStore(root)
        ) as restarted:
            served = restarted.request(bert_trace)
        assert served.source == "disk"
        assert served.strategy.to_json() == computed.strategy.to_json()
        assert restarted.stats.ga_runs == 0

    def test_config_change_misses_old_records(
        self, tmp_path, bert_trace, quick_serve_config
    ):
        root = tmp_path / "s"
        with StrategyService(
            config=quick_serve_config, store=StrategyStore(root)
        ) as service:
            service.request(bert_trace)
        retargeted = quick_serve_config.with_loss_target(0.05)
        with StrategyService(
            config=retargeted, store=StrategyStore(root)
        ) as service:
            result = service.request(bert_trace)
        assert result.source == "computed"

    def test_batch_coalesces_duplicates(
        self, tmp_path, bert_trace, resnet_trace, quick_serve_config
    ):
        with StrategyService(
            config=quick_serve_config, store=StrategyStore(tmp_path / "s")
        ) as service:
            results = service.serve_batch(
                [bert_trace, resnet_trace, bert_trace, resnet_trace]
            )
        sources = [result.source for result in results]
        assert sources == ["computed", "computed", "coalesced", "coalesced"]
        assert service.stats.ga_runs == 2
        assert results[0].strategy.to_json() == results[2].strategy.to_json()

    def test_batch_matches_naive_per_request(
        self, tmp_path, bert_trace, resnet_trace, quick_serve_config
    ):
        config = quick_serve_config
        with StrategyService(
            config=config, store=StrategyStore(tmp_path / "s")
        ) as service:
            served = service.serve_batch([bert_trace, resnet_trace])
        for trace, result in zip((bert_trace, resnet_trace), served):
            naive = optimize_job(
                request_fingerprint(trace, config), trace, config
            )
            assert result.strategy.to_json() == naive.strategy_json

    def test_concurrent_requests_coalesce(
        self, tmp_path, bert_trace, quick_serve_config
    ):
        """Threads requesting one fingerprint share a single GA run."""
        with StrategyService(
            config=quick_serve_config, store=StrategyStore(tmp_path / "s")
        ) as service:
            results: list = [None] * 4

            def worker(slot: int) -> None:
                results[slot] = service.request(bert_trace)

            threads = [
                threading.Thread(target=worker, args=(slot,))
                for slot in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert service.stats.ga_runs == 1
        documents = {result.strategy.to_json() for result in results}
        assert len(documents) == 1
        sources = sorted(result.source for result in results)
        assert "computed" in sources
        assert set(sources) <= {"computed", "coalesced", "memory", "disk"}

    def test_stats_rows_render(self, tmp_path, bert_trace, quick_serve_config):
        from repro.core import render_service_stats

        with StrategyService(
            config=quick_serve_config, store=StrategyStore(tmp_path / "s")
        ) as service:
            service.request(bert_trace)
            service.request(bert_trace)
            rendered = render_service_stats(service.stats)
            store_rendered = render_service_stats(
                service.store.counters, title="store"
            )
        assert "requests" in rendered and "ga_runs" in rendered
        assert "memory_hits" in store_rendered


class TestServeCli:
    def test_warm_then_hit(self, tmp_path, capsys):
        from repro.serve.cli import main

        store = str(tmp_path / "store")
        args = [
            "bert",
            "--store", store,
            "--scale", "0.02",
            "--iterations", "25",
            "--population", "20",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "computed" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "disk" in second
        assert "ga_runs" in second

    def test_unknown_workload_fails_cleanly(self, tmp_path, capsys):
        from repro.serve.cli import main

        assert main(["warpdrive", "--store", str(tmp_path / "s")]) == 1
        assert "error:" in capsys.readouterr().err
