"""Statistical behaviour of the instruments and workload calibration bands.

The instruments' noise must be unbiased (models average it out, as the
paper's do), and the generated workloads must stay inside the calibration
bands DESIGN.md documents — these tests pin both.
"""

import numpy as np
import pytest

from repro.analysis.rng import RngFactory
from repro.npu import (
    CannStyleProfiler,
    FrequencyTimeline,
    NpuDevice,
    PowerTelemetry,
    default_npu_spec,
)
from repro.workloads import build_trace, generate
from tests.conftest import make_compute_op


class TestInstrumentStatistics:
    def test_profiler_duration_noise_is_unbiased(self, device, npu_spec):
        op = make_compute_op(name="stat.op")
        trace = build_trace("stat", [op] * 200)
        result = device.run(trace, FrequencyTimeline.constant(1800.0))
        profiler = CannStyleProfiler(
            npu_spec, RngFactory(3).generator("stat-prof")
        )
        report = profiler.profile(result)
        truth = result.records[0].duration_us
        measured = np.array([op.duration_us for op in report.operators])
        # Mean within ~3 standard errors of the truth.
        sigma = npu_spec.noise.duration_sigma * truth
        assert abs(measured.mean() - truth) < 3 * sigma / np.sqrt(200)
        # Spread consistent with the configured sigma.
        assert measured.std() == pytest.approx(sigma, rel=0.35)

    def test_telemetry_power_noise_is_unbiased(self, device, npu_spec):
        telemetry = PowerTelemetry(
            npu_spec, RngFactory(4).generator("stat-telem")
        )
        chunks = device.run_idle(100_000.0, 1800.0, steps=4)
        truth = chunks[0].soc_watts
        readings = np.array(
            [
                telemetry.measure_chunks(chunks).soc_avg_watts
                for _ in range(300)
            ]
        )
        sigma = npu_spec.noise.power_sigma * truth
        assert abs(readings.mean() - truth) < 3 * sigma / np.sqrt(300)

    def test_distinct_seeds_give_distinct_measurements(
        self, device, npu_spec
    ):
        op = make_compute_op(name="seed.op")
        trace = build_trace("seed", [op])
        result = device.run(trace)
        a = CannStyleProfiler(
            npu_spec, RngFactory(1).generator("p")
        ).profile(result)
        b = CannStyleProfiler(
            npu_spec, RngFactory(2).generator("p")
        ).profile(result)
        assert a.operators[0].duration_us != b.operators[0].duration_us


class TestWorkloadCalibrationBands:
    """DESIGN.md's calibration targets, as regression bands (scaled runs
    extrapolate linearly in the layer count)."""

    @pytest.fixture(scope="class")
    def calibrated_device(self):
        return NpuDevice(default_npu_spec())

    def test_gpt3_iteration_time_band(self, calibrated_device):
        result = calibrated_device.run_stable(generate("gpt3", scale=0.05))
        full_estimate = result.duration_us / 1e6 / 0.05
        assert 9.0 < full_estimate < 13.5  # paper: 11.29 s

    def test_gpt3_power_band(self, calibrated_device):
        result = calibrated_device.run_stable(generate("gpt3", scale=0.05))
        assert 40.0 < result.aicore_avg_watts < 52.0  # paper: 45.92 W
        assert 225.0 < result.soc_avg_watts < 265.0  # paper: 250.04 W

    def test_bert_iteration_time_band(self, calibrated_device):
        result = calibrated_device.run_stable(generate("bert", scale=0.5))
        full_estimate = result.duration_us / 1e6 / 0.5
        assert 0.2 < full_estimate < 0.45  # paper: 0.309 s

    def test_resnet50_iteration_time_band(self, calibrated_device):
        result = calibrated_device.run_stable(generate("resnet50", scale=0.5))
        full_estimate = result.duration_us / 1e6 / 0.5
        assert 0.2 < full_estimate < 0.45  # paper: 0.317 s

    def test_bert_has_highest_aicore_power(self, calibrated_device):
        """Paper Table 3: BERT draws the most AICore power of the four
        end-to-end models; our calibration preserves it being at the top
        of the band."""
        bert = calibrated_device.run_stable(generate("bert", scale=0.3))
        gpt3 = calibrated_device.run_stable(generate("gpt3", scale=0.05))
        assert bert.aicore_avg_watts > gpt3.aicore_avg_watts

    def test_uncore_dominates_soc_power(self, calibrated_device):
        """Sect. 8.2: uncore components average ~80% of SoC power."""
        result = calibrated_device.run_stable(generate("gpt3", scale=0.05))
        uncore_share = 1.0 - result.aicore_avg_watts / result.soc_avg_watts
        assert 0.6 < uncore_share < 0.95


class TestGaOperatorSemantics:
    def test_crossover_is_tail_swap(self):
        """Children produced by crossover are tail-swapped parents: every
        gene comes from parent A's head or parent B's tail."""
        import numpy as np

        rng = np.random.default_rng(0)
        n = 12
        parent_a = np.zeros(n, dtype=int)
        parent_b = np.ones(n, dtype=int)
        # Reproduce the run_search crossover inline.
        child = parent_a.copy()
        k = int(rng.integers(1, n + 1))
        child[n - k:] = parent_b[n - k:]
        assert set(child[: n - k]) <= {0}
        assert set(child[n - k:]) <= {1}

    def test_mutation_changes_exactly_one_gene(self):
        import numpy as np

        rng = np.random.default_rng(1)
        n = 12
        genome = np.full(n, 8, dtype=int)
        position = int(rng.integers(0, n))
        value = int(rng.integers(0, 9))
        mutated = genome.copy()
        mutated[position] = value
        assert (mutated != genome).sum() <= 1
