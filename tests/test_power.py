"""Tests for power calibration, models, and validation (paper Sect. 5, 7.3)."""

import pytest

from repro.analysis.rng import RngFactory
from repro.errors import CalibrationError
from repro.npu import NpuDevice, PowerTelemetry, noise_free_spec
from repro.power import (
    CalibrationConstants,
    IdlePowerFit,
    PowerObservation,
    build_operator_power_table,
    calibrate_idle_power,
    extract_gamma,
    extract_temperature_slope,
    fit_load_power_model,
    solve_alpha,
    validate_power_model,
)
from repro.workloads import generate
from repro.workloads.generators import micro


@pytest.fixture(scope="module")
def ideal_instruments():
    spec = noise_free_spec()
    device = NpuDevice(spec)
    telemetry = PowerTelemetry(spec, RngFactory(5).generator("t"))
    return spec, device, telemetry


@pytest.fixture(scope="module")
def ideal_calibration(ideal_instruments):
    from repro.power import run_offline_calibration

    _, device, telemetry = ideal_instruments
    return run_offline_calibration(
        device,
        telemetry,
        micro.mixed_calibration_load(repeats=10),
        k_loads=[micro.matmul_loop(repeats=20), micro.gelu_loop(repeats=20)],
    )


class TestIdleCalibration:
    def test_recovers_ground_truth_exactly_without_noise(
        self, ideal_instruments
    ):
        spec, device, telemetry = ideal_instruments
        aicore_fit, soc_fit = calibrate_idle_power(device, telemetry)
        assert aicore_fit.beta_w_per_ghz_v2 == pytest.approx(
            spec.power.beta_w_per_ghz_v2, rel=0.15
        )
        assert aicore_fit.theta_w_per_v == pytest.approx(
            spec.power.theta_w_per_v, rel=0.15
        )
        # SoC idle dominated by the uncore floor.
        assert soc_fit.predict(1000.0, 0.78) > 100.0

    def test_idle_fit_predict_matches_device(self, ideal_instruments):
        spec, device, telemetry = ideal_instruments
        aicore_fit, _ = calibrate_idle_power(device, telemetry)
        # The fit interpolates its own two calibration points exactly; at a
        # mid frequency the small thermal drift keeps it close.
        truth = device.evaluator.idle_aicore_power(1400.0, 0.0)
        assert aicore_fit.predict(1400.0, spec.volts_at(1400.0)) == (
            pytest.approx(truth, rel=0.1)
        )

    def test_rejects_equal_frequencies(self, ideal_instruments):
        _, device, telemetry = ideal_instruments
        with pytest.raises(CalibrationError):
            calibrate_idle_power(device, telemetry, freqs_mhz=(1000.0, 1000.0))


class TestGammaExtraction:
    def test_recovers_gamma_aicore(self, ideal_instruments):
        spec, device, telemetry = ideal_instruments
        observation = extract_gamma(
            device, telemetry, micro.matmul_loop(repeats=20)
        )
        assert observation.gamma_aicore_w_per_c_v == pytest.approx(
            spec.power.gamma_aicore_w_per_c_v, rel=0.05
        )

    def test_soc_slope_includes_uncore_leakage(self, ideal_instruments):
        spec, device, telemetry = ideal_instruments
        observation = extract_gamma(
            device, telemetry, micro.matmul_loop(repeats=20)
        )
        expected_slope = (
            spec.power.gamma_aicore_w_per_c_v * 0.78
            + spec.power.gamma_uncore_w_per_c_v * spec.power.uncore_volts
        )
        assert observation.soc_fit.slope == pytest.approx(
            expected_slope, rel=0.05
        )

    def test_cold_load_rejected(self, ideal_instruments):
        _, device, telemetry = ideal_instruments
        tiny = micro.operator_loop(
            micro.oplib.aicpu("cool", 10.0), repeats=1, name="cool_loop"
        )
        with pytest.raises(CalibrationError):
            extract_gamma(device, telemetry, tiny)


class TestTemperatureSlope:
    def test_recovers_k(self, ideal_instruments):
        spec, device, telemetry = ideal_instruments
        fit = extract_temperature_slope(
            device,
            telemetry,
            [micro.matmul_loop(repeats=20), micro.gelu_loop(repeats=20)],
        )
        assert fit.slope == pytest.approx(
            spec.thermal.celsius_per_watt, rel=0.1
        )
        assert fit.r_squared > 0.98


class TestAlphaSolving:
    def test_alpha_roundtrip(self, ideal_calibration):
        """solve_alpha inverts the model's own prediction."""
        from repro.power import LoadPowerModel

        model = LoadPowerModel(
            name="x",
            alpha_aicore=12.0,
            alpha_soc=20.0,
            constants=ideal_calibration,
        )
        prediction = model.predict(1400.0)
        observation = PowerObservation(
            freq_mhz=1400.0,
            aicore_watts=prediction.aicore_watts,
            soc_watts=prediction.soc_watts,
        )
        alpha_aicore, alpha_soc = solve_alpha(observation, ideal_calibration)
        assert alpha_aicore == pytest.approx(12.0, rel=1e-3)
        assert alpha_soc == pytest.approx(20.0, rel=1e-3)

    def test_fit_requires_observations(self, ideal_calibration):
        with pytest.raises(CalibrationError):
            fit_load_power_model("x", [], ideal_calibration)

    def test_prediction_monotone_in_frequency(self, ideal_calibration):
        model = fit_load_power_model(
            "x",
            [PowerObservation(1000.0, 30.0, 230.0),
             PowerObservation(1800.0, 46.0, 255.0)],
            ideal_calibration,
        )
        powers = [model.predict(f).aicore_watts for f in (1000, 1400, 1800)]
        assert powers[0] < powers[1] < powers[2]

    def test_thermal_iterations_within_paper_bound(self, ideal_calibration):
        """Sect. 5.4.2: the AT iteration converges in no more than 4 steps
        at the paper's tolerance scale."""
        model = fit_load_power_model(
            "x",
            [PowerObservation(1800.0, 46.0, 250.0)],
            ideal_calibration,
        )
        prediction = model.predict(1400.0, tol=0.05)
        assert prediction.thermal_iterations <= 4
        assert prediction.delta_celsius > 0

    def test_gamma_zero_ablation_changes_prediction(self, ideal_calibration):
        observation = PowerObservation(1800.0, 46.0, 250.0)
        with_thermal = fit_load_power_model(
            "x", [observation], ideal_calibration
        )
        without = fit_load_power_model(
            "x", [observation], ideal_calibration.without_thermal_term()
        )
        assert without.constants.gamma_soc_w_per_c_v == 0.0
        assert with_thermal.predict(1200.0).aicore_watts != pytest.approx(
            without.predict(1200.0).aicore_watts
        )


class TestOperatorPowerTable:
    def test_build_from_readings(self, ideal_calibration):
        readings = {
            1000.0: {"a": (30.0, 230.0), "b": (20.0, 210.0)},
            1800.0: {"a": (46.0, 255.0), "b": (30.0, 235.0)},
        }
        table = build_operator_power_table(readings, ideal_calibration)
        assert len(table) == 2
        assert table.entry("a").alpha_aicore > table.entry("b").alpha_aicore

    def test_alpha_clamped_nonnegative(self, ideal_calibration):
        readings = {1800.0: {"cold": (1.0, 180.0)}}
        table = build_operator_power_table(readings, ideal_calibration)
        assert table.entry("cold").alpha_aicore == 0.0

    def test_unknown_operator_rejected(self, ideal_calibration):
        table = build_operator_power_table(
            {1800.0: {"a": (40.0, 250.0)}}, ideal_calibration
        )
        with pytest.raises(CalibrationError):
            table.entry("missing")

    def test_power_matrix_shapes_and_monotonicity(self, ideal_calibration):
        readings = {
            1000.0: {"a": (30.0, 230.0)},
            1800.0: {"a": (46.0, 255.0)},
        }
        table = build_operator_power_table(readings, ideal_calibration)
        freqs = [1000.0, 1400.0, 1800.0]
        matrix = table.aicore_power_matrix(["a"], freqs)
        assert matrix.shape == (1, 3)
        assert matrix[0, 0] < matrix[0, 1] < matrix[0, 2]
        soc = table.soc_power_matrix(["a"], freqs)
        assert (soc > matrix).all()

    def test_empty_readings_rejected(self, ideal_calibration):
        with pytest.raises(CalibrationError):
            build_operator_power_table({}, ideal_calibration)


class TestPowerValidation:
    def test_table2_shape(self, ideal_instruments, ideal_calibration):
        """Sect. 7.3 protocol on noise-free instruments: models fit at the
        extremes predict mid frequencies within a few percent."""
        _, device, telemetry = ideal_instruments
        loads = [
            generate("bert", scale=0.1),
            micro.softmax_loop(repeats=30),
        ]
        validation = validate_power_model(
            loads,
            device,
            telemetry,
            ideal_calibration,
            validation_freqs_mhz=[1200.0, 1400.0, 1600.0],
        )
        assert validation.mean_error < 0.06
        buckets = validation.bucket_table()
        assert sum(buckets.values()) == pytest.approx(1.0)

    def test_gamma_ablation_is_worse_or_equal(
        self, ideal_instruments, ideal_calibration
    ):
        """Table 2 vs the gamma = 0 ablation (4.62% vs 4.97% in the paper):
        dropping the thermal term must not improve accuracy."""
        _, device, telemetry = ideal_instruments
        loads = [micro.softmax_loop(repeats=30), micro.matmul_loop(repeats=10)]
        kwargs = dict(validation_freqs_mhz=[1200.0, 1500.0, 1700.0])
        with_thermal = validate_power_model(
            loads, device, telemetry, ideal_calibration, **kwargs
        )
        without = validate_power_model(
            loads, device, telemetry,
            ideal_calibration.without_thermal_term(), **kwargs
        )
        assert without.mean_error >= with_thermal.mean_error * 0.9

    def test_validation_requires_frequencies(
        self, ideal_instruments, ideal_calibration
    ):
        _, device, telemetry = ideal_instruments
        with pytest.raises(CalibrationError):
            validate_power_model(
                [micro.matmul_loop(repeats=5)],
                device,
                telemetry,
                ideal_calibration,
                validation_freqs_mhz=[],
            )

    def test_errors_for_load(self, ideal_instruments, ideal_calibration):
        _, device, telemetry = ideal_instruments
        validation = validate_power_model(
            [micro.tanh_loop(repeats=20)],
            device,
            telemetry,
            ideal_calibration,
            validation_freqs_mhz=[1400.0],
        )
        records = validation.errors_for("tanh_loop")
        assert len(records) == 2  # aicore + soc rails
        assert {r.rail for r in records} == {"aicore", "soc"}


class TestConstants:
    def test_idle_fit_predict(self):
        fit = IdlePowerFit(beta_w_per_ghz_v2=2.0, theta_w_per_v=5.0)
        assert fit.predict(1000.0, 0.8) == pytest.approx(
            2.0 * 1.0 * 0.64 + 5.0 * 0.8
        )

    def test_without_thermal_term(self, ideal_calibration):
        ablated = ideal_calibration.without_thermal_term()
        assert ablated.gamma_aicore_w_per_c_v == 0.0
        assert ablated.gamma_soc_w_per_c_v == 0.0
        assert isinstance(ablated, CalibrationConstants)
        # Other constants unchanged.
        assert ablated.k_celsius_per_watt == (
            ideal_calibration.k_celsius_per_watt
        )
