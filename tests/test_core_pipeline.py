"""Integration tests for the Fig. 1 end-to-end pipeline."""

import pytest

from repro import EnergyOptimizer, OptimizerConfig
from repro.core.report import MeasuredMetrics, format_table
from repro.dvfs import GaConfig
from repro.errors import ConfigurationError
from repro.perf import FitFunction
from repro.workloads import generate


@pytest.fixture(scope="module")
def quick_config():
    return OptimizerConfig(
        performance_loss_target=0.02,
        ga=GaConfig(population_size=60, iterations=120, seed=0),
    )


@pytest.fixture(scope="module")
def gpt3_report(quick_config):
    optimizer = EnergyOptimizer(quick_config)
    return optimizer.optimize(generate("gpt3", scale=0.05))


class TestConfig:
    def test_defaults_are_paper_settings(self):
        config = OptimizerConfig()
        assert config.performance_loss_target == 0.02
        assert config.adjustment_interval_us == 5000.0
        assert config.profile_freqs_mhz == (1000.0, 1400.0, 1800.0)
        assert config.fit_function is FitFunction.QUADRATIC_NO_LINEAR
        assert config.ga.population_size == 200
        assert config.ga.iterations == 600
        assert config.ga.mutation_rate == 0.15

    def test_rejects_bad_target(self):
        with pytest.raises(ConfigurationError):
            OptimizerConfig(performance_loss_target=0.0)

    def test_rejects_off_grid_profile_freq(self):
        with pytest.raises(ConfigurationError):
            OptimizerConfig(profile_freqs_mhz=(1000.0, 1750.0))

    def test_rejects_insufficient_freqs_for_function(self):
        with pytest.raises(ConfigurationError):
            OptimizerConfig(
                fit_function=FitFunction.QUADRATIC,
                profile_freqs_mhz=(1000.0, 1800.0),
            )

    def test_rejects_bad_objective(self):
        with pytest.raises(ConfigurationError):
            OptimizerConfig(objective="gpu")

    def test_with_helpers(self):
        config = OptimizerConfig()
        assert config.with_loss_target(0.06).performance_loss_target == 0.06
        assert config.with_interval(1e5).adjustment_interval_us == 1e5


class TestEndToEnd:
    def test_power_reduced_within_loss_target(self, gpt3_report):
        assert gpt3_report.aicore_power_reduction > 0.03
        assert gpt3_report.soc_power_reduction > 0.0
        assert gpt3_report.performance_loss < 0.025

    def test_aicore_savings_exceed_soc_savings(self, gpt3_report):
        """The paper's headline asymmetry: AICore ~13%, SoC ~5%."""
        assert gpt3_report.aicore_power_reduction > (
            2.0 * gpt3_report.soc_power_reduction
        )

    def test_strategy_uses_multiple_frequencies(self, gpt3_report):
        assert gpt3_report.setfreq_count > 2
        assert len(gpt3_report.strategy.frequency_histogram()) >= 2

    def test_lfc_below_hfc(self, gpt3_report):
        mean_lfc = gpt3_report.strategy.mean_lfc_freq_mhz()
        assert mean_lfc is not None and mean_lfc < 1800.0

    def test_prediction_close_to_measurement(self, gpt3_report):
        predicted = gpt3_report.predicted
        measured = gpt3_report.under_dvfs
        assert predicted.aicore_watts == pytest.approx(
            measured.aicore_watts, rel=0.10
        )
        assert predicted.time_us / 1e6 == pytest.approx(
            measured.iteration_seconds, rel=0.03
        )

    def test_report_row_and_summary(self, gpt3_report):
        row = gpt3_report.table3_row()
        assert row["model"] == "gpt3"
        assert "aicore_reduction" in row
        assert "gpt3" in gpt3_report.summary()

    def test_search_metadata(self, gpt3_report):
        assert gpt3_report.search.evaluations > 0
        assert gpt3_report.stage_count > 1
        assert gpt3_report.operator_count > 100

    def test_calibration_reused(self, quick_config):
        optimizer = EnergyOptimizer(quick_config)
        first = optimizer.calibrate()
        second = optimizer.calibrate()
        assert first is second

    def test_injected_calibration_used(self, quick_config):
        donor = EnergyOptimizer(quick_config)
        constants = donor.calibrate()
        optimizer = EnergyOptimizer(quick_config)
        optimizer.use_calibration(constants)
        assert optimizer.calibrate() is constants

    def test_higher_target_saves_more_power(self, quick_config):
        trace = generate("gpt3", scale=0.05)
        loose = EnergyOptimizer(quick_config.with_loss_target(0.10)).optimize(
            trace
        )
        tight = EnergyOptimizer(quick_config.with_loss_target(0.02)).optimize(
            trace
        )
        assert loose.aicore_power_reduction > tight.aicore_power_reduction
        assert loose.performance_loss > tight.performance_loss


class TestReportHelpers:
    def test_measured_metrics_from_result(self, device, small_bert_trace):
        result = device.run(small_bert_trace)
        metrics = MeasuredMetrics.from_result(result)
        assert metrics.iteration_seconds == pytest.approx(
            result.duration_us / 1e6
        )

    def test_format_table(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "22" in lines[3]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"


class TestSweep:
    def test_sweep_shares_profiling(self, quick_config):
        from repro.core import sweep_loss_targets

        trace = generate("gpt3", scale=0.03)
        sweep = sweep_loss_targets(
            trace, (0.02, 0.06, 0.10), config=quick_config
        )
        assert len(sweep) == 3
        assert sweep.savings_are_monotone()
        losses = [r.performance_loss for r in sweep.reports]
        assert losses == sorted(losses)

    def test_report_for_and_knee(self, quick_config):
        from repro.core import sweep_loss_targets

        trace = generate("gpt3", scale=0.03)
        sweep = sweep_loss_targets(trace, (0.02, 0.10), config=quick_config)
        assert sweep.report_for(0.02).performance_loss_target == 0.02
        assert sweep.knee_target() in (0.02, 0.10)
        with pytest.raises(ConfigurationError):
            sweep.report_for(0.5)

    def test_sweep_validation(self, quick_config):
        from repro.core import sweep_loss_targets

        trace = generate("gpt3", scale=0.03)
        with pytest.raises(ConfigurationError):
            sweep_loss_targets(trace, (), config=quick_config)
        with pytest.raises(ConfigurationError):
            sweep_loss_targets(trace, (0.10, 0.02), config=quick_config)

    def test_report_for_tolerates_float_arithmetic(self, quick_config):
        # A target that arrives through arithmetic is not bit-equal to
        # the swept literal (0.1 + 0.2 - 0.2 != 0.1); report_for must
        # still find its report via isclose matching.
        from repro.core import sweep_loss_targets

        trace = generate("gpt3", scale=0.03)
        sweep = sweep_loss_targets(trace, (0.02, 0.1), config=quick_config)
        computed = 0.1 + 0.2 - 0.2
        assert computed != 0.1
        assert sweep.report_for(computed).performance_loss_target == 0.1
        with pytest.raises(ConfigurationError):
            sweep.report_for(0.1001)
