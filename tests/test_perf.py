"""Tests for the performance model: cycle analysis, fitting, validation."""

import numpy as np
import pytest

from repro.errors import FittingError, ProfilingError, WorkloadError
from repro.npu import MemoryHierarchy
from repro.npu.timeline import Scenario
from repro.perf import (
    FitFunction,
    OperatorCycleModel,
    build_performance_model,
    fit_func1,
    fit_func2,
    fit_func3,
    fit_performance,
    select_fit_frequencies,
    validate_performance_model,
)
from repro.workloads.operator import OperatorKind, make_fixed_operator
from tests.conftest import make_compute_op

GRID = [1000.0 + 100.0 * i for i in range(9)]


class TestCycleModel:
    def test_matches_evaluator_duration(self, evaluator, npu_spec):
        op = make_compute_op()
        model = OperatorCycleModel(op, npu_spec.memory)
        for freq in (1000.0, 1400.0, 1800.0):
            assert model.time_us(freq) == pytest.approx(
                evaluator.duration_us(op, freq)
            )

    @pytest.mark.parametrize("scenario", list(Scenario))
    def test_cycles_convex_in_all_scenarios(self, npu_spec, scenario):
        op = make_compute_op(scenario=scenario, derate=0.8)
        model = OperatorCycleModel(op, npu_spec.memory)
        assert model.is_convex_on(GRID)

    def test_slopes_nondecreasing(self, npu_spec):
        """Sect. 4.2.5: with increasing frequency the slope increases."""
        op = make_compute_op(ld_bytes=4_000_000.0, derate=0.9)
        model = OperatorCycleModel(op, npu_spec.memory)
        slopes = model.slope_profile(GRID)
        assert np.all(np.diff(slopes) >= -1e-6)

    def test_breakpoints_from_derate(self, npu_spec):
        op = make_compute_op(derate=0.8)
        model = OperatorCycleModel(op, npu_spec.memory)
        expected_fs = npu_spec.memory.saturation_frequency(0.8)
        for point in model.breakpoints_mhz():
            assert point == pytest.approx(expected_fs)

    def test_breakpoints_empty_without_transfers(self, npu_spec):
        op = make_compute_op(ld_bytes=0.0, st_bytes=0.0)
        model = OperatorCycleModel(op, npu_spec.memory)
        assert model.breakpoints_mhz() == []

    def test_rejects_noncompute(self, npu_spec):
        op = make_fixed_operator("a", OperatorKind.AICPU, 5.0)
        with pytest.raises(WorkloadError):
            OperatorCycleModel(op, npu_spec.memory)

    def test_transfer_law_saturation(self):
        memory = MemoryHierarchy()
        op = make_compute_op(derate=1.0)
        model = OperatorCycleModel(op, memory)
        assert model.load_law.saturation_mhz == pytest.approx(
            memory.saturation_frequency()
        )


class TestFitting:
    def test_func2_two_point_exact_interpolation(self):
        fit = fit_func2([1000.0, 1800.0], [30.0, 21.5])
        assert fit.predict_time_us(1000.0) == pytest.approx(30.0)
        assert fit.predict_time_us(1800.0) == pytest.approx(21.5)

    def test_func2_recovers_true_form(self):
        # T(f) = a f + c / f with known parameters.
        a, c = 0.004, 24_000.0
        freqs = [1000.0, 1800.0]
        times = [a * f + c / f for f in freqs]
        fit = fit_func2(freqs, times)
        assert fit.params[0] == pytest.approx(a)
        assert fit.params[1] == pytest.approx(c)
        # And predicts exactly everywhere.
        assert fit.predict_time_us(1400.0) == pytest.approx(a * 1400 + c / 1400)

    def test_func2_least_squares_with_more_points(self):
        a, c = 0.004, 24_000.0
        freqs = GRID
        times = [a * f + c / f for f in freqs]
        fit = fit_func2(freqs, times)
        assert fit.params[0] == pytest.approx(a, rel=1e-6)

    def test_func1_recovers_quadratic(self):
        a, b, c = 0.003, 2.0, 20_000.0
        freqs = [1000.0, 1400.0, 1800.0]
        times = [(a * f * f + b * f + c) / f for f in freqs]
        fit = fit_func1(freqs, times)
        assert fit.predict_time_us(1200.0) == pytest.approx(
            (a * 1200**2 + b * 1200 + c) / 1200, rel=1e-4
        )

    def test_func3_keeps_b_in_bounds(self):
        a, b, c = 5000.0, 1.0006, 18_000.0
        freqs = [1000.0, 1400.0, 1800.0]
        times = [(a * b**f + c) / f for f in freqs]
        fit = fit_func3(freqs, times)
        assert fit.function is FitFunction.EXPONENTIAL
        # The paper constrains b to [0, 10]; the naive mid-bounds start
        # means the fit may be biased, but the bound always holds.
        assert 0.0 <= fit.params[1] <= 10.0
        for f, t in zip(freqs, times):
            assert abs(float(fit.predict_time_us(f)) - t) / t < 0.5

    def test_required_points(self):
        assert FitFunction.QUADRATIC_NO_LINEAR.required_points == 2
        assert FitFunction.QUADRATIC.required_points == 3
        assert FitFunction.EXPONENTIAL.required_points == 3

    def test_too_few_points_rejected(self):
        with pytest.raises(FittingError):
            fit_func1([1000.0, 1800.0], [30.0, 20.0])
        with pytest.raises(FittingError):
            fit_func2([1000.0], [30.0])

    def test_duplicate_frequencies_rejected(self):
        with pytest.raises(FittingError):
            fit_func2([1000.0, 1000.0], [30.0, 31.0])

    def test_nonpositive_samples_rejected(self):
        with pytest.raises(FittingError):
            fit_func2([1000.0, 1800.0], [30.0, -1.0])

    def test_predict_rejects_nonpositive_frequency(self):
        fit = fit_func2([1000.0, 1800.0], [30.0, 21.0])
        with pytest.raises(FittingError):
            fit.predict_time_us(0.0)

    def test_predict_cycles(self):
        fit = fit_func2([1000.0, 1800.0], [30.0, 21.0])
        assert fit.predict_cycles(1000.0) == pytest.approx(30_000.0)

    def test_fit_performance_dispatch(self):
        fit = fit_performance(
            [1000.0, 1800.0], [30.0, 21.0], FitFunction.QUADRATIC_NO_LINEAR
        )
        assert fit.function is FitFunction.QUADRATIC_NO_LINEAR

    def test_select_fit_frequencies(self):
        freqs = [1000.0, 1300.0, 1500.0, 1800.0]
        assert select_fit_frequencies(freqs, FitFunction.QUADRATIC_NO_LINEAR) == [
            1000.0,
            1800.0,
        ]
        chosen = select_fit_frequencies(freqs, FitFunction.QUADRATIC)
        assert chosen[0] == 1000.0 and chosen[-1] == 1800.0 and len(chosen) == 3

    def test_select_rejects_insufficient(self):
        with pytest.raises(FittingError):
            select_fit_frequencies([1000.0, 1800.0], FitFunction.QUADRATIC)

    def test_vectorised_prediction(self):
        fit = fit_func2([1000.0, 1800.0], [30.0, 21.0])
        result = fit.predict_time_us(np.array([1000.0, 1800.0]))
        assert result.shape == (2,)


class TestWorkloadModel:
    def test_build_and_predict(self, bert_profile_reports):
        model = build_performance_model(bert_profile_reports)
        assert model.fit_freqs_mhz == (1000.0, 1800.0)
        assert len(model) > 0
        name = next(iter(model.operators))
        assert model.predict_time_us(name, 1400.0) > 0

    def test_unknown_operator_rejected(self, bert_profile_reports):
        model = build_performance_model(bert_profile_reports)
        with pytest.raises(FittingError):
            model.predict_time_us("nope", 1400.0)

    def test_noncompute_constant(self, bert_profile_reports):
        model = build_performance_model(bert_profile_reports)
        fixed = [
            m for m in model.operators.values() if not m.frequency_sensitive
        ]
        assert fixed, "trace should contain AICPU/communication operators"
        for op_model in fixed[:5]:
            assert op_model.predict_time_us(1000.0) == pytest.approx(
                op_model.predict_time_us(1800.0)
            )

    def test_compute_slower_at_low_frequency(self, bert_profile_reports):
        model = build_performance_model(bert_profile_reports)
        sensitive = [
            m for m in model.operators.values() if m.frequency_sensitive
        ]
        slower = sum(
            1
            for m in sensitive
            if m.predict_time_us(1000.0) > m.predict_time_us(1800.0)
        )
        assert slower / len(sensitive) > 0.9

    def test_duration_matrix_shape(self, bert_profile_reports):
        model = build_performance_model(bert_profile_reports)
        names = list(model.operators)[:4]
        matrix = model.duration_matrix(names, GRID)
        assert matrix.shape == (4, 9)
        assert np.all(matrix > 0)

    def test_explicit_fit_freqs_validated(self, bert_profile_reports):
        with pytest.raises(ProfilingError):
            build_performance_model(
                bert_profile_reports, fit_freqs_mhz=(1000.0, 1700.0)
            )

    def test_validation_excludes_fit_freqs(self, bert_profile_reports):
        model = build_performance_model(bert_profile_reports)
        validation = validate_performance_model(model, bert_profile_reports)
        freqs = {record.freq_mhz for record in validation.records}
        assert freqs == {1300.0, 1500.0}

    def test_validation_accuracy_matches_paper_shape(
        self, bert_profile_reports
    ):
        """Fig. 15 / Sect. 7.2: Func. 2 averages ~2% error, with the bulk
        of predictions within 5% and nearly all within 10%."""
        model = build_performance_model(bert_profile_reports)
        validation = validate_performance_model(model, bert_profile_reports)
        assert validation.summary.mean < 0.04
        assert validation.summary.within_5pct > 0.85
        assert validation.summary.within_10pct > 0.95

    def test_func1_at_least_as_accurate_as_func3(self, bert_profile_reports):
        func1 = validate_performance_model(
            build_performance_model(
                bert_profile_reports, function=FitFunction.QUADRATIC,
                fit_freqs_mhz=(1000.0, 1300.0, 1800.0),
            ),
            bert_profile_reports,
        )
        assert func1.summary.mean < 0.04

    def test_error_cdf_is_monotone(self, bert_profile_reports):
        model = build_performance_model(bert_profile_reports)
        validation = validate_performance_model(model, bert_profile_reports)
        xs, ps = validation.error_cdf()
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(ps) >= 0)

    def test_errors_for_operator(self, bert_profile_reports):
        model = build_performance_model(bert_profile_reports)
        validation = validate_performance_model(model, bert_profile_reports)
        name = validation.records[0].name
        records = validation.errors_for(name)
        assert all(r.name == name for r in records)
        freqs = [r.freq_mhz for r in records]
        assert freqs == sorted(freqs)

    def test_validation_needs_holdout(self, bert_profile_reports):
        # Fit on every profiled frequency -> nothing left to validate on.
        model = build_performance_model(
            bert_profile_reports,
            fit_freqs_mhz=(1000.0, 1300.0, 1500.0, 1800.0),
        )
        with pytest.raises(ProfilingError):
            validate_performance_model(model, bert_profile_reports)


class TestModelRobustness:
    def test_operator_missing_at_one_frequency_rejected(
        self, bert_profile_reports
    ):
        """A profiling pass that lost an operator at one frequency cannot
        silently produce a model for it."""
        from dataclasses import replace

        full = bert_profile_reports
        name = full[0].operators[0].name
        truncated = [
            full[0],
            replace(
                full[-1],
                operators=tuple(
                    op for op in full[-1].operators if op.name != name
                ),
            ),
        ]
        with pytest.raises(ProfilingError):
            build_performance_model(
                truncated, fit_freqs_mhz=(1000.0, 1800.0)
            )

    def test_higher_cutoff_shrinks_validation_set(self, bert_profile_reports):
        model = build_performance_model(bert_profile_reports)
        low = validate_performance_model(
            model, bert_profile_reports, cutoff_us=20.0
        )
        high = validate_performance_model(
            model, bert_profile_reports, cutoff_us=100.0
        )
        assert high.data_points < low.data_points
