"""Tests for the repro-optimize CLI and multi-iteration execution."""

import pytest

from repro.core.cli import build_parser, main
from repro.npu import FrequencyTimeline
from repro.npu.setfreq import AnchoredFrequencyPlan, AnchoredSwitch
from repro.workloads import build_trace, generate, save_trace
from tests.conftest import make_compute_op


class TestRunIterations:
    def test_results_per_iteration(self, ideal_device):
        trace = build_trace(
            "it", [make_compute_op(name=f"it.op{i}") for i in range(3)]
        )
        results = ideal_device.run_iterations(trace, iterations=4)
        assert len(results) == 4

    def test_thermal_state_carries_over(self, ideal_device):
        trace = build_trace(
            "it2", [make_compute_op(name=f"it2.op{i}") for i in range(5)]
        )
        results = ideal_device.run_iterations(trace, iterations=3)
        for prev, nxt in zip(results, results[1:]):
            assert nxt.start_celsius == pytest.approx(prev.end_celsius)
        # The chip warms across iterations.
        assert results[-1].end_celsius > results[0].start_celsius

    def test_policy_reuse_is_stable(self, ideal_device):
        """Sect. 6: one policy applies to every subsequent iteration —
        the anchored plan resets per iteration and each iteration's
        duration is identical."""
        trace = build_trace(
            "it3", [make_compute_op(name=f"it3.op{i}") for i in range(4)]
        )
        plan = AnchoredFrequencyPlan(
            1800.0,
            [AnchoredSwitch(1, 1000.0), AnchoredSwitch(3, 1800.0)],
        )
        results = ideal_device.run_iterations(trace, plan, iterations=3)
        durations = [r.duration_us for r in results]
        assert durations[0] == pytest.approx(durations[1])
        assert durations[1] == pytest.approx(durations[2])
        for result in results:
            assert result.records[1].start_freq_mhz == 1000.0
            assert result.records[3].start_freq_mhz == 1800.0

    def test_steady_iterations_approach_equilibrium(self, ideal_device):
        trace = build_trace(
            "it4", [make_compute_op(name=f"it4.op{i}") for i in range(4)]
        )
        results = ideal_device.run_iterations(
            trace, FrequencyTimeline.constant(1800.0), iterations=3
        )
        stable = ideal_device.run_stable(trace)
        # Later iterations drift toward the equilibrium measurement.
        gap_first = abs(results[0].aicore_avg_watts - stable.aicore_avg_watts)
        gap_last = abs(results[-1].aicore_avg_watts - stable.aicore_avg_watts)
        assert gap_last <= gap_first

    def test_rejects_zero_iterations(self, ideal_device):
        from repro.errors import ConfigurationError

        trace = build_trace("it5", [make_compute_op(name="it5.op")])
        with pytest.raises(ConfigurationError):
            ideal_device.run_iterations(trace, iterations=0)


class TestOptimizeCli:
    def test_workload_run_and_strategy_saved(self, tmp_path, capsys):
        out = tmp_path / "strategy.json"
        code = main(
            [
                "bert", "--scale", "0.05", "--iterations", "60",
                "--population", "40", "--save-strategy", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "loss target" in text
        assert "strategy written" in text

    def test_trace_file_input(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        save_trace(generate("bert", scale=0.05), path)
        code = main(
            ["--trace-file", str(path), "--iterations", "60",
             "--population", "40"]
        )
        assert code == 0
        assert "bert" in capsys.readouterr().out

    def test_requires_exactly_one_source(self):
        with pytest.raises(SystemExit):
            main([])
        with pytest.raises(SystemExit):
            main(["bert", "--trace-file", "x.json"])

    def test_unknown_workload_errors(self, capsys):
        assert main(["not_a_workload"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_trace_file_errors(self, capsys):
        assert main(["--trace-file", "/nonexistent/trace.json"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_parser_defaults(self):
        args = build_parser().parse_args(["gpt3"])
        assert args.target == 0.02
        assert args.objective == "aicore"
        assert args.interval_ms == 5.0


class TestStrategyTimeline:
    def test_render_contains_bar(self):
        from repro.core.report import render_strategy_timeline
        from repro.dvfs import StageKind, StagePlan, DvfsStrategy

        strategy = DvfsStrategy(
            "w", 0.02,
            (
                StagePlan(0.0, 10_000.0, 1800.0, StageKind.HFC, 0),
                StagePlan(10_000.0, 10_000.0, 1000.0, StageKind.LFC, 3),
            ),
        )
        text = render_strategy_timeline(strategy, width=20)
        lines = text.splitlines()
        assert lines[1].startswith("|") and lines[1].endswith("|")
        assert "#" in lines[1] and "." in lines[1]
        assert "1 SetFreq" in lines[0]

    def test_single_frequency_renders_flat(self):
        from repro.core.report import render_strategy_timeline
        from repro.dvfs import constant_strategy

        strategy = constant_strategy("w", 1500.0, 5_000.0)
        text = render_strategy_timeline(strategy, width=10)
        assert text.splitlines()[1] == "|" + "#" * 10 + "|"

    def test_too_narrow_width(self):
        from repro.core.report import render_strategy_timeline
        from repro.dvfs import constant_strategy

        strategy = constant_strategy("w", 1500.0, 5_000.0)
        assert render_strategy_timeline(strategy, width=2) == "(empty strategy)"
