"""Tests for trace/spec JSON serialisation."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    generate,
    load_trace,
    save_trace,
    trace_from_json,
    trace_to_json,
)
from repro.workloads.operator import OperatorKind, make_fixed_operator
from repro.workloads.serialization import spec_from_dict, spec_to_dict
from repro.workloads.trace import TraceEntry, build_trace
from tests.conftest import make_compute_op


class TestSpecSerialisation:
    def test_compute_roundtrip(self):
        spec = make_compute_op(name="rt", derate=0.8, overhead_us=2.5)
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_fixed_roundtrip(self):
        spec = make_fixed_operator("c", OperatorKind.COMMUNICATION, 42.0)
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_malformed_payload_rejected(self):
        with pytest.raises(WorkloadError):
            spec_from_dict({"name": "x"})

    def test_bad_enum_rejected(self):
        payload = spec_to_dict(make_compute_op())
        payload["compute"]["scenario"] = "warp_drive"
        with pytest.raises(WorkloadError):
            spec_from_dict(payload)


class TestTraceSerialisation:
    def test_roundtrip_preserves_entries(self):
        trace = generate("bert", scale=0.05)
        restored = trace_from_json(trace_to_json(trace))
        assert restored.name == trace.name
        assert restored.description == trace.description
        assert restored.entries == trace.entries

    def test_roundtrip_preserves_gaps_and_host_intervals(self):
        op = make_compute_op(name="g")
        trace = build_trace(
            "g",
            [
                TraceEntry(op, gap_before_us=10.0),
                TraceEntry(op, host_interval_us=20.0),
            ],
        )
        restored = trace_from_json(trace_to_json(trace))
        assert restored.entries[0].gap_before_us == 10.0
        assert restored.entries[1].host_interval_us == 20.0

    def test_specs_are_deduplicated(self):
        op = make_compute_op(name="dup")
        trace = build_trace("d", [op] * 50)
        document = trace_to_json(trace)
        assert document.count('"dup"') == 1

    def test_file_roundtrip(self, tmp_path):
        trace = generate("llama2_inference", scale=0.05)
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        assert load_trace(path).entries == trace.entries

    def test_restored_trace_executes_identically(self, ideal_device):
        trace = generate("bert", scale=0.05)
        restored = trace_from_json(trace_to_json(trace))
        a = ideal_device.run(trace)
        b = ideal_device.run(restored)
        assert a.duration_us == pytest.approx(b.duration_us)
        assert a.soc_energy_j == pytest.approx(b.soc_energy_j)

    def test_unknown_version_rejected(self):
        with pytest.raises(WorkloadError):
            trace_from_json('{"format_version": 99}')

    def test_garbage_rejected(self):
        with pytest.raises(WorkloadError):
            trace_from_json("{nope")
        with pytest.raises(WorkloadError):
            trace_from_json('{"format_version": 1, "name": "x"}')
