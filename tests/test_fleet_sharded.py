"""Tests for the sharded multi-process fleet engine (repro.fleet.sharded).

The contract under test is strict: the sharded engine must be
*byte-identical* to the single-process fleet — durations, waits,
frequencies, memberships, straggler selection, churn histories and
reclaimed strategies — at every worker count, with energies and
temperatures inside the standard 1e-9 equivalence bar.  Failure
handling is typed: a killed worker raises
:class:`~repro.errors.FleetWorkerError` promptly (no hang) and nothing
partial reaches the strategy store.
"""

import glob
import os
import signal
import time

import numpy as np
import pytest

from repro.cluster.serve import fleet_cached_reclaim
from repro.errors import ConfigurationError, FleetWorkerError, ReproError
from repro.fleet import (
    ChurnConfig,
    FleetSimulator,
    FleetSpec,
    ShardedFleetSimulator,
    auto_retarget,
    make_fleet_simulator,
    plan_strategy_json,
    reclaim_fleet_slack,
    shard_bounds,
    simulator_workers,
)
from repro.fleet.reference import compare_with_sharded
from repro.serve.store import StrategyStore
from repro.workloads import generate


@pytest.fixture(scope="module")
def tiny_trace():
    return generate("gpt3", scale=0.01)


def churned_spec(n_devices: int, seed: int) -> FleetSpec:
    return FleetSpec(
        n_devices=n_devices,
        seed=seed,
        churn=ChurnConfig(
            join_rate=0.3, leave_rate=0.2, fail_rate=0.1, max_joins=4
        ),
    )


class TestShardBounds:
    @pytest.mark.parametrize("n", [0, 1, 2, 7, 16, 1000])
    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 8])
    def test_contiguous_disjoint_cover(self, n, workers):
        spans = [shard_bounds(n, workers, i) for i in range(workers)]
        assert spans[0][0] == 0
        assert spans[-1][1] == n
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            assert hi == lo  # contiguous, no gaps, no overlap

    def test_balanced_within_one(self):
        sizes = [hi - lo for lo, hi in
                 (shard_bounds(1000, 3, i) for i in range(3))]
        assert sum(sizes) == 1000
        assert max(sizes) - min(sizes) <= 1


class TestFactory:
    def test_workers_one_is_the_plain_engine(self, tiny_trace):
        sim = make_fleet_simulator(
            FleetSpec(n_devices=4), tiny_trace, workers=1
        )
        assert type(sim) is FleetSimulator
        assert simulator_workers(sim) == 1

    def test_workers_two_is_sharded(self, tiny_trace):
        sim = make_fleet_simulator(
            FleetSpec(n_devices=4), tiny_trace, workers=2
        )
        try:
            assert isinstance(sim, ShardedFleetSimulator)
            assert simulator_workers(sim) == 2
        finally:
            sim.close()

    def test_rejects_zero_workers(self, tiny_trace):
        with pytest.raises(ConfigurationError):
            ShardedFleetSimulator(
                FleetSpec(n_devices=4), tiny_trace, workers=0
            )


class TestByteIdentity:
    """The tentpole bar: sharded == single-process, bit for bit."""

    @pytest.mark.parametrize("n_devices", [16, 64, 1000])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_identical_across_sizes_and_workers(
        self, tiny_trace, n_devices, workers
    ):
        comparison = compare_with_sharded(
            churned_spec(n_devices, seed=0),
            tiny_trace,
            steps=3,
            workers=workers,
        )
        assert comparison.durations_bitwise
        assert comparison.plans_byte_identical
        assert comparison.straggler_rows_identical
        assert comparison.events_equal
        assert comparison.overruns_equal
        assert comparison.ok()

    @pytest.mark.parametrize("seed", [3, 7])
    def test_identical_across_churn_seeds(self, tiny_trace, seed):
        comparison = compare_with_sharded(
            churned_spec(64, seed=seed), tiny_trace, steps=4, workers=2
        )
        assert comparison.byte_identical
        assert comparison.ok()

    def test_more_workers_than_devices(self, tiny_trace):
        comparison = compare_with_sharded(
            FleetSpec(n_devices=2, seed=0), tiny_trace, steps=2, workers=4
        )
        assert comparison.byte_identical
        assert comparison.ok()

    def test_batching_does_not_change_results(self, tiny_trace):
        spec = churned_spec(32, seed=1)
        with ShardedFleetSimulator(
            spec, tiny_trace, workers=2, max_batch=1
        ) as unbatched, ShardedFleetSimulator(
            spec, tiny_trace, workers=2, max_batch=8
        ) as batched:
            a = unbatched.run_steps(None, steps=6)
            b = batched.run_steps(None, steps=6)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert np.array_equal(x.device_ids, y.device_ids)
            assert np.array_equal(x.arrival_us, y.arrival_us)
            assert np.array_equal(x.end_celsius, y.end_celsius)
            assert np.array_equal(
                x.idle_soc_energy_j, y.idle_soc_energy_j
            )
            assert x.events == y.events

    def test_reclaim_dispatch_is_byte_identical(self, tiny_trace):
        spec = FleetSpec(n_devices=32, seed=2)
        single = FleetSimulator(spec, tiny_trace)
        reference = reclaim_fleet_slack(single, slack_margin=0.01)
        with ShardedFleetSimulator(spec, tiny_trace, workers=3) as sim:
            plan = reclaim_fleet_slack(sim, slack_margin=0.01)
        assert plan_strategy_json(plan) == plan_strategy_json(reference)
        assert plan.target_compute_us == reference.target_compute_us
        assert plan.straggler_id == reference.straggler_id
        assert np.array_equal(plan.freq_index, reference.freq_index)
        assert np.array_equal(plan.predicted_us, reference.predicted_us)


class TestLifecycle:
    def test_context_manager_closes(self, tiny_trace):
        with ShardedFleetSimulator(
            FleetSpec(n_devices=8), tiny_trace, workers=2
        ) as sim:
            sim.step()
        with pytest.raises(FleetWorkerError):
            sim.step()

    def test_close_is_idempotent(self, tiny_trace):
        sim = ShardedFleetSimulator(
            FleetSpec(n_devices=8), tiny_trace, workers=2
        )
        sim.step()
        sim.close()
        sim.close()

    def test_reset_replays_identically(self, tiny_trace):
        with ShardedFleetSimulator(
            churned_spec(16, seed=0), tiny_trace, workers=2
        ) as sim:
            first = sim.run_steps(None, steps=4)
            sim.reset()
            second = sim.run_steps(None, steps=4)
        for x, y in zip(first, second):
            assert np.array_equal(x.arrival_us, y.arrival_us)
            assert np.array_equal(x.end_celsius, y.end_celsius)
            assert x.events == y.events


class TestWorkerFailure:
    def test_killed_worker_raises_typed_error_fast(self, tiny_trace):
        with ShardedFleetSimulator(
            FleetSpec(n_devices=16), tiny_trace, workers=2, timeout_s=30.0
        ) as sim:
            sim.step()
            victim = sim._procs[-1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5.0)
            start = time.monotonic()
            with pytest.raises(FleetWorkerError):
                sim.step()
            # Detected by liveness polling, not by the reply deadline.
            assert time.monotonic() - start < 10.0
            # The engine is latched broken: every later call is an
            # immediate typed error, never a hang.
            with pytest.raises(FleetWorkerError):
                sim.step()
            with pytest.raises(FleetWorkerError):
                reclaim_fleet_slack(sim)

    def test_killed_worker_commits_nothing_to_the_store(
        self, tiny_trace, tmp_path
    ):
        store = StrategyStore(tmp_path / "store")
        with ShardedFleetSimulator(
            FleetSpec(n_devices=16), tiny_trace, workers=2, timeout_s=30.0
        ) as sim:
            os.kill(sim._procs[0].pid, signal.SIGKILL)
            sim._procs[0].join(timeout=5.0)
            with pytest.raises(FleetWorkerError):
                fleet_cached_reclaim(sim, store)
        records = glob.glob(str(tmp_path / "store" / "**" / "*.json*"),
                            recursive=True)
        assert records == []

    def test_typed_error_is_a_repro_error(self):
        assert issubclass(FleetWorkerError, ReproError)


class TestStoreIntegration:
    def test_fleet_cached_reclaim_through_sharded_engine(
        self, tiny_trace, tmp_path
    ):
        spec = FleetSpec(n_devices=8, seed=0)
        store = StrategyStore(tmp_path / "store")
        reference = fleet_cached_reclaim(
            FleetSimulator(spec, tiny_trace), StrategyStore(tmp_path / "ref")
        )
        with ShardedFleetSimulator(spec, tiny_trace, workers=2) as sim:
            miss = fleet_cached_reclaim(sim, store)
            hit = fleet_cached_reclaim(sim, store)
        assert miss.hit_count == 0
        assert hit.hit_count == spec.n_devices
        assert plan_strategy_json(miss.plan) == plan_strategy_json(
            reference.plan
        )
        assert plan_strategy_json(hit.plan) == plan_strategy_json(
            miss.plan
        )


class TestRunSteps:
    def test_replan_after_churn_matches_single_process(self, tiny_trace):
        spec = churned_spec(24, seed=5)
        single = FleetSimulator(spec, tiny_trace)
        plan = reclaim_fleet_slack(single)
        ref = single.run_steps(
            plan,
            steps=5,
            target_compute_us=plan.target_compute_us,
            replan=auto_retarget(0.0),
        )
        with ShardedFleetSimulator(spec, tiny_trace, workers=2) as sim:
            shard_plan = reclaim_fleet_slack(sim)
            got = sim.run_steps(
                shard_plan,
                steps=5,
                target_compute_us=shard_plan.target_compute_us,
                replan=auto_retarget(0.0),
            )
        for x, y in zip(got, ref):
            assert np.array_equal(x.device_ids, y.device_ids)
            assert np.array_equal(x.arrival_us, y.arrival_us)
            assert np.array_equal(x.freq_mhz, y.freq_mhz)
            assert x.straggler_id == y.straggler_id
            assert x.overrun_count == y.overrun_count
            assert x.events == y.events

    def test_rejects_zero_steps(self, tiny_trace):
        with ShardedFleetSimulator(
            FleetSpec(n_devices=4), tiny_trace, workers=2
        ) as sim:
            with pytest.raises(ConfigurationError):
                sim.run_steps(steps=0)

    def test_overrun_totals_accumulate_like_single_process(
        self, tiny_trace
    ):
        spec = FleetSpec(n_devices=12, seed=0)
        single = FleetSimulator(spec, tiny_trace)
        plan = reclaim_fleet_slack(single)
        tight = plan.target_compute_us / 2.0
        single.run_steps(plan, steps=3, target_compute_us=tight)
        with ShardedFleetSimulator(spec, tiny_trace, workers=2) as sim:
            shard_plan = reclaim_fleet_slack(sim)
            sim.run_steps(shard_plan, steps=3, target_compute_us=tight)
            assert sim.overrun_total == single.overrun_total
