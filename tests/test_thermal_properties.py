"""Property-based tests for the thermal RC model, plus an aliasing audit.

The cluster layer multiplies thermal state: every device carries its own
:class:`~repro.npu.thermal.ThermalState`, and per-device ambients are
produced by ``dataclasses.replace`` on one shared
:class:`~repro.npu.thermal.ThermalSpec`.  Two families of guarantees:

* **Physics** (hypothesis): ``advance`` approaches the equilibrium
  monotonically and never overshoots; splitting an interval into k
  sub-steps is exactly equivalent to one big step (the update is the
  exact ODE solution, not an Euler approximation); ``settle`` equals
  the closed form and the infinite-time limit of ``advance``.
* **Isolation** (audit): specs are frozen and shared safely; states are
  created fresh per run, so two devices built from one spec can never
  alias each other's temperature.
"""

import dataclasses
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.device import ClusterDevice
from repro.cluster.spec import ClusterSpec
from repro.errors import ConfigurationError
from repro.npu.spec import default_npu_spec
from repro.npu.thermal import ThermalSpec, ThermalState

specs = st.builds(
    ThermalSpec,
    ambient_celsius=st.floats(0.0, 60.0),
    celsius_per_watt=st.floats(0.01, 1.0),
    time_constant_us=st.floats(1e3, 1e8),
)
powers = st.floats(0.0, 500.0)
durations = st.floats(0.0, 1e8)
temperatures = st.floats(-20.0, 150.0)


class TestAdvanceProperties:
    @given(spec=specs, power=powers, start=temperatures, duration=durations)
    @settings(max_examples=200, deadline=None)
    def test_monotone_approach_without_overshoot(
        self, spec, power, start, duration
    ):
        """After any interval, T stays between the start and equilibrium."""
        equilibrium = spec.equilibrium_celsius(power)
        state = ThermalState(spec, start)
        end = state.advance(power, duration)
        low, high = min(start, equilibrium), max(start, equilibrium)
        assert low - 1e-9 <= end <= high + 1e-9

    @given(
        spec=specs,
        power=powers,
        start=temperatures,
        duration=st.floats(1.0, 1e7),
        splits=st.integers(1, 10),
    )
    @settings(max_examples=200, deadline=None)
    def test_substepping_invariance(
        self, spec, power, start, duration, splits
    ):
        """k equal sub-steps land exactly where one big step does."""
        one = ThermalState(spec, start)
        one.advance(power, duration)
        many = ThermalState(spec, start)
        for _ in range(splits):
            many.advance(power, duration / splits)
        assert math.isclose(
            one.celsius, many.celsius, rel_tol=1e-9, abs_tol=1e-9
        )

    @given(spec=specs, power=powers, start=temperatures)
    @settings(max_examples=200, deadline=None)
    def test_settle_is_closed_form_and_advance_limit(
        self, spec, power, start
    ):
        """settle == Eq. 15 closed form == advance over many tau."""
        state = ThermalState(spec, start)
        settled = state.settle(power)
        expected = spec.ambient_celsius + spec.celsius_per_watt * power
        assert math.isclose(settled, expected, rel_tol=1e-12, abs_tol=1e-12)
        limit = ThermalState(spec, start)
        limit.advance(power, 80.0 * spec.time_constant_us)
        assert math.isclose(limit.celsius, settled, rel_tol=1e-9, abs_tol=1e-6)

    @given(spec=specs, power=powers)
    @settings(max_examples=100, deadline=None)
    def test_zero_duration_is_identity(self, spec, power):
        state = ThermalState(spec, 42.0)
        assert state.advance(power, 0.0) == 42.0

    def test_negative_duration_rejected(self):
        state = ThermalState(ThermalSpec())
        with pytest.raises(ConfigurationError):
            state.advance(10.0, -1.0)


class TestThermalAliasingAudit:
    def test_thermal_spec_is_frozen(self):
        """The shared spec cannot be mutated through any holder."""
        spec = ThermalSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.ambient_celsius = 99.0

    def test_states_from_one_spec_never_alias(self):
        """Two states over one spec evolve independently."""
        spec = ThermalSpec()
        hot = ThermalState(spec, 30.0)
        cold = ThermalState(spec, 30.0)
        hot.advance(200.0, 5e6)
        assert cold.celsius == 30.0
        assert hot.celsius > cold.celsius

    def test_cluster_devices_never_share_thermal_state(self):
        """Two devices built from one base spec heat up independently.

        The cluster applies per-device ambients with
        ``dataclasses.replace`` on the shared base ``ThermalSpec``; a
        shared-mutable-default bug anywhere in that chain would leak one
        device's run into its sibling's starting temperature.
        """
        base = default_npu_spec()
        spec = ClusterSpec(n_devices=2, npu=base, seed=0)
        profiles = spec.device_profiles()
        a = ClusterDevice(profiles[0], base)
        b = ClusterDevice(profiles[1], base)
        assert a.npu.thermal is not b.npu.thermal or (
            profiles[0].ambient_offset_celsius
            == profiles[1].ambient_offset_celsius
        )
        # Idling device a hot must not move device b's spec or results.
        before = b.npu.thermal.ambient_celsius
        a.idle(5e6, 1800.0, start_celsius=90.0)
        assert b.npu.thermal.ambient_celsius == before
        assert base.thermal.ambient_celsius == 25.0
