"""Vectorized slack reclamation and delta0 re-targeting for the fleet.

The cluster layer's :func:`repro.cluster.dvfs.reclaim_slack` walks
per-device Python tables; at fleet scale the same policy is three array
passes over the ``(capacity, F)`` duration table of
:meth:`repro.fleet.simulator.FleetSimulator.duration_table`:

1. the barrier target is the straggler's maximum-frequency arrival
   (optionally stretched by ``slack_margin``);
2. each active device takes the *lowest* grid frequency whose arrival
   meets the target — a boolean ``argmax`` along the frequency axis;
3. the result is a :class:`~repro.fleet.simulator.FleetPlan` of
   ``(capacity,)`` arrays the simulator gathers from directly.

Because the duration table is bitwise identical to probing each device
through the engine, the chosen frequencies, predicted arrivals and the
barrier target all match the looped cluster reference exactly — and
:func:`plan_strategies` materialises the same byte-identical per-device
:func:`~repro.dvfs.strategy.constant_strategy` objects the cluster
plan carries, which is what the store-backed serve path persists.

Re-targeting after churn or degradation is just running the same pass
on the current membership: :func:`auto_retarget` packages that as the
``replan`` callback of
:meth:`~repro.fleet.simulator.FleetSimulator.run_steps`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.dvfs.strategy import DvfsStrategy, constant_strategy
from repro.errors import ConfigurationError, StrategyError
from repro.fleet.simulator import FleetPlan, FleetSimulator


def reclaim_fleet_slack(
    sim: FleetSimulator, slack_margin: float = 0.0
) -> FleetPlan:
    """Downclock every non-critical active device to just-in-time arrival.

    One vectorized pass over the duration table; semantics (and bytes)
    of :func:`repro.cluster.dvfs.reclaim_slack` at any fleet size.

    Raises:
        ConfigurationError: on a negative ``slack_margin``.
        StrategyError: when a device cannot reach the barrier even at
            the maximum grid frequency (only possible with a stale
            externally-supplied target; the self-derived target is
            always feasible).
    """
    if slack_margin < 0:
        raise ConfigurationError(
            f"slack_margin must be non-negative: {slack_margin}"
        )
    # Sharded engines reclaim with per-shard passes and an ordered
    # merge; the assembled plan is byte-identical to the table pass
    # below (pinned by tests/test_fleet_sharded.py).
    sharded = getattr(sim, "reclaim_sharded", None)
    if sharded is not None:
        return sharded(slack_margin)
    freqs = sim.spec.npu.frequencies.points
    table = sim.duration_table()
    act = sim.active_ids
    if act.size == 0:
        raise ConfigurationError("reclaim needs at least one active device")
    arrivals = table[act, -1]
    straggler_id = int(act[int(np.argmax(arrivals))])
    target = float(arrivals.max()) * (1.0 + slack_margin)

    meets = table[act] <= target
    feasible = meets.any(axis=1)
    if not feasible.all():
        device = int(act[int(np.argmax(~feasible))])
        raise StrategyError(
            f"device {device} cannot reach the barrier at "
            f"{target:.0f} us even at {freqs[-1]:.0f} MHz"
        )
    chosen = np.argmax(meets, axis=1)

    capacity = sim.spec.capacity
    freq_index = np.full(capacity, len(freqs) - 1, dtype=np.intp)
    freq_index[act] = chosen
    grid = np.asarray(freqs, dtype=float)
    freq_mhz = grid[freq_index]
    predicted = table[np.arange(capacity), freq_index]
    covered = np.zeros(capacity, dtype=bool)
    covered[act] = True
    return FleetPlan(
        workload=sim.trace.name,
        target_compute_us=target,
        straggler_id=straggler_id,
        freqs_mhz=tuple(float(f) for f in freqs),
        freq_index=freq_index,
        freq_mhz=freq_mhz,
        predicted_us=predicted,
        covered=covered,
    )


def plan_strategies(plan: FleetPlan) -> tuple[DvfsStrategy, ...]:
    """Per-device constant strategies of a fleet plan, covered ids in order.

    Byte-identical to the cluster plan's ``strategies`` tuple for the
    same devices — the payload the strategy store persists.
    """
    ids = np.flatnonzero(plan.covered)
    return tuple(
        constant_strategy(
            plan.workload,
            float(plan.freq_mhz[i]),
            float(plan.predicted_us[i]),
        )
        for i in ids
    )


def plan_strategy_json(plan: FleetPlan) -> tuple[str, ...]:
    """Serialized per-device strategies (the byte-identity payload)."""
    return tuple(s.to_json() for s in plan_strategies(plan))


def auto_retarget(
    slack_margin: float = 0.0,
) -> Callable[[FleetSimulator], FleetPlan]:
    """A ``replan`` callback re-running reclamation on the live fleet.

    Pass to :meth:`~repro.fleet.simulator.FleetSimulator.run_steps`:
    after any step whose churn changed membership, the plan and barrier
    target are rebuilt for the surviving devices — the fleet-scale
    version of the cluster experiment's degraded-straggler re-target.
    """
    def replan(sim: FleetSimulator) -> FleetPlan:
        return reclaim_fleet_slack(sim, slack_margin)

    return replan
