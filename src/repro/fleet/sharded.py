"""Sharded multi-process fleet engine: 100k devices over worker shards.

:class:`~repro.fleet.simulator.FleetSimulator` runs the whole fleet as
``(devices,)`` array passes in one Python process — fast, but bounded
by one core.  This module partitions the stacked fleet arrays into
contiguous device shards and pins each shard to a persistent worker
process:

* **Shared-memory data plane.**  Every capacity-sized array the barrier
  step touches — the per-frequency
  :class:`~repro.npu.engine.ConstAffineBatch` stacks, board ambients,
  the thermal state, the active membership, the plan assignment and the
  per-step outputs — lives in one ``multiprocessing.shared_memory``
  segment.  Workers attach **once** at startup (the
  :mod:`repro.serve.hotmem` pattern) and every later command moves zero
  array bytes through pickles: the control frames are fixed 52-byte
  structs.
* **Shard-then-reduce steps.**  A step is parallel per-shard passes
  over ``[lo, hi)`` slices of the packed active order, plus the
  O(workers) reductions the barrier actually needs: per-shard max
  arrival (the barrier), the straggler candidate, and per-shard
  infeasibility during reclamation.  Reductions merge in shard order,
  so ties resolve exactly like the single-process ``argmax``.
* **Epoch caching.**  Arrivals, gathered energy coefficients and the
  barrier-wait idle integration depend only on (membership, plan,
  target) — an *epoch* — not on the evolving thermal state.  Workers
  rebuild their shard's coefficients once per epoch and a warm step
  collapses to a handful of affine passes in ``delta0``; consecutive
  churn-free steps batch into one command round-trip.
* **Determinism discipline.**  Shard boundaries are the fixed
  contiguous partition of the packed active order; churn stays on the
  master with the exact per-step seeded streams of
  :mod:`repro.fleet.churn`, so replays are identical at any worker
  count.  Durations, reclaimed strategies, straggler selection and
  churn histories are *bitwise* equal to the single-process engine;
  idle energies and temperatures agree to rounding (~1e-15, the same
  class of difference the fleet already carries vs the looped cluster)
  because the 8-substep idle integration is collapsed to its exact
  per-epoch affine form.  :func:`repro.fleet.reference.compare_with_sharded`
  is the harness that pins all of this.
* **Failure model.**  A dead or hung worker raises a typed
  :class:`~repro.errors.FleetWorkerError` (never a hang): the engine
  marks itself broken, terminates the survivors, and no step result or
  plan escapes — which is what keeps half-computed plans out of the
  strategy store.
"""

from __future__ import annotations

import struct
import time
from multiprocessing import get_context, get_all_start_methods, shared_memory
from typing import Callable, Sequence

import numpy as np

from repro.cluster.simulator import BARRIER_OVERRUN_TOLERANCE
from repro.errors import ConfigurationError, FleetWorkerError, StrategyError
from repro.fleet.churn import FleetEvent
from repro.fleet.simulator import (
    DEFAULT_TOP_K,
    IDLE_INTEGRATION_STEPS,
    FleetPlan,
    FleetSimulator,
    FleetStepResult,
    descending_top_k,
)
from repro.fleet.spec import FleetSpec
from repro.units import US_PER_S
from repro.workloads.trace import Trace

#: Consecutive churn-free steps executed per worker command round-trip.
DEFAULT_MAX_BATCH = 8

#: Fixed control frame: an op code plus six float64 operands (commands)
#: or a status plus six float64 results (replies).  Everything bulky
#: stays in shared memory.
_FRAME = struct.Struct("<i6d")

_OP_SHUTDOWN = 0
_OP_EPOCH_ARRIVALS = 1
_OP_EPOCH_COEFFS = 2
_OP_STEPS = 3
_OP_RECLAIM_TARGET = 4
_OP_RECLAIM_CHOOSE = 5

_MEMBERSHIP_KINDS = ("join", "leave", "fail")

#: "No plan published yet" sentinel (``None`` is a real state: baseline).
_NO_PLAN = object()


class _Layout:
    """Offsets of every array in the shared segment.

    Computed identically on both sides from ``(capacity, F, K)`` so the
    worker can rebuild its views from three integers.
    """

    def __init__(self, capacity: int, n_freqs: int, max_batch: int) -> None:
        self.capacity = capacity
        self.n_freqs = n_freqs
        self.max_batch = max_batch
        cursor = 0

        def f8(count: int) -> int:
            nonlocal cursor
            offset = cursor
            cursor += 8 * count
            return offset

        self.ambient = f8(capacity)
        self.celsius = f8(capacity)
        self.act_ids = f8(capacity)  # int64
        self.plan_freq = f8(capacity)
        self.plan_covered = f8(capacity)  # 0.0 / 1.0
        self.arrival = f8(capacity)
        self.wait = f8(capacity)
        self.freqs = f8(capacity)
        self.reclaim_idx = f8(capacity)  # int64
        self.reclaim_pred = f8(capacity)
        self.sol_ready = f8(n_freqs)  # int64
        self.sol_scalars = f8(n_freqs * 4)
        self.solutions = f8(n_freqs * 7 * capacity)
        self.outputs = f8(max_batch * 5 * capacity)
        self.total_bytes = cursor

    def views(self, buf) -> dict[str, np.ndarray]:
        """NumPy views over ``buf`` for every region."""
        c = self.capacity

        def arr(offset: int, shape, dtype=np.float64) -> np.ndarray:
            return np.ndarray(shape, dtype=dtype, buffer=buf, offset=offset)

        return {
            "ambient": arr(self.ambient, (c,)),
            "celsius": arr(self.celsius, (c,)),
            "act_ids": arr(self.act_ids, (c,), np.int64),
            "plan_freq": arr(self.plan_freq, (c,)),
            "plan_covered": arr(self.plan_covered, (c,)),
            "arrival": arr(self.arrival, (c,)),
            "wait": arr(self.wait, (c,)),
            "freqs": arr(self.freqs, (c,)),
            "reclaim_idx": arr(self.reclaim_idx, (c,), np.int64),
            "reclaim_pred": arr(self.reclaim_pred, (c,)),
            "sol_ready": arr(self.sol_ready, (self.n_freqs,), np.int64),
            "sol_scalars": arr(self.sol_scalars, (self.n_freqs, 4)),
            # [slot, field, device]: dur, e0a, e1a, e0s, e1s, end_a, end_b
            "solutions": arr(self.solutions, (self.n_freqs, 7, c)),
            # [step slot, field, packed pos]: aicore, soc, idle_a,
            # idle_s, end_celsius
            "outputs": arr(self.outputs, (self.max_batch, 5, c)),
        }


def shard_bounds(n_active: int, workers: int, index: int) -> tuple[int, int]:
    """The fixed contiguous slice of packed active positions for a shard."""
    return (
        index * n_active // workers,
        (index + 1) * n_active // workers,
    )


def _worker_main(
    conn,
    shm_name: str,
    index: int,
    workers: int,
    capacity: int,
    grid: tuple[float, ...],
    max_batch: int,
    k: float,
    tau: float,
) -> None:
    """Shard worker loop: attach once, serve struct-framed commands."""
    # Workers are children of the engine's process and share its
    # resource tracker, so the attach-side registration is an idempotent
    # set-add and the master's unlink() is the single de-registration.
    shm = shared_memory.SharedMemory(name=shm_name, create=False)
    layout = _Layout(capacity, len(grid), max_batch)
    v = layout.views(shm.buf)
    slot_of = {float(f): j for j, f in enumerate(grid)}
    cache: dict[str, np.ndarray] = {}

    def epoch_arrivals(n_active: int, has_plan: bool, max_freq: float):
        lo, hi = shard_bounds(n_active, workers, index)
        ids = v["act_ids"][lo:hi].astype(np.intp)
        rows = ids.size
        cache["lo"], cache["ids"] = lo, ids
        cache["amb"] = v["ambient"][ids]
        if has_plan:
            freqs = np.where(
                v["plan_covered"][ids] != 0.0, v["plan_freq"][ids], max_freq
            )
        else:
            freqs = np.full(rows, max_freq)
        arrival = np.empty(rows)
        fields = {
            name: np.empty(rows)
            for name in (
                "e0a", "e1a", "e0s", "e1s", "p0", "q0",
                "idle_a0", "idle_ga", "idle_s0", "idle_gs",
            )
        }
        for freq in np.unique(freqs):
            slot = slot_of[float(freq)]
            mask = freqs == freq
            rows_f = ids[mask]
            sol = v["solutions"][slot]
            arrival[mask] = sol[0][rows_f]
            fields["e0a"][mask] = sol[1][rows_f]
            fields["e1a"][mask] = sol[2][rows_f]
            fields["e0s"][mask] = sol[3][rows_f]
            fields["e1s"][mask] = sol[4][rows_f]
            fields["p0"][mask] = sol[5][rows_f]
            fields["q0"][mask] = sol[6][rows_f]
            a0, ga, s0, gs = v["sol_scalars"][slot]
            fields["idle_a0"][mask] = a0
            fields["idle_ga"][mask] = ga
            fields["idle_s0"][mask] = s0
            fields["idle_gs"][mask] = gs
        v["arrival"][lo : lo + rows] = arrival
        v["freqs"][lo : lo + rows] = freqs
        cache.update(fields)
        cache["arrival"] = arrival
        if rows:
            pos = int(np.argmax(arrival))
            return float(arrival[pos]), float(lo + pos)
        return -np.inf, -1.0

    def epoch_coeffs(compute_us: float, collective_us: float) -> None:
        lo, ids = cache["lo"], cache["ids"]
        rows = ids.size
        arrival = cache["arrival"]
        wait = compute_us - arrival
        v["wait"][lo : lo + rows] = wait
        sub = (wait + collective_us) / IDLE_INTEGRATION_STEPS
        decay = np.exp(-sub / tau)
        scale = sub / US_PER_S
        # The 8-substep barrier-wait integration, collapsed to its
        # affine form in delta0: every quantity in the loop is affine
        # in the step's initial temperature rise, so iterate on the
        # (p, q) coefficient pairs once per epoch instead of on the
        # state every step.
        p = cache["p0"].copy()
        q = cache["q0"].copy()
        ia_p = np.zeros(rows)
        ia_q = np.zeros(rows)
        is_p = np.zeros(rows)
        is_q = np.zeros(rows)
        a0, ga = cache["idle_a0"], cache["idle_ga"]
        s0, gs = cache["idle_s0"], cache["idle_gs"]
        for _ in range(IDLE_INTEGRATION_STEPS):
            ia_p += (a0 + ga * p) * scale
            ia_q += (ga * q) * scale
            sw_p = s0 + gs * p
            sw_q = gs * q
            is_p += sw_p * scale
            is_q += sw_q * scale
            t_p = k * sw_p
            t_q = k * sw_q
            p = t_p + (p - t_p) * decay
            q = t_q + (q - t_q) * decay
        cache["ia_p"], cache["ia_q"] = ia_p, ia_q
        cache["is_p"], cache["is_q"] = is_p, is_q
        cache["ec_p"] = cache["amb"] + p
        cache["ec_q"] = q

    def run_steps(count: int) -> None:
        lo, ids = cache["lo"], cache["ids"]
        rows = ids.size
        if rows == 0:
            return
        e0a, e1a = cache["e0a"], cache["e1a"]
        e0s, e1s = cache["e0s"], cache["e1s"]
        ia_p, ia_q = cache["ia_p"], cache["ia_q"]
        is_p, is_q = cache["is_p"], cache["is_q"]
        ec_p, ec_q = cache["ec_p"], cache["ec_q"]
        amb = cache["amb"]
        cel = v["celsius"][ids]
        d0 = np.empty(rows)
        for j in range(count):
            out = v["outputs"][j]
            np.subtract(cel, amb, out=d0)
            oa = out[0][lo : lo + rows]
            np.multiply(e1a, d0, out=oa)
            oa += e0a
            osoc = out[1][lo : lo + rows]
            np.multiply(e1s, d0, out=osoc)
            osoc += e0s
            oia = out[2][lo : lo + rows]
            np.multiply(ia_q, d0, out=oia)
            oia += ia_p
            ois = out[3][lo : lo + rows]
            np.multiply(is_q, d0, out=ois)
            ois += is_p
            ocel = out[4][lo : lo + rows]
            np.multiply(ec_q, d0, out=ocel)
            ocel += ec_p
            cel = ocel
        v["celsius"][ids] = cel

    def reclaim_target(n_active: int):
        lo, hi = shard_bounds(n_active, workers, index)
        ids = v["act_ids"][lo:hi].astype(np.intp)
        if ids.size == 0:
            return -np.inf, -1.0
        arrivals = v["solutions"][len(grid) - 1, 0][ids]
        pos = int(np.argmax(arrivals))
        return float(arrivals[pos]), float(lo + pos)

    def reclaim_choose(n_active: int, target: float):
        lo, hi = shard_bounds(n_active, workers, index)
        ids = v["act_ids"][lo:hi].astype(np.intp)
        rows = ids.size
        if rows == 0:
            return 0.0, -1.0
        durs = np.empty((rows, len(grid)))
        for j in range(len(grid)):
            durs[:, j] = v["solutions"][j, 0][ids]
        meets = durs <= target
        feasible = meets.any(axis=1)
        if not feasible.all():
            return 1.0, float(lo + int(np.argmax(~feasible)))
        chosen = np.argmax(meets, axis=1)
        v["reclaim_idx"][lo : lo + rows] = chosen
        v["reclaim_pred"][lo : lo + rows] = durs[np.arange(rows), chosen]
        return 0.0, -1.0

    try:
        while True:
            try:
                frame = conn.recv_bytes()
            except (EOFError, OSError):
                return
            op, a, b, c, *_ = _FRAME.unpack(frame)
            try:
                if op == _OP_SHUTDOWN:
                    return
                reply = (0.0,) * 6
                if op == _OP_EPOCH_ARRIVALS:
                    m, pos = epoch_arrivals(int(a), b != 0.0, c)
                    reply = (m, pos, 0.0, 0.0, 0.0, 0.0)
                elif op == _OP_EPOCH_COEFFS:
                    epoch_coeffs(a, b)
                elif op == _OP_STEPS:
                    run_steps(int(a))
                elif op == _OP_RECLAIM_TARGET:
                    m, pos = reclaim_target(int(a))
                    reply = (m, pos, 0.0, 0.0, 0.0, 0.0)
                elif op == _OP_RECLAIM_CHOOSE:
                    bad, pos = reclaim_choose(int(a), b)
                    reply = (bad, pos, 0.0, 0.0, 0.0, 0.0)
                conn.send_bytes(_FRAME.pack(0, *reply))
            except Exception:
                try:
                    conn.send_bytes(_FRAME.pack(-1, *(0.0,) * 6))
                finally:
                    raise
    finally:
        try:
            shm.close()
        except Exception:
            pass


class ShardedFleetSimulator(FleetSimulator):
    """The vectorized fleet, sharded across persistent worker processes.

    Same construction inputs and same public surface as
    :class:`~repro.fleet.simulator.FleetSimulator` — specs, plans, churn
    and results are interchangeable — plus:

    Args:
        workers: shard worker processes (>= 1).
        max_batch: consecutive churn-free steps executed per command
            round-trip in :meth:`run_steps`.
        timeout_s: per-command worker reply deadline before the engine
            declares the worker dead (:class:`FleetWorkerError`).

    The engine only supports frequencies on the spec's DVFS grid (which
    is all any :class:`FleetPlan` carries).  Use it as a context
    manager, or call :meth:`close` to reap the workers and the shared
    segment.
    """

    def __init__(
        self,
        spec: FleetSpec,
        trace: Trace,
        workers: int = 4,
        max_batch: int = DEFAULT_MAX_BATCH,
        timeout_s: float = 60.0,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1: {workers}")
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1: {max_batch}")
        super().__init__(spec, trace)
        self.workers = workers
        self._max_batch = max_batch
        self._timeout_s = timeout_s
        self._grid = tuple(float(f) for f in spec.npu.frequencies.points)
        self._slot_of = {f: j for j, f in enumerate(self._grid)}
        max_freq = float(spec.npu.max_frequency_mhz)
        if max_freq not in self._slot_of:
            raise ConfigurationError(
                f"max frequency {max_freq} MHz is not on the DVFS grid"
            )
        self._layout = _Layout(spec.capacity, len(self._grid), max_batch)
        self._shm: shared_memory.SharedMemory | None = None
        self._procs: list = []
        self._conns: list = []
        self._broken: str | None = None
        self._closed = False

        self._shm = shared_memory.SharedMemory(
            create=True, size=self._layout.total_bytes
        )
        self._v = self._layout.views(self._shm.buf)
        self._v["sol_ready"][:] = 0
        self._v["ambient"][:] = self._ambient
        # Rebind the thermal state onto the shared segment so every
        # inherited path (churn joins, reset) mutates what workers see.
        self._v["celsius"][:] = self._celsius
        self._celsius = self._v["celsius"]

        # Epoch bookkeeping: membership changes bump the epoch; the
        # step caches key on (membership epoch, plan identity, target).
        # Keys hold the plan object itself (compared with ``is``) so a
        # recycled id() can never alias a stale cache entry.
        self._membership_epoch = 0
        self._published_membership: int | None = None
        self._published_plan: FleetPlan | None | object = _NO_PLAN
        self._ep_key: tuple | None = None
        self._ep: dict = {}
        self._collective_cache: tuple | None = None

        ctx = get_context(
            "fork" if "fork" in get_all_start_methods() else "spawn"
        )
        try:
            for i in range(workers):
                parent, child = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        child,
                        self._shm.name,
                        i,
                        workers,
                        spec.capacity,
                        self._grid,
                        max_batch,
                        spec.npu.thermal.celsius_per_watt,
                        spec.npu.thermal.time_constant_us,
                    ),
                    daemon=True,
                    name=f"fleet-shard-{i}",
                )
                proc.start()
                child.close()
                self._procs.append(proc)
                self._conns.append(parent)
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Worker plumbing
    # ------------------------------------------------------------------

    def _fail(self, detail: str):
        self._broken = detail
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        raise FleetWorkerError(f"sharded fleet engine failed: {detail}")

    def _check_usable(self) -> None:
        if self._closed:
            raise FleetWorkerError("sharded fleet engine is closed")
        if self._broken is not None:
            raise FleetWorkerError(
                f"sharded fleet engine is broken: {self._broken}"
            )

    def _roundtrip(self, op: int, *params: float) -> list[tuple[float, ...]]:
        """Send one command to every worker; gather replies in order."""
        self._check_usable()
        operands = (tuple(params) + (0.0,) * 6)[:6]
        frame = _FRAME.pack(op, *operands)
        for i, conn in enumerate(self._conns):
            try:
                conn.send_bytes(frame)
            except (BrokenPipeError, OSError):
                self._fail(f"worker {i} is gone (send failed)")
        replies: list[tuple[float, ...]] = []
        deadline = time.monotonic() + self._timeout_s
        for i, (conn, proc) in enumerate(zip(self._conns, self._procs)):
            while not conn.poll(0.05):
                if not proc.is_alive():
                    self._fail(
                        f"worker {i} died (exit code {proc.exitcode})"
                    )
                if time.monotonic() > deadline:
                    self._fail(
                        f"worker {i} missed the {self._timeout_s:.0f}s "
                        "reply deadline"
                    )
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                self._fail(f"worker {i} is gone (recv failed)")
            status, *values = _FRAME.unpack(data)
            if status != 0:
                self._fail(f"worker {i} raised while handling op {op}")
            replies.append(tuple(values))
        return replies

    def close(self) -> None:
        """Reap the workers and release the shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send_bytes(_FRAME.pack(_OP_SHUTDOWN, *(0.0,) * 6))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        if self._shm is not None:
            # Detach the state view before freeing the buffer.
            self._celsius = np.asarray(self._v["celsius"]).copy()
            self._v = {}
            shm, self._shm = self._shm, None
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "ShardedFleetSimulator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Data-plane publication
    # ------------------------------------------------------------------

    def _publish_solution(self, freq_mhz: float) -> None:
        slot = self._slot_of.get(float(freq_mhz))
        if slot is None:
            raise ConfigurationError(
                f"{freq_mhz} MHz is not on the DVFS grid"
            )
        if self._v["sol_ready"][slot]:
            return
        sol = self.solution(float(freq_mhz))
        block = self._v["solutions"][slot]
        block[0] = sol.duration_us
        block[1] = sol.e0_aicore_j
        block[2] = sol.e1_aicore_j
        block[3] = sol.e0_soc_j
        block[4] = sol.e1_soc_j
        block[5] = sol.end_a
        block[6] = sol.end_b
        self._v["sol_scalars"][slot] = (
            sol.idle_aicore_w0,
            sol.idle_aicore_gain,
            sol.idle_soc_w0,
            sol.idle_soc_gain,
        )
        self._v["sol_ready"][slot] = 1

    def _publish_membership(self, act: np.ndarray) -> None:
        if self._published_membership != self._membership_epoch:
            self._v["act_ids"][: act.size] = act
            self._published_membership = self._membership_epoch

    def _publish_plan(self, plan: FleetPlan | None) -> None:
        if self._published_plan is plan:
            return
        if plan is not None:
            self._v["plan_freq"][:] = plan.freq_mhz
            self._v["plan_covered"][:] = plan.covered.astype(float)
        self._published_plan = plan

    # ------------------------------------------------------------------
    # Elastic membership (epoch tracking on top of the inherited churn)
    # ------------------------------------------------------------------

    def advance_churn(self, step: int) -> tuple[FleetEvent, ...]:
        events = super().advance_churn(step)
        if any(e.kind in _MEMBERSHIP_KINDS for e in events):
            self._membership_epoch += 1
        return events

    def reset(self) -> None:
        super().reset()
        self._membership_epoch += 1
        self._ep_key = None

    # ------------------------------------------------------------------
    # The sharded barrier step
    # ------------------------------------------------------------------

    def collective_cost(self):
        if (
            self._collective_cache is None
            or self._collective_cache[0] != self._membership_epoch
        ):
            self._collective_cache = (
                self._membership_epoch,
                super().collective_cost(),
            )
        return self._collective_cache[1]

    def _sync_epoch(
        self, plan: FleetPlan | None, target_compute_us: float | None
    ) -> None:
        key = self._ep_key
        if (
            key is not None
            and key[0] == self._membership_epoch
            and key[1] is plan
            and key[2] == target_compute_us
        ):
            return
        act = self.active_ids
        n = act.size
        max_freq = float(self._spec.npu.max_frequency_mhz)
        if plan is None:
            needed = (max_freq,)
        else:
            sel = np.where(plan.covered[act], plan.freq_mhz[act], max_freq)
            needed = tuple(float(f) for f in np.unique(sel))
        for freq in needed:
            self._publish_solution(freq)
        self._publish_membership(act)
        self._publish_plan(plan)
        collective = self.collective_cost()

        replies = self._roundtrip(
            _OP_EPOCH_ARRIVALS, n, 0.0 if plan is None else 1.0, max_freq
        )
        compute_us = -np.inf
        best_pos = -1
        for maximum, pos, *_ in replies:
            if pos >= 0 and maximum > compute_us:
                compute_us, best_pos = maximum, int(pos)
        self._roundtrip(_OP_EPOCH_COEFFS, compute_us, collective.chosen_us)

        arrival = self._v["arrival"][:n].copy()
        ep = {
            "act": act,
            "arrival": arrival,
            "wait": self._v["wait"][:n].copy(),
            "freqs": self._v["freqs"][:n].copy(),
            "compute_us": float(compute_us),
            "straggler_id": int(act[best_pos]),
            "collective": collective,
            "overrun_count": 0,
            "offenders": (),
        }
        if target_compute_us is not None:
            lateness = (arrival - target_compute_us) / target_compute_us
            late = lateness > BARRIER_OVERRUN_TOLERANCE
            count = int(np.count_nonzero(late))
            if count:
                late_ids = act[late]
                order = descending_top_k(lateness[late], DEFAULT_TOP_K)
                ep["overrun_count"] = count
                ep["offenders"] = tuple(int(late_ids[pos]) for pos in order)
        self._ep = ep
        self._ep_key = (self._membership_epoch, plan, target_compute_us)

    def _materialize(
        self, slot: int, events: tuple[FleetEvent, ...]
    ) -> FleetStepResult:
        ep = self._ep
        n = ep["act"].size
        out = self._v["outputs"][slot]
        if ep["overrun_count"]:
            self._overrun_total += ep["overrun_count"]
        return FleetStepResult(
            fleet_name=self._spec.name,
            workload=self._trace.name,
            compute_us=ep["compute_us"],
            collective=ep["collective"],
            straggler_id=ep["straggler_id"],
            device_ids=ep["act"],
            arrival_us=ep["arrival"],
            wait_us=ep["wait"],
            freq_mhz=ep["freqs"],
            aicore_energy_j=out[0][:n].copy(),
            soc_energy_j=out[1][:n].copy(),
            idle_aicore_energy_j=out[2][:n].copy(),
            idle_soc_energy_j=out[3][:n].copy(),
            end_celsius=out[4][:n].copy(),
            overrun_count=ep["overrun_count"],
            overrun_device_ids=ep["offenders"],
            events=events,
        )

    def step(
        self,
        plan: FleetPlan | None = None,
        target_compute_us: float | None = None,
        events: tuple[FleetEvent, ...] = (),
    ) -> FleetStepResult:
        self._check_usable()
        self._sync_epoch(plan, target_compute_us)
        self._roundtrip(_OP_STEPS, 1)
        return self._materialize(0, events)

    def run_steps(
        self,
        plan: FleetPlan | None = None,
        steps: int = 3,
        target_compute_us: float | None = None,
        replan: Callable[["FleetSimulator"], FleetPlan] | None = None,
    ) -> list[FleetStepResult]:
        """Consecutive steps with churn; churn-free spans batch.

        Semantics of :meth:`FleetSimulator.run_steps`, but every span of
        steps sharing one epoch executes as a single worker round-trip
        of up to ``max_batch`` steps.
        """
        if steps < 1:
            raise ConfigurationError(f"steps must be >= 1: {steps}")
        self._check_usable()
        results: list[FleetStepResult] = []
        pending: list[tuple[FleetEvent, ...]] = []

        def flush() -> None:
            # Pending steps run against the epoch captured when the
            # first of them was enqueued — churn drawn since then only
            # touched devices outside that epoch's membership.
            if not pending:
                return
            self._roundtrip(_OP_STEPS, len(pending))
            for slot, step_events in enumerate(pending):
                results.append(self._materialize(slot, step_events))
            pending.clear()

        for index in range(steps):
            events: tuple[FleetEvent, ...] = ()
            if index > 0:
                events = self.advance_churn(index)
                changed = any(
                    e.kind in _MEMBERSHIP_KINDS for e in events
                )
                if changed:
                    flush()
                    if replan is not None:
                        plan = replan(self)
                        target_compute_us = plan.target_compute_us
            if not pending:
                self._sync_epoch(plan, target_compute_us)
            pending.append(events)
            if len(pending) == self._max_batch:
                flush()
        flush()
        return results

    # ------------------------------------------------------------------
    # Sharded slack reclamation
    # ------------------------------------------------------------------

    def reclaim_sharded(self, slack_margin: float = 0.0) -> FleetPlan:
        """Per-shard reclamation passes merged to the exact single plan.

        The distributed form of
        :func:`repro.fleet.dvfs.reclaim_fleet_slack` (which dispatches
        here for sharded engines): workers find the per-shard straggler
        and choose per-device frequencies against the merged target;
        the assembled :class:`FleetPlan` is byte-identical to the
        single-process pass — same durations (bitwise), same barrier
        target, same straggler, same serialized strategies.
        """
        if slack_margin < 0:
            raise ConfigurationError(
                f"slack_margin must be non-negative: {slack_margin}"
            )
        self._check_usable()
        act = self.active_ids
        n = act.size
        if n == 0:
            raise ConfigurationError(
                "reclaim needs at least one active device"
            )
        for freq in self._grid:
            self._publish_solution(freq)
        self._publish_membership(act)

        replies = self._roundtrip(_OP_RECLAIM_TARGET, n)
        best = -np.inf
        best_pos = -1
        for maximum, pos, *_ in replies:
            if pos >= 0 and maximum > best:
                best, best_pos = maximum, int(pos)
        straggler_id = int(act[best_pos])
        target = float(best) * (1.0 + slack_margin)

        replies = self._roundtrip(_OP_RECLAIM_CHOOSE, n, target)
        bad_pos = [int(pos) for bad, pos, *_ in replies if bad != 0.0]
        if bad_pos:
            device = int(act[min(bad_pos)])
            raise StrategyError(
                f"device {device} cannot reach the barrier at "
                f"{target:.0f} us even at {self._grid[-1]:.0f} MHz"
            )

        capacity = self._spec.capacity
        n_freqs = len(self._grid)
        freq_index = np.full(capacity, n_freqs - 1, dtype=np.intp)
        freq_index[act] = self._v["reclaim_idx"][:n]
        grid = np.asarray(self._grid, dtype=float)
        freq_mhz = grid[freq_index]
        predicted = self._v["solutions"][n_freqs - 1, 0].copy()
        predicted[act] = self._v["reclaim_pred"][:n]
        covered = np.zeros(capacity, dtype=bool)
        covered[act] = True
        return FleetPlan(
            workload=self._trace.name,
            target_compute_us=target,
            straggler_id=straggler_id,
            freqs_mhz=self._grid,
            freq_index=freq_index,
            freq_mhz=freq_mhz,
            predicted_us=predicted,
            covered=covered,
        )


def make_fleet_simulator(
    spec: FleetSpec,
    trace: Trace,
    workers: int = 1,
    max_batch: int = DEFAULT_MAX_BATCH,
) -> FleetSimulator:
    """One fleet engine, sized by ``workers``.

    ``workers <= 1`` returns the plain single-process
    :class:`FleetSimulator` (exactly the historical behavior);
    ``workers >= 2`` returns a :class:`ShardedFleetSimulator`.
    """
    if workers <= 1:
        return FleetSimulator(spec, trace)
    return ShardedFleetSimulator(
        spec, trace, workers=workers, max_batch=max_batch
    )


def simulator_workers(sim: FleetSimulator) -> int:
    """How many shard workers ``sim`` runs (1 for the plain engine)."""
    return getattr(sim, "workers", 1)


__all__ = [
    "DEFAULT_MAX_BATCH",
    "ShardedFleetSimulator",
    "make_fleet_simulator",
    "shard_bounds",
    "simulator_workers",
]
