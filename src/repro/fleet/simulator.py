"""Vectorized barrier-step execution over an elastic device fleet.

The cluster layer simulates a step by looping Python
:class:`~repro.cluster.device.ClusterDevice` objects around the engine —
exact, but O(N) Python work per step.  The paper's constant-frequency
solution is an affine scalar pair per device (``E = E0 + E1 * delta0``),
so a fleet of N devices collapses to ``(N,)``-shaped NumPy arrays:
:func:`repro.npu.engine.batched_const_solutions` stacks every device's
compiled affine solution once per frequency, and then a whole
synchronous training step — per-device arrivals, the barrier max, the
hierarchical collective, idle-priced waits, the RC thermal update and
the overrun watchdog — is a handful of vectorized passes.  10k devices
step in milliseconds (see ``BENCH_fleet.json``).

Semantics are the cluster simulator's, element for element: durations
are bitwise identical to the looped reference (same scale multiply,
same ``cumsum`` geometry) and energies/temperatures agree to rounding
(~1e-15; ``tests/test_fleet_equivalence.py`` pins <= 1e-9 at
N in {1, 2, 8, 16}).  The differences are scale-bearing: results carry
arrays instead of per-device objects, reports summarize stragglers
(top-k) instead of emitting 10k rows, and membership is elastic — the
seeded churn of :mod:`repro.fleet.churn` joins, drains and fails
devices between steps with deterministic re-sharding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.cluster.simulator import BARRIER_OVERRUN_TOLERANCE
from repro.core.report import ClusterResult
from repro.errors import ConfigurationError
from repro.fleet.churn import ChurnDraw, FleetEvent, draw_churn
from repro.fleet.spec import FleetSpec
from repro.fleet.topology import CollectiveCost
from repro.npu.engine import (
    CompiledTrace,
    ConstAffineBatch,
    batched_const_durations,
    batched_const_solutions,
)
from repro.npu.execution import GroundTruthEvaluator
from repro.units import US_PER_S
from repro.workloads.trace import Trace

#: Sub-intervals the barrier-wait idle integration is split into — the
#: same discretisation :meth:`repro.cluster.device.ClusterDevice.idle`
#: uses, so the two simulators price waits identically.
IDLE_INTEGRATION_STEPS = 8

#: Straggler rows a fleet report carries before summarizing the rest.
DEFAULT_TOP_K = 8


def descending_top_k(values: np.ndarray, k: int) -> np.ndarray:
    """Positions of the ``k`` largest values, sorted descending.

    Exactly the first ``k`` entries of
    ``np.argsort(-values, kind="stable")`` — ties broken by position,
    ascending — but O(N) instead of O(N log N): ``np.partition`` finds
    the k-th largest value, boundary ties are resolved by taking the
    earliest positions (which is what the stable argsort does), and
    only the k survivors are sorted.
    """
    n = values.size
    if k >= n:
        return np.argsort(-values, kind="stable")
    if k <= 0:
        return np.zeros(0, dtype=np.intp)
    # The k-th largest value; at most k-1 entries are strictly larger.
    cut = np.partition(values, n - k)[n - k]
    top = np.flatnonzero(values > cut)
    need = k - top.size
    if need:
        # flatnonzero is ascending, so boundary ties keep the earliest
        # positions — the stable-argsort tie rule.
        top = np.concatenate([top, np.flatnonzero(values == cut)[:need]])
    return top[np.argsort(-values[top], kind="stable")]


@dataclass(frozen=True)
class FleetStepResult:
    """Outcome of one synchronous step, in ``(active devices,)`` arrays.

    Array fields line up with :attr:`device_ids` (active devices in id
    order).  The scalar aggregates mirror
    :class:`~repro.cluster.simulator.ClusterStepResult`.
    """

    fleet_name: str
    workload: str
    compute_us: float
    collective: CollectiveCost
    straggler_id: int
    device_ids: np.ndarray
    arrival_us: np.ndarray
    wait_us: np.ndarray
    freq_mhz: np.ndarray
    aicore_energy_j: np.ndarray
    soc_energy_j: np.ndarray
    idle_aicore_energy_j: np.ndarray
    idle_soc_energy_j: np.ndarray
    end_celsius: np.ndarray
    #: Devices that arrived measurably past the planned barrier (count,
    #: and the worst offenders by lateness).
    overrun_count: int = 0
    overrun_device_ids: tuple[int, ...] = ()
    #: Churn events applied immediately before this step.
    events: tuple[FleetEvent, ...] = ()

    @property
    def n_devices(self) -> int:
        """Active devices that ran this step."""
        return self.device_ids.size

    @property
    def collective_us(self) -> float:
        """Selected all-reduce cost of the gradient exchange."""
        return self.collective.chosen_us

    @property
    def step_us(self) -> float:
        """Wall time of the step: slowest arrival plus the collective."""
        return self.compute_us + self.collective_us

    @property
    def total_soc_energy_j(self) -> np.ndarray:
        """Per-device compute plus barrier-idle SoC energy."""
        return self.soc_energy_j + self.idle_soc_energy_j

    @property
    def total_aicore_energy_j(self) -> np.ndarray:
        """Per-device compute plus barrier-idle AICore energy."""
        return self.aicore_energy_j + self.idle_aicore_energy_j

    @property
    def fleet_soc_energy_j(self) -> float:
        """Total SoC energy across the fleet, barrier idling included."""
        return float(np.sum(self.total_soc_energy_j))

    @property
    def fleet_aicore_energy_j(self) -> float:
        """Total AICore energy across the fleet."""
        return float(np.sum(self.total_aicore_energy_j))

    @property
    def fleet_soc_avg_watts(self) -> float:
        """Fleet-wide (summed) average SoC power over the step."""
        return self.fleet_soc_energy_j / (self.step_us / US_PER_S)

    def device_rows(self, top_k: int = DEFAULT_TOP_K) -> list[dict]:
        """Straggler top-k table rows plus one fleet-remainder summary.

        Same shape as the cluster report's rows: the ``top_k`` slowest
        arrivals (straggler first), then a single aggregate row for the
        other ``N - top_k`` devices — O(top_k) rows at any fleet size,
        selected in O(N) (:func:`descending_top_k`, not a full sort).
        """
        order = descending_top_k(self.arrival_us, top_k)
        rows = []
        for pos in order:
            device = int(self.device_ids[pos])
            rows.append(
                {
                    "device": device,
                    "compute_ms": round(
                        float(self.arrival_us[pos]) / 1000.0, 3
                    ),
                    "wait_ms": round(float(self.wait_us[pos]) / 1000.0, 3),
                    "idle_mhz": round(float(self.freq_mhz[pos])),
                    "soc_j": round(float(self.total_soc_energy_j[pos]), 3),
                    "aicore_j": round(
                        float(self.total_aicore_energy_j[pos]), 3
                    ),
                    "straggler": "*" if device == self.straggler_id else "",
                }
            )
        in_top = np.zeros(self.arrival_us.size, dtype=bool)
        in_top[order] = True
        rest = np.flatnonzero(~in_top)
        if rest.size:
            rows.append(
                {
                    "device": f"(+{rest.size} faster)",
                    "compute_ms": round(
                        float(np.mean(self.arrival_us[rest])) / 1000.0, 3
                    ),
                    "wait_ms": round(
                        float(np.mean(self.wait_us[rest])) / 1000.0, 3
                    ),
                    "idle_mhz": "",
                    "soc_j": round(
                        float(np.sum(self.total_soc_energy_j[rest])), 3
                    ),
                    "aicore_j": round(
                        float(np.sum(self.total_aicore_energy_j[rest])), 3
                    ),
                    "straggler": "",
                }
            )
        return rows

    def report(self, baseline: "FleetStepResult") -> ClusterResult:
        """Compare this step against a baseline step of the same fleet."""
        return ClusterResult(
            cluster_name=self.fleet_name,
            workload=self.workload,
            n_devices=self.n_devices,
            baseline_step_us=baseline.step_us,
            step_us=self.step_us,
            allreduce_us=self.collective_us,
            baseline_soc_energy_j=baseline.fleet_soc_energy_j,
            soc_energy_j=self.fleet_soc_energy_j,
            baseline_aicore_energy_j=baseline.fleet_aicore_energy_j,
            aicore_energy_j=self.fleet_aicore_energy_j,
            straggler_id=self.straggler_id,
            device_rows=tuple(self.device_rows()),
        )


@dataclass(frozen=True)
class FleetPlan:
    """Per-device constant-frequency assignment over the provisioned fleet.

    Arrays span the full capacity; :attr:`covered` marks the devices the
    plan was computed for — boards that join later run the maximum-
    frequency baseline until the plan is re-targeted.
    """

    workload: str
    target_compute_us: float
    straggler_id: int
    freqs_mhz: tuple[float, ...]
    freq_index: np.ndarray
    freq_mhz: np.ndarray
    predicted_us: np.ndarray
    covered: np.ndarray

    @property
    def n_devices(self) -> int:
        """Devices the plan covers."""
        return int(np.count_nonzero(self.covered))


class FleetSimulator:
    """N-device synchronous training as ``(devices,)`` array passes.

    Construction compiles the trace once against the shared evaluator
    and draws the provisioned boards' profiles; per-frequency
    :class:`~repro.npu.engine.ConstAffineBatch` stacks are built lazily
    on first use and reused across every subsequent step (spares
    included, so churn never recompiles anything).
    """

    def __init__(self, spec: FleetSpec, trace: Trace) -> None:
        self._spec = spec
        self._trace = trace
        self._evaluator = GroundTruthEvaluator(spec.npu)
        self._compiled = CompiledTrace(trace, self._evaluator)
        profiles = spec.device_profiles()
        self._profiles = profiles
        base_ambient = spec.npu.thermal.ambient_celsius
        self._scales = np.array(
            [p.total_duration_scale for p in profiles]
        )
        self._ambient = np.array(
            [base_ambient + p.ambient_offset_celsius for p in profiles]
        )
        self._active = np.zeros(spec.capacity, dtype=bool)
        self._active[: spec.n_devices] = True
        self._next_spare = spec.n_devices
        self._celsius = self._ambient.copy()
        self._solutions: dict[float, ConstAffineBatch] = {}
        self._events: list[FleetEvent] = []
        self._overrun_total = 0

    @property
    def spec(self) -> FleetSpec:
        """The fleet description."""
        return self._spec

    @property
    def trace(self) -> Trace:
        """The operator sequence every device replays."""
        return self._trace

    @property
    def compiled(self) -> CompiledTrace:
        """The shared trace lowering (nominal durations)."""
        return self._compiled

    @property
    def duration_scales(self) -> np.ndarray:
        """Per-board operator-duration scales over the capacity."""
        return self._scales

    @property
    def active_ids(self) -> np.ndarray:
        """Active device ids, ascending (the current membership)."""
        return np.flatnonzero(self._active)

    @property
    def n_active(self) -> int:
        """Current active fleet size."""
        return int(np.count_nonzero(self._active))

    @property
    def celsius(self) -> np.ndarray:
        """Current board temperatures over the capacity (a copy)."""
        return self._celsius.copy()

    @property
    def events(self) -> tuple[FleetEvent, ...]:
        """Every churn event applied (or skipped) so far."""
        return tuple(self._events)

    @property
    def overrun_total(self) -> int:
        """Barrier overruns recorded across all steps."""
        return self._overrun_total

    def rack_sizes(self) -> tuple[int, ...]:
        """Current rack occupancy (survivors re-sharded in id order)."""
        return self._spec.topology.rack_sizes(self.n_active)

    def collective_cost(self) -> CollectiveCost:
        """Priced gradient exchange on the current membership."""
        return self._spec.topology.breakdown(
            self._spec.gradient_bytes, self.rack_sizes()
        )

    def solution(self, freq_mhz: float) -> ConstAffineBatch:
        """The cached capacity-wide affine batch at one frequency."""
        sol = self._solutions.get(freq_mhz)
        if sol is None:
            thermal = self._spec.npu.thermal
            sol = batched_const_solutions(
                self._compiled,
                freq_mhz,
                self._scales,
                thermal.celsius_per_watt,
                thermal.time_constant_us,
            )
            self._solutions[freq_mhz] = sol
        return sol

    def duration_table(self) -> np.ndarray:
        """Per-board durations over the full grid, ``(capacity, F)``.

        Bitwise identical to probing every device at every grid point
        through the engine (the reclaim pass depends on this: plans
        computed from the table match the looped reference byte for
        byte).
        """
        freqs = self._spec.npu.frequencies.points
        table = np.empty((self._spec.capacity, len(freqs)))
        for j, freq in enumerate(freqs):
            cached = self._solutions.get(float(freq))
            if cached is not None:
                table[:, j] = cached.duration_us
            else:
                table[:, j] = batched_const_durations(
                    self._compiled, float(freq), self._scales
                )
        return table

    def reset(self) -> None:
        """Back to the initial membership and thermal state."""
        self._active[:] = False
        self._active[: self._spec.n_devices] = True
        self._next_spare = self._spec.n_devices
        # In place, so subclasses backing the thermal state with shared
        # memory (repro.fleet.sharded) keep their view after a reset.
        self._celsius[:] = self._ambient
        self._events.clear()
        self._overrun_total = 0

    # ------------------------------------------------------------------
    # Elastic membership
    # ------------------------------------------------------------------

    def advance_churn(self, step: int) -> tuple[FleetEvent, ...]:
        """Apply the seeded churn draw for ``step``; returns its events.

        Joins activate pre-provisioned spares in id order (fresh boards
        start at their own ambient); leaves and fails deactivate seeded
        victims, never dropping below ``min_active``.  Rack assignment
        is implicit — active ids in order, chunked by rack size — so
        re-sharding after any event is deterministic.
        """
        config = self._spec.churn
        draw = draw_churn(config, self._spec.seed, step)
        events = list(self._apply_draw(step, draw))
        self._events.extend(events)
        return tuple(events)

    def _apply_draw(self, step: int, draw: ChurnDraw):
        config = self._spec.churn
        for _ in range(draw.joins):
            if self._next_spare < self._spec.capacity:
                device = self._next_spare
                self._next_spare += 1
                self._active[device] = True
                self._celsius[device] = self._ambient[device]
                yield FleetEvent(
                    step, "join", device, "spare board activated"
                )
            else:
                yield FleetEvent(
                    step,
                    "join_exhausted",
                    -1,
                    f"all {config.max_joins} spares already active",
                )
        kinds = ("leave",) * draw.leaves + ("fail",) * draw.fails
        for kind, raw in zip(kinds, draw.victim_raws):
            ids = np.flatnonzero(self._active)
            if ids.size <= config.min_active:
                yield FleetEvent(
                    step,
                    "churn_skipped",
                    -1,
                    f"{kind} blocked by min_active={config.min_active}",
                )
                continue
            victim = int(ids[raw % ids.size])
            self._active[victim] = False
            detail = (
                "drained for maintenance"
                if kind == "leave"
                else "hard failure"
            )
            yield FleetEvent(step, kind, victim, detail)

    # ------------------------------------------------------------------
    # The vectorized barrier step
    # ------------------------------------------------------------------

    def step(
        self,
        plan: FleetPlan | None = None,
        target_compute_us: float | None = None,
        events: tuple[FleetEvent, ...] = (),
    ) -> FleetStepResult:
        """Execute one synchronous training step over the active fleet.

        Args:
            plan: per-device constant-frequency assignment (``None``
                runs the uniform maximum-frequency baseline; devices
                the plan does not cover also run the baseline).
            target_compute_us: the arrival target the plan was built
                for; arrivals later than the tolerance are counted as
                barrier overruns.
            events: churn events to attach to the result (bookkeeping
                only; :meth:`run_steps` passes the step's own events).
        """
        act = self.active_ids
        n = act.size
        max_freq = float(self._spec.npu.max_frequency_mhz)
        if plan is None:
            freqs = np.full(n, max_freq)
        else:
            freqs = np.where(
                plan.covered[act], plan.freq_mhz[act], max_freq
            )

        arrival = np.empty(n)
        e0a = np.empty(n)
        e1a = np.empty(n)
        e0s = np.empty(n)
        e1s = np.empty(n)
        end_a = np.empty(n)
        end_b = np.empty(n)
        idle_a0 = np.empty(n)
        idle_ga = np.empty(n)
        idle_s0 = np.empty(n)
        idle_gs = np.empty(n)
        for freq in np.unique(freqs):
            mask = freqs == freq
            rows = act[mask]
            sol = self.solution(float(freq))
            arrival[mask] = sol.duration_us[rows]
            e0a[mask] = sol.e0_aicore_j[rows]
            e1a[mask] = sol.e1_aicore_j[rows]
            e0s[mask] = sol.e0_soc_j[rows]
            e1s[mask] = sol.e1_soc_j[rows]
            end_a[mask] = sol.end_a[rows]
            end_b[mask] = sol.end_b[rows]
            idle_a0[mask] = sol.idle_aicore_w0
            idle_ga[mask] = sol.idle_aicore_gain
            idle_s0[mask] = sol.idle_soc_w0
            idle_gs[mask] = sol.idle_soc_gain

        ambient = self._ambient[act]
        delta0 = self._celsius[act] - ambient
        aicore_j = e0a + e1a * delta0
        soc_j = e0s + e1s * delta0
        celsius = ambient + (end_a + end_b * delta0)

        compute_us = float(arrival.max())
        straggler_id = int(act[int(np.argmax(arrival))])
        collective = self.collective_cost()
        wait = compute_us - arrival

        # Barrier-wait idle integration: the cluster device's 8-substep
        # constant-power discretisation, vectorized across the fleet.
        idle_total = wait + collective.chosen_us
        sub = idle_total / IDLE_INTEGRATION_STEPS
        k = self._spec.npu.thermal.celsius_per_watt
        tau = self._spec.npu.thermal.time_constant_us
        decay = np.exp(-sub / tau)
        idle_aicore = np.zeros(n)
        idle_soc = np.zeros(n)
        for _ in range(IDLE_INTEGRATION_STEPS):
            delta = celsius - ambient
            aw = idle_a0 + idle_ga * delta
            sw = idle_s0 + idle_gs * delta
            idle_aicore += aw * sub / US_PER_S
            idle_soc += sw * sub / US_PER_S
            target = ambient + k * sw
            celsius = target + (celsius - target) * decay
        self._celsius[act] = celsius

        overrun_count = 0
        offenders: tuple[int, ...] = ()
        if target_compute_us is not None:
            lateness = (arrival - target_compute_us) / target_compute_us
            late = lateness > BARRIER_OVERRUN_TOLERANCE
            overrun_count = int(np.count_nonzero(late))
            if overrun_count:
                late_ids = act[late]
                order = descending_top_k(lateness[late], DEFAULT_TOP_K)
                offenders = tuple(int(late_ids[pos]) for pos in order)
                self._overrun_total += overrun_count

        return FleetStepResult(
            fleet_name=self._spec.name,
            workload=self._trace.name,
            compute_us=compute_us,
            collective=collective,
            straggler_id=straggler_id,
            device_ids=act,
            arrival_us=arrival,
            wait_us=wait,
            freq_mhz=freqs,
            aicore_energy_j=aicore_j,
            soc_energy_j=soc_j,
            idle_aicore_energy_j=idle_aicore,
            idle_soc_energy_j=idle_soc,
            end_celsius=celsius,
            overrun_count=overrun_count,
            overrun_device_ids=offenders,
            events=events,
        )

    def run_steps(
        self,
        plan: FleetPlan | None = None,
        steps: int = 3,
        target_compute_us: float | None = None,
        replan: Callable[["FleetSimulator"], FleetPlan] | None = None,
    ) -> list[FleetStepResult]:
        """Run consecutive steps, thermal state carried, churn applied.

        Churn events fire *between* steps (step 0 always runs the
        initial membership).  When ``replan`` is provided, any step
        whose churn changed the membership re-targets: the callback
        builds a fresh plan on the current fleet (see
        :func:`repro.fleet.dvfs.reclaim_fleet_slack`) and the barrier
        target follows it.
        """
        if steps < 1:
            raise ConfigurationError(f"steps must be >= 1: {steps}")
        results: list[FleetStepResult] = []
        for index in range(steps):
            events: tuple[FleetEvent, ...] = ()
            if index > 0:
                events = self.advance_churn(index)
                changed = any(
                    e.kind in ("join", "leave", "fail") for e in events
                )
                if changed and replan is not None:
                    plan = replan(self)
                    target_compute_us = plan.target_compute_us
            results.append(
                self.step(plan, target_compute_us, events=events)
            )
        return results


def straggler_summary(
    results: Sequence[FleetStepResult],
) -> dict[str, float | int]:
    """Aggregate step/energy/overrun metrics over a run of steps."""
    if not results:
        raise ConfigurationError("straggler_summary needs at least one step")
    return {
        "steps": len(results),
        "devices_last": results[-1].n_devices,
        "step_ms_mean": float(
            np.mean([r.step_us for r in results]) / 1000.0
        ),
        "fleet_soc_j_total": float(
            np.sum([r.fleet_soc_energy_j for r in results])
        ),
        "fleet_aicore_j_total": float(
            np.sum([r.fleet_aicore_energy_j for r in results])
        ),
        "overruns": int(sum(r.overrun_count for r in results)),
        "churn_events": int(sum(len(r.events) for r in results)),
    }
