"""Seeded elastic fleet dynamics: device join / leave / fail.

Real fleets are elastic: preemptible capacity joins mid-run, nodes are
drained for maintenance, and boards fail outright.  The fleet simulator
models all three as seeded events between steps, with the same
determinism discipline as :mod:`repro.npu.faults` and the cluster's
variation draws:

* every step draws from its **own** named stream
  (``fleet-churn-<step>``), so the events of step ``s`` depend only on
  ``(seed, s)`` and the configured rates — running more steps, or
  re-running after a crash, replays the identical history;
* event counts are Poisson draws; victims are picked by one vectorised
  integer draw mapped onto the *current* active membership, so the
  same seed on the same config always removes the same devices.

Capacity for joins is pre-provisioned: a :class:`FleetSpec` draws
variation profiles for ``n_devices + max_joins`` boards up front (the
profile of board ``i`` depends only on ``(seed, i)``, so the spare
boards never perturb the initial fleet), and joins activate them in id
order.  The simulator applies the events, enforces the ``min_active``
floor, and re-shards the survivors into racks deterministically (active
ids in order, chunked by rack size).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.rng import RngFactory
from repro.errors import ConfigurationError

#: Stream-name prefix of the per-step churn draws.
CHURN_STREAM = "fleet-churn"


@dataclass(frozen=True)
class ChurnConfig:
    """Rates of the per-step churn events.

    Attributes:
        join_rate: expected joins per step (Poisson), activating
            pre-provisioned spare boards in id order.
        leave_rate: expected graceful leaves per step (drains).
        fail_rate: expected hard failures per step.
        max_joins: how many spare boards the fleet provisions; joins
            beyond this are logged and dropped.
        min_active: floor on the active fleet size; leaves/fails that
            would cross it are logged as skipped.
    """

    join_rate: float = 0.0
    leave_rate: float = 0.0
    fail_rate: float = 0.0
    max_joins: int = 0
    min_active: int = 1

    def __post_init__(self) -> None:
        for name in ("join_rate", "leave_rate", "fail_rate"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.max_joins < 0:
            raise ConfigurationError(
                f"max_joins must be non-negative: {self.max_joins}"
            )
        if self.min_active < 1:
            raise ConfigurationError(
                f"min_active must be >= 1: {self.min_active}"
            )

    @classmethod
    def none(cls) -> "ChurnConfig":
        """A static fleet (no churn, no spare capacity)."""
        return cls()

    @property
    def any_active(self) -> bool:
        """Whether any event rate is non-zero."""
        return (
            self.join_rate > 0 or self.leave_rate > 0 or self.fail_rate > 0
        )


@dataclass(frozen=True)
class FleetEvent:
    """One churn event, as applied (or skipped) by the simulator."""

    step: int
    #: ``join`` / ``leave`` / ``fail`` — or ``join_exhausted`` /
    #: ``churn_skipped`` when capacity or the ``min_active`` floor
    #: blocked the drawn event.
    kind: str
    device_id: int
    detail: str = ""

    def to_row(self) -> dict:
        """Table row (for :func:`repro.core.report.format_table`)."""
        return {
            "step": self.step,
            "event": self.kind,
            "device": self.device_id,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ChurnDraw:
    """The raw seeded draws for one step, before capacity/floor caps."""

    joins: int
    leaves: int
    fails: int
    #: One raw 63-bit integer per leave/fail, mapped onto the active
    #: membership (modulo its size) at application time.
    victim_raws: tuple[int, ...]


def draw_churn(config: ChurnConfig, seed: int, step: int) -> ChurnDraw:
    """The seeded churn draws for ``step``.

    Each step consumes a fixed draw sequence (three Poisson counts plus
    one vectorised victim draw) from its own ``fleet-churn-<step>``
    stream, so the draw depends only on ``(seed, step, config rates)``
    and is prefix-stable under longer runs.
    """
    if not config.any_active:
        return ChurnDraw(joins=0, leaves=0, fails=0, victim_raws=())
    rng = RngFactory(seed).generator(f"{CHURN_STREAM}-{step}")
    joins = int(rng.poisson(config.join_rate))
    leaves = int(rng.poisson(config.leave_rate))
    fails = int(rng.poisson(config.fail_rate))
    n_victims = leaves + fails
    raws = (
        tuple(int(v) for v in rng.integers(0, 2**63, size=n_victims))
        if n_victims
        else ()
    )
    return ChurnDraw(
        joins=joins, leaves=leaves, fails=fails, victim_raws=raws
    )
