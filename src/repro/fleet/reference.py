"""Equivalence harness: the vectorized fleet versus the looped cluster.

At N <= 16 the Python :class:`~repro.cluster.simulator.SimulatedCluster`
is the ground truth the fleet must reproduce: same seeded profiles (the
fleet spec projects onto the cluster spec), same engine physics, same
barrier semantics.  This module runs both simulators over the same
steps — baseline and reclaimed — and reports the worst relative error
across every per-device observable plus the fleet totals, and whether
the two reclamation passes produced byte-identical per-device
strategies.  The CLI bench, the ``ext_fleet_scale`` experiment and the
equivalence tests all consume this one harness, so the acceptance bar
(<= 1e-9) is measured the same way everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.dvfs import build_frequency_tables, reclaim_slack
from repro.cluster.simulator import ClusterStepResult, SimulatedCluster
from repro.errors import ConfigurationError
from repro.fleet.dvfs import plan_strategy_json, reclaim_fleet_slack
from repro.fleet.simulator import FleetSimulator, FleetStepResult
from repro.fleet.spec import FleetSpec
from repro.workloads.trace import Trace

#: The acceptance bar on every relative error the harness measures.
EQUIVALENCE_TOLERANCE = 1e-9


def _rel(got: np.ndarray, ref: np.ndarray) -> float:
    got = np.asarray(got, dtype=float)
    ref = np.asarray(ref, dtype=float)
    scale = np.maximum(np.abs(ref), 1e-12)
    return float(np.max(np.abs(got - ref) / scale)) if got.size else 0.0


@dataclass(frozen=True)
class ReferenceComparison:
    """Worst-case divergence between fleet and cluster simulations."""

    n_devices: int
    steps: int
    #: Reclamation byte-identity: same frequencies, same barrier
    #: target, identical serialized per-device strategies.
    plans_byte_identical: bool
    #: Per-device arrivals bitwise identical (max |rel| over steps).
    max_rel_duration: float
    max_rel_energy: float
    max_rel_celsius: float
    max_rel_fleet_total: float
    overruns_equal: bool

    @property
    def max_rel_err(self) -> float:
        """The single worst relative error across every observable."""
        return max(
            self.max_rel_duration,
            self.max_rel_energy,
            self.max_rel_celsius,
            self.max_rel_fleet_total,
        )

    def ok(self, tolerance: float = EQUIVALENCE_TOLERANCE) -> bool:
        """Whether every observable is within ``tolerance``."""
        return (
            self.plans_byte_identical
            and self.overruns_equal
            and self.max_rel_err <= tolerance
        )


def _compare_steps(
    fleet_steps: list[FleetStepResult],
    cluster_steps: list[ClusterStepResult],
) -> tuple[float, float, float, float]:
    rel_dur = rel_energy = rel_celsius = rel_total = 0.0
    for fleet, cluster in zip(fleet_steps, cluster_steps):
        ref_dur = [d.compute_us for d in cluster.devices]
        rel_dur = max(
            rel_dur,
            _rel(fleet.arrival_us, ref_dur),
            _rel(fleet.wait_us, [d.wait_us for d in cluster.devices]),
            _rel([fleet.compute_us], [cluster.compute_us]),
            _rel([fleet.collective_us], [cluster.allreduce_us]),
        )
        rel_energy = max(
            rel_energy,
            _rel(
                fleet.aicore_energy_j,
                [d.aicore_energy_j for d in cluster.devices],
            ),
            _rel(
                fleet.soc_energy_j,
                [d.soc_energy_j for d in cluster.devices],
            ),
            _rel(
                fleet.idle_aicore_energy_j,
                [d.idle_aicore_energy_j for d in cluster.devices],
            ),
            _rel(
                fleet.idle_soc_energy_j,
                [d.idle_soc_energy_j for d in cluster.devices],
            ),
        )
        rel_celsius = max(
            rel_celsius,
            _rel(
                fleet.end_celsius,
                [d.end_celsius for d in cluster.devices],
            ),
        )
        rel_total = max(
            rel_total,
            _rel(
                [fleet.fleet_soc_energy_j], [cluster.fleet_soc_energy_j]
            ),
            _rel(
                [fleet.fleet_aicore_energy_j],
                [cluster.fleet_aicore_energy_j],
            ),
        )
    return rel_dur, rel_energy, rel_celsius, rel_total


def compare_with_cluster(
    spec: FleetSpec,
    trace: Trace,
    steps: int = 2,
    slack_margin: float = 0.0,
) -> ReferenceComparison:
    """Run fleet and cluster side by side; report the worst divergence.

    Both simulators execute ``steps`` baseline steps and ``steps``
    reclaimed steps (thermal state carried within each phase), plus an
    overrun-watchdog cross-check under a deliberately tight target.
    The fleet must be churn-free and single-rack — otherwise the looped
    cluster is not its reference semantics.

    Raises:
        ConfigurationError: on a churned or multi-rack fleet.
    """
    if spec.churn.any_active:
        raise ConfigurationError(
            "the looped cluster has no churn; compare a churn-free spec"
        )
    if len(spec.topology.rack_sizes(spec.n_devices)) > 1:
        raise ConfigurationError(
            "the looped cluster is a single ring; compare a fleet that "
            "fits one rack"
        )
    cluster = SimulatedCluster(spec.cluster_spec())
    sim = FleetSimulator(spec, trace)

    fleet_base = sim.run_steps(None, steps=steps)
    cluster_base = cluster.run_steps(trace, None, steps=steps)

    tables = build_frequency_tables(cluster, trace)
    cluster_plan = reclaim_slack(
        tables,
        trace.name,
        allreduce_us=cluster.spec.allreduce_us,
        slack_margin=slack_margin,
    )
    fleet_plan = reclaim_fleet_slack(sim, slack_margin=slack_margin)
    plans_identical = (
        plan_strategy_json(fleet_plan) == cluster_plan.strategy_json()
        and fleet_plan.target_compute_us == cluster_plan.target_compute_us
        and fleet_plan.straggler_id == cluster_plan.straggler_id
    )

    sim.reset()
    fleet_rec = sim.run_steps(
        fleet_plan,
        steps=steps,
        target_compute_us=fleet_plan.target_compute_us,
    )
    fresh = SimulatedCluster(spec.cluster_spec())
    cluster_rec = fresh.run_steps(
        trace,
        cluster_plan.strategies,
        steps=steps,
        target_compute_us=cluster_plan.target_compute_us,
    )

    # Watchdog cross-check: an impossibly tight barrier must trip the
    # same per-device overruns in both simulators.
    tight = fleet_plan.target_compute_us / 2.0
    sim.reset()
    fleet_tight = sim.step(fleet_plan, target_compute_us=tight)
    tight_cluster = SimulatedCluster(spec.cluster_spec())
    cluster_tight = tight_cluster.run_step(
        trace, cluster_plan.strategies, target_compute_us=tight
    )
    overruns_equal = (
        sum(r.overrun_count for r in fleet_rec)
        == sum(len(r.incidents) for r in cluster_rec)
        and fleet_tight.overrun_count == len(cluster_tight.incidents)
    )

    rels = [
        _compare_steps(fleet_base, cluster_base),
        _compare_steps(fleet_rec, cluster_rec),
    ]
    return ReferenceComparison(
        n_devices=spec.n_devices,
        steps=steps,
        plans_byte_identical=plans_identical,
        max_rel_duration=max(r[0] for r in rels),
        max_rel_energy=max(r[1] for r in rels),
        max_rel_celsius=max(r[2] for r in rels),
        max_rel_fleet_total=max(r[3] for r in rels),
        overruns_equal=overruns_equal,
    )
