"""Equivalence harnesses for the vectorized fleet.

Two legs, one discipline:

* :func:`compare_with_cluster` — the fleet versus the looped
  :class:`~repro.cluster.simulator.SimulatedCluster` at N <= 16, the
  ground-truth semantics check (same seeded profiles, same engine
  physics, same barrier).
* :func:`compare_with_sharded` — the multi-process
  :class:`~repro.fleet.sharded.ShardedFleetSimulator` versus the
  single-process fleet at any N and worker count, churn included.  The
  sharded engine's contract is stricter: durations, waits, frequencies,
  straggler selection, churn histories and reclaimed strategies must be
  *bitwise/byte* identical; energies and temperatures (whose barrier
  idle integration is collapsed to its affine form) carry the same
  <= 1e-9 bar as the cluster leg.

The CLI bench, the ``ext_fleet_scale`` experiment and the equivalence
tests all consume these harnesses, so the acceptance bars are measured
the same way everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.dvfs import build_frequency_tables, reclaim_slack
from repro.cluster.simulator import ClusterStepResult, SimulatedCluster
from repro.errors import ConfigurationError
from repro.fleet.dvfs import (
    auto_retarget,
    plan_strategy_json,
    reclaim_fleet_slack,
)
from repro.fleet.sharded import ShardedFleetSimulator
from repro.fleet.simulator import FleetPlan, FleetSimulator, FleetStepResult
from repro.fleet.spec import FleetSpec
from repro.workloads.trace import Trace

#: The acceptance bar on every relative error the harness measures.
EQUIVALENCE_TOLERANCE = 1e-9


def _rel(got: np.ndarray, ref: np.ndarray) -> float:
    got = np.asarray(got, dtype=float)
    ref = np.asarray(ref, dtype=float)
    scale = np.maximum(np.abs(ref), 1e-12)
    return float(np.max(np.abs(got - ref) / scale)) if got.size else 0.0


@dataclass(frozen=True)
class ReferenceComparison:
    """Worst-case divergence between fleet and cluster simulations."""

    n_devices: int
    steps: int
    #: Reclamation byte-identity: same frequencies, same barrier
    #: target, identical serialized per-device strategies.
    plans_byte_identical: bool
    #: Per-device arrivals bitwise identical (max |rel| over steps).
    max_rel_duration: float
    max_rel_energy: float
    max_rel_celsius: float
    max_rel_fleet_total: float
    overruns_equal: bool

    @property
    def max_rel_err(self) -> float:
        """The single worst relative error across every observable."""
        return max(
            self.max_rel_duration,
            self.max_rel_energy,
            self.max_rel_celsius,
            self.max_rel_fleet_total,
        )

    def ok(self, tolerance: float = EQUIVALENCE_TOLERANCE) -> bool:
        """Whether every observable is within ``tolerance``."""
        return (
            self.plans_byte_identical
            and self.overruns_equal
            and self.max_rel_err <= tolerance
        )


def _compare_steps(
    fleet_steps: list[FleetStepResult],
    cluster_steps: list[ClusterStepResult],
) -> tuple[float, float, float, float]:
    rel_dur = rel_energy = rel_celsius = rel_total = 0.0
    for fleet, cluster in zip(fleet_steps, cluster_steps):
        ref_dur = [d.compute_us for d in cluster.devices]
        rel_dur = max(
            rel_dur,
            _rel(fleet.arrival_us, ref_dur),
            _rel(fleet.wait_us, [d.wait_us for d in cluster.devices]),
            _rel([fleet.compute_us], [cluster.compute_us]),
            _rel([fleet.collective_us], [cluster.allreduce_us]),
        )
        rel_energy = max(
            rel_energy,
            _rel(
                fleet.aicore_energy_j,
                [d.aicore_energy_j for d in cluster.devices],
            ),
            _rel(
                fleet.soc_energy_j,
                [d.soc_energy_j for d in cluster.devices],
            ),
            _rel(
                fleet.idle_aicore_energy_j,
                [d.idle_aicore_energy_j for d in cluster.devices],
            ),
            _rel(
                fleet.idle_soc_energy_j,
                [d.idle_soc_energy_j for d in cluster.devices],
            ),
        )
        rel_celsius = max(
            rel_celsius,
            _rel(
                fleet.end_celsius,
                [d.end_celsius for d in cluster.devices],
            ),
        )
        rel_total = max(
            rel_total,
            _rel(
                [fleet.fleet_soc_energy_j], [cluster.fleet_soc_energy_j]
            ),
            _rel(
                [fleet.fleet_aicore_energy_j],
                [cluster.fleet_aicore_energy_j],
            ),
        )
    return rel_dur, rel_energy, rel_celsius, rel_total


def compare_with_cluster(
    spec: FleetSpec,
    trace: Trace,
    steps: int = 2,
    slack_margin: float = 0.0,
) -> ReferenceComparison:
    """Run fleet and cluster side by side; report the worst divergence.

    Both simulators execute ``steps`` baseline steps and ``steps``
    reclaimed steps (thermal state carried within each phase), plus an
    overrun-watchdog cross-check under a deliberately tight target.
    The fleet must be churn-free and single-rack — otherwise the looped
    cluster is not its reference semantics.

    Raises:
        ConfigurationError: on a churned or multi-rack fleet.
    """
    if spec.churn.any_active:
        raise ConfigurationError(
            "the looped cluster has no churn; compare a churn-free spec"
        )
    if len(spec.topology.rack_sizes(spec.n_devices)) > 1:
        raise ConfigurationError(
            "the looped cluster is a single ring; compare a fleet that "
            "fits one rack"
        )
    cluster = SimulatedCluster(spec.cluster_spec())
    sim = FleetSimulator(spec, trace)

    fleet_base = sim.run_steps(None, steps=steps)
    cluster_base = cluster.run_steps(trace, None, steps=steps)

    tables = build_frequency_tables(cluster, trace)
    cluster_plan = reclaim_slack(
        tables,
        trace.name,
        allreduce_us=cluster.spec.allreduce_us,
        slack_margin=slack_margin,
    )
    fleet_plan = reclaim_fleet_slack(sim, slack_margin=slack_margin)
    plans_identical = (
        plan_strategy_json(fleet_plan) == cluster_plan.strategy_json()
        and fleet_plan.target_compute_us == cluster_plan.target_compute_us
        and fleet_plan.straggler_id == cluster_plan.straggler_id
    )

    sim.reset()
    fleet_rec = sim.run_steps(
        fleet_plan,
        steps=steps,
        target_compute_us=fleet_plan.target_compute_us,
    )
    fresh = SimulatedCluster(spec.cluster_spec())
    cluster_rec = fresh.run_steps(
        trace,
        cluster_plan.strategies,
        steps=steps,
        target_compute_us=cluster_plan.target_compute_us,
    )

    # Watchdog cross-check: an impossibly tight barrier must trip the
    # same per-device overruns in both simulators.
    tight = fleet_plan.target_compute_us / 2.0
    sim.reset()
    fleet_tight = sim.step(fleet_plan, target_compute_us=tight)
    tight_cluster = SimulatedCluster(spec.cluster_spec())
    cluster_tight = tight_cluster.run_step(
        trace, cluster_plan.strategies, target_compute_us=tight
    )
    overruns_equal = (
        sum(r.overrun_count for r in fleet_rec)
        == sum(len(r.incidents) for r in cluster_rec)
        and fleet_tight.overrun_count == len(cluster_tight.incidents)
    )

    rels = [
        _compare_steps(fleet_base, cluster_base),
        _compare_steps(fleet_rec, cluster_rec),
    ]
    return ReferenceComparison(
        n_devices=spec.n_devices,
        steps=steps,
        plans_byte_identical=plans_identical,
        max_rel_duration=max(r[0] for r in rels),
        max_rel_energy=max(r[1] for r in rels),
        max_rel_celsius=max(r[2] for r in rels),
        max_rel_fleet_total=max(r[3] for r in rels),
        overruns_equal=overruns_equal,
    )


@dataclass(frozen=True)
class ShardedComparison:
    """Divergence between the sharded and single-process fleet engines."""

    n_devices: int
    steps: int
    workers: int
    #: Arrivals, waits, frequencies, memberships, barrier maxima and
    #: straggler ids bitwise equal on every compared step.
    durations_bitwise: bool
    #: Reclaimed plans byte-identical: serialized strategies, barrier
    #: target, straggler, frequency indices, predicted arrivals.
    plans_byte_identical: bool
    #: ``device_rows()`` straggler tables identical on every step.
    straggler_rows_identical: bool
    #: Identical churn event histories (replay determinism).
    events_equal: bool
    overruns_equal: bool
    max_rel_energy: float
    max_rel_celsius: float

    @property
    def byte_identical(self) -> bool:
        """The bitwise contract: durations, plans, straggler rows."""
        return (
            self.durations_bitwise
            and self.plans_byte_identical
            and self.straggler_rows_identical
            and self.events_equal
        )

    def ok(self, tolerance: float = EQUIVALENCE_TOLERANCE) -> bool:
        """Bitwise contract holds and the soft observables are within
        ``tolerance``."""
        return (
            self.byte_identical
            and self.overruns_equal
            and max(self.max_rel_energy, self.max_rel_celsius) <= tolerance
        )


def _plans_identical(got: FleetPlan, ref: FleetPlan) -> bool:
    return (
        plan_strategy_json(got) == plan_strategy_json(ref)
        and got.target_compute_us == ref.target_compute_us
        and got.straggler_id == ref.straggler_id
        and got.freqs_mhz == ref.freqs_mhz
        and np.array_equal(got.freq_index, ref.freq_index)
        and np.array_equal(got.predicted_us, ref.predicted_us)
        and np.array_equal(got.covered, ref.covered)
    )


def compare_with_sharded(
    spec: FleetSpec,
    trace: Trace,
    steps: int = 3,
    workers: int = 2,
    slack_margin: float = 0.0,
) -> ShardedComparison:
    """Run sharded and single-process fleets in lockstep; report drift.

    Both engines reclaim on the initial membership (plan byte-identity),
    then run ``steps`` baseline steps and ``steps`` reclaimed steps with
    the spec's churn live and re-targeting after membership changes —
    each engine replanning through its own reclamation path — plus a
    deliberately tight barrier for the overrun watchdog.
    """
    single = FleetSimulator(spec, trace)
    with ShardedFleetSimulator(spec, trace, workers=workers) as sharded:
        plan_single = reclaim_fleet_slack(single, slack_margin=slack_margin)
        plan_sharded = reclaim_fleet_slack(
            sharded, slack_margin=slack_margin
        )
        plans_identical = _plans_identical(plan_sharded, plan_single)

        base_single = single.run_steps(None, steps=steps)
        base_sharded = sharded.run_steps(None, steps=steps)

        single.reset()
        sharded.reset()
        replan = auto_retarget(slack_margin)
        rec_single = single.run_steps(
            plan_single,
            steps=steps,
            target_compute_us=plan_single.target_compute_us,
            replan=replan,
        )
        rec_sharded = sharded.run_steps(
            plan_sharded,
            steps=steps,
            target_compute_us=plan_sharded.target_compute_us,
            replan=replan,
        )

        single.reset()
        sharded.reset()
        tight = plan_single.target_compute_us / 2.0
        tight_single = single.step(plan_single, target_compute_us=tight)
        tight_sharded = sharded.step(plan_sharded, target_compute_us=tight)

    pairs = list(zip(base_sharded, base_single)) + list(
        zip(rec_sharded, rec_single)
    )
    pairs.append((tight_sharded, tight_single))
    durations_bitwise = all(
        np.array_equal(got.device_ids, ref.device_ids)
        and np.array_equal(got.arrival_us, ref.arrival_us)
        and np.array_equal(got.wait_us, ref.wait_us)
        and np.array_equal(got.freq_mhz, ref.freq_mhz)
        and got.compute_us == ref.compute_us
        and got.collective_us == ref.collective_us
        and got.straggler_id == ref.straggler_id
        for got, ref in pairs
    )
    straggler_rows_identical = all(
        got.device_rows() == ref.device_rows() for got, ref in pairs
    )
    events_equal = all(
        got.events == ref.events for got, ref in pairs
    )
    overruns_equal = all(
        got.overrun_count == ref.overrun_count
        and got.overrun_device_ids == ref.overrun_device_ids
        for got, ref in pairs
    )
    max_rel_energy = max(
        max(
            _rel(got.aicore_energy_j, ref.aicore_energy_j),
            _rel(got.soc_energy_j, ref.soc_energy_j),
            _rel(got.idle_aicore_energy_j, ref.idle_aicore_energy_j),
            _rel(got.idle_soc_energy_j, ref.idle_soc_energy_j),
        )
        for got, ref in pairs
    )
    max_rel_celsius = max(
        _rel(got.end_celsius, ref.end_celsius) for got, ref in pairs
    )
    return ShardedComparison(
        n_devices=spec.n_devices,
        steps=steps,
        workers=workers,
        durations_bitwise=durations_bitwise,
        plans_byte_identical=plans_identical,
        straggler_rows_identical=straggler_rows_identical,
        events_equal=events_equal,
        overruns_equal=overruns_equal,
        max_rel_energy=max_rel_energy,
        max_rel_celsius=max_rel_celsius,
    )
