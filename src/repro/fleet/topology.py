"""Hierarchical fleet topology and collective cost model.

One rack's devices sit on the fast intra-rack ring (HCCS-class links);
racks talk over a slower inter-rack fabric.  A fleet-wide gradient
all-reduce then runs as the standard hierarchical schedule real training
fleets (and NCCL's tree algorithms) use:

1. **intra-rack ring all-reduce** — every rack reduces its own replicas
   with the exact ring law of
   :class:`repro.cluster.collective.InterconnectSpec`, leaving each rack
   holding the rack-local sum;
2. **inter-rack tree all-reduce** — one representative per rack
   exchanges the rack sums over the inter-rack links in a binomial
   tree: ``ceil(log2(R))`` reduce hops up plus the same number of
   broadcast hops down.

Racks run their ring phases concurrently, so phase 1 costs one ring
all-reduce of the *largest* rack.  The tree moves the full payload per
hop divided across the ``min_rack_size`` concurrently-transmitting
links of each rack boundary.

Like a real collectives library, :meth:`FleetTopology.allreduce_us`
performs *algorithm selection*: it prices both the hierarchical
schedule and a flat ring laid over the inter-rack-grade links spanning
every device, and returns the cheaper one.  That makes the public cost
never slower than the flat ring by construction, and for a single rack
it degenerates bitwise to the intra-rack ring law — the two properties
``tests/test_fleet.py`` checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.collective import InterconnectSpec
from repro.errors import ConfigurationError
from repro.units import gbps_to_bytes_per_us


def default_inter_rack_links() -> InterconnectSpec:
    """Inter-rack fabric: a quarter the bandwidth, twice the latency."""
    return InterconnectSpec(link_bandwidth_gbps=12.5, link_latency_us=25.0)


@dataclass(frozen=True)
class CollectiveCost:
    """Priced alternatives for one fleet-wide all-reduce."""

    #: Intra-rack ring phase + inter-rack tree phase.
    hierarchical_us: float
    #: One flat ring over inter-rack-grade links spanning all devices.
    flat_ring_us: float

    @property
    def chosen_us(self) -> float:
        """The selected algorithm's cost (the cheaper of the two)."""
        return min(self.hierarchical_us, self.flat_ring_us)

    @property
    def algorithm(self) -> str:
        """Which schedule the selection picked."""
        return (
            "hierarchical"
            if self.hierarchical_us <= self.flat_ring_us
            else "flat-ring"
        )


@dataclass(frozen=True)
class FleetTopology:
    """Rack-structured interconnect of a training fleet.

    Attributes:
        devices_per_rack: ring size of one rack; devices fill racks in
            id order, so a fleet of ``N`` devices occupies
            ``ceil(N / devices_per_rack)`` racks.
        intra: per-link characteristics of the intra-rack ring.
        inter: per-link characteristics of the inter-rack fabric.
    """

    devices_per_rack: int = 16
    intra: InterconnectSpec = field(default_factory=InterconnectSpec)
    inter: InterconnectSpec = field(default_factory=default_inter_rack_links)

    def __post_init__(self) -> None:
        if self.devices_per_rack < 1:
            raise ConfigurationError(
                f"devices_per_rack must be >= 1: {self.devices_per_rack}"
            )

    def rack_sizes(self, n_devices: int) -> tuple[int, ...]:
        """Rack occupancy for ``n_devices`` filled in id order."""
        if n_devices < 0:
            raise ConfigurationError(
                f"n_devices must be non-negative: {n_devices}"
            )
        full, rest = divmod(n_devices, self.devices_per_rack)
        return (self.devices_per_rack,) * full + ((rest,) if rest else ())

    def breakdown(
        self, payload_bytes: float, rack_sizes: Sequence[int]
    ) -> CollectiveCost:
        """Price both collective schedules for one gradient exchange.

        ``rack_sizes`` is the live occupancy per rack (elastic churn
        leaves partially-filled racks); empty racks are ignored.
        """
        if payload_bytes < 0:
            raise ConfigurationError(
                f"payload_bytes must be non-negative: {payload_bytes}"
            )
        sizes = [int(s) for s in rack_sizes if s > 0]
        n = sum(sizes)
        if n <= 1:
            return CollectiveCost(hierarchical_us=0.0, flat_ring_us=0.0)
        if len(sizes) == 1:
            # Single rack: exactly the ring law, no tree phase — the
            # degenerate case the property test pins down bitwise.
            ring = self.intra.allreduce_us(payload_bytes, n)
            return CollectiveCost(hierarchical_us=ring, flat_ring_us=ring)
        intra_us = self.intra.allreduce_us(payload_bytes, max(sizes))
        hops = math.ceil(math.log2(len(sizes)))
        # Each tree hop moves the full rack-sum payload across a rack
        # boundary, striped over the concurrently-transmitting links of
        # the smallest participating rack.
        shard = payload_bytes / min(sizes)
        per_hop = shard / gbps_to_bytes_per_us(
            self.inter.link_bandwidth_gbps
        ) + self.inter.link_latency_us
        hierarchical = intra_us + 2 * hops * per_hop
        flat = self.inter.allreduce_us(payload_bytes, n)
        return CollectiveCost(
            hierarchical_us=hierarchical, flat_ring_us=flat
        )

    def allreduce_us(
        self, payload_bytes: float, rack_sizes: Sequence[int]
    ) -> float:
        """Selected all-reduce cost (cheaper of hierarchical and ring)."""
        return self.breakdown(payload_bytes, rack_sizes).chosen_us
