"""Vectorized 10k-device fleet simulation with elastic membership.

The cluster package (:mod:`repro.cluster`) loops Python device objects
around the engine — exact, but O(N) interpreter work per step.  This
package is the same physics at fleet scale: every device's compiled
constant-frequency affine solution (``E = E0 + E1 * delta0``) is
stacked into ``(devices,)`` NumPy arrays, so the barrier step, the
idle-priced waits, slack reclamation and delta0 re-targeting are single
vectorized passes.

* :mod:`repro.fleet.spec` — the fleet description, composing the
  cluster's seeded per-device variation with rack structure and churn;
* :mod:`repro.fleet.topology` — hierarchical collectives: intra-rack
  ring + inter-rack tree, with flat-ring algorithm selection;
* :mod:`repro.fleet.churn` — seeded join/leave/fail dynamics with
  replay-identical histories and deterministic re-sharding;
* :mod:`repro.fleet.simulator` — the vectorized barrier step,
  equivalence-tested (<= 1e-9) against the looped
  :class:`~repro.cluster.simulator.SimulatedCluster` at small N;
* :mod:`repro.fleet.dvfs` — array-pass slack reclamation producing
  byte-identical per-device constant strategies.

Run ``python -m repro.fleet run`` for a demo and
``python -m repro.fleet bench`` for the scaling benchmark
(``BENCH_fleet.json``).
"""

from repro.fleet.churn import ChurnConfig, FleetEvent, draw_churn
from repro.fleet.dvfs import (
    auto_retarget,
    plan_strategies,
    plan_strategy_json,
    reclaim_fleet_slack,
)
from repro.fleet.simulator import (
    FleetPlan,
    FleetSimulator,
    FleetStepResult,
    straggler_summary,
)
from repro.fleet.spec import FleetSpec
from repro.fleet.topology import CollectiveCost, FleetTopology

__all__ = [
    "ChurnConfig",
    "CollectiveCost",
    "FleetEvent",
    "FleetPlan",
    "FleetSimulator",
    "FleetSpec",
    "FleetStepResult",
    "FleetTopology",
    "auto_retarget",
    "draw_churn",
    "plan_strategies",
    "plan_strategy_json",
    "reclaim_fleet_slack",
    "straggler_summary",
]
