"""Vectorized 10k-device fleet simulation with elastic membership.

The cluster package (:mod:`repro.cluster`) loops Python device objects
around the engine — exact, but O(N) interpreter work per step.  This
package is the same physics at fleet scale: every device's compiled
constant-frequency affine solution (``E = E0 + E1 * delta0``) is
stacked into ``(devices,)`` NumPy arrays, so the barrier step, the
idle-priced waits, slack reclamation and delta0 re-targeting are single
vectorized passes.

* :mod:`repro.fleet.spec` — the fleet description, composing the
  cluster's seeded per-device variation with rack structure and churn;
* :mod:`repro.fleet.topology` — hierarchical collectives: intra-rack
  ring + inter-rack tree, with flat-ring algorithm selection;
* :mod:`repro.fleet.churn` — seeded join/leave/fail dynamics with
  replay-identical histories and deterministic re-sharding;
* :mod:`repro.fleet.simulator` — the vectorized barrier step,
  equivalence-tested (<= 1e-9) against the looped
  :class:`~repro.cluster.simulator.SimulatedCluster` at small N;
* :mod:`repro.fleet.dvfs` — array-pass slack reclamation producing
  byte-identical per-device constant strategies;
* :mod:`repro.fleet.sharded` — the same fleet partitioned into
  contiguous device shards pinned to persistent worker processes over
  one shared-memory segment, byte-identical to the single-process
  engine (``--workers`` on the CLI) and the path to 100k devices.

Run ``python -m repro.fleet run`` for a demo and
``python -m repro.fleet bench`` for the scaling benchmark
(``BENCH_fleet.json``).
"""

from repro.fleet.churn import ChurnConfig, FleetEvent, draw_churn
from repro.fleet.dvfs import (
    auto_retarget,
    plan_strategies,
    plan_strategy_json,
    reclaim_fleet_slack,
)
from repro.fleet.sharded import (
    ShardedFleetSimulator,
    make_fleet_simulator,
    shard_bounds,
    simulator_workers,
)
from repro.fleet.simulator import (
    FleetPlan,
    FleetSimulator,
    FleetStepResult,
    descending_top_k,
    straggler_summary,
)
from repro.fleet.spec import FleetSpec
from repro.fleet.topology import CollectiveCost, FleetTopology

__all__ = [
    "ChurnConfig",
    "CollectiveCost",
    "FleetEvent",
    "FleetPlan",
    "FleetSimulator",
    "FleetSpec",
    "FleetStepResult",
    "FleetTopology",
    "ShardedFleetSimulator",
    "auto_retarget",
    "descending_top_k",
    "draw_churn",
    "make_fleet_simulator",
    "plan_strategies",
    "plan_strategy_json",
    "reclaim_fleet_slack",
    "shard_bounds",
    "simulator_workers",
    "straggler_summary",
]
