"""Command-line entry point: ``python -m repro.fleet``.

Two subcommands:

``run``
    Simulate a fleet — baseline, reclaimed, optionally churned — and
    print the straggler top-k table plus the fleet summary.

``bench``
    The scaling benchmark behind ``BENCH_fleet.json``: warm
    steps-per-second of the vectorized barrier step at fleet size,
    plus the small-N equivalence check against the looped cluster.

Examples::

    python -m repro.fleet run gpt3 --scale 0.02 --devices 64
    python -m repro.fleet run gpt3 --devices 256 --leave-rate 0.5 --workers 4
    python -m repro.fleet bench --devices 10000 --output BENCH_fleet.json
    python -m repro.fleet bench --workers 4 --scale-devices 100000
"""

from __future__ import annotations

import argparse
import contextlib
import json
import platform
import resource
import sys
import time
from typing import Sequence

import numpy as np

from repro.core.report import format_table
from repro.errors import ReproError
from repro.fleet.churn import ChurnConfig
from repro.fleet.dvfs import auto_retarget, reclaim_fleet_slack
from repro.fleet.reference import (
    EQUIVALENCE_TOLERANCE,
    compare_with_cluster,
    compare_with_sharded,
)
from repro.fleet.sharded import (
    ShardedFleetSimulator,
    make_fleet_simulator,
)
from repro.fleet.simulator import FleetSimulator, straggler_summary
from repro.fleet.spec import FleetSpec
from repro.fleet.topology import FleetTopology
from repro.workloads import generate, workload_names


def _add_fleet_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "workload",
        nargs="?",
        default="gpt3",
        help=f"workload name (one of: {', '.join(workload_names())})",
    )
    parser.add_argument(
        "--scale", type=float, default=0.02, help="workload scale"
    )
    parser.add_argument(
        "--devices", type=int, default=64, help="fleet size"
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--devices-per-rack",
        type=int,
        default=16,
        help="intra-rack ring size of the hierarchical collective",
    )
    parser.add_argument(
        "--gradient-mb",
        type=float,
        default=64.0,
        help="all-reduce payload per step, in MiB",
    )
    parser.add_argument(
        "--steps", type=int, default=3, help="training steps to simulate"
    )
    parser.add_argument(
        "--slack-margin",
        type=float,
        default=0.0,
        help="extra fraction of step time the reclaimed plan may spend",
    )
    parser.add_argument(
        "--join-rate",
        type=float,
        default=0.0,
        help="expected device joins per step (Poisson)",
    )
    parser.add_argument(
        "--leave-rate",
        type=float,
        default=0.0,
        help="expected graceful leaves per step (Poisson)",
    )
    parser.add_argument(
        "--fail-rate",
        type=float,
        default=0.0,
        help="expected failures per step (Poisson)",
    )
    parser.add_argument(
        "--max-joins",
        type=int,
        default=0,
        help="spare devices provisioned beyond the starting fleet",
    )
    parser.add_argument(
        "--top-k",
        type=int,
        default=8,
        help="stragglers shown in the per-device table",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "shard worker processes; 1 (the default) runs the "
            "single-process engine with exactly the historical behavior"
        ),
    )


def _spec_from_args(args: argparse.Namespace) -> FleetSpec:
    churn = ChurnConfig(
        join_rate=args.join_rate,
        leave_rate=args.leave_rate,
        fail_rate=args.fail_rate,
        max_joins=args.max_joins,
    )
    return FleetSpec(
        n_devices=args.devices,
        topology=FleetTopology(devices_per_rack=args.devices_per_rack),
        gradient_bytes=args.gradient_mb * 2**20,
        seed=args.seed,
        churn=churn,
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description=(
            "Vectorized fleet simulation: stacked affine device solutions, "
            "hierarchical collectives, elastic membership."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="simulate a fleet and print the straggler summary"
    )
    _add_fleet_arguments(run)

    bench = commands.add_parser(
        "bench", help="measure barrier steps/s and write BENCH_fleet.json"
    )
    _add_fleet_arguments(bench)
    bench.set_defaults(devices=10000, steps=5)
    bench.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="timing rounds per arm (best round is reported)",
    )
    bench.add_argument(
        "--reference-devices",
        type=int,
        default=8,
        help="fleet size of the looped-cluster equivalence check",
    )
    bench.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the benchmark JSON to this file",
    )
    bench.add_argument(
        "--assert-steps-per-sec",
        type=float,
        default=None,
        metavar="FLOOR",
        help="exit 1 when the warm baseline rate falls below FLOOR",
    )
    bench.add_argument(
        "--assert-equivalence",
        action="store_true",
        help=(
            "exit 1 when the looped-cluster check exceeds "
            f"{EQUIVALENCE_TOLERANCE:g} or plans are not byte-identical, "
            "or any sharded row is not byte-identical"
        ),
    )
    bench.add_argument(
        "--sharded-workers",
        type=int,
        nargs="*",
        default=[1, 2, 4],
        metavar="W",
        help="worker counts measured in the sharded section",
    )
    bench.add_argument(
        "--scale-devices",
        type=int,
        default=0,
        metavar="N",
        help=(
            "also complete one N-device sharded run (baseline + "
            "reclaim) and record wall time and peak RSS; 0 skips"
        ),
    )
    bench.add_argument(
        "--assert-sharded-speedup",
        type=float,
        default=None,
        metavar="FLOOR",
        help=(
            "exit 1 when the largest sharded row's warm steps/s is "
            "below FLOOR x the single-process rate"
        ),
    )
    return parser


def _print_step(title: str, body: str) -> None:
    print(f"== {title} ==")
    print(body)
    print()


def _run(args: argparse.Namespace) -> int:
    trace = generate(args.workload, scale=args.scale, seed=args.seed)
    spec = _spec_from_args(args)
    sim = make_fleet_simulator(spec, trace, workers=args.workers)
    with contextlib.ExitStack() as stack:
        if isinstance(sim, ShardedFleetSimulator):
            stack.enter_context(sim)
        return _run_body(args, spec, sim)


def _run_body(
    args: argparse.Namespace, spec: FleetSpec, sim: FleetSimulator
) -> int:
    baseline = sim.run_steps(None, steps=args.steps)
    sim.reset()
    plan = reclaim_fleet_slack(sim, slack_margin=args.slack_margin)
    replan = auto_retarget(args.slack_margin) if spec.churn.any_active else None
    reclaimed = sim.run_steps(
        plan,
        steps=args.steps,
        target_compute_us=plan.target_compute_us,
        replan=replan,
    )

    last = reclaimed[-1]
    _print_step(
        f"reclaimed step {args.steps} ({last.n_devices} devices, "
        f"straggler {last.straggler_id})",
        format_table(last.device_rows(args.top_k)),
    )
    collective = last.collective
    print(
        f"collective: {collective.chosen_us / 1000.0:.3f} ms "
        f"({collective.algorithm}; flat ring "
        f"{collective.flat_ring_us / 1000.0:.3f} ms)"
    )
    base_j = sum(r.fleet_soc_energy_j for r in baseline)
    rec_j = sum(r.fleet_soc_energy_j for r in reclaimed)
    base_us = sum(r.step_us for r in baseline)
    rec_us = sum(r.step_us for r in reclaimed)
    print(
        f"fleet SoC energy: {rec_j:.1f} J vs {base_j:.1f} J baseline "
        f"({(1.0 - rec_j / base_j):+.1%} saved); step time "
        f"{rec_us / args.steps / 1000.0:.2f} ms vs "
        f"{base_us / args.steps / 1000.0:.2f} ms"
    )
    summary = straggler_summary(reclaimed)
    events = [e for r in reclaimed for e in r.events]
    if events:
        print(f"churn ({len(events)} events):")
        print(format_table([e.to_row() for e in events]))
    print(f"summary: {json.dumps(summary)}")
    return 0


def _time_steps(
    sim: FleetSimulator, plan, target, steps: int, rounds: int, replan=None
) -> float:
    """Warm steps-per-second, best of ``rounds`` timing rounds."""
    best = float("inf")
    for _ in range(rounds):
        sim.reset()
        sim.step(plan, target_compute_us=target)  # warm the caches
        start = time.perf_counter()
        sim.run_steps(
            plan, steps=steps, target_compute_us=target, replan=replan
        )
        best = min(best, time.perf_counter() - start)
    return steps / best


def _bench(args: argparse.Namespace) -> int:
    trace = generate(args.workload, scale=args.scale, seed=args.seed)
    spec = _spec_from_args(args)

    start = time.perf_counter()
    sim = FleetSimulator(spec, trace)
    max_freq = spec.npu.frequencies.points[-1]
    sim.solution(max_freq)
    compile_seconds = time.perf_counter() - start

    start = time.perf_counter()
    sim.duration_table()
    table_seconds = time.perf_counter() - start

    plan = reclaim_fleet_slack(sim, slack_margin=args.slack_margin)
    baseline_rate = _time_steps(sim, None, None, args.steps, args.rounds)
    reclaimed_rate = _time_steps(
        sim, plan, plan.target_compute_us, args.steps, args.rounds
    )

    churn_spec = FleetSpec(
        n_devices=args.devices,
        topology=spec.topology,
        gradient_bytes=spec.gradient_bytes,
        seed=args.seed,
        churn=ChurnConfig(
            join_rate=1.0, leave_rate=1.0, fail_rate=0.5, max_joins=16
        ),
    )
    churn_sim = FleetSimulator(churn_spec, trace)
    churn_plan = reclaim_fleet_slack(churn_sim)
    churn_rate = _time_steps(
        churn_sim,
        churn_plan,
        churn_plan.target_compute_us,
        args.steps,
        args.rounds,
        replan=auto_retarget(args.slack_margin),
    )

    # Sharded rows: warm rates at each worker count, speedups against
    # the single-process arms above, and the byte-identity harness on a
    # small churned fleet at the same worker count.
    row_counts = sorted(
        set(args.sharded_workers)
        | ({args.workers} if args.workers > 1 else set())
    )
    identity_spec = FleetSpec(
        n_devices=min(args.devices, 64),
        topology=spec.topology,
        gradient_bytes=spec.gradient_bytes,
        seed=args.seed,
        churn=ChurnConfig(
            join_rate=0.3, leave_rate=0.2, fail_rate=0.1, max_joins=4
        ),
    )
    sharded_rows = {}
    for count in row_counts:
        with ShardedFleetSimulator(spec, trace, workers=count) as shard:
            shard_plan = reclaim_fleet_slack(
                shard, slack_margin=args.slack_margin
            )
            shard_base = _time_steps(
                shard, None, None, args.steps, args.rounds
            )
            shard_rec = _time_steps(
                shard,
                shard_plan,
                shard_plan.target_compute_us,
                args.steps,
                args.rounds,
            )
        identity = compare_with_sharded(
            identity_spec, trace, steps=3, workers=count
        )
        sharded_rows[str(count)] = {
            "workers": count,
            "baseline_steps_per_s": shard_base,
            "reclaimed_steps_per_s": shard_rec,
            "baseline_speedup_vs_single_process": shard_base / baseline_rate,
            "reclaimed_speedup_vs_single_process": (
                shard_rec / reclaimed_rate
            ),
            "byte_identical": identity.byte_identical,
            "equivalence_ok": identity.ok(),
        }
    sharded_byte_identical = all(
        row["byte_identical"] and row["equivalence_ok"]
        for row in sharded_rows.values()
    )

    scale_run = None
    if args.scale_devices:
        scale_run = _scale_run(args, spec, trace, max(row_counts))

    collective = sim.collective_cost()
    comparison = compare_with_cluster(
        FleetSpec(
            n_devices=args.reference_devices,
            gradient_bytes=spec.gradient_bytes,
            seed=args.seed,
        ),
        trace,
        slack_margin=args.slack_margin,
    )

    sizes = spec.topology.rack_sizes(args.devices)
    payload = {
        "meta": {
            "devices": args.devices,
            "workload": trace.name,
            "scale": args.scale,
            "operators": trace.operator_count,
            "racks": len(sizes),
            "devices_per_rack": args.devices_per_rack,
            "steps": args.steps,
            "rounds": args.rounds,
            "seed": args.seed,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "benchmarks": {
            "compile_seconds": compile_seconds,
            "duration_table_seconds": table_seconds,
            "baseline_steps_per_s": baseline_rate,
            "reclaimed_steps_per_s": reclaimed_rate,
            "churn_steps_per_s": churn_rate,
            "collective": {
                "hierarchical_us": collective.hierarchical_us,
                "flat_ring_us": collective.flat_ring_us,
                "chosen_us": collective.chosen_us,
                "algorithm": collective.algorithm,
            },
        },
        "sharded": {
            "single_process_baseline_steps_per_s": baseline_rate,
            "single_process_reclaimed_steps_per_s": reclaimed_rate,
            "identity_devices": identity_spec.n_devices,
            "workers": sharded_rows,
            "sharded_byte_identical": sharded_byte_identical,
            "scale_run": scale_run,
        },
        "equivalence": {
            "devices": comparison.n_devices,
            "steps": comparison.steps,
            "plans_byte_identical": comparison.plans_byte_identical,
            "overruns_equal": comparison.overruns_equal,
            "max_rel_duration": comparison.max_rel_duration,
            "max_rel_energy": comparison.max_rel_energy,
            "max_rel_celsius": comparison.max_rel_celsius,
            "max_rel_fleet_total": comparison.max_rel_fleet_total,
            "max_rel_err": comparison.max_rel_err,
            "tolerance": EQUIVALENCE_TOLERANCE,
            "ok": comparison.ok(),
        },
    }
    text = json.dumps(payload, indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    print(
        f"{args.devices} devices: baseline {baseline_rate:.1f} steps/s, "
        f"reclaimed {reclaimed_rate:.1f} steps/s, churned "
        f"{churn_rate:.1f} steps/s; equivalence max rel err "
        f"{comparison.max_rel_err:.3e} over {comparison.n_devices} devices"
    )
    for row in sharded_rows.values():
        print(
            f"sharded x{row['workers']}: "
            f"{row['reclaimed_steps_per_s']:.1f} steps/s "
            f"({row['reclaimed_speedup_vs_single_process']:.2f}x single "
            f"process), byte identical: {row['byte_identical']}"
        )
    if scale_run is not None:
        print(
            f"scale run: {scale_run['devices']} devices x"
            f"{scale_run['workers']} workers completed in "
            f"{scale_run['wall_seconds']:.1f} s "
            f"({scale_run['warm_steps_per_s']:.1f} warm steps/s, peak "
            f"RSS {scale_run['max_rss_mb']:.0f} MiB)"
        )

    failed = False
    if (
        args.assert_steps_per_sec is not None
        and baseline_rate < args.assert_steps_per_sec
    ):
        print(
            f"FAIL: baseline {baseline_rate:.1f} steps/s below the "
            f"{args.assert_steps_per_sec:.1f} steps/s floor",
            file=sys.stderr,
        )
        failed = True
    if args.assert_equivalence and not comparison.ok():
        print(
            f"FAIL: equivalence check ({comparison.max_rel_err:.3e} rel "
            f"err, plans identical: {comparison.plans_byte_identical}, "
            f"overruns equal: {comparison.overruns_equal})",
            file=sys.stderr,
        )
        failed = True
    if args.assert_equivalence and not sharded_byte_identical:
        print(
            "FAIL: a sharded row is not byte-identical to the "
            "single-process engine",
            file=sys.stderr,
        )
        failed = True
    if args.assert_sharded_speedup is not None:
        top = sharded_rows[str(max(row_counts))]
        speedup = top["reclaimed_speedup_vs_single_process"]
        if speedup < args.assert_sharded_speedup:
            print(
                f"FAIL: sharded x{top['workers']} speedup {speedup:.2f}x "
                f"below the {args.assert_sharded_speedup:.2f}x floor",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


def _scale_run(
    args: argparse.Namespace,
    spec: FleetSpec,
    trace,
    workers: int,
) -> dict:
    """One large sharded run: baseline, reclaim, reclaimed steps.

    The bounded-memory evidence for the scale target: wall time, warm
    rate and the peak RSS across the engine and its workers.
    """
    scale_spec = FleetSpec(
        n_devices=args.scale_devices,
        topology=spec.topology,
        gradient_bytes=spec.gradient_bytes,
        seed=args.seed,
    )
    start = time.perf_counter()
    with ShardedFleetSimulator(scale_spec, trace, workers=workers) as sim:
        baseline = sim.run_steps(None, steps=args.steps)
        plan = reclaim_fleet_slack(sim, slack_margin=args.slack_margin)
        sim.reset()
        reclaimed = sim.run_steps(
            plan, steps=args.steps, target_compute_us=plan.target_compute_us
        )
        warm_start = time.perf_counter()
        sim.run_steps(
            plan, steps=args.steps, target_compute_us=plan.target_compute_us
        )
        warm_rate = args.steps / (time.perf_counter() - warm_start)
    wall = time.perf_counter() - start
    rss_kb = max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )
    saved = 1.0 - (
        sum(r.fleet_soc_energy_j for r in reclaimed)
        / sum(r.fleet_soc_energy_j for r in baseline)
    )
    return {
        "devices": args.scale_devices,
        "workers": workers,
        "steps": args.steps,
        "completed": True,
        "wall_seconds": wall,
        "warm_steps_per_s": warm_rate,
        "soc_energy_saved_frac": saved,
        "max_rss_mb": rss_kb / 1024.0,
    }


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _run(args)
        return _bench(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
