"""``python -m repro.fleet`` dispatches to the fleet CLI."""

import sys

from repro.fleet.cli import main

if __name__ == "__main__":
    sys.exit(main())
