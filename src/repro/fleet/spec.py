"""Fleet description: a rack-structured population of varied devices.

:class:`FleetSpec` composes the cluster layer's device model — the same
:class:`~repro.cluster.spec.DeviceVariation` draws, the same explicit
:class:`~repro.cluster.spec.DeviceOverride` degradations, the same
two-draws-per-device seeding discipline — with a rack-structured
:class:`~repro.fleet.topology.FleetTopology` and elastic
:class:`~repro.fleet.churn.ChurnConfig` dynamics.

The spec deliberately *is* a :class:`~repro.cluster.spec.ClusterSpec`
plus fleet structure: :meth:`FleetSpec.cluster_spec` projects it back
onto the single-ring cluster (same seed, same variation, the intra-rack
interconnect), which is what makes the looped ``SimulatedCluster`` an
exact small-N reference for the vectorized fleet — profiles come from
the identical draw stream, so device ``i`` is the same silicon in both
simulators.

Capacity is provisioned up front: profiles are drawn for
``n_devices + churn.max_joins`` boards so later joins activate
pre-drawn spares without re-rolling anyone (profile ``i`` depends only
on ``(seed, i)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.spec import (
    ClusterSpec,
    DeviceOverride,
    DeviceProfile,
    DeviceVariation,
)
from repro.errors import ConfigurationError
from repro.fleet.churn import ChurnConfig
from repro.fleet.topology import FleetTopology
from repro.npu.spec import NpuSpec, default_npu_spec


@dataclass(frozen=True)
class FleetSpec:
    """Immutable description of one elastic training fleet.

    Attributes:
        name: label used in reports.
        n_devices: initially-active fleet size.
        npu: the nominal accelerator every board is built from.
        variation: statistical spread of the per-device draws.
        topology: rack structure and interconnect grades.
        gradient_bytes: all-reduce payload per training step.
        seed: root seed of variation and churn draws.
        overrides: explicit per-device conditions (degradation).
        churn: elastic join/leave/fail dynamics.
    """

    name: str = "fleet"
    n_devices: int = 64
    npu: NpuSpec = field(default_factory=default_npu_spec)
    variation: DeviceVariation = field(default_factory=DeviceVariation)
    topology: FleetTopology = field(default_factory=FleetTopology)
    gradient_bytes: float = 64 * 2**20
    seed: int = 0
    overrides: tuple[DeviceOverride, ...] = ()
    churn: ChurnConfig = field(default_factory=ChurnConfig.none)

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ConfigurationError(
                f"n_devices must be >= 1: {self.n_devices}"
            )
        if self.churn.min_active > self.n_devices:
            raise ConfigurationError(
                f"min_active ({self.churn.min_active}) exceeds the initial "
                f"fleet size ({self.n_devices})"
            )
        # Delegate the remaining validation (payload, override ids and
        # duplicates) to the cluster spec over the full capacity.
        self.cluster_spec(self.capacity)

    @property
    def capacity(self) -> int:
        """Provisioned boards: the initial fleet plus join spares."""
        return self.n_devices + self.churn.max_joins

    def cluster_spec(self, n_devices: int | None = None) -> ClusterSpec:
        """The single-ring cluster view of this fleet's first devices.

        With the default ``n_devices`` this is the N<=16 reference the
        fleet is equivalence-tested against: identical seed and
        variation (so identical profiles), the intra-rack interconnect,
        and the same gradient payload.
        """
        return ClusterSpec(
            name=self.name,
            n_devices=self.n_devices if n_devices is None else n_devices,
            npu=self.npu,
            variation=self.variation,
            interconnect=self.topology.intra,
            gradient_bytes=self.gradient_bytes,
            seed=self.seed,
            overrides=self.overrides,
        )

    def device_profiles(self) -> tuple[DeviceProfile, ...]:
        """Seeded draws for every provisioned board (spares included)."""
        return self.cluster_spec(self.capacity).device_profiles()

    def with_degraded_device(
        self, device_id: int, slowdown: float, reason: str = "degraded"
    ) -> "FleetSpec":
        """A copy with one board explicitly slowed by ``slowdown``x."""
        override = DeviceOverride(
            device_id=device_id,
            extra_duration_scale=slowdown,
            reason=reason,
        )
        kept = tuple(
            o for o in self.overrides if o.device_id != device_id
        )
        return replace(self, overrides=kept + (override,))

    @classmethod
    def from_cluster(
        cls,
        spec: ClusterSpec,
        topology: FleetTopology | None = None,
        churn: ChurnConfig | None = None,
    ) -> "FleetSpec":
        """Lift a cluster spec into a fleet (intra links preserved)."""
        return cls(
            name=spec.name,
            n_devices=spec.n_devices,
            npu=spec.npu,
            variation=spec.variation,
            topology=topology
            or FleetTopology(intra=spec.interconnect),
            gradient_bytes=spec.gradient_bytes,
            seed=spec.seed,
            overrides=spec.overrides,
            churn=churn or ChurnConfig.none(),
        )
