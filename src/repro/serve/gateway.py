"""Async serving gateway: admission control, coalescing, backpressure.

:class:`~repro.serve.service.StrategyService` is a synchronous front
door: a cold miss blocks the caller for a full GA run, and nothing stops
a fleet from piling up unbounded concurrent work.  The gateway is the
asyncio layer that makes the service survivable under fleet traffic:

* **Admission control.**  Every submission passes a per-source token
  bucket (sustained rate + burst) and, on a miss, a *bounded* dispatch
  queue.  A request the gateway cannot afford is refused *immediately*
  with a typed :class:`~repro.errors.Overloaded` (reason
  ``"rate_limited"`` / ``"queue_full"`` / ``"draining"``) — clients see
  backpressure, never an unbounded queue.
* **Coalescing across awaiters.**  Concurrent submissions of one
  fingerprint share a single GA run: the first becomes the owner and
  enqueues one job; the rest await the same future and report
  ``source="coalesced"`` — exactly the synchronous service's semantics,
  lifted to the event loop.
* **Non-blocking dispatch.**  Misses run on an executor (threads by
  default, the optimizer process pool optionally) via
  ``loop.run_in_executor``; the event loop keeps admitting and serving
  store hits while GA runs are in flight.
* **Graceful drain.**  :meth:`AsyncGateway.drain` stops admitting
  (``Overloaded("draining")``), lets every queued and in-flight job
  finish, resolves all waiters, then stops the dispatchers — no request
  that was admitted is ever dropped.

Determinism bar (asserted in ``tests/test_gateway.py``): for any
*admitted* request the returned strategy JSON is byte-identical to a
serial ``StrategyService`` run, because the gateway routes misses
through the same fingerprint-derived-seed ``optimize_job`` and commits
through ``StrategyService.commit``.

The admission decision itself is synchronous (no ``await`` before the
verdict) and takes an optional explicit ``now``, so a seeded traffic
driver replaying a virtual-time schedule sheds deterministically.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Awaitable, Callable, Union

from repro.errors import Overloaded, ServeError
from repro.serve.pool import optimize_job
from repro.serve.service import ServeResult, ServiceStats, StrategyService
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class GatewayConfig:
    """Admission and dispatch knobs for one :class:`AsyncGateway`.

    Attributes:
        max_queue_depth: bound on queued (not yet dispatched) GA jobs;
            an owner submission arriving at a full queue is shed.
        dispatchers: concurrent dispatcher tasks (and thread-executor
            workers) pulling jobs off the queue.
        rate_per_source: sustained admitted requests/second per source;
            0 disables rate limiting.
        burst_per_source: token-bucket capacity per source; defaults to
            one second's worth of tokens (``rate_per_source``) when 0.
        use_processes: run GA misses on a process pool instead of
            threads (worth it when misses dominate; threads suffice when
            the store absorbs the fleet).
    """

    max_queue_depth: int = 256
    dispatchers: int = 4
    rate_per_source: float = 0.0
    burst_per_source: float = 0.0
    use_processes: bool = False

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ServeError(
                f"max_queue_depth must be >= 1: {self.max_queue_depth}"
            )
        if self.dispatchers < 1:
            raise ServeError(f"dispatchers must be >= 1: {self.dispatchers}")
        if self.rate_per_source < 0 or self.burst_per_source < 0:
            raise ServeError("rate/burst must be >= 0")

    @property
    def effective_burst(self) -> float:
        """The bucket capacity actually applied per source."""
        if self.burst_per_source > 0:
            return self.burst_per_source
        return max(self.rate_per_source, 1.0)


class TokenBucket:
    """Classic token bucket, driven by an explicit clock value.

    Deterministic given a deterministic sequence of ``now`` values —
    the property the seeded traffic driver relies on to make its shed
    decisions replayable.
    """

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated_at: float | None = None

    def try_take(self, now: float) -> bool:
        """Refill to ``now`` and consume one token if available."""
        if self.updated_at is not None and now > self.updated_at:
            self.tokens = min(
                self.burst, self.tokens + (now - self.updated_at) * self.rate
            )
        self.updated_at = now if self.updated_at is None else max(
            self.updated_at, now
        )
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


#: What :meth:`AsyncGateway.submit_nowait` hands back: a finished result
#: for store hits, an awaitable for misses and coalesced waiters.
SubmitOutcome = Union[ServeResult, Awaitable[ServeResult]]


class AsyncGateway:
    """The asyncio front door over a :class:`StrategyService`.

    Use as an async context manager::

        async with AsyncGateway(service) as gateway:
            result = await gateway.submit(trace, source="rack-03")

    ``submit_nowait`` is the hot-path variant: store hits return a
    finished :class:`ServeResult` synchronously (no task, no event-loop
    round trip), misses return an awaitable — the shape that lets a
    traffic driver push a million requests without creating a million
    tasks.
    """

    def __init__(
        self,
        service: StrategyService,
        config: GatewayConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.service = service
        self.config = config or GatewayConfig()
        self.stats = ServiceStats()
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight: dict[str, asyncio.Future] = {}
        self._queue: asyncio.Queue | None = None
        self._dispatchers: list[asyncio.Task] = []
        self._executor: Executor | None = None
        self._draining = False
        self._started = False
        #: High-water mark of the dispatch queue (for the bench report).
        self.max_queue_depth_seen = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "AsyncGateway":
        """Create the queue, executor and dispatcher tasks (idempotent)."""
        if self._started:
            return self
        self._queue = asyncio.Queue(maxsize=self.config.max_queue_depth)
        if self.config.use_processes:
            self._executor = ProcessPoolExecutor(
                max_workers=self.config.dispatchers
            )
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.dispatchers,
                thread_name_prefix="gateway-dispatch",
            )
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop(), name=f"dispatch-{i}")
            for i in range(self.config.dispatchers)
        ]
        self._draining = False
        self._started = True
        return self

    async def drain(self) -> None:
        """Stop admitting, finish all in-flight work, stop dispatchers."""
        if not self._started:
            return
        self._draining = True
        await self._queue.join()
        for task in self._dispatchers:
            task.cancel()
        await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._dispatchers = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._started = False

    async def __aenter__(self) -> "AsyncGateway":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.drain()

    @property
    def draining(self) -> bool:
        """Whether the gateway is refusing new submissions."""
        return self._draining

    @property
    def queue_depth(self) -> int:
        """Jobs currently queued for dispatch."""
        return self._queue.qsize() if self._queue is not None else 0

    @property
    def inflight(self) -> int:
        """Distinct fingerprints with an unresolved GA run."""
        return len(self._inflight)

    # -- admission + serving ------------------------------------------------

    def submit_nowait(
        self,
        trace: Trace,
        source: str = "default",
        now: float | None = None,
    ) -> SubmitOutcome:
        """Admit one request; hits resolve synchronously.

        The entire admission verdict — drain check, token bucket, store
        lookup, coalesce-or-enqueue — happens before returning, with no
        suspension point, so submission order fully determines shed
        decisions under a virtual clock.

        Raises:
            Overloaded: the request was refused (``.reason`` says why);
                counted in ``stats.shed``, never queued.
        """
        if not self._started:
            raise ServeError("gateway is not started (use 'async with')")
        if self._draining:
            self.stats.record_shed()
            raise Overloaded("draining", "gateway is shutting down")
        if self.config.rate_per_source > 0:
            bucket = self._buckets.get(source)
            if bucket is None:
                bucket = self._buckets[source] = TokenBucket(
                    self.config.rate_per_source, self.config.effective_burst
                )
            if not bucket.try_take(self._clock() if now is None else now):
                self.stats.record_shed()
                raise Overloaded("rate_limited", f"source {source!r}")
        start = time.perf_counter()
        fingerprint = self.service.fingerprint(trace)
        hit = self.service.lookup(fingerprint)
        if hit is not None:
            result = ServeResult(
                fingerprint=fingerprint,
                strategy=hit.strategy,
                source=hit.tier,
                latency_seconds=time.perf_counter() - start,
            )
            self.stats.record(result)
            return result
        future = self._inflight.get(fingerprint)
        if future is not None:
            return self._await_result(future, fingerprint, "coalesced", start)
        try:
            future = asyncio.get_running_loop().create_future()
            self._queue.put_nowait((fingerprint, trace, future))
        except asyncio.QueueFull:
            self.stats.record_shed()
            raise Overloaded(
                "queue_full",
                f"admission queue at depth {self.config.max_queue_depth}",
            ) from None
        self._inflight[fingerprint] = future
        depth = self._queue.qsize()
        if depth > self.max_queue_depth_seen:
            self.max_queue_depth_seen = depth
        return self._await_result(future, fingerprint, "computed", start)

    async def submit(
        self,
        trace: Trace,
        source: str = "default",
        now: float | None = None,
    ) -> ServeResult:
        """Admit one request and await its strategy (canonical form)."""
        outcome = self.submit_nowait(trace, source, now)
        if isinstance(outcome, ServeResult):
            return outcome
        return await outcome

    async def _await_result(
        self,
        future: asyncio.Future,
        fingerprint: str,
        label: str,
        start: float,
    ) -> ServeResult:
        strategy = await future
        result = ServeResult(
            fingerprint=fingerprint,
            strategy=strategy,
            source=label,
            latency_seconds=time.perf_counter() - start,
        )
        self.stats.record(result)
        return result

    # -- dispatch -----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            fingerprint, trace, future = await self._queue.get()
            try:
                pool_result = await loop.run_in_executor(
                    self._executor,
                    optimize_job,
                    fingerprint,
                    trace,
                    self.service.config,
                )
                strategy = self.service.commit(pool_result)
                self.stats.ga_runs += 1
                if pool_result.surrogate_used:
                    self.stats.surrogate_runs += 1
                self.stats.ga_seconds += pool_result.wall_seconds
                self.stats.ga_generations += pool_result.ga_generations
                if not future.done():
                    future.set_result(strategy)
            except asyncio.CancelledError:
                if not future.done():
                    future.set_exception(
                        ServeError("gateway dispatcher cancelled")
                    )
                raise
            except BaseException as exc:
                if not future.done():
                    future.set_exception(exc)
            finally:
                self._inflight.pop(fingerprint, None)
                self._queue.task_done()
