"""Fingerprint-prefix sharded strategy store with a shared-memory hot tier.

One :class:`~repro.serve.store.StrategyStore` holds every record behind a
single lock — fine for a warm-up script, a contention point for a
gateway pushing a million requests.  :class:`ShardedStrategyStore`
splits the keyspace across N independent shards, each a full
``StrategyStore`` with its own lock, LRU layer and directory, so
concurrent lookups and writes for different fingerprints never serialize
on one mutex.

Sharding is by fingerprint prefix: ``int(fp[:2], 16) % shards``.  The
record files a sharded store writes are byte-identical to the unsharded
store's — only the directory above the two-level fan-out changes
(``<root>/shard-03/<fp[:2]>/<fp>.json``) — so the shards form an exact
*partition* of the unsharded store's contents (asserted in
``tests/test_sharded_store.py``).

Between the per-shard LRU and the disk sits an optional
:class:`~repro.serve.hotmem.SharedMemoryHotTier`: encoded envelopes of
recently written records in a named shared-memory ring that pool workers
attach to by name, turning their repeat lookups into one buffer copy
instead of a disk read + JSON file parse.  Hot-tier records are
validated exactly like disk records (same ``decode_record``, same hash
checks), so the tier can never serve a stale or torn record.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.dvfs.strategy import DvfsStrategy
from repro.errors import ServeError
from repro.serve.hotmem import SharedMemoryHotTier
from repro.serve.store import (
    StoreCounters,
    StoreHit,
    StrategyStore,
    decode_record,
    encode_document,
)


def shard_index(fingerprint: str, shards: int) -> int:
    """The shard a fingerprint belongs to (stable prefix partition)."""
    return int(fingerprint[:2], 16) % shards


@dataclass
class ShardedStrategyStore:
    """N independent :class:`StrategyStore` shards behind one interface.

    Duck-type compatible with ``StrategyStore`` everywhere the service
    layer cares (``lookup`` / ``get`` / ``put`` / ``fingerprints`` /
    ``counters`` / ``clear*``), so it drops into
    :class:`~repro.serve.service.StrategyService` unchanged.

    Attributes:
        root: parent directory; shard ``i`` lives in ``shard-{i:02d}``.
        shards: shard count (1–256; the prefix byte is the partition key).
        memory_capacity: per-shard LRU entry cap.
        hot_tier: optional shared-memory tier consulted between the LRU
            and the disk; pass ``hot_slots=0`` to disable.
    """

    root: Path
    shards: int = 8
    memory_capacity: int = 256
    hot_slots: int = 512
    hot_slot_bytes: int = 24_576

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if not 1 <= self.shards <= 256:
            raise ServeError(
                f"shards must be in [1, 256]: {self.shards}"
            )
        self._stores = [
            StrategyStore(
                self.root / f"shard-{i:02d}",
                memory_capacity=self.memory_capacity,
            )
            for i in range(self.shards)
        ]
        # Eager shard directories make the on-disk layout self-describing
        # (ShardLayout.detect counts them even before the first write).
        for store in self._stores:
            store.root.mkdir(parents=True, exist_ok=True)
        self.hot_tier: SharedMemoryHotTier | None = None
        if self.hot_slots > 0:
            self.hot_tier = SharedMemoryHotTier(
                slots=self.hot_slots, slot_bytes=self.hot_slot_bytes
            )
        self._hot_lock = threading.Lock()
        self.counters = StoreCounters()

    # -- partition plumbing -------------------------------------------------

    def shard_for(self, fingerprint: str) -> StrategyStore:
        """The shard store owning ``fingerprint``."""
        return self._stores[shard_index(fingerprint, self.shards)]

    def path_for(self, fingerprint: str) -> Path:
        """The record path (``<root>/shard-XX/<fp[:2]>/<fp>.json``)."""
        return self.shard_for(fingerprint).path_for(fingerprint)

    @property
    def shard_stores(self) -> tuple[StrategyStore, ...]:
        """The underlying per-shard stores (read-mostly introspection)."""
        return tuple(self._stores)

    # -- lookup / put -------------------------------------------------------

    def lookup(
        self,
        fingerprint: str,
        config_hash: str | None = None,
        spec_hash: str | None = None,
    ) -> StoreHit | None:
        """LRU tier, then shared-memory hot tier, then the shard's disk."""
        shard = self.shard_for(fingerprint)
        hit = shard.lookup_memory(fingerprint)
        if hit is not None:
            return hit
        hit = self._lookup_hot(shard, fingerprint, config_hash, spec_hash)
        if hit is not None:
            return hit
        hit = shard.lookup_disk(fingerprint, config_hash, spec_hash)
        if hit is not None and self.hot_tier is not None:
            # Promote: future cross-process lookups skip the disk.
            document = encode_document(
                fingerprint, hit.strategy, config_hash or "", spec_hash or ""
            ) if config_hash is not None and spec_hash is not None else None
            if document is not None:
                with self._hot_lock:
                    self.hot_tier.put(
                        fingerprint, document.encode("utf-8")
                    )
        return hit

    def _lookup_hot(
        self,
        shard: StrategyStore,
        fingerprint: str,
        config_hash: str | None,
        spec_hash: str | None,
    ) -> StoreHit | None:
        if self.hot_tier is None:
            return None
        with self._hot_lock:
            payload = self.hot_tier.get(fingerprint)
        if payload is None:
            return None
        # Validate exactly like a disk record; any damage or drift falls
        # through to the disk tier (the source of truth).
        try:
            record = json.loads(payload.decode("utf-8"))
            strategy = decode_record(
                record, fingerprint, config_hash, spec_hash
            )
        except (ValueError, ServeError):
            return None
        with shard._lock:
            shard.counters.hot_hits += 1
            shard._remember(fingerprint, strategy)
        return StoreHit(fingerprint, strategy, tier="hot")

    def get(
        self,
        fingerprint: str,
        config_hash: str | None = None,
        spec_hash: str | None = None,
    ) -> DvfsStrategy | None:
        """:meth:`lookup` without the tier bookkeeping wrapper."""
        hit = self.lookup(fingerprint, config_hash, spec_hash)
        return None if hit is None else hit.strategy

    def put(
        self,
        fingerprint: str,
        strategy: DvfsStrategy,
        config_hash: str,
        spec_hash: str,
    ) -> Path:
        """Persist to the owning shard and refresh the hot tier."""
        document = encode_document(
            fingerprint, strategy, config_hash, spec_hash
        )
        path = self.shard_for(fingerprint).put(
            fingerprint, strategy, config_hash, spec_hash, document=document
        )
        if self.hot_tier is not None:
            with self._hot_lock:
                self.hot_tier.put(fingerprint, document.encode("utf-8"))
        return path

    # -- aggregation --------------------------------------------------------

    def aggregate_counters(self) -> StoreCounters:
        """Sum of all shard counters (plus any pre-merged totals)."""
        total = StoreCounters()
        for store in self._stores:
            total.merge(store.counters)
        total.merge(self.counters)
        return total

    def counter_rows(self) -> list[dict[str, int | str]]:
        """Aggregated counters + per-shard occupancy + hot-tier rows."""
        rows = self.aggregate_counters().rows()
        rows.append({"counter": "shards", "count": self.shards})
        if self.hot_tier is not None:
            rows.extend(self.hot_tier.rows())
        return rows

    def fingerprints(self) -> Iterator[str]:
        """All persisted fingerprints across every shard (sorted)."""
        for fingerprint in sorted(
            fp for store in self._stores for fp in store.fingerprints()
        ):
            yield fingerprint

    def quarantined_files(self) -> Iterator[Path]:
        """All quarantined ``.corrupt`` files across every shard."""
        for store in self._stores:
            yield from store.quarantined_files()

    def __len__(self) -> int:
        return sum(len(store) for store in self._stores)

    def memory_size(self) -> int:
        """Entries resident across all shard LRU layers."""
        return sum(store.memory_size() for store in self._stores)

    def clear_memory(self) -> None:
        """Drop every shard's LRU layer (disk records stay)."""
        for store in self._stores:
            store.clear_memory()

    def clear(self) -> int:
        """Delete every persisted record across shards."""
        return sum(store.clear() for store in self._stores)

    def close(self) -> None:
        """Release the shared-memory hot tier (idempotent)."""
        if self.hot_tier is not None:
            self.hot_tier.close()
            self.hot_tier = None

    def __enter__(self) -> "ShardedStrategyStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class ShardLayout:
    """How an on-disk store directory is organised (CLI detection)."""

    sharded: bool
    shards: int = 0

    @classmethod
    def detect(cls, root: Path) -> "ShardLayout":
        """Detect whether ``root`` holds a sharded or a flat store."""
        root = Path(root)
        if not root.is_dir():
            return cls(sharded=False)
        shard_dirs = sorted(root.glob("shard-[0-9][0-9]"))
        if shard_dirs:
            return cls(sharded=True, shards=len(shard_dirs))
        return cls(sharded=False)
