"""Fleet-scale DVFS strategy serving (the Sect. 8.1 amortization argument).

The paper's strategy generator is offline and single-workload: one trace
in, one GA run, one strategy out.  A production fleet submits many —
often identical — workloads concurrently, so re-running calibration,
fitting and a full GA per request is the wrong cost model.  This package
turns :class:`~repro.core.optimizer.EnergyOptimizer` into a service that
amortizes the model/search cost across repeated queries:

* :mod:`repro.serve.fingerprint` — stable content hashes of a trace and
  the strategy-relevant optimizer configuration, so identical requests
  coalesce.
* :mod:`repro.serve.store` — a content-addressed, schema-versioned
  on-disk strategy store with an in-process LRU layer; survives process
  restarts and invalidates records whose config/spec hash changed.
* :mod:`repro.serve.pool` — a process-pool optimizer with per-job
  deterministically derived RNG seeds: a batch of N distinct workloads
  optimizes in parallel yet byte-identically to serial runs.
* :mod:`repro.serve.service` — the :class:`StrategyService` front door:
  deduplicates in-flight requests, serves cache hits in microseconds,
  and reports hit/miss/latency counters through :mod:`repro.core.report`.
* :mod:`repro.serve.gateway` — the :class:`AsyncGateway` asyncio front
  end: per-source token-bucket admission, a bounded dispatch queue with
  typed :class:`~repro.errors.Overloaded` load shedding, coalescing
  across concurrent awaiters, and graceful drain.
* :mod:`repro.serve.shards` — :class:`ShardedStrategyStore`, the store
  split across fingerprint-prefix shards (one lock each) with a
  :mod:`repro.serve.hotmem` shared-memory hot tier in front of the disk.

Warm a store from the shell with ``python -m repro.serve warm``; drive
synthetic fleet traffic with ``python -m repro.serve bench-traffic``
(see :mod:`repro.traffic`); inspect a store directory with
``python -m repro.serve stats``.
"""

from repro.serve.fingerprint import (
    combine_fingerprints,
    config_fingerprint,
    request_fingerprint,
    spec_fingerprint,
    trace_fingerprint,
)
from repro.serve.gateway import AsyncGateway, GatewayConfig, TokenBucket
from repro.serve.hotmem import SharedMemoryHotTier
from repro.serve.pool import OptimizerPool, PoolResult, derive_job_seed
from repro.serve.service import ServeResult, ServiceStats, StrategyService
from repro.serve.shards import ShardedStrategyStore, shard_index
from repro.serve.store import STORE_SCHEMA_VERSION, StoreHit, StrategyStore

__all__ = [
    "STORE_SCHEMA_VERSION",
    "AsyncGateway",
    "GatewayConfig",
    "OptimizerPool",
    "PoolResult",
    "ServeResult",
    "ServiceStats",
    "SharedMemoryHotTier",
    "ShardedStrategyStore",
    "StoreHit",
    "StrategyService",
    "StrategyStore",
    "TokenBucket",
    "combine_fingerprints",
    "config_fingerprint",
    "derive_job_seed",
    "request_fingerprint",
    "shard_index",
    "spec_fingerprint",
    "trace_fingerprint",
]
