"""Workload and configuration fingerprinting for the strategy service.

A fingerprint is a stable SHA-256 content hash: two requests share a
fingerprint exactly when the optimizer would produce the same strategy
for both — the same operator sequence (shapes, gaps, host pacing) under
the same strategy-relevant configuration (loss target, frequency grid,
fit function, GA hyper-parameters, guard/fault knobs, seed).

Trace names and descriptions are deliberately *excluded* from the trace
hash: a fleet frequently submits the same iteration under different job
names, and those requests must coalesce onto one GA run.

The hash is computed over a canonical JSON encoding (sorted keys, enums
by value, dataclasses tagged with their class name), so it is stable
across processes and sessions — the property the on-disk store relies
on.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

from repro.core.config import OptimizerConfig
from repro.npu.spec import NpuSpec
from repro.workloads.trace import Trace

#: Bump when the canonical encoding changes incompatibly; part of every
#: digest so old store entries invalidate instead of aliasing.
#: v2: the surrogate-search knobs joined the config hash — a surrogate
#: and an exact run can legitimately return different strategies.
FINGERPRINT_VERSION = 2


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to deterministically JSON-encodable plain data.

    Dataclasses are tagged with their class name (two spec types with
    coincidentally equal fields must not collide), enums collapse to
    their values, and tuples become lists.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        payload: dict[str, Any] = {"__class__": type(value).__name__}
        for field in dataclasses.fields(value):
            payload[field.name] = canonicalize(getattr(value, field.name))
        return payload
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, dict):
        return {
            str(key.value if isinstance(key, enum.Enum) else key): (
                canonicalize(val)
            )
            for key, val in value.items()
        }
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__} for fingerprinting"
    )


def _digest(payload: Any) -> str:
    document = json.dumps(
        {"fingerprint_version": FINGERPRINT_VERSION, "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


def payload_fingerprint(kind: str, payload: Any) -> str:
    """Content hash of an arbitrary canonicalizable payload.

    The extension point for layers above the core service (the cluster
    package fingerprints per-device profiles and interconnect settings
    through this) so every digest shares one canonical encoding and the
    :data:`FINGERPRINT_VERSION` invalidation discipline.
    """
    return _digest({"kind": kind, "payload": canonicalize(payload)})


def trace_fingerprint(trace: Trace) -> str:
    """Content hash of a trace's operator sequence (name excluded).

    Memoized on the (immutable) trace object itself, so a serving loop
    pays the canonicalization cost once per trace and repeat lookups
    cost an attribute read — the store's cache hits stay in the
    microsecond range.
    """
    cached = getattr(trace, "_fingerprint_cache", None)
    if cached is not None:
        return cached
    entries = [
        {
            "spec": canonicalize(entry.spec),
            "gap_before_us": entry.gap_before_us,
            "host_interval_us": entry.host_interval_us,
        }
        for entry in trace.entries
    ]
    fingerprint = _digest({"kind": "trace", "entries": entries})
    object.__setattr__(trace, "_fingerprint_cache", fingerprint)
    return fingerprint


def spec_fingerprint(spec: NpuSpec) -> str:
    """Content hash of the full hardware description."""
    return _digest({"kind": "npu_spec", "spec": canonicalize(spec)})


def config_fingerprint(config: OptimizerConfig) -> str:
    """Content hash of the strategy-relevant optimizer configuration.

    Covers every knob the generated strategy depends on: loss target,
    adjustment interval, profile frequencies, fit function, objective,
    GA hyper-parameters, surrogate-search knobs, guard and fault knobs,
    and the root seed.  The hardware description is hashed separately
    (:func:`spec_fingerprint`) so the store can report *which* of the
    two drifted.

    The process-wide surrogate kill switch
    (:func:`repro.dvfs.surrogate.surrogate_search_allowed`) is
    deliberately NOT hashed: flipping it only ever forces the exact GA,
    whose results are always acceptable for a surrogate-enabled config —
    the safe direction — whereas hashing it would split the cache on an
    operational toggle.
    """
    return _digest(
        {
            "kind": "optimizer_config",
            "performance_loss_target": config.performance_loss_target,
            "adjustment_interval_us": config.adjustment_interval_us,
            "profile_freqs_mhz": list(config.profile_freqs_mhz),
            "fit_function": config.fit_function.value,
            "objective": config.objective,
            "ga": canonicalize(config.ga),
            "surrogate": canonicalize(config.surrogate),
            "fault": canonicalize(config.fault),
            "guard": canonicalize(config.guard),
            "seed": config.seed,
        }
    )


def combine_fingerprints(
    trace_hash: str, config_hash: str, spec_hash: str
) -> str:
    """Fold the three component hashes into one request fingerprint.

    Split out so the service can precompute the config/spec hashes once
    and pay only the (memoized) trace hash plus one small digest per
    request — the path that keeps cache hits in the microsecond range.
    """
    return _digest(
        {
            "kind": "request",
            "trace": trace_hash,
            "config": config_hash,
            "spec": spec_hash,
        }
    )


def request_fingerprint(trace: Trace, config: OptimizerConfig) -> str:
    """The service's cache key: trace content + config + hardware."""
    return combine_fingerprints(
        trace_fingerprint(trace),
        config_fingerprint(config),
        spec_fingerprint(config.npu),
    )
