"""``python -m repro.serve`` — warm the strategy store, print stats."""

import sys

from repro.serve.cli import main

sys.exit(main())
