"""A parallel optimizer pool with order-independent determinism.

Each job runs the full Fig. 1 pipeline (profile → model → GA search) in
a *fresh* :class:`~repro.core.optimizer.EnergyOptimizer`, seeded by a
value derived purely from ``(config.seed, request fingerprint)``.  The
derived seed makes the result a function of the request alone: which
worker picks the job up, how many workers exist, and where the job sits
in the batch cannot change a single byte of the strategy — a batch
optimized on 4 workers is byte-identical to the same batch run serially
(asserted in ``tests/test_serve.py``).

Jobs return the strategy as its serialized JSON so byte-identity is the
natural comparison and nothing model-sized crosses the process boundary.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Sequence

from repro.core.config import OptimizerConfig
from repro.core.optimizer import EnergyOptimizer
from repro.errors import ServeError
from repro.workloads.trace import Trace


def derive_job_seed(root_seed: int, fingerprint: str) -> int:
    """A 63-bit seed that is a pure function of ``(root_seed, fingerprint)``.

    Distinct workloads in a batch draw statistically independent
    measurement-noise and GA streams, while repeated requests for the
    same fingerprint replay identically — on any worker, in any order.
    """
    digest = hashlib.sha256(
        f"{root_seed}:{fingerprint}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def job_config(config: OptimizerConfig, fingerprint: str) -> OptimizerConfig:
    """The per-job configuration: the fingerprint-derived seed applied."""
    seed = derive_job_seed(config.seed, fingerprint)
    return replace(config, seed=seed, ga=replace(config.ga, seed=seed))


@dataclass(frozen=True)
class PoolResult:
    """Outcome of one optimizer job (crosses the process boundary)."""

    fingerprint: str
    #: The strategy, serialized with :meth:`DvfsStrategy.to_json` —
    #: byte-identical for identical requests.
    strategy_json: str
    aicore_power_reduction: float
    performance_loss: float
    ga_generations: int
    wall_seconds: float
    #: Whether the surrogate-assisted GA produced the strategy (False
    #: also covers quality-gate fallbacks to the exact GA, so operators
    #: can see gate trips in the service stats).
    surrogate_used: bool = False


def optimize_job(
    fingerprint: str, trace: Trace, config: OptimizerConfig
) -> PoolResult:
    """Run one full pipeline under the fingerprint-derived seed.

    Module-level (picklable) so :class:`ProcessPoolExecutor` workers can
    execute it; also the serial path, so both modes share one code path.
    """
    start = time.perf_counter()
    optimizer = EnergyOptimizer(job_config(config, fingerprint))
    report = optimizer.optimize(trace)
    return PoolResult(
        fingerprint=fingerprint,
        strategy_json=report.strategy.to_json(),
        aicore_power_reduction=report.aicore_power_reduction,
        performance_loss=report.performance_loss,
        ga_generations=report.search.generations,
        wall_seconds=time.perf_counter() - start,
        surrogate_used=report.search.surrogate_used,
    )


def _run_job(job: tuple[str, Trace, OptimizerConfig]) -> PoolResult:
    return optimize_job(*job)


class OptimizerPool:
    """Optimizes batches of distinct workloads, serially or in parallel.

    ``workers <= 1`` runs jobs inline (no subprocesses) — the reference
    behaviour every parallel configuration must reproduce byte-for-byte.
    The executor is created lazily and reused across batches; use the
    pool as a context manager (or call :meth:`close`) to release it.
    """

    def __init__(self, workers: int = 0) -> None:
        if workers < 0:
            raise ServeError(f"workers must be >= 0: {workers}")
        self._workers = workers
        self._executor: ProcessPoolExecutor | None = None

    @property
    def workers(self) -> int:
        """Configured worker processes (0/1 = inline serial execution)."""
        return self._workers

    def optimize_batch(
        self, jobs: Sequence[tuple[str, Trace]], config: OptimizerConfig
    ) -> dict[str, PoolResult]:
        """Optimize ``(fingerprint, trace)`` jobs; results keyed by fingerprint.

        Fingerprints must be distinct — the service deduplicates before
        submitting, and a duplicate here would waste a GA run.

        Raises:
            ServeError: on duplicate fingerprints in one batch.
        """
        fingerprints = [fingerprint for fingerprint, _ in jobs]
        if len(set(fingerprints)) != len(fingerprints):
            raise ServeError("batch contains duplicate fingerprints")
        payloads = [
            (fingerprint, trace, config) for fingerprint, trace in jobs
        ]
        if self._workers <= 1 or len(payloads) <= 1:
            results = [_run_job(payload) for payload in payloads]
        else:
            results = list(self._ensure_executor().map(_run_job, payloads))
        return {result.fingerprint: result for result in results}

    def map_jobs(self, fn, payloads: Sequence) -> list:
        """Run a pure, picklable job over payloads, preserving order.

        The generic sibling of :meth:`optimize_batch` for callers (the
        cluster DVFS table builder, for one) whose jobs are not full
        optimizer runs.  ``fn`` must be module-level (picklable) and a
        pure function of its payload; under that contract the serial and
        parallel paths return byte-identical results at any worker
        count.
        """
        payloads = list(payloads)
        if self._workers <= 1 or len(payloads) <= 1:
            return [fn(payload) for payload in payloads]
        return list(self._ensure_executor().map(fn, payloads))

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self._workers)
        return self._executor

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "OptimizerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
