"""Shared-memory hot tier: encoded strategy records in a seqlock ring.

The process-pool era of :mod:`repro.serve` left one per-process cost on
the table: every worker that touches the store re-reads and re-parses
record JSON from disk, even for the fleet's hottest fingerprints.  This
module keeps the *encoded* envelope bytes of recently written records in
a `multiprocessing.shared_memory` segment that any process can attach to
by name, so a warm lookup costs one index probe and one buffer copy —
no file open, no ``json`` reparse of a file read.

Design (deliberately simple, cache-only semantics):

* **Fixed slot ring.**  The segment is a header plus ``slots`` fixed
  size slots.  Writes go round-robin; a record larger than
  ``slot_bytes`` is simply not cached (counted, never an error).  The
  ring is a *cache*: eviction by overwrite is always safe because the
  sharded disk store underneath is the source of truth.
* **Single writer, many readers.**  Exactly one process (the gateway /
  service owner) writes.  Readers may live in other processes.
* **Seqlock per slot.**  The writer bumps the slot's sequence to an odd
  value, writes payload, then bumps it to the next even value.  Readers
  copy the slot and accept it only if the sequence was even and
  unchanged across the copy — a torn read is detected and treated as a
  miss, preserving the store's "never serve garbage" contract.
* **Local index.**  Each handle keeps a ``fingerprint -> slot`` dict and
  rescans slot headers only when the segment's write counter moved, so
  hot lookups stay O(1).

If the platform cannot allocate POSIX shared memory the tier falls back
to a private buffer with identical semantics (``shared=False``) — the
serving stack keeps working, it just loses cross-process reuse.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory

from repro.errors import ServeError

_MAGIC = b"RPROHOT1"
#: header: magic, slots, slot_bytes, total writes ever committed.
_HEADER = struct.Struct("<8sIIQ")
#: slot header: seqlock sequence, fingerprint (raw 32 bytes), payload length.
_SLOT_HEADER = struct.Struct("<Q32sI")

_FINGERPRINT_HEX_LENGTH = 64


def _fingerprint_bytes(fingerprint: str) -> bytes:
    if len(fingerprint) != _FINGERPRINT_HEX_LENGTH:
        raise ServeError(
            f"fingerprint must be {_FINGERPRINT_HEX_LENGTH} hex chars, "
            f"got {fingerprint!r}"
        )
    try:
        return bytes.fromhex(fingerprint)
    except ValueError as exc:
        raise ServeError(f"fingerprint is not hex: {fingerprint!r}") from exc


class SharedMemoryHotTier:
    """A named, attachable ring of encoded strategy records.

    Attributes:
        slots: ring capacity in records.
        slot_bytes: payload capacity per record.
        shared: whether the buffer really is cross-process shared memory
            (``False`` on the private-buffer fallback).
        writable: only the creating handle may :meth:`put`.
    """

    def __init__(
        self,
        slots: int = 512,
        slot_bytes: int = 24_576,
        name: str | None = None,
    ) -> None:
        if slots < 1:
            raise ServeError(f"slots must be >= 1: {slots}")
        if slot_bytes < 1:
            raise ServeError(f"slot_bytes must be >= 1: {slot_bytes}")
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.writable = True
        self._slot_stride = _SLOT_HEADER.size + slot_bytes
        size = _HEADER.size + self.slots * self._slot_stride
        self._shm: shared_memory.SharedMemory | None = None
        try:
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
            self._buf = self._shm.buf
            self.shared = True
        except (OSError, ValueError):
            # No POSIX shm (or name collision): private-buffer fallback.
            self._buf = memoryview(bytearray(size))
            self.shared = False
        _HEADER.pack_into(self._buf, 0, _MAGIC, slots, slot_bytes, 0)
        self._index: dict[bytes, int] = {}
        self._writes_seen = 0
        # Local effectiveness counters (per handle, not shared).
        self.hits = 0
        self.misses = 0
        self.oversize = 0
        self.torn_reads = 0

    @classmethod
    def attach(cls, name: str) -> "SharedMemoryHotTier":
        """Open an existing segment read-only (worker-process side)."""
        shm = shared_memory.SharedMemory(name=name, create=False)
        magic, slots, slot_bytes, _ = _HEADER.unpack_from(shm.buf, 0)
        if magic != _MAGIC:
            shm.close()
            raise ServeError(f"shared segment {name!r} is not a hot tier")
        tier = cls.__new__(cls)
        tier.slots = slots
        tier.slot_bytes = slot_bytes
        tier.writable = False
        tier._slot_stride = _SLOT_HEADER.size + slot_bytes
        tier._shm = shm
        tier._buf = shm.buf
        tier.shared = True
        tier._index = {}
        tier._writes_seen = 0
        tier.hits = tier.misses = tier.oversize = tier.torn_reads = 0
        return tier

    @property
    def name(self) -> str | None:
        """The attachable segment name (``None`` on the fallback buffer)."""
        return self._shm.name if self._shm is not None else None

    @property
    def writes(self) -> int:
        """Total records ever committed to the ring."""
        return _HEADER.unpack_from(self._buf, 0)[3]

    def _slot_offset(self, slot: int) -> int:
        return _HEADER.size + slot * self._slot_stride

    def put(self, fingerprint: str, payload: bytes) -> bool:
        """Cache one encoded record; returns False if it does not fit."""
        if not self.writable:
            raise ServeError("hot tier handle is read-only (attached)")
        if len(payload) > self.slot_bytes:
            self.oversize += 1
            return False
        raw = _fingerprint_bytes(fingerprint)
        writes = self.writes
        slot = writes % self.slots
        offset = self._slot_offset(slot)
        seq, old_raw, _ = _SLOT_HEADER.unpack_from(self._buf, offset)
        # Seqlock write: odd while mutating, even (and advanced) after.
        _SLOT_HEADER.pack_into(self._buf, offset, seq + 1, raw, len(payload))
        data_at = offset + _SLOT_HEADER.size
        self._buf[data_at : data_at + len(payload)] = payload
        _SLOT_HEADER.pack_into(self._buf, offset, seq + 2, raw, len(payload))
        _HEADER.pack_into(
            self._buf, 0, _MAGIC, self.slots, self.slot_bytes, writes + 1
        )
        if seq != 0 and old_raw in self._index and self._index[old_raw] == slot:
            del self._index[old_raw]
        self._index[raw] = slot
        self._writes_seen = writes + 1
        return True

    def get(self, fingerprint: str) -> bytes | None:
        """Fetch one encoded record, or None on miss / torn read."""
        raw = _fingerprint_bytes(fingerprint)
        self._refresh_index()
        slot = self._index.get(raw)
        if slot is None:
            self.misses += 1
            return None
        payload = self._read_slot(slot, raw)
        if payload is None:
            # Overwritten or mid-write since the index was built.
            self._index.pop(raw, None)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def _read_slot(self, slot: int, expect_raw: bytes) -> bytes | None:
        offset = self._slot_offset(slot)
        seq1, raw, length = _SLOT_HEADER.unpack_from(self._buf, offset)
        if seq1 == 0 or seq1 % 2 == 1 or raw != expect_raw:
            return None
        if length > self.slot_bytes:
            return None
        data_at = offset + _SLOT_HEADER.size
        payload = bytes(self._buf[data_at : data_at + length])
        seq2 = _SLOT_HEADER.unpack_from(self._buf, offset)[0]
        if seq1 != seq2:
            self.torn_reads += 1
            return None
        return payload

    def _refresh_index(self) -> None:
        writes = self.writes
        if writes == self._writes_seen:
            return
        # More than a full ring of writes since the last scan: rebuild.
        index: dict[bytes, int] = {}
        for slot in range(min(self.slots, writes)):
            offset = self._slot_offset(slot)
            seq, raw, _ = _SLOT_HEADER.unpack_from(self._buf, offset)
            if seq != 0 and seq % 2 == 0:
                index[raw] = slot
        self._index = index
        self._writes_seen = writes

    def __contains__(self, fingerprint: str) -> bool:
        self._refresh_index()
        return _fingerprint_bytes(fingerprint) in self._index

    def __len__(self) -> int:
        self._refresh_index()
        return len(self._index)

    def rows(self) -> list[dict[str, int | str]]:
        """Effectiveness counters for :func:`repro.core.report.format_table`."""
        return [
            {"counter": "hot_tier_slots", "count": self.slots},
            {"counter": "hot_tier_resident", "count": len(self)},
            {"counter": "hot_tier_writes", "count": self.writes},
            {"counter": "hot_tier_hits", "count": self.hits},
            {"counter": "hot_tier_misses", "count": self.misses},
            {"counter": "hot_tier_oversize", "count": self.oversize},
            {"counter": "hot_tier_torn_reads", "count": self.torn_reads},
            {
                "counter": "hot_tier_shared",
                "count": "yes" if self.shared else "no (private fallback)",
            },
        ]

    def close(self, unlink: bool | None = None) -> None:
        """Release the segment; the owner also unlinks it (idempotent).

        Attached (read-only) handles only detach unless ``unlink=True``
        is forced.
        """
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        self._buf = memoryview(b"")
        shm.close()
        if unlink if unlink is not None else self.writable:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedMemoryHotTier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
