"""Content-addressed, versioned, persistent storage for DVFS strategies.

One record per request fingerprint, stored as a JSON envelope around the
:meth:`~repro.dvfs.strategy.DvfsStrategy.to_json` payload::

    <root>/<fp[:2]>/<fp>.json

The envelope is schema-versioned and carries the config and hardware
fingerprints the strategy was generated under; a record whose hashes no
longer match is *invalidated* (deleted) on lookup rather than served
stale, while a structurally damaged record — truncated, garbled, not an
envelope, or from an incompatible schema version — is *quarantined*:
renamed with a ``.corrupt`` suffix (preserved for post-mortem, invisible
to future lookups) and counted as a disk miss.  Writes are atomic (temp
file + rename), so a crashed or concurrent writer can never leave a
half-record that a later reader trusts.

An in-process LRU layer sits in front of the disk so the hot fingerprints
of a serving loop hit in microseconds without re-parsing JSON.  The
lookup tiers are exposed individually (:meth:`StrategyStore.lookup_memory`
/ :meth:`StrategyStore.lookup_disk`) so composite stores — the sharded
store with its shared-memory hot tier (:mod:`repro.serve.shards`) — can
interleave extra layers between them.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.dvfs.strategy import DvfsStrategy
from repro.errors import CorruptRecordError, ServeError, StrategyError

#: Bump on incompatible envelope changes; mismatching records are
#: invalidated on lookup, never migrated silently.
STORE_SCHEMA_VERSION = 1

_FINGERPRINT_HEX_LENGTH = 64


@dataclass(frozen=True)
class StoreHit:
    """One successful lookup, with the layer that served it."""

    fingerprint: str
    strategy: DvfsStrategy
    #: ``"memory"`` (LRU layer) or ``"disk"``.
    tier: str


@dataclass
class StoreCounters:
    """Lookup/write counters for one store instance."""

    memory_hits: int = 0
    #: Shared-memory hot-tier hits (sharded stores only; see
    #: :mod:`repro.serve.shards`).
    hot_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    invalidations: int = 0
    #: Structurally damaged records renamed aside with ``.corrupt``.
    quarantined: int = 0
    puts: int = 0

    def merge(self, other: "StoreCounters") -> "StoreCounters":
        """Fold another counter block into this one (for shard totals)."""
        self.memory_hits += other.memory_hits
        self.hot_hits += other.hot_hits
        self.disk_hits += other.disk_hits
        self.misses += other.misses
        self.invalidations += other.invalidations
        self.quarantined += other.quarantined
        self.puts += other.puts
        return self

    def rows(self) -> list[dict[str, int | str]]:
        """One table row per counter (for :func:`repro.core.report.format_table`)."""
        return [
            {"counter": "memory_hits", "count": self.memory_hits},
            {"counter": "hot_hits", "count": self.hot_hits},
            {"counter": "disk_hits", "count": self.disk_hits},
            {"counter": "misses", "count": self.misses},
            {"counter": "invalidations", "count": self.invalidations},
            {"counter": "quarantined", "count": self.quarantined},
            {"counter": "puts", "count": self.puts},
        ]


def encode_record(
    fingerprint: str,
    strategy: DvfsStrategy,
    config_hash: str,
    spec_hash: str,
) -> dict[str, Any]:
    """The on-disk envelope for one strategy record."""
    return {
        "schema_version": STORE_SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "config_hash": config_hash,
        "spec_hash": spec_hash,
        "workload": strategy.workload,
        "strategy": json.loads(strategy.to_json()),
    }


def encode_document(
    fingerprint: str,
    strategy: DvfsStrategy,
    config_hash: str,
    spec_hash: str,
) -> str:
    """The serialized on-disk document for one strategy record.

    Split out from :meth:`StrategyStore.put` so composite stores can
    encode once and hand the same bytes to both the disk shard and the
    shared-memory hot tier.
    """
    record = encode_record(fingerprint, strategy, config_hash, spec_hash)
    return json.dumps(record, indent=2)


def decode_record(
    payload: dict[str, Any],
    fingerprint: str,
    config_hash: str | None = None,
    spec_hash: str | None = None,
) -> DvfsStrategy:
    """Validate an envelope and extract its strategy.

    Raises:
        CorruptRecordError: the envelope is structurally damaged — not a
            JSON object, an incompatible schema version, addressed under
            the wrong fingerprint, or carrying a malformed strategy.
            The store quarantines such files (``.corrupt``) on lookup.
        ServeError: the envelope is well-formed but *stale* — generated
            under a different config or hardware hash.  The store
            deletes (invalidates) such records on lookup.
    """
    if not isinstance(payload, dict):
        raise CorruptRecordError("store record is not a JSON object")
    version = payload.get("schema_version")
    if version != STORE_SCHEMA_VERSION:
        raise CorruptRecordError(
            f"store record schema version {version!r} != "
            f"{STORE_SCHEMA_VERSION}"
        )
    if payload.get("fingerprint") != fingerprint:
        raise CorruptRecordError(
            f"store record fingerprint {payload.get('fingerprint')!r} does "
            f"not match its address {fingerprint!r}"
        )
    if config_hash is not None and payload.get("config_hash") != config_hash:
        raise ServeError("store record was generated under a different config")
    if spec_hash is not None and payload.get("spec_hash") != spec_hash:
        raise ServeError(
            "store record was generated for a different hardware spec"
        )
    try:
        return DvfsStrategy.from_json(json.dumps(payload["strategy"]))
    except (KeyError, TypeError, StrategyError) as exc:
        raise CorruptRecordError(
            f"store record strategy is malformed: {exc}"
        ) from exc


def _validate_fingerprint(fingerprint: str) -> str:
    if (
        len(fingerprint) != _FINGERPRINT_HEX_LENGTH
        or not all(c in "0123456789abcdef" for c in fingerprint)
    ):
        raise ServeError(
            f"fingerprint must be a {_FINGERPRINT_HEX_LENGTH}-char lowercase "
            f"hex digest, got {fingerprint!r}"
        )
    return fingerprint


@dataclass
class StrategyStore:
    """Persistent strategy store with an in-process LRU layer.

    Attributes:
        root: directory holding the records (created on first write).
        memory_capacity: LRU entry cap; 0 disables the memory layer.
    """

    root: Path
    memory_capacity: int = 256
    counters: StoreCounters = field(default_factory=StoreCounters)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.memory_capacity < 0:
            raise ServeError(
                f"memory_capacity must be >= 0: {self.memory_capacity}"
            )
        self._lru: OrderedDict[str, DvfsStrategy] = OrderedDict()
        self._lock = threading.Lock()

    def path_for(self, fingerprint: str) -> Path:
        """The record path for one fingerprint (two-level fan-out)."""
        _validate_fingerprint(fingerprint)
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def lookup(
        self,
        fingerprint: str,
        config_hash: str | None = None,
        spec_hash: str | None = None,
    ) -> StoreHit | None:
        """Fetch one record, memory layer first, validating the envelope.

        A *stale* record (hash drift) is deleted and counted as an
        invalidation + miss; a *corrupt* record (truncated, garbled,
        schema-incompatible) is quarantined with a ``.corrupt`` suffix
        and likewise counted as a miss — lookups never raise for bad
        on-disk state.
        """
        hit = self.lookup_memory(fingerprint)
        if hit is not None:
            return hit
        return self.lookup_disk(fingerprint, config_hash, spec_hash)

    def lookup_memory(self, fingerprint: str) -> StoreHit | None:
        """The LRU tier alone (no disk I/O, no counters on miss)."""
        with self._lock:
            cached = self._lru.get(fingerprint)
            if cached is not None:
                self._lru.move_to_end(fingerprint)
                self.counters.memory_hits += 1
                return StoreHit(fingerprint, cached, tier="memory")
        return None

    def lookup_disk(
        self,
        fingerprint: str,
        config_hash: str | None = None,
        spec_hash: str | None = None,
    ) -> StoreHit | None:
        """The disk tier alone: read, validate, quarantine/invalidate."""
        path = self.path_for(fingerprint)
        try:
            document = path.read_text(encoding="utf-8")
            payload = json.loads(document)
            strategy = decode_record(
                payload, fingerprint, config_hash, spec_hash
            )
        except FileNotFoundError:
            with self._lock:
                self.counters.misses += 1
            return None
        # ValueError covers json.JSONDecodeError and the UnicodeDecodeError
        # a garbled binary file raises from read_text.
        except (OSError, ValueError, CorruptRecordError):
            self._quarantine(path)
            with self._lock:
                self.counters.quarantined += 1
                self.counters.invalidations += 1
                self.counters.misses += 1
            return None
        except ServeError:
            path.unlink(missing_ok=True)
            with self._lock:
                self.counters.invalidations += 1
                self.counters.misses += 1
            return None
        with self._lock:
            self.counters.disk_hits += 1
            self._remember(fingerprint, strategy)
        return StoreHit(fingerprint, strategy, tier="disk")

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a damaged record aside as ``<name>.corrupt`` (best effort)."""
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            path.unlink(missing_ok=True)

    def get(
        self,
        fingerprint: str,
        config_hash: str | None = None,
        spec_hash: str | None = None,
    ) -> DvfsStrategy | None:
        """:meth:`lookup` without the tier bookkeeping wrapper."""
        hit = self.lookup(fingerprint, config_hash, spec_hash)
        return None if hit is None else hit.strategy

    def put(
        self,
        fingerprint: str,
        strategy: DvfsStrategy,
        config_hash: str,
        spec_hash: str,
        document: str | None = None,
    ) -> Path:
        """Persist one strategy atomically and refresh the memory layer.

        ``document`` lets a composite store pass a pre-encoded envelope
        (see :func:`encode_document`) so the bytes are serialized once
        for disk and hot tier alike.
        """
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        if document is None:
            document = encode_document(
                fingerprint, strategy, config_hash, spec_hash
            )
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=path.parent,
            prefix=f".{fingerprint[:8]}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(document)
            os.replace(handle.name, path)
        except OSError:
            Path(handle.name).unlink(missing_ok=True)
            raise
        with self._lock:
            self.counters.puts += 1
            self._remember(fingerprint, strategy)
        return path

    def _remember(self, fingerprint: str, strategy: DvfsStrategy) -> None:
        if self.memory_capacity == 0:
            return
        self._lru[fingerprint] = strategy
        self._lru.move_to_end(fingerprint)
        while len(self._lru) > self.memory_capacity:
            self._lru.popitem(last=False)

    def fingerprints(self) -> Iterator[str]:
        """All fingerprints currently persisted on disk."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for record in sorted(shard.glob("*.json")):
                yield record.stem

    def quarantined_files(self) -> Iterator[Path]:
        """All ``.corrupt`` quarantine files currently on disk."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            yield from sorted(shard.glob("*.corrupt"))

    def __len__(self) -> int:
        return sum(1 for _ in self.fingerprints())

    def memory_size(self) -> int:
        """Entries currently resident in the LRU layer."""
        with self._lock:
            return len(self._lru)

    def clear_memory(self) -> None:
        """Drop the LRU layer (the disk records stay)."""
        with self._lock:
            self._lru.clear()

    def clear(self) -> int:
        """Delete every persisted record; returns the number removed."""
        removed = 0
        for fingerprint in list(self.fingerprints()):
            self.path_for(fingerprint).unlink(missing_ok=True)
            removed += 1
        self.clear_memory()
        return removed
