"""Command-line entry point: ``repro-serve`` / ``python -m repro.serve``.

Warms the persistent strategy store for named workloads and reports the
service's hit/miss counters — run it twice against the same store
directory to watch the second run serve everything from disk::

    python -m repro.serve gpt3 bert --store /tmp/strategies --scale 0.05
    python -m repro.serve gpt3 bert --store /tmp/strategies --scale 0.05

``--repeats`` additionally replays the request stream N times within
one process, demonstrating in-memory hit latencies.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.core import OptimizerConfig, render_service_stats
from repro.dvfs import GaConfig
from repro.errors import ReproError
from repro.serve.service import StrategyService
from repro.serve.store import StrategyStore
from repro.workloads import generate, workload_names


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Warm the persistent DVFS strategy store for named workloads "
            "and print the service's hit/miss statistics."
        ),
    )
    parser.add_argument(
        "workloads",
        nargs="*",
        default=["gpt3", "bert"],
        help=f"workload names (default: gpt3 bert; known: "
        f"{', '.join(workload_names())})",
    )
    parser.add_argument(
        "--store",
        default=".repro-strategy-store",
        help="strategy store directory (default .repro-strategy-store)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.05, help="workload scale"
    )
    parser.add_argument(
        "--target",
        type=float,
        default=0.02,
        help="performance-loss target (default 0.02)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="optimizer-pool processes (0 = serial, the default)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="serve the request stream this many times (default 1)",
    )
    parser.add_argument(
        "--population", type=int, default=60, help="GA population size"
    )
    parser.add_argument(
        "--iterations", type=int, default=120, help="GA iterations"
    )
    parser.add_argument(
        "--patience",
        type=int,
        default=0,
        help=(
            "stop a GA miss after this many generations without "
            "improvement (0 = run the full iteration budget, the default)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.patience < 0:
        parser.error("--patience must be >= 0")
    config = OptimizerConfig(
        performance_loss_target=args.target,
        ga=GaConfig(
            population_size=args.population,
            iterations=args.iterations,
            seed=args.seed,
        ),
        seed=args.seed,
    ).with_patience(args.patience)
    store = StrategyStore(Path(args.store))
    try:
        traces = [
            generate(name, scale=args.scale, seed=args.seed)
            for name in args.workloads
        ]
        with StrategyService(
            config=config, store=store, workers=args.workers
        ) as service:
            print(
                f"Warming {args.store} with {len(traces)} workload(s) x "
                f"{args.repeats} repeat(s)..."
            )
            for round_index in range(args.repeats):
                for result in service.serve_batch(traces):
                    print(
                        f"  [{round_index + 1}/{args.repeats}] "
                        f"{result.strategy.workload:<18} "
                        f"{result.source:<9} "
                        f"{result.latency_seconds * 1e3:9.3f} ms  "
                        f"{result.fingerprint[:12]}"
                    )
            print()
            print(render_service_stats(service.stats))
            print()
            print(render_service_stats(store.counters, title="strategy store"))
            print(f"\nstore now holds {len(store)} strategy record(s)")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
