"""Command-line entry point: ``repro-serve`` / ``python -m repro.serve``.

Three subcommands::

    repro-serve warm gpt3 bert --store /tmp/strategies --scale 0.05
    repro-serve stats --store /tmp/strategies
    repro-serve bench-traffic --requests 1000000 --output BENCH_serve.json

``warm`` (the default when the first argument is a workload name, for
backwards compatibility) warms the persistent strategy store for named
workloads and reports the service's hit/miss counters — run it twice
against the same store directory to watch the second run serve
everything from disk.  ``stats`` scans a store directory — flat or
sharded — validating every record (quarantining damage) and renders the
service/store counter tables.  ``bench-traffic`` runs the synthetic
fleet traffic driver (:mod:`repro.traffic`) against an async gateway
and optionally writes/asserts ``BENCH_serve.json``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.core import OptimizerConfig, render_service_stats
from repro.dvfs import GaConfig
from repro.errors import ReproError
from repro.serve.service import StrategyService
from repro.serve.shards import ShardedStrategyStore, ShardLayout
from repro.serve.store import StrategyStore
from repro.workloads import generate, workload_names

_SUBCOMMANDS = ("warm", "stats", "bench-traffic")


def build_parser() -> argparse.ArgumentParser:
    """The ``warm`` argument parser (kept name for API compatibility)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve warm",
        description=(
            "Warm the persistent DVFS strategy store for named workloads "
            "and print the service's hit/miss statistics."
        ),
    )
    parser.add_argument(
        "workloads",
        nargs="*",
        default=["gpt3", "bert"],
        help=f"workload names (default: gpt3 bert; known: "
        f"{', '.join(workload_names())})",
    )
    parser.add_argument(
        "--store",
        default=".repro-strategy-store",
        help="strategy store directory (default .repro-strategy-store)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.05, help="workload scale"
    )
    parser.add_argument(
        "--target",
        type=float,
        default=0.02,
        help="performance-loss target (default 0.02)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="optimizer-pool processes (0 = serial, the default)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="serve the request stream this many times (default 1)",
    )
    parser.add_argument(
        "--population", type=int, default=60, help="GA population size"
    )
    parser.add_argument(
        "--iterations", type=int, default=120, help="GA iterations"
    )
    parser.add_argument(
        "--patience",
        type=int,
        default=0,
        help=(
            "stop a GA miss after this many generations without "
            "improvement (0 = run the full iteration budget, the default)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--surrogate",
        action="store_true",
        help=(
            "answer GA misses with the surrogate-assisted search "
            "(exact-oracle re-scored; falls back to the exact GA when "
            "the surrogate misses its holdout-R2 floor)"
        ),
    )
    return parser


def _warm_main(argv: Sequence[str]) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.patience < 0:
        parser.error("--patience must be >= 0")
    config = OptimizerConfig(
        performance_loss_target=args.target,
        ga=GaConfig(
            population_size=args.population,
            iterations=args.iterations,
            seed=args.seed,
        ),
        seed=args.seed,
    ).with_patience(args.patience)
    if args.surrogate:
        config = config.with_surrogate()
    store = StrategyStore(Path(args.store))
    try:
        traces = [
            generate(name, scale=args.scale, seed=args.seed)
            for name in args.workloads
        ]
        with StrategyService(
            config=config, store=store, workers=args.workers
        ) as service:
            print(
                f"Warming {args.store} with {len(traces)} workload(s) x "
                f"{args.repeats} repeat(s)..."
            )
            for round_index in range(args.repeats):
                for result in service.serve_batch(traces):
                    print(
                        f"  [{round_index + 1}/{args.repeats}] "
                        f"{result.strategy.workload:<18} "
                        f"{result.source:<9} "
                        f"{result.latency_seconds * 1e3:9.3f} ms  "
                        f"{result.fingerprint[:12]}"
                    )
            print()
            print(render_service_stats(service.stats))
            print()
            print(render_service_stats(store.counters, title="strategy store"))
            print(f"\nstore now holds {len(store)} strategy record(s)")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def build_stats_parser() -> argparse.ArgumentParser:
    """The ``stats`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve stats",
        description=(
            "Scan a strategy store directory (flat or sharded), validate "
            "every record, and render the service/store counter tables."
        ),
    )
    parser.add_argument(
        "--store",
        default=".repro-strategy-store",
        help="store directory (default .repro-strategy-store)",
    )
    return parser


def _stats_main(argv: Sequence[str]) -> int:
    args = build_stats_parser().parse_args(argv)
    root = Path(args.store)
    try:
        layout = ShardLayout.detect(root)
        if layout.sharded:
            store = ShardedStrategyStore(
                root, shards=layout.shards, hot_slots=0
            )
        else:
            store = StrategyStore(root)
        # Validate every record (no hash pinning: structural checks
        # only, so nothing valid is invalidated by this scan; damage is
        # quarantined exactly as it would be in serving).
        for fingerprint in list(store.fingerprints()):
            store.lookup(fingerprint)
        quarantined = sum(1 for _ in store.quarantined_files())
        with StrategyService(
            config=OptimizerConfig(), store=store
        ) as service:
            print(
                f"{root}: "
                + (
                    f"sharded store ({layout.shards} shards), "
                    if layout.sharded
                    else "flat store, "
                )
                + f"{len(store)} valid record(s), "
                f"{quarantined} quarantined file(s)"
            )
            print()
            print(render_service_stats(service.stats))
            print()
            counters = (
                store.counter_rows()
                if isinstance(store, ShardedStrategyStore)
                else store.counters.rows()
            )
            print(
                "[strategy store]\n"
                + _format_rows(counters)
            )
            if layout.sharded:
                print()
                rows = [
                    {
                        "shard": f"shard-{i:02d}",
                        "records": len(shard),
                        "lru_entries": shard.memory_size(),
                    }
                    for i, shard in enumerate(store.shard_stores)
                ]
                print("[shards]\n" + _format_rows(rows))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _format_rows(rows: list[dict]) -> str:
    from repro.core.report import format_table

    return format_table(rows)


def build_bench_parser() -> argparse.ArgumentParser:
    """The ``bench-traffic`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve bench-traffic",
        description=(
            "Drive seeded synthetic fleet traffic (Zipf popularity, "
            "diurnal load, bursts) through the async serving gateway and "
            "report p50/p99 latency, hit rate, shed rate and queue depth."
        ),
    )
    parser.add_argument(
        "--requests", type=int, default=1_000_000,
        help="requests to offer (default 1,000,000)",
    )
    parser.add_argument(
        "--workloads", type=int, default=64,
        help="distinct workload population size (default 64)",
    )
    parser.add_argument(
        "--zipf", type=float, default=1.1,
        help="Zipf popularity exponent (default 1.1)",
    )
    parser.add_argument(
        "--sources", type=int, default=8,
        help="distinct request sources (default 8)",
    )
    parser.add_argument(
        "--rate", type=float, default=50_000.0,
        help="base arrival rate, virtual req/s (default 50k)",
    )
    parser.add_argument(
        "--window", type=int, default=4096,
        help="driver concurrency window (default 4096)",
    )
    parser.add_argument(
        "--burst-count", type=int, default=12,
        help="burst windows over the drive (default 12)",
    )
    parser.add_argument(
        "--burst-magnitude", type=float, default=4.0,
        help="rate multiplier inside a burst (default 4.0)",
    )
    parser.add_argument(
        "--shards", type=int, default=8,
        help="store shards (default 8)",
    )
    parser.add_argument(
        "--hot-slots", type=int, default=512,
        help="shared-memory hot-tier slots, 0 disables (default 512)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=256,
        help="gateway admission queue bound (default 256)",
    )
    parser.add_argument(
        "--dispatchers", type=int, default=4,
        help="gateway dispatcher tasks (default 4)",
    )
    parser.add_argument(
        "--rate-per-source", type=float, default=0.0,
        help="token-bucket rate per source, virtual req/s (0 = off)",
    )
    parser.add_argument(
        "--burst-per-source", type=float, default=0.0,
        help="token-bucket burst per source (0 = one second of tokens)",
    )
    parser.add_argument(
        "--population", type=int, default=16, help="GA population size"
    )
    parser.add_argument(
        "--iterations", type=int, default=12, help="GA iterations"
    )
    parser.add_argument(
        "--patience", type=int, default=6, help="GA early-stop patience"
    )
    parser.add_argument(
        "--target", type=float, default=0.02,
        help="performance-loss target (default 0.02)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--verify", type=int, default=8,
        help="workloads recomputed serially for byte-identity (default 8)",
    )
    parser.add_argument(
        "--prewarm", action="store_true",
        help=(
            "compute every workload's strategy before the timed drive "
            "(steady-state measurement; cold start excluded)"
        ),
    )
    parser.add_argument(
        "--workers", dest="traffic_workers", type=int, default=0,
        help=(
            "optimizer-pool worker processes behind the strategy "
            "service (default 0 = in-process serial, the historical "
            "behavior)"
        ),
    )
    parser.add_argument(
        "--store", default=None,
        help="persistent store root (default: fresh temp dir)",
    )
    parser.add_argument(
        "--output", default=None,
        help="write the JSON report here (e.g. BENCH_serve.json)",
    )
    parser.add_argument(
        "--assert-p99-ms", type=float, default=None,
        help="fail unless served p99 latency <= this many ms",
    )
    parser.add_argument(
        "--assert-hit-rate", type=float, default=None,
        help="fail unless hit rate >= this fraction",
    )
    parser.add_argument(
        "--assert-max-shed-rate", type=float, default=None,
        help="fail unless shed rate <= this fraction",
    )
    parser.add_argument(
        "--surrogate",
        action="store_true",
        help=(
            "answer GA misses with the surrogate-assisted search "
            "(exact-oracle re-scored; falls back to the exact GA when "
            "the surrogate misses its holdout-R2 floor)"
        ),
    )
    return parser


def _bench_main(argv: Sequence[str]) -> int:
    from repro.serve.gateway import GatewayConfig
    from repro.traffic import TrafficConfig, run_bench

    parser = build_bench_parser()
    args = parser.parse_args(argv)
    config = TrafficConfig(
        requests=args.requests,
        workloads=args.workloads,
        zipf_s=args.zipf,
        sources=args.sources,
        base_rate=args.rate,
        burst_count=args.burst_count,
        burst_magnitude=args.burst_magnitude,
        seed=args.seed,
        window=args.window,
        verify=args.verify,
        prewarm=args.prewarm,
        workers=args.traffic_workers,
    )
    optimizer_config = OptimizerConfig(
        performance_loss_target=args.target,
        ga=GaConfig(
            population_size=args.population,
            iterations=args.iterations,
            seed=args.seed,
        ),
        seed=args.seed,
    ).with_patience(args.patience)
    if args.surrogate:
        optimizer_config = optimizer_config.with_surrogate()
    gateway_config = GatewayConfig(
        max_queue_depth=args.queue_depth,
        dispatchers=args.dispatchers,
        rate_per_source=args.rate_per_source,
        burst_per_source=args.burst_per_source,
    )
    try:
        print(
            f"Driving {config.requests:,} requests over "
            f"{config.workloads} workloads "
            f"(zipf {config.zipf_s}, {config.sources} sources)..."
        )
        report = run_bench(
            config,
            optimizer_config,
            gateway_config,
            store_root=Path(args.store) if args.store else None,
            shards=args.shards,
            hot_slots=args.hot_slots,
            output=Path(args.output) if args.output else None,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print()
    print("[traffic]\n" + _format_rows(report.rows()))
    ok = True
    if report.failed:
        print(f"FAIL: {report.failed} request(s) failed", file=sys.stderr)
        ok = False
    if report.byte_identical is False:
        print(
            "FAIL: served strategies are not byte-identical to the "
            "serial reference",
            file=sys.stderr,
        )
        ok = False
    p99_ms = report.latency_us["p99"] / 1e3
    if args.assert_p99_ms is not None and p99_ms > args.assert_p99_ms:
        print(
            f"FAIL: p99 {p99_ms:.3f} ms > floor {args.assert_p99_ms} ms",
            file=sys.stderr,
        )
        ok = False
    if (
        args.assert_hit_rate is not None
        and report.hit_rate < args.assert_hit_rate
    ):
        print(
            f"FAIL: hit rate {report.hit_rate:.4f} < "
            f"{args.assert_hit_rate}",
            file=sys.stderr,
        )
        ok = False
    if (
        args.assert_max_shed_rate is not None
        and report.shed_rate > args.assert_max_shed_rate
    ):
        print(
            f"FAIL: shed rate {report.shed_rate:.4f} > "
            f"{args.assert_max_shed_rate}",
            file=sys.stderr,
        )
        ok = False
    return 0 if ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    The first argument selects the subcommand; anything else falls back
    to the original ``warm`` behaviour, so existing invocations like
    ``python -m repro.serve gpt3 bert`` keep working.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "stats":
        return _stats_main(argv[1:])
    if argv and argv[0] == "bench-traffic":
        return _bench_main(argv[1:])
    if argv and argv[0] == "warm":
        argv = argv[1:]
    return _warm_main(argv)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
