"""The strategy service: cache, coalesce, or compute.

:class:`StrategyService` is the front door a fleet talks to.  Each
request carries a workload trace; the service fingerprints it together
with the optimizer configuration and then takes the cheapest path that
yields the exact strategy a dedicated GA run would produce:

1. **memory** — the store's LRU layer (microseconds);
2. **disk** — a persisted record from an earlier process (sub-ms);
3. **coalesced** — another request for the same fingerprint is already
   optimizing; wait for its result instead of duplicating the GA run;
4. **computed** — run the pipeline (through the optimizer pool for
   batches), then persist the result for every future requester.

Every path is deterministic: strategies are produced under
fingerprint-derived seeds (:mod:`repro.serve.pool`), so cache hits,
coalesced waits, pooled and serial computations all return byte-identical
strategy JSON for a given request.

Counters are exposed as rows for :func:`repro.core.report.format_table`
via :meth:`StrategyService.stats_rows` /
:func:`repro.core.report.render_service_stats`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import OptimizerConfig
from repro.dvfs.strategy import DvfsStrategy
from repro.serve.fingerprint import (
    combine_fingerprints,
    config_fingerprint,
    spec_fingerprint,
    trace_fingerprint,
)
from repro.serve.pool import OptimizerPool, PoolResult, optimize_job
from repro.serve.store import StrategyStore
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class ServeResult:
    """One served request."""

    fingerprint: str
    strategy: DvfsStrategy
    #: ``"memory"`` / ``"hot"`` / ``"disk"`` / ``"coalesced"`` /
    #: ``"computed"``.
    source: str
    latency_seconds: float


@dataclass
class ServiceStats:
    """Request counters for one service or gateway instance.

    Every aggregate (``hit_rate``, ``mean_latency_seconds``, ``rows``,
    ``shed_rate``) is defined at zero requests — a traffic report over
    an idle or fully-shed service renders without dividing by zero.
    """

    requests: int = 0
    memory_hits: int = 0
    #: Shared-memory hot-tier hits (sharded stores only).
    hot_hits: int = 0
    disk_hits: int = 0
    coalesced: int = 0
    #: Requests that ran their own GA (source ``"computed"``).
    computed: int = 0
    #: Requests refused by admission control (typed ``Overloaded``).
    shed: int = 0
    ga_runs: int = 0
    #: GA misses answered by the surrogate-assisted search (a
    #: surrogate-enabled config whose quality gate fell back to the
    #: exact GA counts in ``ga_runs`` but not here).
    surrogate_runs: int = 0
    total_latency_seconds: float = 0.0
    max_latency_seconds: float = 0.0
    ga_seconds: float = 0.0
    #: Generations actually run across all GA misses.
    ga_generations: int = 0
    #: Generations saved by ``GaConfig.patience`` early stopping (the
    #: configured iteration budget minus the generations actually run).
    ga_generations_trimmed: int = 0

    @property
    def hits(self) -> int:
        """Requests served without any work (memory + hot + disk)."""
        return self.memory_hits + self.hot_hits + self.disk_hits

    @property
    def admitted(self) -> int:
        """Requests that were actually served (everything but shed)."""
        return self.requests

    @property
    def offered(self) -> int:
        """Requests presented to the front door (served + shed)."""
        return self.requests + self.shed

    @property
    def hit_rate(self) -> float:
        """Fraction of served requests answered from the store (0.0 idle)."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests refused by admission (0.0 idle)."""
        offered = self.offered
        if offered == 0:
            return 0.0
        return self.shed / offered

    @property
    def mean_latency_seconds(self) -> float:
        """Mean served-request latency (0.0 at zero requests)."""
        if self.requests == 0:
            return 0.0
        return self.total_latency_seconds / self.requests

    @property
    def deduplicated(self) -> int:
        """Requests that did not trigger their own GA run."""
        return self.hits + self.coalesced

    def source_counts(self) -> dict[str, int]:
        """Per-source breakdown, shed included — always every key."""
        return {
            "memory": self.memory_hits,
            "hot": self.hot_hits,
            "disk": self.disk_hits,
            "coalesced": self.coalesced,
            "computed": self.computed,
            "shed": self.shed,
        }

    def record(self, result: ServeResult) -> None:
        """Fold one served request into the counters."""
        self.requests += 1
        self.total_latency_seconds += result.latency_seconds
        if result.latency_seconds > self.max_latency_seconds:
            self.max_latency_seconds = result.latency_seconds
        if result.source == "memory":
            self.memory_hits += 1
        elif result.source == "hot":
            self.hot_hits += 1
        elif result.source == "disk":
            self.disk_hits += 1
        elif result.source == "coalesced":
            self.coalesced += 1
        elif result.source == "computed":
            self.computed += 1

    def record_shed(self) -> None:
        """Count one request refused by admission control."""
        self.shed += 1

    def rows(self) -> list[dict[str, float | int | str]]:
        """Counter rows for :func:`repro.core.report.format_table`."""
        return [
            {"counter": "requests", "value": self.requests},
            {"counter": "memory_hits", "value": self.memory_hits},
            {"counter": "hot_hits", "value": self.hot_hits},
            {"counter": "disk_hits", "value": self.disk_hits},
            {"counter": "coalesced", "value": self.coalesced},
            {"counter": "computed", "value": self.computed},
            {"counter": "shed", "value": self.shed},
            {"counter": "ga_runs", "value": self.ga_runs},
            {"counter": "surrogate_runs", "value": self.surrogate_runs},
            {"counter": "ga_generations", "value": self.ga_generations},
            {
                "counter": "ga_generations_trimmed",
                "value": self.ga_generations_trimmed,
            },
            {"counter": "hit_rate", "value": f"{self.hit_rate:.2%}"},
            {"counter": "shed_rate", "value": f"{self.shed_rate:.2%}"},
            {
                "counter": "mean_latency_s",
                "value": f"{self.mean_latency_seconds:.6f}",
            },
            {
                "counter": "max_latency_s",
                "value": f"{self.max_latency_seconds:.6f}",
            },
            {"counter": "ga_seconds", "value": f"{self.ga_seconds:.3f}"},
        ]


@dataclass
class StrategyService:
    """Deduplicating, store-backed, pool-accelerated strategy serving.

    Attributes:
        config: the optimizer configuration every request is served
            under (part of the fingerprint).
        store: the persistent strategy store; defaults to
            ``.repro-strategy-store`` under the working directory.
        workers: optimizer-pool processes for batch requests (0/1 =
            serial inline execution, the reference behaviour).
    """

    config: OptimizerConfig = field(default_factory=OptimizerConfig)
    store: StrategyStore | None = None
    workers: int = 0

    def __post_init__(self) -> None:
        if self.store is None:
            self.store = StrategyStore(Path(".repro-strategy-store"))
        self.stats = ServiceStats()
        self._pool = OptimizerPool(self.workers)
        self._config_hash = config_fingerprint(self.config)
        self._spec_hash = spec_fingerprint(self.config.npu)
        self._lock = threading.Lock()
        self._inflight: dict[str, Future[PoolResult]] = {}

    @property
    def config_hash(self) -> str:
        """Hash of the strategy-relevant configuration (store metadata)."""
        return self._config_hash

    @property
    def spec_hash(self) -> str:
        """Hash of the hardware description (store metadata)."""
        return self._spec_hash

    def fingerprint(self, trace: Trace) -> str:
        """The cache key this service uses for ``trace``.

        Equal to :func:`repro.serve.fingerprint.request_fingerprint` of
        ``(trace, self.config)``, with the config/spec components
        precomputed at service construction.
        """
        return combine_fingerprints(
            trace_fingerprint(trace), self._config_hash, self._spec_hash
        )

    def lookup(self, fingerprint: str):
        """Store lookup under this service's config/spec hashes.

        The hook the async gateway builds on: one place owns the hash
        pair, so every front end validates records identically.
        """
        return self.store.lookup(
            fingerprint, self._config_hash, self._spec_hash
        )

    def commit(self, result: PoolResult) -> DvfsStrategy:
        """Persist one computed result and fold it into the GA counters.

        Shared by the synchronous paths and the async gateway so a
        strategy committed through either front end produces the exact
        same store record and statistics.
        """
        strategy = DvfsStrategy.from_json(result.strategy_json)
        self._commit(result, strategy)
        return strategy

    def request(self, trace: Trace) -> ServeResult:
        """Serve one request; thread-safe, with in-flight coalescing.

        Concurrent callers requesting the same fingerprint share a
        single GA run: the first becomes the owner and computes, the
        rest block on its future and report ``source="coalesced"``.
        """
        start = time.perf_counter()
        fingerprint = self.fingerprint(trace)
        hit = self.store.lookup(
            fingerprint, self._config_hash, self._spec_hash
        )
        if hit is not None:
            return self._finish(fingerprint, hit.strategy, hit.tier, start)
        with self._lock:
            future = self._inflight.get(fingerprint)
            owner = future is None
            if owner:
                future = Future()
                self._inflight[fingerprint] = future
        if not owner:
            result = future.result()
            return self._finish(
                fingerprint,
                DvfsStrategy.from_json(result.strategy_json),
                "coalesced",
                start,
            )
        try:
            result = optimize_job(fingerprint, trace, self.config)
            future.set_result(result)
        except BaseException as exc:
            future.set_exception(exc)
            raise
        finally:
            with self._lock:
                self._inflight.pop(fingerprint, None)
        strategy = DvfsStrategy.from_json(result.strategy_json)
        self._commit(result, strategy)
        return self._finish(fingerprint, strategy, "computed", start)

    def serve_batch(self, traces: list[Trace]) -> list[ServeResult]:
        """Serve many requests at once, pooling the distinct misses.

        Duplicate fingerprints within the batch coalesce onto one GA
        job; distinct misses run concurrently on the optimizer pool.
        Results come back in request order.
        """
        start = time.perf_counter()
        fingerprints = [self.fingerprint(trace) for trace in traces]
        hits: dict[str, tuple[DvfsStrategy, str]] = {}
        jobs: list[tuple[str, Trace]] = []
        queued: set[str] = set()
        for fingerprint, trace in zip(fingerprints, traces):
            if fingerprint in hits or fingerprint in queued:
                continue
            hit = self.store.lookup(
                fingerprint, self._config_hash, self._spec_hash
            )
            if hit is not None:
                hits[fingerprint] = (hit.strategy, hit.tier)
            else:
                jobs.append((fingerprint, trace))
                queued.add(fingerprint)
        computed = (
            self._pool.optimize_batch(jobs, self.config) if jobs else {}
        )
        for result in computed.values():
            self._commit(result, DvfsStrategy.from_json(result.strategy_json))
        batch_latency = time.perf_counter() - start

        results: list[ServeResult] = []
        first_serve: set[str] = set()
        for fingerprint in fingerprints:
            if fingerprint in hits:
                strategy, tier = hits[fingerprint]
                source = tier if fingerprint not in first_serve else "memory"
            else:
                strategy = DvfsStrategy.from_json(
                    computed[fingerprint].strategy_json
                )
                source = (
                    "computed" if fingerprint not in first_serve
                    else "coalesced"
                )
            first_serve.add(fingerprint)
            result = ServeResult(
                fingerprint=fingerprint,
                strategy=strategy,
                source=source,
                latency_seconds=batch_latency / len(traces),
            )
            self.stats.record(result)
            results.append(result)
        return results

    def _commit(self, result: PoolResult, strategy: DvfsStrategy) -> None:
        self.store.put(
            result.fingerprint, strategy, self._config_hash, self._spec_hash
        )
        self.stats.ga_runs += 1
        if result.surrogate_used:
            self.stats.surrogate_runs += 1
        self.stats.ga_seconds += result.wall_seconds
        self.stats.ga_generations += result.ga_generations
        self.stats.ga_generations_trimmed += max(
            0, self.config.ga.iterations - result.ga_generations
        )

    def _finish(
        self,
        fingerprint: str,
        strategy: DvfsStrategy,
        source: str,
        start: float,
    ) -> ServeResult:
        result = ServeResult(
            fingerprint=fingerprint,
            strategy=strategy,
            source=source,
            latency_seconds=time.perf_counter() - start,
        )
        self.stats.record(result)
        return result

    def stats_rows(self) -> list[dict[str, float | int | str]]:
        """Service counters as table rows (see :mod:`repro.core.report`)."""
        return self.stats.rows()

    def close(self) -> None:
        """Release the optimizer pool (idempotent)."""
        self._pool.close()

    def __enter__(self) -> "StrategyService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
