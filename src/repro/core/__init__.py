"""The paper's primary contribution: end-to-end operator-level DVFS.

``EnergyOptimizer`` runs the Fig. 1 pipeline — profile, model, generate a
strategy with the genetic algorithm, execute with SetFreq — and reports
Table-3-style outcomes.
"""

from repro.core.config import OptimizerConfig
from repro.core.optimizer import EnergyOptimizer, ModelBundle, ProfilingBundle
from repro.core.sweep import SweepResult, sweep_loss_targets
from repro.core.report import (
    MeasuredMetrics,
    OptimizationReport,
    format_table,
    render_service_stats,
    render_strategy_timeline,
)

__all__ = [
    "EnergyOptimizer",
    "MeasuredMetrics",
    "ModelBundle",
    "OptimizationReport",
    "OptimizerConfig",
    "ProfilingBundle",
    "SweepResult",
    "format_table",
    "render_service_stats",
    "render_strategy_timeline",
    "sweep_loss_targets",
]
