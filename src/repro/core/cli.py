"""Command-line entry point: ``repro-optimize``.

Runs the Fig. 1 pipeline on a named (or saved) workload and prints the
Table-3-style outcome; optionally saves the generated DVFS strategy and
loads traces from JSON files.

Examples::

    repro-optimize bert --scale 0.3
    repro-optimize gpt3 --scale 0.1 --target 0.04 --save-strategy gpt3.json
    repro-optimize --trace-file mytrace.json --objective soc
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core import EnergyOptimizer, OptimizerConfig
from repro.core.report import format_table, render_strategy_timeline
from repro.dvfs import GaConfig
from repro.errors import ReproError
from repro.workloads import generate, load_trace, workload_names


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-optimize",
        description=(
            "Operator-level DVFS energy optimization on the simulated NPU "
            "(the paper's Fig. 1 pipeline)."
        ),
        epilog=(
            "For fleet-scale serving — a persistent strategy store, "
            "request deduplication and a parallel optimizer pool — use "
            "`python -m repro.serve` (repro-serve)."
        ),
    )
    parser.add_argument(
        "workload",
        nargs="?",
        help=f"workload name ({', '.join(workload_names())})",
    )
    parser.add_argument(
        "--trace-file",
        help="optimise a trace saved with repro.workloads.save_trace",
    )
    parser.add_argument(
        "--scale", type=float, default=0.2, help="workload scale (default 0.2)"
    )
    parser.add_argument(
        "--target",
        type=float,
        default=0.02,
        help="performance-loss target as a fraction (default 0.02)",
    )
    parser.add_argument(
        "--objective",
        choices=("aicore", "soc"),
        default="aicore",
        help="power rail the search minimises",
    )
    parser.add_argument(
        "--interval-ms",
        type=float,
        default=5.0,
        help="frequency adjustment interval in milliseconds (default 5)",
    )
    parser.add_argument(
        "--population", type=int, default=200, help="GA population size"
    )
    parser.add_argument(
        "--iterations", type=int, default=600, help="GA iterations"
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--save-strategy",
        metavar="PATH",
        help="write the generated DVFS strategy to a JSON file",
    )
    parser.add_argument(
        "--inspect",
        action="store_true",
        help="print the workload's composition before optimising",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if bool(args.workload) == bool(args.trace_file):
        parser.error("give exactly one of: a workload name, --trace-file")
    try:
        if args.trace_file:
            trace = load_trace(args.trace_file)
        else:
            trace = generate(args.workload, scale=args.scale, seed=args.seed)
        config = OptimizerConfig(
            performance_loss_target=args.target,
            adjustment_interval_us=args.interval_ms * 1000.0,
            objective=args.objective,
            ga=GaConfig(
                population_size=args.population,
                iterations=args.iterations,
                seed=args.seed,
            ),
            seed=args.seed,
        )
        optimizer = EnergyOptimizer(config)
        if args.inspect:
            from repro.workloads import summarize_trace

            print(summarize_trace(trace, optimizer.device, seed=args.seed).render())
            print()
        print(
            f"Optimising {trace.name!r} ({trace.operator_count} operators, "
            f"target {args.target:.1%}, objective {args.objective})..."
        )
        report = optimizer.optimize(trace)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print()
    print(report.summary())
    print()
    print(format_table([report.table3_row()]))
    print()
    print(render_strategy_timeline(report.strategy))
    if args.save_strategy:
        report.strategy.save(args.save_strategy)
        print(f"\nstrategy written to {args.save_strategy} "
              f"({report.strategy.setfreq_count} SetFreq per iteration)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
