"""Loss-target sweeps: optimise one workload under several budgets.

Table 3's GPT-3 rows and the sweet-spot discussion come from sweeping the
performance-loss target on a single workload.  Profiling and model fitting
are target-independent, so a sweep shares them across all targets and only
repeats the search and execution — the same efficiency the paper's
production flow has (profile once, regenerate policies cheaply).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.config import OptimizerConfig
from repro.core.optimizer import EnergyOptimizer
from repro.core.report import MeasuredMetrics, OptimizationReport
from repro.dvfs.ga import run_search
from repro.dvfs.scoring import StrategyScorer
from repro.dvfs.strategy import strategy_from_genes
from repro.errors import ConfigurationError
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class SweepResult:
    """Outcome of a loss-target sweep on one workload."""

    workload: str
    reports: tuple[OptimizationReport, ...]

    def __len__(self) -> int:
        return len(self.reports)

    def report_for(self, target: float) -> OptimizationReport:
        """The report for one swept target.

        Targets are matched with a tight relative tolerance rather than
        exact float equality, so a value that arrives through arithmetic
        (``0.1 + 0.2 - 0.2``) still finds its report.

        Raises:
            ConfigurationError: if the target was not part of the sweep.
        """
        for report in self.reports:
            if math.isclose(
                report.performance_loss_target,
                target,
                rel_tol=1e-9,
                abs_tol=1e-12,
            ):
                return report
        raise ConfigurationError(f"target {target} was not swept")

    def savings_are_monotone(self, slack: float = 0.01) -> bool:
        """Whether AICore savings grow with the target (Table 3's shape)."""
        reductions = [r.aicore_power_reduction for r in self.reports]
        return all(
            b >= a - slack for a, b in zip(reductions, reductions[1:])
        )

    def knee_target(self) -> float:
        """The target with the best marginal savings-per-loss trade.

        The paper identifies 2% as the production sweet spot: beyond it,
        the power-reduction rate slows.  This returns the swept target
        whose savings/loss ratio is highest.
        """
        best = max(
            self.reports,
            key=lambda r: (
                r.aicore_power_reduction / max(r.performance_loss, 1e-9)
            ),
        )
        return best.performance_loss_target

    def rows(self) -> list[dict]:
        """Table-3-style rows, one per target."""
        return [report.table3_row() for report in self.reports]


def sweep_loss_targets(
    trace: Trace,
    targets: Sequence[float],
    config: OptimizerConfig | None = None,
    optimizer: EnergyOptimizer | None = None,
) -> SweepResult:
    """Optimise ``trace`` once per loss target, sharing profiling/models.

    Args:
        trace: the workload iteration.
        targets: loss targets, ascending (e.g. ``(0.02, 0.04, ..., 0.10)``).
        config: pipeline configuration (its own loss target is ignored).
        optimizer: optionally a pre-built optimizer (reuses its
            calibration); otherwise one is constructed from ``config``.

    Raises:
        ConfigurationError: on an empty or unsorted target list.
    """
    if not targets:
        raise ConfigurationError("sweep needs at least one target")
    if list(targets) != sorted(targets):
        raise ConfigurationError(f"targets must be ascending: {targets}")
    if optimizer is None:
        optimizer = EnergyOptimizer(config or OptimizerConfig())
    pipeline_config = optimizer.config
    bundle = optimizer.profile(trace)
    models = optimizer.build_models(bundle)
    candidates = optimizer.preprocess(bundle)
    freqs = pipeline_config.npu.frequencies.points

    reports = []
    for target in targets:
        scorer = StrategyScorer(
            trace=trace,
            stages=candidates.stages,
            perf_model=models.performance,
            power_table=models.power,
            freqs_mhz=freqs,
            performance_loss_target=target,
            objective=pipeline_config.objective,
        )
        search = run_search(
            scorer, candidates.stages, freqs, pipeline_config.ga
        )
        strategy = strategy_from_genes(
            trace.name, candidates.stages, search.best_genes, freqs, target
        )
        outcome = optimizer.guarded_executor.execute_with_baseline(
            trace, strategy
        )
        reports.append(
            OptimizationReport(
                workload=trace.name,
                performance_loss_target=target,
                baseline=MeasuredMetrics.from_result(outcome.baseline),
                under_dvfs=MeasuredMetrics.from_result(outcome.result),
                predicted=scorer.breakdown(search.best_genes),
                strategy=strategy,
                search=search,
                stage_count=len(candidates.stages),
                operator_count=trace.operator_count,
                incidents=outcome.incidents,
                fell_back=outcome.fell_back,
            )
        )
    return SweepResult(workload=trace.name, reports=tuple(reports))
