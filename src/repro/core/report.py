"""Result containers and formatting for end-to-end optimization runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dvfs.ga import GaResult
from repro.dvfs.guard import Incident
from repro.dvfs.scoring import ScoreBreakdown
from repro.dvfs.strategy import DvfsStrategy
from repro.units import US_PER_S


@dataclass(frozen=True)
class MeasuredMetrics:
    """Measured outcome of one execution (a Table 3 cell group)."""

    iteration_seconds: float
    aicore_watts: float
    soc_watts: float

    @classmethod
    def from_result(cls, result) -> "MeasuredMetrics":
        """Build from an :class:`ExecutionResult`."""
        return cls(
            iteration_seconds=result.duration_us / US_PER_S,
            aicore_watts=result.aicore_avg_watts,
            soc_watts=result.soc_avg_watts,
        )


@dataclass(frozen=True)
class OptimizationReport:
    """Complete outcome of one Fig. 1 pipeline run."""

    workload: str
    performance_loss_target: float
    baseline: MeasuredMetrics
    under_dvfs: MeasuredMetrics
    predicted: ScoreBreakdown
    strategy: DvfsStrategy
    search: GaResult
    stage_count: int
    operator_count: int
    #: Guard interventions recorded during the measured execution
    #: (empty on a healthy control plane).
    incidents: tuple[Incident, ...] = field(default=())
    #: Whether the guarded runtime reverted the workload to baseline.
    fell_back: bool = False

    @property
    def performance_loss(self) -> float:
        """Measured fractional slowdown under the strategy."""
        return (
            self.under_dvfs.iteration_seconds - self.baseline.iteration_seconds
        ) / self.baseline.iteration_seconds

    @property
    def aicore_power_reduction(self) -> float:
        """Measured fractional AICore power reduction."""
        return 1.0 - self.under_dvfs.aicore_watts / self.baseline.aicore_watts

    @property
    def soc_power_reduction(self) -> float:
        """Measured fractional SoC power reduction."""
        return 1.0 - self.under_dvfs.soc_watts / self.baseline.soc_watts

    @property
    def setfreq_count(self) -> int:
        """SetFreq operations the strategy issues per iteration."""
        return self.strategy.setfreq_count

    def table3_row(self) -> dict[str, float | str]:
        """The paper's Table 3 row for this run."""
        return {
            "model": self.workload,
            "loss_target": f"{self.performance_loss_target:.0%}",
            "orig_iter_s": round(self.baseline.iteration_seconds, 4),
            "dvfs_iter_s": round(self.under_dvfs.iteration_seconds, 4),
            "perf_loss": f"{self.performance_loss:.2%}",
            "orig_soc_w": round(self.baseline.soc_watts, 2),
            "dvfs_soc_w": round(self.under_dvfs.soc_watts, 2),
            "soc_reduction": f"{self.soc_power_reduction:.2%}",
            "orig_aicore_w": round(self.baseline.aicore_watts, 2),
            "dvfs_aicore_w": round(self.under_dvfs.aicore_watts, 2),
            "aicore_reduction": f"{self.aicore_power_reduction:.2%}",
        }

    def incident_rows(self) -> list[dict]:
        """Guard-incident table rows (for :func:`format_table`)."""
        return [incident.to_row() for incident in self.incidents]

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        text = (
            f"{self.workload}: loss target "
            f"{self.performance_loss_target:.0%} -> measured perf loss "
            f"{self.performance_loss:.2%}, AICore power "
            f"{self.baseline.aicore_watts:.1f} W -> "
            f"{self.under_dvfs.aicore_watts:.1f} W "
            f"(-{self.aicore_power_reduction:.2%}), SoC power "
            f"{self.baseline.soc_watts:.1f} W -> "
            f"{self.under_dvfs.soc_watts:.1f} W "
            f"(-{self.soc_power_reduction:.2%}); "
            f"{self.setfreq_count} SetFreq over {self.stage_count} stages, "
            f"GA search {self.search.wall_seconds:.2f}s."
        )
        if self.incidents:
            text += (
                f" Guard recorded {len(self.incidents)} incident(s)"
                + (", reverted to baseline." if self.fell_back else ".")
            )
        return text


@dataclass(frozen=True)
class ClusterResult:
    """Fleet-level outcome of a cluster DVFS policy versus its baseline.

    Produced by :meth:`repro.cluster.simulator.ClusterStepResult.report`;
    kept here (plain data, no cluster imports) so every layer that
    renders reports can do so without pulling the cluster package in.
    """

    cluster_name: str
    workload: str
    n_devices: int
    baseline_step_us: float
    step_us: float
    allreduce_us: float
    baseline_soc_energy_j: float
    soc_energy_j: float
    baseline_aicore_energy_j: float
    aicore_energy_j: float
    straggler_id: int
    device_rows: tuple[dict, ...] = ()
    incidents: tuple[Incident, ...] = field(default=())

    @property
    def step_time_regression(self) -> float:
        """Fractional step-time increase versus the baseline step."""
        return (self.step_us - self.baseline_step_us) / self.baseline_step_us

    @property
    def soc_energy_savings(self) -> float:
        """Fractional fleet SoC-energy reduction versus the baseline."""
        return 1.0 - self.soc_energy_j / self.baseline_soc_energy_j

    @property
    def aicore_energy_savings(self) -> float:
        """Fractional fleet AICore-energy reduction versus the baseline."""
        return 1.0 - self.aicore_energy_j / self.baseline_aicore_energy_j

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        text = (
            f"{self.cluster_name} x{self.n_devices} on {self.workload}: "
            f"step {self.baseline_step_us / 1000.0:.2f} ms -> "
            f"{self.step_us / 1000.0:.2f} ms "
            f"({self.step_time_regression:+.2%}), fleet SoC energy "
            f"{self.baseline_soc_energy_j:.1f} J -> "
            f"{self.soc_energy_j:.1f} J "
            f"(-{self.soc_energy_savings:.2%}); straggler is device "
            f"{self.straggler_id}, all-reduce "
            f"{self.allreduce_us / 1000.0:.2f} ms."
        )
        if self.incidents:
            text += f" {len(self.incidents)} barrier incident(s) recorded."
        return text

    def incident_rows(self) -> list[dict]:
        """Cluster-incident table rows (for :func:`format_table`)."""
        return [incident.to_row() for incident in self.incidents]

    def render(self) -> str:
        """Summary plus the per-device table."""
        body = self.summary()
        if self.device_rows:
            body += "\n" + format_table(list(self.device_rows))
        if self.incidents:
            body += "\n" + format_table(self.incident_rows())
        return body


def render_strategy_timeline(strategy, width: int = 72) -> str:
    """ASCII rendering of a DVFS strategy's frequency over the iteration.

    Each column is a slice of the iteration; its glyph encodes the planned
    frequency (``#`` for the top of the grid down to ``.`` for the
    bottom), giving a quick visual of where the LFC valleys sit::

        1800 |######..####...#####     |
    """
    plans = strategy.plans
    total = sum(plan.duration_us for plan in plans)
    if total <= 0 or width < 8:
        return "(empty strategy)"
    freqs = sorted({plan.freq_mhz for plan in plans})
    lo, hi = freqs[0], freqs[-1]
    glyphs = ".:-=+*%#"

    def glyph(freq: float) -> str:
        if hi == lo:
            return "#"
        level = (freq - lo) / (hi - lo)
        return glyphs[min(len(glyphs) - 1, int(level * (len(glyphs) - 1)))]

    columns = []
    for i in range(width):
        t = (i + 0.5) / width * total
        elapsed = 0.0
        current = plans[-1]
        for plan in plans:
            if t < elapsed + plan.duration_us:
                current = plan
                break
            elapsed += plan.duration_us
        columns.append(glyph(current.freq_mhz))
    header = (
        f"{hi:.0f} MHz = '#', {lo:.0f} MHz = '.' | "
        f"{strategy.setfreq_count} SetFreq over "
        f"{total / 1000.0:.1f} ms"
    )
    return header + "\n|" + "".join(columns) + "|"


def render_service_stats(stats, title: str = "strategy service") -> str:
    """Render a :class:`repro.serve.service.ServiceStats` counter block.

    Accepts anything exposing ``rows()`` (``ServiceStats``,
    ``StoreCounters``), so store- and service-level counters share one
    presentation path.
    """
    return f"[{title}]\n{format_table(stats.rows())}"


def format_table(rows: list[dict[str, float | str]]) -> str:
    """Render dict rows as an aligned text table (for CLI output)."""
    if not rows:
        return "(no rows)"
    headers = list(rows[0])
    widths = {
        h: max(len(h), *(len(str(row.get(h, ""))) for row in rows))
        for h in headers
    }
    lines = [
        "  ".join(h.ljust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(h, "")).ljust(widths[h]) for h in headers)
        )
    return "\n".join(lines)
