"""Configuration of the end-to-end energy optimizer."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.dvfs.ga import GaConfig
from repro.dvfs.guard import GuardConfig
from repro.dvfs.preprocessing import DEFAULT_ADJUSTMENT_INTERVAL_US
from repro.dvfs.surrogate import SurrogateConfig
from repro.errors import ConfigurationError
from repro.npu.faults import FaultConfig
from repro.npu.spec import NpuSpec, default_npu_spec
from repro.perf.fitting import FitFunction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.spec import ClusterSpec


@dataclass(frozen=True)
class OptimizerConfig:
    """Everything the Fig. 1 pipeline needs.

    Attributes:
        npu: the target accelerator description.
        performance_loss_target: allowed fractional slowdown (the paper's
            Table 3 sweeps 2%..10%; 2% is the production choice).
        adjustment_interval_us: minimum spacing between SetFreq operations
            (the paper uses 5 ms; Fig. 18 sweeps 100 ms and 1 s).
        profile_freqs_mhz: frequencies profiled for model fitting.  The
            paper collects "two to three" points (Sect. 4.3); three points
            let the Func. 2 least-squares fit split its approximation bias
            across the range instead of concentrating it mid-band, which
            keeps measured loss within the target.
        fit_function: the Sect. 4.3 surrogate for performance fitting.
        objective: power rail the search minimises (``"aicore"``/``"soc"``).
        ga: genetic-algorithm hyper-parameters.
        surrogate: multi-fidelity surrogate-search knobs (see
            :class:`repro.dvfs.surrogate.SurrogateConfig`); disabled by
            default, so existing configs run the exact GA unchanged.
        fault: injected fault rates for the substrate (all-zero by
            default — a healthy control plane; see
            :class:`repro.npu.faults.FaultConfig`).
        guard: the guarded runtime's retry/readback/fallback knobs (see
            :class:`repro.dvfs.guard.GuardConfig`).
        seed: root seed for every stochastic component (fault injection
            included, on its own named stream).
        cluster: optional fleet description for multi-device runs (see
            :class:`repro.cluster.spec.ClusterSpec`); ``None`` keeps the
            paper's single-device pipeline.  Deliberately excluded from
            :func:`repro.serve.fingerprint.config_fingerprint` — the
            cluster layer hashes it separately, per device.
    """

    npu: NpuSpec = field(default_factory=default_npu_spec)
    performance_loss_target: float = 0.02
    adjustment_interval_us: float = DEFAULT_ADJUSTMENT_INTERVAL_US
    profile_freqs_mhz: tuple[float, ...] = (1000.0, 1400.0, 1800.0)
    fit_function: FitFunction = FitFunction.QUADRATIC_NO_LINEAR
    objective: str = "aicore"
    ga: GaConfig = field(default_factory=GaConfig)
    surrogate: SurrogateConfig = field(default_factory=SurrogateConfig)
    fault: FaultConfig = field(default_factory=FaultConfig)
    guard: GuardConfig = field(default_factory=GuardConfig)
    seed: int = 0
    cluster: "ClusterSpec | None" = None

    def __post_init__(self) -> None:
        if not 0 < self.performance_loss_target < 1:
            raise ConfigurationError(
                f"performance_loss_target must be in (0, 1): "
                f"{self.performance_loss_target}"
            )
        if len(self.profile_freqs_mhz) < self.fit_function.required_points:
            raise ConfigurationError(
                f"{self.fit_function.value} needs "
                f"{self.fit_function.required_points} profile frequencies, "
                f"got {self.profile_freqs_mhz}"
            )
        for freq in self.profile_freqs_mhz:
            self.npu.frequencies.validate(freq)
        if self.objective not in ("aicore", "soc"):
            raise ConfigurationError(f"unknown objective {self.objective!r}")
        if self.adjustment_interval_us <= 0:
            raise ConfigurationError(
                f"adjustment_interval_us must be positive: "
                f"{self.adjustment_interval_us}"
            )
        # Duck-typed so the core stays import-independent of the
        # cluster package (which sits above it in the layering).
        if self.cluster is not None and not hasattr(
            self.cluster, "device_profiles"
        ):
            raise ConfigurationError(
                f"cluster must be a ClusterSpec, got "
                f"{type(self.cluster).__name__}"
            )

    def with_loss_target(self, target: float) -> "OptimizerConfig":
        """A copy with a different performance-loss target."""
        return replace(self, performance_loss_target=target)

    def with_interval(self, interval_us: float) -> "OptimizerConfig":
        """A copy with a different frequency adjustment interval."""
        return replace(self, adjustment_interval_us=interval_us)

    def with_fault(self, fault: FaultConfig) -> "OptimizerConfig":
        """A copy with different injected-fault rates."""
        return replace(self, fault=fault)

    def with_guard(self, guard: GuardConfig) -> "OptimizerConfig":
        """A copy with different guarded-runtime knobs."""
        return replace(self, guard=guard)

    def with_patience(self, patience: int) -> "OptimizerConfig":
        """A copy whose GA stops after ``patience`` stale generations.

        ``0`` (the default) disables early stopping and always runs the
        full iteration budget.
        """
        return replace(self, ga=replace(self.ga, patience=patience))

    def with_cluster(self, cluster: "ClusterSpec | None") -> "OptimizerConfig":
        """A copy targeting a multi-device fleet (or back to one device)."""
        return replace(self, cluster=cluster)

    def with_surrogate(
        self, surrogate: SurrogateConfig | bool = True
    ) -> "OptimizerConfig":
        """A copy using surrogate-assisted strategy search.

        Pass a full :class:`SurrogateConfig` for custom knobs, ``True``
        to enable with defaults, or ``False`` to force the exact GA.
        """
        if isinstance(surrogate, bool):
            surrogate = SurrogateConfig(enabled=surrogate)
        return replace(self, surrogate=surrogate)
