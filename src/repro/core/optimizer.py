"""The end-to-end energy optimizer — the Fig. 1 pipeline.

``EnergyOptimizer`` wires every component of the reproduction together:

1. **Profile** the target workload at the reference frequencies with the
   CANN-style profiler and power telemetry.
2. **Model** — fit the per-operator performance surrogates (Sect. 4) and
   power coefficients (Sect. 5) from the profiled data; offline
   calibration constants are computed once per device and reused.
3. **Generate** the DVFS strategy: classify bottlenecks, preprocess into
   LFC/HFC candidate stages, and run the genetic-algorithm search
   (Sect. 6).
4. **Execute** the strategy through the SetFreq executor and measure the
   outcome against the max-frequency baseline (Sect. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.rng import RngFactory
from repro.batching import batched_cold_path_enabled
from repro.core.config import OptimizerConfig
from repro.core.report import MeasuredMetrics, OptimizationReport
from repro.dvfs.classification import (
    classify_operators,
    frequency_sensitive_mask,
)
from repro.dvfs.executor import DvfsExecutor
from repro.dvfs.ga import GaResult, run_search
from repro.dvfs.guard import GuardedDvfsExecutor
from repro.dvfs.preprocessing import (
    PreprocessResult,
    preprocess,
    preprocess_arrays,
)
from repro.dvfs.scoring import StrategyScorer
from repro.dvfs.strategy import DvfsStrategy, strategy_from_genes
from repro.npu.device import NpuDevice
from repro.npu.engine import fast_path_enabled
from repro.npu.faults import (
    FaultInjector,
    FaultyCannStyleProfiler,
    FaultyPowerTelemetry,
)
from repro.npu.gridprofile import GridProfileData, profile_cold_grid
from repro.npu.profiler import CannStyleProfiler, ProfileReport
from repro.npu.setfreq import FrequencyTimeline
from repro.npu.telemetry import PowerTelemetry
from repro.perf.fitting import BATCH_FITTERS
from repro.perf.model import (
    WorkloadPerformanceModel,
    build_performance_model,
    build_performance_model_batched,
    patch_missing_operators,
)
from repro.power.calibration import CalibrationConstants, run_offline_calibration
from repro.power.optable import (
    OperatorPowerTable,
    build_operator_power_table,
    build_operator_power_table_arrays,
    build_operator_power_table_batched,
)
from repro.workloads.generators import micro
from repro.workloads.trace import Trace


class ProfilingBundle:
    """Everything collected while profiling one workload.

    ``grid`` carries the batched per-operator duration matrix when the
    one-pass cold path produced the bundle; the scalar sweep leaves it
    ``None`` and model fitting falls back to walking the reports.

    ``reports`` and ``baseline_report`` accept concrete values or
    zero-argument callables.  The batched cold path passes callables so
    the per-operator :class:`ProfileReport` objects only materialise when
    something actually reads them — model fitting consumes the stacked
    ``grid`` arrays and staging consumes ``grid.baseline`` instead, so a
    healthy cold run never pays for report objects at all.  Access is
    transparent either way (the thunk result is cached).
    """

    def __init__(
        self,
        reports,
        power_readings,
        baseline_report,
        grid: GridProfileData | None = None,
        power_arrays=None,
    ) -> None:
        self._reports = reports
        self.power_readings = power_readings
        self._baseline_report = baseline_report
        self.grid = grid
        #: Per-frequency ``(aicore, soc)`` reading arrays aligned with
        #: ``grid.names`` — lets the power-table builder skip the
        #: per-name dict round trip (grid-profiled bundles only).
        self.power_arrays = power_arrays

    @property
    def reports(self) -> tuple[ProfileReport, ...]:
        """Reports at the model-fitting frequencies (materialised lazily)."""
        if callable(self._reports):
            self._reports = self._reports()
        return self._reports

    @property
    def baseline_report(self) -> ProfileReport:
        """The max-frequency baseline report (materialised lazily)."""
        if callable(self._baseline_report):
            self._baseline_report = self._baseline_report()
        return self._baseline_report


@dataclass(frozen=True)
class ModelBundle:
    """The fitted models for one workload."""

    performance: WorkloadPerformanceModel
    power: OperatorPowerTable


class EnergyOptimizer:
    """End-to-end operator-level DVFS optimization for one device."""

    def __init__(self, config: OptimizerConfig | None = None) -> None:
        self._config = config or OptimizerConfig()
        self._rng = RngFactory(self._config.seed)
        self._device = NpuDevice(self._config.npu)
        fault = self._config.fault
        self._injector = (
            FaultInjector(fault, self._rng.generator("faults"))
            if fault.any_active
            else None
        )
        if self._injector is not None and fault.profiler_active:
            self._profiler: CannStyleProfiler = FaultyCannStyleProfiler(
                self._config.npu,
                self._rng.generator("profiler"),
                self._injector,
            )
        else:
            self._profiler = CannStyleProfiler(
                self._config.npu, self._rng.generator("profiler")
            )
        if self._injector is not None and fault.telemetry_active:
            self._telemetry: PowerTelemetry = FaultyPowerTelemetry(
                self._config.npu,
                self._rng.generator("telemetry"),
                self._injector,
            )
        else:
            self._telemetry = PowerTelemetry(
                self._config.npu, self._rng.generator("telemetry")
            )
        self._executor = DvfsExecutor(self._device)
        self._guarded = GuardedDvfsExecutor(
            self._executor, config=self._config.guard, injector=self._injector
        )
        self._calibration: CalibrationConstants | None = None

    @property
    def config(self) -> OptimizerConfig:
        """The pipeline configuration."""
        return self._config

    @property
    def device(self) -> NpuDevice:
        """The simulated device being optimised."""
        return self._device

    @property
    def executor(self) -> DvfsExecutor:
        """The plain SetFreq strategy executor."""
        return self._executor

    @property
    def guarded_executor(self) -> GuardedDvfsExecutor:
        """The guarded runtime measurements go through."""
        return self._guarded

    @property
    def injector(self) -> FaultInjector | None:
        """The fault source, when the config injects faults."""
        return self._injector

    @property
    def telemetry(self) -> PowerTelemetry:
        """The power-measurement instrument."""
        return self._telemetry

    @property
    def profiler(self) -> CannStyleProfiler:
        """The CANN-style profiler instrument."""
        return self._profiler

    def calibrate(self) -> CalibrationConstants:
        """Run (or reuse) the offline Fig. 11 calibration for this device."""
        if self._calibration is None:
            test_load = micro.mixed_calibration_load(repeats=20)
            k_loads = [
                micro.matmul_loop(repeats=40),
                micro.gelu_loop(repeats=40),
            ]
            self._calibration = run_offline_calibration(
                self._device, self._telemetry, test_load, k_loads
            )
        return self._calibration

    def use_calibration(self, constants: CalibrationConstants) -> None:
        """Inject precomputed offline constants (skips recalibration)."""
        self._calibration = constants

    def _can_profile_batched(self) -> bool:
        """Whether the one-pass grid profiler applies to this pipeline.

        Fault-injecting instruments consume their noise streams
        differently (drops, perturbations), so anything but the plain
        profiler/telemetry pair keeps the sequential sweep; the grid pass
        also needs the compiled-trace engine.
        """
        return (
            batched_cold_path_enabled()
            and fast_path_enabled()
            and self._device.engine is not None
            and type(self._profiler) is CannStyleProfiler
            and type(self._telemetry) is PowerTelemetry
        )

    def profile(self, trace: Trace) -> ProfilingBundle:
        """Step 1: run the workload at the reference frequencies.

        With the batched cold path on (the default), the whole frequency
        sweep is profiled in one vectorised pass over the compiled trace;
        the resulting reports, telemetry readings, and noise-stream
        consumption are bit-identical to the sequential loop below.
        """
        baseline_freq = self._config.npu.max_frequency_mhz
        if self._can_profile_batched():
            grid_result = profile_cold_grid(
                self._device,
                trace,
                self._config.profile_freqs_mhz,
                baseline_freq,
                self._profiler.rng,
                self._telemetry.rng,
            )
            profile_freqs = self._config.profile_freqs_mhz
            sweep = grid_result.sweep
            fit_sweep = tuple(f for f in sweep if f in profile_freqs)
            baseline_sweep = [f for f in sweep if f == baseline_freq]
            assert baseline_sweep
            return ProfilingBundle(
                reports=lambda: tuple(
                    grid_result.report_for(f) for f in fit_sweep
                ),
                power_readings=grid_result.power_readings,
                baseline_report=lambda: grid_result.report_for(
                    baseline_sweep[0]
                ),
                grid=grid_result.data,
                power_arrays=grid_result.power_arrays,
            )
        reports = []
        power_readings: dict[float, dict[str, tuple[float, float]]] = {}
        baseline_report = None
        profile_freqs = set(self._config.profile_freqs_mhz) | {baseline_freq}
        for freq in sorted(profile_freqs):
            result = self._device.run_stable(
                trace, FrequencyTimeline.constant(freq)
            )
            report = self._profiler.profile(result)
            if freq in self._config.profile_freqs_mhz:
                reports.append(report)
                power_readings[freq] = self._telemetry.measure_operator_power(
                    result
                )
            if freq == baseline_freq:
                baseline_report = report
        assert baseline_report is not None
        return ProfilingBundle(
            reports=tuple(reports),
            power_readings=power_readings,
            baseline_report=baseline_report,
        )

    def build_models(self, bundle: ProfilingBundle) -> ModelBundle:
        """Step 2: fit the performance and power models.

        Under profiler faults, reports may miss operators; the model then
        tolerates gaps and any name still absent is patched with its
        baseline-report duration so strategy scoring stays total.
        """
        tolerant = self._config.fault.profiler_active
        batched = (
            bundle.grid is not None
            and batched_cold_path_enabled()
            and not tolerant
            and self._config.fit_function in BATCH_FITTERS
        )
        if batched:
            performance = build_performance_model_batched(
                bundle.grid,
                function=self._config.fit_function,
                fit_freqs_mhz=self._config.profile_freqs_mhz,
            )
        else:
            performance = build_performance_model(
                list(bundle.reports),
                function=self._config.fit_function,
                fit_freqs_mhz=self._config.profile_freqs_mhz,
                allow_missing=tolerant,
            )
            if tolerant:
                performance = patch_missing_operators(
                    performance, bundle.baseline_report
                )
        if batched and bundle.power_arrays:
            power = build_operator_power_table_arrays(
                bundle.grid.names, bundle.power_arrays, self.calibrate()
            )
        elif batched:
            power = build_operator_power_table_batched(
                bundle.power_readings, self.calibrate()
            )
        else:
            power = build_operator_power_table(
                bundle.power_readings, self.calibrate()
            )
        return ModelBundle(performance=performance, power=power)

    def preprocess(self, bundle: ProfilingBundle) -> PreprocessResult:
        """Step 3a: classification and LFC/HFC candidate construction.

        With the batched cold path on and a grid-profiled bundle, the
        Table 1 sensitivity mask and the staging loop run straight off
        the baseline pass's columnar arrays — same floats, same order,
        bit-identical stages — without materialising report objects.
        """
        base = bundle.grid.baseline if bundle.grid is not None else None
        if base is not None and batched_cold_path_enabled():
            sensitive = frequency_sensitive_mask(
                base.is_compute, base.present, base.ratios
            )
            return preprocess_arrays(
                range(base.start_us.shape[0]),
                base.start_us.tolist(),
                base.duration_us.tolist(),
                base.gap_before_us.tolist(),
                sensitive.tolist(),
                adjustment_interval_us=self._config.adjustment_interval_us,
            )
        classified = classify_operators(bundle.baseline_report.operators)
        return preprocess(
            classified,
            adjustment_interval_us=self._config.adjustment_interval_us,
        )

    def search(
        self,
        trace: Trace,
        models: ModelBundle,
        candidates: PreprocessResult,
    ) -> tuple[DvfsStrategy, StrategyScorer, GaResult]:
        """Step 3b: GA search over stage frequencies."""
        freqs = self._config.npu.frequencies.points
        scorer = StrategyScorer(
            trace=trace,
            stages=candidates.stages,
            perf_model=models.performance,
            power_table=models.power,
            freqs_mhz=freqs,
            performance_loss_target=self._config.performance_loss_target,
            objective=self._config.objective,
        )
        result = run_search(
            scorer,
            candidates.stages,
            freqs,
            self._config.ga,
            surrogate=self._config.surrogate,
        )
        strategy = strategy_from_genes(
            workload=trace.name,
            stages=candidates.stages,
            genes=result.best_genes,
            freqs_mhz=freqs,
            performance_loss_target=self._config.performance_loss_target,
        )
        return strategy, scorer, result

    def optimize(self, trace: Trace) -> OptimizationReport:
        """Run the full Fig. 1 pipeline and measure the outcome.

        Execution always goes through the guarded runtime: with the
        default (healthy) fault config it reproduces the plain executor's
        numbers exactly and only performs read-only post-hoc checks; with
        faults injected it retries, reverts, and records incidents.
        """
        bundle = self.profile(trace)
        models = self.build_models(bundle)
        candidates = self.preprocess(bundle)
        strategy, scorer, search_result = self.search(
            trace, models, candidates
        )
        outcome = self._guarded.execute_with_baseline(trace, strategy)
        return OptimizationReport(
            workload=trace.name,
            performance_loss_target=self._config.performance_loss_target,
            baseline=MeasuredMetrics.from_result(outcome.baseline),
            under_dvfs=MeasuredMetrics.from_result(outcome.result),
            predicted=scorer.breakdown(search_result.best_genes),
            strategy=strategy,
            search=search_result,
            stage_count=len(candidates.stages),
            operator_count=trace.operator_count,
            incidents=outcome.incidents,
            fell_back=outcome.fell_back,
        )

