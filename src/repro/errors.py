"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.

The robustness layer adds three typed failures so guard/retry code paths
can react precisely instead of pattern-matching messages:

* :class:`FaultInjectionError` — a fault-injection configuration or
  request is invalid (bad rates, a faulty wrapper built without an
  injector, ...).  Subclass of :class:`ConfigurationError`.
* :class:`TelemetryError` — the telemetry plane returned no usable data
  (for example, every sample of a window was dropped by an injected
  sensor fault).  Subclass of :class:`ProfilingError`, so existing
  measurement-error handlers keep working.
* :class:`SetFreqTimeoutError` — a frequency change could not be
  verified within the guard's retry budget and the guard was configured
  not to revert to the baseline.  Subclass of :class:`StrategyError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class FrequencyError(ConfigurationError):
    """A frequency is outside the supported DVFS grid."""


class CalibrationError(ReproError):
    """Power/performance model calibration could not be completed."""


class FittingError(ReproError):
    """A model-fitting routine failed to produce parameters."""


class FaultInjectionError(ConfigurationError):
    """A fault-injection configuration or request is invalid."""


class ProfilingError(ReproError):
    """Profiling data is missing or inconsistent with the request."""


class TelemetryError(ProfilingError):
    """The telemetry plane returned no usable data."""


class StrategyError(ReproError):
    """A DVFS strategy is malformed or incompatible with a trace."""


class SetFreqTimeoutError(StrategyError):
    """A frequency change was never verified within the retry budget."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its budget."""


class WorkloadError(ReproError):
    """A workload trace or generator request is invalid."""


class ExperimentError(ReproError):
    """An experiment harness was invoked with an unknown id or bad config."""


class ServeError(ReproError):
    """The strategy service or store was misused, or a record is invalid.

    Store-internal validation failures (schema drift, hash mismatch,
    corruption) surface as invalidated records — callers only see this
    exception for genuine misuse (bad fingerprints, bad capacities).
    """


class CorruptRecordError(ServeError):
    """A store record is structurally damaged (truncated, garbled, not
    an envelope at all).

    Distinct from ordinary invalidation (schema or hash *drift*, which
    deletes the stale record): corruption is evidence of a disk or
    writer failure, so the store quarantines the file with a
    ``.corrupt`` suffix for post-mortem instead of destroying it.
    """


class FleetWorkerError(ReproError):
    """A sharded-fleet worker process died or stopped responding.

    Raised by :class:`repro.fleet.sharded.ShardedFleetSimulator` when a
    shard worker exits, is killed, or misses its reply deadline.  The
    engine marks itself broken (every later call raises immediately) and
    terminates the surviving workers, so callers never hang on a dead
    shard and never observe a half-stepped fleet: no step result is
    returned and no plan is produced, which is what keeps partial state
    out of the strategy store.
    """


class Overloaded(ServeError):
    """The serving gateway refused a request instead of queueing it.

    Typed (rather than a bool or a None result) so fleet callers can
    distinguish *shed* from *failed* and apply backpressure — retry
    with jitter, route to another replica, or drop.  ``reason`` is one
    of ``"queue_full"``, ``"rate_limited"`` or ``"draining"``.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        self.detail = detail
        message = f"request shed: {reason}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
