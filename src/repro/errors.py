"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class FrequencyError(ConfigurationError):
    """A frequency is outside the supported DVFS grid."""


class CalibrationError(ReproError):
    """Power/performance model calibration could not be completed."""


class FittingError(ReproError):
    """A model-fitting routine failed to produce parameters."""


class ProfilingError(ReproError):
    """Profiling data is missing or inconsistent with the request."""


class StrategyError(ReproError):
    """A DVFS strategy is malformed or incompatible with a trace."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its budget."""


class WorkloadError(ReproError):
    """A workload trace or generator request is invalid."""


class ExperimentError(ReproError):
    """An experiment harness was invoked with an unknown id or bad config."""
