"""Generic numerical helpers shared across the library.

This package intentionally contains no accelerator-specific knowledge: it
provides error metrics, empirical CDFs, small linear-algebra fits, convexity
checks for sampled functions, fixed-point iteration, and deterministic RNG
plumbing.
"""

from repro.analysis.convexity import (
    is_convex_samples,
    max_convexity_violation,
    second_differences,
)
from repro.analysis.iteration import FixedPointResult, fixed_point_iterate
from repro.analysis.linear import (
    LineFit,
    fit_line,
    solve_two_basis,
    solve_two_point_line,
)
from repro.analysis.rng import RngFactory
from repro.analysis.stats import (
    ErrorSummary,
    bucket_fractions,
    empirical_cdf,
    mean_absolute_percentage_error,
    relative_errors,
    summarize_errors,
)

__all__ = [
    "ErrorSummary",
    "FixedPointResult",
    "LineFit",
    "RngFactory",
    "bucket_fractions",
    "empirical_cdf",
    "fit_line",
    "fixed_point_iterate",
    "is_convex_samples",
    "max_convexity_violation",
    "mean_absolute_percentage_error",
    "relative_errors",
    "second_differences",
    "solve_two_basis",
    "solve_two_point_line",
    "summarize_errors",
]
