"""Convexity checks for functions sampled on a grid.

Section 4.2.5 of the paper concludes that every operator-cycle function is a
convex piecewise-linear function of frequency (a composition of ``max()``
and linear terms).  These helpers verify that property numerically for both
the closed-form cycle models and the discrete-event timeline simulator.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def second_differences(
    xs: Sequence[float], ys: Sequence[float]
) -> np.ndarray:
    """Discrete analogue of the second derivative on a (possibly uneven) grid.

    For consecutive points ``(x0,y0), (x1,y1), (x2,y2)`` the value is the
    slope change ``(y2-y1)/(x2-x1) - (y1-y0)/(x1-x0)``; non-negative slope
    changes everywhere mean the sampled function is convex.

    Raises:
        ValueError: on fewer than three samples or non-increasing xs.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size < 3:
        raise ValueError("second_differences requires at least three samples")
    if np.any(np.diff(x) <= 0):
        raise ValueError("xs must be strictly increasing")
    slopes = np.diff(y) / np.diff(x)
    return np.diff(slopes)


def max_convexity_violation(
    xs: Sequence[float], ys: Sequence[float]
) -> float:
    """Largest negative slope change (0.0 if the samples are convex)."""
    diffs = second_differences(xs, ys)
    worst = float(np.min(diffs))
    return max(0.0, -worst)


def is_convex_samples(
    xs: Sequence[float],
    ys: Sequence[float],
    rel_tol: float = 1e-9,
) -> bool:
    """Whether the sampled function is convex up to a relative tolerance.

    The tolerance is scaled by the magnitude of the slopes involved so the
    check is robust to floating-point noise on steep functions.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    slopes = np.diff(y) / np.diff(x)
    scale = max(1.0, float(np.max(np.abs(slopes))))
    return max_convexity_violation(x, y) <= rel_tol * scale
