"""Deterministic random-number plumbing.

Every stochastic component in the library (measurement noise, workload
jitter, genetic-algorithm sampling) draws from a generator handed to it by
an :class:`RngFactory`, so whole experiments are reproducible from a single
seed while components stay statistically independent of each other.
"""

from __future__ import annotations

import numpy as np


class RngFactory:
    """Derives independent, named random generators from one root seed.

    Generators are derived by hashing the component name into the seed
    sequence, so the stream a component sees depends only on
    ``(root_seed, name)`` — adding a new component never perturbs the
    streams of existing ones, which keeps calibrated experiment outputs
    stable as the library grows.
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def generator(self, name: str) -> np.random.Generator:
        """A fresh generator for the component ``name``.

        Calling this twice with the same name returns generators that
        produce identical streams.
        """
        if not name:
            raise ValueError("component name must be non-empty")
        child = np.random.SeedSequence(
            self._seed, spawn_key=tuple(name.encode("utf-8"))
        )
        return np.random.default_rng(child)

    def child(self, name: str) -> "RngFactory":
        """A derived factory whose streams are independent of this one's."""
        derived_seed = int(
            np.random.SeedSequence(
                self._seed, spawn_key=tuple(name.encode("utf-8"))
            ).generate_state(1)[0]
        )
        return RngFactory(derived_seed)

    def __repr__(self) -> str:
        return f"RngFactory(seed={self._seed})"
