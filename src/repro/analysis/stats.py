"""Error metrics and empirical distribution helpers.

These are the building blocks for the paper's accuracy reporting: the CDF of
per-operator prediction errors (Fig. 15), the error buckets of Table 2, and
the headline average-error numbers (1.96% performance, 4.62% power).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def relative_errors(
    predicted: Sequence[float], actual: Sequence[float]
) -> np.ndarray:
    """Element-wise absolute relative error ``|pred - actual| / actual``.

    Raises:
        ValueError: if the inputs differ in length or any actual value is
            zero (a zero denominator would make the metric meaningless).
    """
    pred = np.asarray(predicted, dtype=float)
    act = np.asarray(actual, dtype=float)
    if pred.shape != act.shape:
        raise ValueError(
            f"predicted and actual differ in shape: {pred.shape} vs {act.shape}"
        )
    if np.any(act == 0):
        raise ValueError("actual values must be non-zero for relative error")
    return np.abs(pred - act) / np.abs(act)


def mean_absolute_percentage_error(
    predicted: Sequence[float], actual: Sequence[float]
) -> float:
    """Mean absolute relative error expressed as a fraction (0.0196 = 1.96%)."""
    errors = relative_errors(predicted, actual)
    return float(np.mean(errors))


def empirical_cdf(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``values``.

    Returns:
        ``(xs, ps)`` where ``ps[i]`` is the fraction of samples ``<= xs[i]``.
        ``xs`` is sorted ascending.
    """
    xs = np.sort(np.asarray(values, dtype=float))
    if xs.size == 0:
        raise ValueError("empirical_cdf requires at least one sample")
    ps = np.arange(1, xs.size + 1, dtype=float) / xs.size
    return xs, ps


def bucket_fractions(
    values: Sequence[float], edges: Sequence[float]
) -> list[float]:
    """Fractions of samples falling in ``(edges[i], edges[i+1]]`` buckets.

    The first bucket is ``(-inf, edges[0]]`` is *not* included; instead the
    buckets are ``(0, edges[0]]``, ``(edges[0], edges[1]]``, ..., and a final
    ``(edges[-1], +inf)`` bucket, matching Table 2's presentation
    ``(0, 1%], (1%, 5%], (5%, 10%], (10%, +inf)``.
    """
    vals = np.asarray(values, dtype=float)
    if vals.size == 0:
        raise ValueError("bucket_fractions requires at least one sample")
    bounds = [0.0, *edges, np.inf]
    if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
        raise ValueError(f"bucket edges must be strictly increasing: {edges}")
    fractions = []
    for lo, hi in zip(bounds, bounds[1:]):
        in_bucket = np.logical_and(vals > lo, vals <= hi)
        fractions.append(float(np.mean(in_bucket)))
    return fractions


@dataclass(frozen=True)
class ErrorSummary:
    """Summary statistics over a set of absolute relative errors."""

    count: int
    mean: float
    median: float
    p90: float
    p99: float
    max: float
    #: Fraction of samples with error <= 5%.
    within_5pct: float
    #: Fraction of samples with error <= 10%.
    within_10pct: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view, convenient for report tables and JSON."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "median": self.median,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.max,
            "within_5pct": self.within_5pct,
            "within_10pct": self.within_10pct,
        }


def summarize_errors(errors: Sequence[float]) -> ErrorSummary:
    """Aggregate a sequence of absolute relative errors into a summary."""
    errs = np.asarray(errors, dtype=float)
    if errs.size == 0:
        raise ValueError("summarize_errors requires at least one sample")
    if np.any(errs < 0):
        raise ValueError("errors must be non-negative (use absolute errors)")
    return ErrorSummary(
        count=int(errs.size),
        mean=float(np.mean(errs)),
        median=float(np.median(errs)),
        p90=float(np.percentile(errs, 90)),
        p99=float(np.percentile(errs, 99)),
        max=float(np.max(errs)),
        within_5pct=float(np.mean(errs <= 0.05)),
        within_10pct=float(np.mean(errs <= 0.10)),
    )
