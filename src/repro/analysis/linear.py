"""Small linear fits used throughout model calibration.

Two operations recur in the paper's calibration flow:

* least-squares line fits (temperature vs SoC power in Fig. 10, the gamma
  extraction from cooldown traces in Sect. 5.4.2), and
* exact two-point solves for two-parameter models (the idle-power
  ``beta f V^2 + theta V`` split in Sect. 5.3 and the closed-form Func. 2
  performance fit in Sect. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import FittingError


@dataclass(frozen=True)
class LineFit:
    """Result of a least-squares fit of ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    #: Coefficient of determination; 1.0 means a perfect fit.
    r_squared: float

    def predict(self, x: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the fitted line at ``x``."""
        return self.slope * np.asarray(x, dtype=float) + self.intercept


def fit_line(xs: Sequence[float], ys: Sequence[float]) -> LineFit:
    """Least-squares straight-line fit.

    Raises:
        FittingError: on fewer than two points or degenerate (constant) xs.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape:
        raise FittingError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise FittingError("fit_line requires at least two points")
    if np.ptp(x) == 0:
        raise FittingError("fit_line requires at least two distinct x values")
    slope, intercept = np.polyfit(x, y, deg=1)
    residuals = y - (slope * x + intercept)
    total = y - np.mean(y)
    denom = float(np.dot(total, total))
    if denom == 0.0:
        r_squared = 1.0
    else:
        r_squared = 1.0 - float(np.dot(residuals, residuals)) / denom
    return LineFit(slope=float(slope), intercept=float(intercept), r_squared=r_squared)


def solve_two_point_line(
    x1: float, y1: float, x2: float, y2: float
) -> tuple[float, float]:
    """Exact ``(slope, intercept)`` of the line through two points.

    Raises:
        FittingError: if ``x1 == x2``.
    """
    if x1 == x2:
        raise FittingError(f"two-point solve needs distinct x values, got {x1}")
    slope = (y2 - y1) / (x2 - x1)
    intercept = y1 - slope * x1
    return slope, intercept


def solve_two_basis(
    x1: float,
    y1: float,
    x2: float,
    y2: float,
    basis_a,
    basis_b,
) -> tuple[float, float]:
    """Solve ``y = a * basis_a(x) + b * basis_b(x)`` exactly from two points.

    This generalises the two-point line solve to arbitrary basis functions;
    it is how Sect. 5.3 extracts ``(beta, theta)`` from idle power at two
    frequencies (bases ``f V^2`` and ``V``) and how Sect. 4.3's Func. 2
    ``T(f) = a f + c / f`` is fitted in closed form (bases ``f`` and ``1/f``).

    Raises:
        FittingError: if the 2x2 system is singular.
    """
    matrix = np.array(
        [
            [basis_a(x1), basis_b(x1)],
            [basis_a(x2), basis_b(x2)],
        ],
        dtype=float,
    )
    rhs = np.array([y1, y2], dtype=float)
    det = float(np.linalg.det(matrix))
    if abs(det) < 1e-15:
        raise FittingError(
            f"basis system is singular for points x1={x1}, x2={x2}"
        )
    a, b = np.linalg.solve(matrix, rhs)
    return float(a), float(b)
