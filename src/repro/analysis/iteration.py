"""Fixed-point iteration with convergence tracking.

Section 5.4.2 resolves the circular dependency between SoC power and the
temperature rise ``AT`` by iterating ``AT=0 -> P_soc -> AT -> ...`` until
convergence, observing that it takes no more than four iterations in
practice.  This module provides that solver in a reusable form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConvergenceError


@dataclass(frozen=True)
class FixedPointResult:
    """Outcome of a fixed-point iteration."""

    value: float
    iterations: int
    residual: float

    @property
    def converged(self) -> bool:
        """True when the final residual met the requested tolerance."""
        return self.iterations >= 1


def fixed_point_iterate(
    func: Callable[[float], float],
    initial: float = 0.0,
    tol: float = 1e-6,
    max_iterations: int = 50,
) -> FixedPointResult:
    """Iterate ``x <- func(x)`` until ``|func(x) - x| <= tol``.

    Args:
        func: the update map; a contraction near the solution.
        initial: starting value (the paper starts the AT iteration at 0).
        tol: absolute convergence tolerance on the update step.
        max_iterations: raise :class:`ConvergenceError` beyond this budget.

    Returns:
        The converged value, the number of update steps performed, and the
        final residual.

    Raises:
        ConvergenceError: if the tolerance is not met within the budget or a
            non-finite value appears (diverging iteration).
    """
    x = float(initial)
    for iteration in range(1, max_iterations + 1):
        nxt = float(func(x))
        if nxt != nxt or nxt in (float("inf"), float("-inf")):
            raise ConvergenceError(
                f"fixed-point iteration diverged at step {iteration}: {nxt}"
            )
        residual = abs(nxt - x)
        x = nxt
        if residual <= tol:
            return FixedPointResult(value=x, iterations=iteration, residual=residual)
    raise ConvergenceError(
        f"fixed-point iteration did not converge within {max_iterations} steps "
        f"(last residual {residual:.3e}, tol {tol:.3e})"
    )
