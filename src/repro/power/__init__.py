"""Power modelling: offline calibration, online alpha fitting, validation.

Implements Sect. 5 of the paper: load-independent power split (beta,
theta), the leakage-temperature coefficient gamma from post-load cooldown,
the temperature-power slope k, per-load and per-operator alpha fitting, and
the iterative temperature-rise solver used at prediction time.
"""

from repro.power.calibration import (
    CalibrationConstants,
    CooldownObservation,
    IdlePowerFit,
    calibrate_idle_power,
    extract_gamma,
    extract_temperature_slope,
    run_offline_calibration,
)
from repro.power.evaluation import (
    PowerPredictionRecord,
    PowerValidation,
    TABLE2_BUCKET_EDGES,
    measure_load_at_frequencies,
    validate_power_model,
)
from repro.power.model import (
    LoadPowerModel,
    PowerObservation,
    PowerPrediction,
    fit_load_power_model,
    solve_alpha,
)
from repro.power.optable import (
    OperatorPowerEntry,
    OperatorPowerTable,
    build_operator_power_table,
)

__all__ = [
    "CalibrationConstants",
    "CooldownObservation",
    "IdlePowerFit",
    "LoadPowerModel",
    "OperatorPowerEntry",
    "OperatorPowerTable",
    "PowerObservation",
    "PowerPrediction",
    "PowerPredictionRecord",
    "PowerValidation",
    "TABLE2_BUCKET_EDGES",
    "build_operator_power_table",
    "calibrate_idle_power",
    "extract_gamma",
    "extract_temperature_slope",
    "fit_load_power_model",
    "measure_load_at_frequencies",
    "run_offline_calibration",
    "solve_alpha",
    "validate_power_model",
]
