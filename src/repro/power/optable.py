"""Per-operator power coefficients for DVFS strategy scoring.

Section 5.4.1 notes that differing input shapes produce different power
patterns even within one operator type, so an individual ``alpha`` must be
calculated for each operator.  This module builds that table from
per-operator power readings at the reference frequencies, and exposes the
vectorised lookups the genetic algorithm needs.

Thermal leakage is *not* applied per operator here: the temperature rise is
a chip-global quantity, so strategy scoring applies the Sect. 5.4.2
iterative AT solve once per candidate strategy over the aggregate power
(see :mod:`repro.dvfs.scoring`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import CalibrationError
from repro.power.calibration import CalibrationConstants
from repro.power.model import PowerObservation, solve_alpha, solve_alpha_batch


@dataclass(frozen=True)
class OperatorPowerEntry:
    """Fitted load-dependent coefficients of one operator."""

    name: str
    alpha_aicore: float
    alpha_soc: float


@dataclass(frozen=True)
class OperatorPowerTable:
    """Per-operator alphas plus the shared calibration constants."""

    constants: CalibrationConstants
    entries: Mapping[str, OperatorPowerEntry]

    def __len__(self) -> int:
        return len(self.entries)

    def entry(self, name: str) -> OperatorPowerEntry:
        """The coefficients of one operator.

        Raises:
            CalibrationError: for an unknown operator name.
        """
        try:
            return self.entries[name]
        except KeyError:
            raise CalibrationError(
                f"no power coefficients for operator {name!r}"
            ) from None

    def aicore_power_matrix(
        self, names: Sequence[str], freqs_mhz: Sequence[float]
    ) -> np.ndarray:
        """AICore power (active + idle, no thermal term) per (op, freq).

        Shape ``(len(names), len(freqs))``; the global thermal term is
        added by the scorer after the chip-level AT solve.
        """
        return self._power_matrix(names, freqs_mhz, soc=False)

    def soc_power_matrix(
        self, names: Sequence[str], freqs_mhz: Sequence[float]
    ) -> np.ndarray:
        """SoC power (active + idle, no thermal term) per (op, freq)."""
        return self._power_matrix(names, freqs_mhz, soc=True)

    def _grid_vectors(
        self, freqs_key: tuple[float, ...]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached per-grid ``(f V^2, aicore idle, soc idle)`` vectors.

        The scorer asks for power matrices over the same frequency grid
        once per stage; the voltage lookups and idle-fit predictions only
        depend on the grid, so they are computed once per distinct grid
        and reused (lazily attached — the table is a frozen dataclass).
        """
        cache: dict | None = getattr(self, "_grid_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_grid_cache", cache)
        vectors = cache.get(freqs_key)
        if vectors is None:
            constants = self.constants
            freqs = np.asarray(freqs_key, dtype=float)
            volts = np.array([constants.volts(f) for f in freqs])
            fv2 = (freqs / 1000.0) * volts * volts
            idle_aicore = np.array(
                [
                    constants.aicore_idle.predict(f, v)
                    for f, v in zip(freqs, volts)
                ]
            )
            idle_soc = np.array(
                [
                    constants.soc_idle.predict(f, v)
                    for f, v in zip(freqs, volts)
                ]
            )
            vectors = (fv2, idle_aicore, idle_soc)
            cache[freqs_key] = vectors
        return vectors

    def _stacked_alphas(self) -> tuple[dict[str, int], np.ndarray, np.ndarray]:
        """Cached ``(name index, aicore alphas, soc alphas)`` arrays.

        Batched construction attaches these for free (the arrays already
        exist there); tables from the scalar builder materialise them on
        first use.  Either way the per-name ``entry()`` object walk drops
        out of the power-matrix hot path.
        """
        stacked = getattr(self, "_alpha_stack", None)
        if stacked is None:
            index = {name: i for i, name in enumerate(self.entries)}
            aicore = np.array(
                [e.alpha_aicore for e in self.entries.values()]
            )
            soc = np.array([e.alpha_soc for e in self.entries.values()])
            stacked = (index, aicore, soc)
            object.__setattr__(self, "_alpha_stack", stacked)
        return stacked

    def _power_matrix(
        self, names: Sequence[str], freqs_mhz: Sequence[float], soc: bool
    ) -> np.ndarray:
        fv2, idle_aicore, idle_soc = self._grid_vectors(
            tuple(float(f) for f in freqs_mhz)
        )
        idle = idle_soc if soc else idle_aicore
        index, alpha_aicore, alpha_soc = self._stacked_alphas()
        try:
            rows = np.fromiter(
                map(index.__getitem__, names), dtype=np.intp, count=len(names)
            )
        except KeyError:
            for name in names:
                self.entry(name)
            raise  # unreachable: entry() raised the CalibrationError
        alphas = (alpha_soc if soc else alpha_aicore)[rows]
        return alphas[:, None] * fv2[None, :] + idle[None, :]


class _LazyEntryMap(Mapping):
    """Entry mapping that materialises the per-name objects on demand.

    Strategy scoring reads alphas through the stacked arrays attached to
    the table, never through :class:`OperatorPowerEntry` objects, so the
    batched builder defers object construction until something actually
    looks an entry up.  Lookups, order and values match the eager dict.
    """

    __slots__ = ("_index", "_names", "_aicore", "_soc", "_dict")

    def __init__(self, index, names, aicore, soc):
        self._index = index
        self._names = names
        self._aicore = aicore
        self._soc = soc
        self._dict: dict[str, OperatorPowerEntry] | None = None

    def _materialise(self) -> dict[str, OperatorPowerEntry]:
        built = self._dict
        if built is None:
            # Bypass the frozen-dataclass __init__/__setattr__ machinery:
            # with hundreds of operators the ordinary constructor
            # dominates table construction (no __post_init__ to skip).
            built = {}
            new_entry = OperatorPowerEntry.__new__
            set_dict = object.__setattr__
            aicore_l = self._aicore.tolist()
            soc_l = self._soc.tolist()
            for i, name in enumerate(self._names):
                entry = new_entry(OperatorPowerEntry)
                set_dict(
                    entry,
                    "__dict__",
                    {
                        "name": name,
                        "alpha_aicore": aicore_l[i],
                        "alpha_soc": soc_l[i],
                    },
                )
                built[name] = entry
            self._dict = built
        return built

    def __getitem__(self, name: str) -> OperatorPowerEntry:
        return self._materialise()[name]

    def __iter__(self):
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    __hash__ = None  # mappings are mutable-equality containers


def build_operator_power_table(
    readings_by_freq: Mapping[float, Mapping[str, tuple[float, float]]],
    constants: CalibrationConstants,
) -> OperatorPowerTable:
    """Fit per-operator alphas from per-operator power readings.

    Args:
        readings_by_freq: for each reference frequency, the telemetry's
            per-operator ``(aicore, soc)`` power readings
            (see ``PowerTelemetry.measure_operator_power``).
        constants: the offline calibration.

    Operators appearing at only some frequencies use the observations they
    have.  Negative alpha estimates (possible on near-idle operators under
    sensor noise) are clamped to zero.

    Raises:
        CalibrationError: if no readings are given.
    """
    if not readings_by_freq:
        raise CalibrationError("no power readings given")
    names: set[str] = set()
    for readings in readings_by_freq.values():
        names.update(readings)
    entries: dict[str, OperatorPowerEntry] = {}
    for name in names:
        estimates: list[tuple[float, float]] = []
        for freq, readings in readings_by_freq.items():
            reading = readings.get(name)
            if reading is None:
                continue
            observation = PowerObservation(
                freq_mhz=freq,
                aicore_watts=reading[0],
                soc_watts=reading[1],
            )
            estimates.append(solve_alpha(observation, constants))
        if not estimates:
            continue
        alpha_aicore = max(0.0, float(np.mean([a for a, _ in estimates])))
        alpha_soc = max(0.0, float(np.mean([s for _, s in estimates])))
        entries[name] = OperatorPowerEntry(
            name=name, alpha_aicore=alpha_aicore, alpha_soc=alpha_soc
        )
    return OperatorPowerTable(constants=constants, entries=entries)


def build_operator_power_table_batched(
    readings_by_freq: Mapping[float, Mapping[str, tuple[float, float]]],
    constants: CalibrationConstants,
) -> OperatorPowerTable:
    """Batched equivalent of :func:`build_operator_power_table`.

    Solves Eq. (14) for all operators at once, one vectorised pass per
    reference frequency, then averages and clamps exactly like the scalar
    loop — the per-name alphas are bit-identical (entry *order* is
    first-appearance instead of set order, which nothing downstream
    observes: lookups are by name).

    Requires every frequency to cover the same operator names (always
    true for the healthy cold path, which profiles the same trace at each
    point); ragged readings fall back to the scalar builder, which
    handles partially-observed operators.

    Raises:
        CalibrationError: if no readings are given.
    """
    if not readings_by_freq:
        raise CalibrationError("no power readings given")
    names: dict[str, None] = {}
    for readings in readings_by_freq.values():
        for name in readings:
            names.setdefault(name, None)
    name_list = list(names)
    for readings in readings_by_freq.values():
        if len(readings) != len(name_list):
            return build_operator_power_table(readings_by_freq, constants)
    n_freqs = len(readings_by_freq)
    estimates_a = np.empty((len(name_list), n_freqs))
    estimates_s = np.empty((len(name_list), n_freqs))
    for j, (freq, readings) in enumerate(readings_by_freq.items()):
        aicore = np.array([readings[name][0] for name in name_list])
        soc = np.array([readings[name][1] for name in name_list])
        alpha_a, alpha_s = solve_alpha_batch(freq, aicore, soc, constants)
        estimates_a[:, j] = alpha_a
        estimates_s[:, j] = alpha_s
    return _table_from_estimates(name_list, estimates_a, estimates_s, constants)


def build_operator_power_table_arrays(
    names: Sequence[str],
    readings_by_freq: Mapping[float, tuple[np.ndarray, np.ndarray]],
    constants: CalibrationConstants,
) -> OperatorPowerTable:
    """Array-input equivalent of :func:`build_operator_power_table_batched`.

    Takes each frequency's readings as ``(aicore_watts, soc_watts)``
    arrays aligned with ``names`` instead of per-name dicts, skipping the
    dict pack/unpack round trip entirely.  The alpha solve, averaging and
    clamping are the same calls on the same values, so the table is
    bit-identical to the dict-input builder's.

    Raises:
        CalibrationError: if no readings are given.
    """
    if not readings_by_freq:
        raise CalibrationError("no power readings given")
    name_list = list(names)
    n_freqs = len(readings_by_freq)
    estimates_a = np.empty((len(name_list), n_freqs))
    estimates_s = np.empty((len(name_list), n_freqs))
    for j, (freq, (aicore, soc)) in enumerate(readings_by_freq.items()):
        alpha_a, alpha_s = solve_alpha_batch(
            freq,
            np.asarray(aicore, dtype=float),
            np.asarray(soc, dtype=float),
            constants,
        )
        estimates_a[:, j] = alpha_a
        estimates_s[:, j] = alpha_s
    return _table_from_estimates(name_list, estimates_a, estimates_s, constants)


def _table_from_estimates(
    name_list: list[str],
    estimates_a: np.ndarray,
    estimates_s: np.ndarray,
    constants: CalibrationConstants,
) -> OperatorPowerTable:
    """Average, clamp and assemble the lazy table (shared builder tail)."""
    alpha_aicore = np.maximum(0.0, np.mean(estimates_a, axis=1))
    alpha_soc = np.maximum(0.0, np.mean(estimates_s, axis=1))
    index = {name: i for i, name in enumerate(name_list)}
    entries = _LazyEntryMap(index, name_list, alpha_aicore, alpha_soc)
    table = OperatorPowerTable(constants=constants, entries=entries)
    object.__setattr__(table, "_alpha_stack", (index, alpha_aicore, alpha_soc))
    return table
