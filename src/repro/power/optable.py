"""Per-operator power coefficients for DVFS strategy scoring.

Section 5.4.1 notes that differing input shapes produce different power
patterns even within one operator type, so an individual ``alpha`` must be
calculated for each operator.  This module builds that table from
per-operator power readings at the reference frequencies, and exposes the
vectorised lookups the genetic algorithm needs.

Thermal leakage is *not* applied per operator here: the temperature rise is
a chip-global quantity, so strategy scoring applies the Sect. 5.4.2
iterative AT solve once per candidate strategy over the aggregate power
(see :mod:`repro.dvfs.scoring`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import CalibrationError
from repro.power.calibration import CalibrationConstants
from repro.power.model import PowerObservation, solve_alpha


@dataclass(frozen=True)
class OperatorPowerEntry:
    """Fitted load-dependent coefficients of one operator."""

    name: str
    alpha_aicore: float
    alpha_soc: float


@dataclass(frozen=True)
class OperatorPowerTable:
    """Per-operator alphas plus the shared calibration constants."""

    constants: CalibrationConstants
    entries: Mapping[str, OperatorPowerEntry]

    def __len__(self) -> int:
        return len(self.entries)

    def entry(self, name: str) -> OperatorPowerEntry:
        """The coefficients of one operator.

        Raises:
            CalibrationError: for an unknown operator name.
        """
        try:
            return self.entries[name]
        except KeyError:
            raise CalibrationError(
                f"no power coefficients for operator {name!r}"
            ) from None

    def aicore_power_matrix(
        self, names: Sequence[str], freqs_mhz: Sequence[float]
    ) -> np.ndarray:
        """AICore power (active + idle, no thermal term) per (op, freq).

        Shape ``(len(names), len(freqs))``; the global thermal term is
        added by the scorer after the chip-level AT solve.
        """
        return self._power_matrix(names, freqs_mhz, soc=False)

    def soc_power_matrix(
        self, names: Sequence[str], freqs_mhz: Sequence[float]
    ) -> np.ndarray:
        """SoC power (active + idle, no thermal term) per (op, freq)."""
        return self._power_matrix(names, freqs_mhz, soc=True)

    def _power_matrix(
        self, names: Sequence[str], freqs_mhz: Sequence[float], soc: bool
    ) -> np.ndarray:
        constants = self.constants
        freqs = np.asarray(freqs_mhz, dtype=float)
        volts = np.array([constants.volts(f) for f in freqs])
        fv2 = (freqs / 1000.0) * volts * volts
        idle_fit = constants.soc_idle if soc else constants.aicore_idle
        idle = np.array(
            [idle_fit.predict(f, v) for f, v in zip(freqs, volts)]
        )
        alphas = np.array(
            [
                self.entry(name).alpha_soc if soc else self.entry(name).alpha_aicore
                for name in names
            ]
        )
        return alphas[:, None] * fv2[None, :] + idle[None, :]


def build_operator_power_table(
    readings_by_freq: Mapping[float, Mapping[str, tuple[float, float]]],
    constants: CalibrationConstants,
) -> OperatorPowerTable:
    """Fit per-operator alphas from per-operator power readings.

    Args:
        readings_by_freq: for each reference frequency, the telemetry's
            per-operator ``(aicore, soc)`` power readings
            (see ``PowerTelemetry.measure_operator_power``).
        constants: the offline calibration.

    Operators appearing at only some frequencies use the observations they
    have.  Negative alpha estimates (possible on near-idle operators under
    sensor noise) are clamped to zero.

    Raises:
        CalibrationError: if no readings are given.
    """
    if not readings_by_freq:
        raise CalibrationError("no power readings given")
    names: set[str] = set()
    for readings in readings_by_freq.values():
        names.update(readings)
    entries: dict[str, OperatorPowerEntry] = {}
    for name in names:
        estimates: list[tuple[float, float]] = []
        for freq, readings in readings_by_freq.items():
            reading = readings.get(name)
            if reading is None:
                continue
            observation = PowerObservation(
                freq_mhz=freq,
                aicore_watts=reading[0],
                soc_watts=reading[1],
            )
            estimates.append(solve_alpha(observation, constants))
        if not estimates:
            continue
        alpha_aicore = max(0.0, float(np.mean([a for a, _ in estimates])))
        alpha_soc = max(0.0, float(np.mean([s for _, s in estimates])))
        entries[name] = OperatorPowerEntry(
            name=name, alpha_aicore=alpha_aicore, alpha_soc=alpha_soc
        )
    return OperatorPowerTable(constants=constants, entries=entries)
