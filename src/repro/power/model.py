"""Online power-model construction and prediction (paper Sect. 5.4-5.5).

With the offline constants in hand, the online phase characterises a
specific load (a whole training iteration, or a single operator): measure
its power at reference frequencies, strip the idle and thermal components,
and solve the load-dependent coefficient ``alpha`` of Eq. (14).

Prediction at a new frequency needs the temperature rise ``AT``, which
itself depends on SoC power; the paper's Sect. 5.4.2 iterative scheme
(``AT = 0 -> P_soc -> AT -> ...``) is used and converges in a handful of
steps (no more than four in the paper's experiments — ours too, asserted
in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.iteration import fixed_point_iterate
from repro.errors import CalibrationError
from repro.power.calibration import CalibrationConstants


@dataclass(frozen=True)
class PowerObservation:
    """One measured operating point of a load."""

    freq_mhz: float
    aicore_watts: float
    soc_watts: float


@dataclass(frozen=True)
class PowerPrediction:
    """Model output for one load at one frequency."""

    freq_mhz: float
    aicore_watts: float
    soc_watts: float
    delta_celsius: float
    #: Iterations the AT fixed point needed (paper: at most 4).
    thermal_iterations: int


@dataclass(frozen=True)
class LoadPowerModel:
    """A fitted power model for one load (workload or operator).

    Attributes:
        name: the load's identifier.
        alpha_aicore: load-dependent AICore coefficient (W per GHz V^2).
        alpha_soc: load-dependent SoC coefficient.
        constants: the offline calibration this model was built against.
    """

    name: str
    alpha_aicore: float
    alpha_soc: float
    constants: CalibrationConstants

    def predict(
        self, freq_mhz: float, tol: float = 1e-3, max_iterations: int = 25
    ) -> PowerPrediction:
        """Predict AICore and SoC power at ``freq_mhz``.

        Solves the Sect. 5.4.2 circular dependency between SoC power and
        temperature rise by fixed-point iteration starting from ``AT = 0``.
        """
        constants = self.constants
        volts = constants.volts(freq_mhz)
        f_ghz = freq_mhz / 1000.0
        soc_base = self.alpha_soc * f_ghz * volts * volts + (
            constants.soc_idle.predict(freq_mhz, volts)
        )

        def soc_power_at(delta: float) -> float:
            return soc_base + constants.gamma_soc_w_per_c_v * delta * volts

        result = fixed_point_iterate(
            lambda delta: constants.k_celsius_per_watt * soc_power_at(delta),
            initial=0.0,
            tol=tol,
            max_iterations=max_iterations,
        )
        delta = result.value
        soc = soc_power_at(delta)
        aicore = (
            self.alpha_aicore * f_ghz * volts * volts
            + constants.aicore_idle.predict(freq_mhz, volts)
            + constants.gamma_aicore_w_per_c_v * delta * volts
        )
        return PowerPrediction(
            freq_mhz=freq_mhz,
            aicore_watts=aicore,
            soc_watts=soc,
            delta_celsius=delta,
            thermal_iterations=result.iterations,
        )

    def predict_many(self, freqs_mhz: Sequence[float]) -> list[PowerPrediction]:
        """Predictions across a frequency sweep."""
        return [self.predict(freq) for freq in freqs_mhz]


def solve_alpha(
    observation: PowerObservation, constants: CalibrationConstants
) -> tuple[float, float]:
    """Solve Eq. (14) for ``(alpha_aicore, alpha_soc)`` from one measurement.

    The measured SoC power pins the temperature rise (``AT = k * P_soc``),
    after which both alphas follow by subtracting the idle and thermal
    components and dividing by ``f V^2``.
    """
    volts = constants.volts(observation.freq_mhz)
    f_ghz = observation.freq_mhz / 1000.0
    fv2 = f_ghz * volts * volts
    if fv2 <= 0:
        raise CalibrationError(f"bad operating point: f={observation.freq_mhz}")
    delta = constants.k_celsius_per_watt * observation.soc_watts
    alpha_aicore = (
        observation.aicore_watts
        - constants.aicore_idle.predict(observation.freq_mhz, volts)
        - constants.gamma_aicore_w_per_c_v * delta * volts
    ) / fv2
    alpha_soc = (
        observation.soc_watts
        - constants.soc_idle.predict(observation.freq_mhz, volts)
        - constants.gamma_soc_w_per_c_v * delta * volts
    ) / fv2
    return alpha_aicore, alpha_soc


def solve_alpha_batch(
    freq_mhz: float,
    aicore_watts: np.ndarray,
    soc_watts: np.ndarray,
    constants: CalibrationConstants,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised Eq. (14) over many loads at one frequency.

    Element ``i`` reproduces ``solve_alpha`` on the ``i``-th load bit for
    bit: the per-frequency scalars (volts, idle predictions) are computed
    once and the subtraction chain keeps the scalar associativity.

    Raises:
        CalibrationError: on a non-positive ``f V^2`` operating point.
    """
    volts = constants.volts(freq_mhz)
    f_ghz = freq_mhz / 1000.0
    fv2 = f_ghz * volts * volts
    if fv2 <= 0:
        raise CalibrationError(f"bad operating point: f={freq_mhz}")
    delta = constants.k_celsius_per_watt * soc_watts
    alpha_aicore = (
        aicore_watts
        - constants.aicore_idle.predict(freq_mhz, volts)
        - constants.gamma_aicore_w_per_c_v * delta * volts
    ) / fv2
    alpha_soc = (
        soc_watts
        - constants.soc_idle.predict(freq_mhz, volts)
        - constants.gamma_soc_w_per_c_v * delta * volts
    ) / fv2
    return alpha_aicore, alpha_soc


def fit_load_power_model(
    name: str,
    observations: Sequence[PowerObservation],
    constants: CalibrationConstants,
) -> LoadPowerModel:
    """Build a load model from measurements at one or more frequencies.

    The paper builds its models from the 1000 MHz and 1800 MHz data
    (Sect. 7.3); each observation yields an alpha estimate via Eq. (14) and
    the estimates are averaged.

    Raises:
        CalibrationError: with no observations.
    """
    if not observations:
        raise CalibrationError(f"no observations for load {name!r}")
    alphas = [solve_alpha(obs, constants) for obs in observations]
    alpha_aicore = float(np.mean([a for a, _ in alphas]))
    alpha_soc = float(np.mean([s for _, s in alphas]))
    return LoadPowerModel(
        name=name,
        alpha_aicore=alpha_aicore,
        alpha_soc=alpha_soc,
        constants=constants,
    )
