"""Offline power-model calibration (paper Sect. 5.3-5.5, Fig. 11).

The offline phase extracts hardware-level constants once per accelerator
model, using only the instruments a real deployment has (idle measurements,
a test load, and the post-load cooldown):

* **Idle power** at two frequencies solves the load-independent model
  ``P_idle(f) = beta * f * V^2 + theta * V`` exactly (Sect. 5.3) — for the
  AICore rail and for the whole SoC.
* **Gamma** (the leakage-temperature slope): after a test load completes,
  power and temperature decay gradually; the slope ``dP/dAT = gamma * V``
  of the cooldown trace gives gamma (Sect. 5.4.2).
* **k** (the temperature-power slope of Eq. 15): running several loads and
  line-fitting chip temperature against SoC power (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.analysis.linear import LineFit, fit_line, solve_two_basis
from repro.errors import CalibrationError
from repro.npu.device import NpuDevice
from repro.npu.setfreq import FrequencyTimeline
from repro.npu.telemetry import PowerTelemetry
from repro.npu.voltage import VoltageCurve
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class IdlePowerFit:
    """Fitted load-independent power ``P_idle(f) = beta f V^2 + theta V``."""

    beta_w_per_ghz_v2: float
    theta_w_per_v: float

    def predict(self, freq_mhz: float, volts: float) -> float:
        """Idle power at a frequency/voltage point."""
        f_ghz = freq_mhz / 1000.0
        return self.beta_w_per_ghz_v2 * f_ghz * volts * volts + (
            self.theta_w_per_v * volts
        )


@dataclass(frozen=True)
class CalibrationConstants:
    """Everything the offline phase extracts for one accelerator model."""

    voltage: VoltageCurve
    aicore_idle: IdlePowerFit
    soc_idle: IdlePowerFit
    #: Leakage-temperature coefficients, in W per (degree * volt).
    gamma_aicore_w_per_c_v: float
    gamma_soc_w_per_c_v: float
    #: Equilibrium temperature slope of Eq. (15), degrees per SoC watt.
    k_celsius_per_watt: float
    ambient_celsius: float

    def volts(self, freq_mhz: float) -> float:
        """Supply voltage at ``freq_mhz`` per the measured V-f curve."""
        return float(self.voltage.volts(freq_mhz))

    def without_thermal_term(self) -> "CalibrationConstants":
        """The gamma = 0 ablation of Sect. 7.3 (no temperature modelling)."""
        return replace(
            self, gamma_aicore_w_per_c_v=0.0, gamma_soc_w_per_c_v=0.0
        )


def calibrate_idle_power(
    device: NpuDevice,
    telemetry: PowerTelemetry,
    freqs_mhz: tuple[float, float] | None = None,
    settle_us: float = 2_000_000.0,
) -> tuple[IdlePowerFit, IdlePowerFit]:
    """Measure idle power at two frequencies and solve (beta, theta).

    The default measurement points are the device grid's extremes (the
    paper uses 1000 and 1800 MHz on the Ascend NPU).

    Returns:
        ``(aicore_fit, soc_fit)``.

    Raises:
        CalibrationError: if the two frequencies coincide.
    """
    if freqs_mhz is None:
        grid = device.npu.frequencies
        freqs_mhz = (grid.min_mhz, grid.max_mhz)
    f1, f2 = freqs_mhz
    if f1 == f2:
        raise CalibrationError("idle calibration needs two distinct frequencies")
    voltage = device.npu.voltage
    measurements = []
    for freq in freqs_mhz:
        # Idle near ambient: let the chip sit briefly, then read the meters.
        chunks = device.run_idle(settle_us, freq, steps=20)
        measurement = telemetry.measure_chunks(chunks)
        volts = float(voltage.volts(freq))
        measurements.append((freq, volts, measurement))
    fits = []
    for attr in ("aicore_avg_watts", "soc_avg_watts"):
        (fa, va, ma), (fb, vb, mb) = measurements
        beta, theta = solve_two_basis(
            fa,
            getattr(ma, attr),
            fb,
            getattr(mb, attr),
            lambda f: (f / 1000.0) * float(voltage.volts(f)) ** 2,
            lambda f: float(voltage.volts(f)),
        )
        fits.append(IdlePowerFit(beta_w_per_ghz_v2=beta, theta_w_per_v=theta))
    return fits[0], fits[1]


@dataclass(frozen=True)
class CooldownObservation:
    """The gamma-extraction result from one post-load cooldown."""

    gamma_aicore_w_per_c_v: float
    gamma_soc_w_per_c_v: float
    aicore_fit: LineFit
    soc_fit: LineFit


def extract_gamma(
    device: NpuDevice,
    telemetry: PowerTelemetry,
    test_load: Trace,
    cooldown_us: float = 60_000_000.0,
    cooldown_freq_mhz: float | None = None,
    steps: int = 600,
) -> CooldownObservation:
    """Run a test load, then fit power-vs-AT slopes during the cooldown.

    The chip heats under the load; after it completes, power decays with
    temperature.  The decay slope ``dP/dAT`` equals ``gamma * V`` at the
    cooldown operating point (Sect. 5.4.2).  The chip never cools all the
    way to ambient (idle power keeps it tens of degrees up), so the usable
    AT span is small and many samples are needed to beat sensor noise —
    hence the dense default sampling (one reading per 100 ms).

    Raises:
        CalibrationError: if the load barely heats the chip (degenerate fit).
    """
    if cooldown_freq_mhz is None:
        cooldown_freq_mhz = device.npu.frequencies.min_mhz
    loaded = device.run_stable(test_load)
    chunks = device.run_idle(
        cooldown_us,
        cooldown_freq_mhz,
        initial_celsius=loaded.end_celsius,
        steps=steps,
    )
    samples = telemetry.sample_chunks(
        chunks, interval_us=cooldown_us / steps
    )
    ambient = device.npu.thermal.ambient_celsius
    deltas = [s.celsius - ambient for s in samples]
    if max(deltas) - min(deltas) < 2.0:
        raise CalibrationError(
            "test load did not heat the chip enough for gamma extraction "
            f"(AT span {max(deltas) - min(deltas):.2f} C)"
        )
    volts = float(device.npu.voltage.volts(cooldown_freq_mhz))
    aicore_fit = fit_line(deltas, [s.aicore_watts for s in samples])
    soc_fit = fit_line(deltas, [s.soc_watts for s in samples])
    return CooldownObservation(
        gamma_aicore_w_per_c_v=aicore_fit.slope / volts,
        gamma_soc_w_per_c_v=soc_fit.slope / volts,
        aicore_fit=aicore_fit,
        soc_fit=soc_fit,
    )


def extract_temperature_slope(
    device: NpuDevice,
    telemetry: PowerTelemetry,
    loads: Sequence[Trace],
    freqs_mhz: Sequence[float] | None = None,
) -> LineFit:
    """Fit Eq. (15)'s ``T = T0 + k * P_soc`` across loads (Fig. 10 data).

    Each (load, frequency) pair contributes one equilibrium point of SoC
    power and chip temperature.

    Raises:
        CalibrationError: with fewer than two loads/frequency combinations.
    """
    if freqs_mhz is None:
        grid = device.npu.frequencies
        mid = grid.nearest((grid.min_mhz + grid.max_mhz) / 2.0)
        freqs_mhz = (grid.min_mhz, mid, grid.max_mhz)
    points: list[tuple[float, float]] = []
    for load in loads:
        for freq in freqs_mhz:
            result = device.run_stable(
                load, FrequencyTimeline.constant(freq)
            )
            measurement = telemetry.measure(result)
            points.append(
                (measurement.soc_avg_watts, measurement.avg_celsius)
            )
    if len(points) < 2:
        raise CalibrationError("need at least two load points to fit k")
    return fit_line([p for p, _ in points], [t for _, t in points])


def run_offline_calibration(
    device: NpuDevice,
    telemetry: PowerTelemetry,
    test_load: Trace,
    k_loads: Sequence[Trace] | None = None,
) -> CalibrationConstants:
    """The complete offline phase of Fig. 11.

    Args:
        device: the accelerator being characterised.
        telemetry: the power-measurement instrument.
        test_load: a load that heats the chip for gamma extraction.
        k_loads: loads for the temperature-slope fit; defaults to the test
            load alone (several frequencies still give several points).
    """
    aicore_idle, soc_idle = calibrate_idle_power(device, telemetry)
    cooldown = extract_gamma(device, telemetry, test_load)
    k_fit = extract_temperature_slope(
        device, telemetry, list(k_loads) if k_loads else [test_load]
    )
    return CalibrationConstants(
        voltage=device.npu.voltage,
        aicore_idle=aicore_idle,
        soc_idle=soc_idle,
        gamma_aicore_w_per_c_v=cooldown.gamma_aicore_w_per_c_v,
        gamma_soc_w_per_c_v=cooldown.gamma_soc_w_per_c_v,
        k_celsius_per_watt=k_fit.slope,
        ambient_celsius=device.npu.thermal.ambient_celsius,
    )
