"""Power-model validation (paper Sect. 7.3, Table 2).

Builds per-load power models from the 1000/1800 MHz reference data and
validates predictions at the remaining frequencies, reporting the error
buckets of Table 2 ``(0,1%], (1%,5%], (5%,10%], (10%,+inf)`` and the
average error — plus the gamma = 0 ablation showing what ignoring the
temperature term costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.stats import bucket_fractions, summarize_errors
from repro.errors import CalibrationError
from repro.npu.device import NpuDevice
from repro.npu.setfreq import FrequencyTimeline
from repro.npu.telemetry import PowerTelemetry
from repro.power.calibration import CalibrationConstants
from repro.power.model import (
    LoadPowerModel,
    PowerObservation,
    fit_load_power_model,
)
from repro.workloads.trace import Trace

#: Table 2's error-bucket edges (fractions).
TABLE2_BUCKET_EDGES = (0.01, 0.05, 0.10)


@dataclass(frozen=True)
class PowerPredictionRecord:
    """One (load, frequency, rail) prediction versus measurement."""

    load: str
    freq_mhz: float
    rail: str
    predicted_watts: float
    measured_watts: float

    @property
    def error(self) -> float:
        """Absolute relative error."""
        return abs(self.predicted_watts - self.measured_watts) / (
            self.measured_watts
        )


@dataclass(frozen=True)
class PowerValidation:
    """Aggregate power-model validation outcome (the Table 2 numbers)."""

    records: tuple[PowerPredictionRecord, ...]

    @property
    def mean_error(self) -> float:
        """Average absolute relative error across all predictions."""
        return summarize_errors([r.error for r in self.records]).mean

    def bucket_table(self) -> dict[str, float]:
        """Table 2's presentation: fraction of predictions per error range."""
        fractions = bucket_fractions(
            [r.error for r in self.records], TABLE2_BUCKET_EDGES
        )
        labels = ("(0, 1%]", "(1%, 5%]", "(5%, 10%]", "(10%, +inf)")
        return dict(zip(labels, fractions))

    def errors_for(self, load: str) -> list[PowerPredictionRecord]:
        """All validation records of one load."""
        return [r for r in self.records if r.load == load]


def measure_load_at_frequencies(
    device: NpuDevice,
    telemetry: PowerTelemetry,
    trace: Trace,
    freqs_mhz: Sequence[float],
) -> dict[float, PowerObservation]:
    """Run a load at several fixed frequencies and measure average power."""
    observations: dict[float, PowerObservation] = {}
    for freq in freqs_mhz:
        result = device.run_stable(trace, FrequencyTimeline.constant(freq))
        measurement = telemetry.measure(result)
        observations[freq] = PowerObservation(
            freq_mhz=freq,
            aicore_watts=measurement.aicore_avg_watts,
            soc_watts=measurement.soc_avg_watts,
        )
    return observations


def validate_power_model(
    loads: Sequence[Trace],
    device: NpuDevice,
    telemetry: PowerTelemetry,
    constants: CalibrationConstants,
    reference_freqs_mhz: tuple[float, float] | None = None,
    validation_freqs_mhz: Sequence[float] | None = None,
) -> PowerValidation:
    """The Sect. 7.3 protocol over a set of loads.

    For each load: measure at the reference frequencies (the grid extremes
    by default, the paper's 1000/1800 MHz protocol), fit the model, then
    predict and compare at the validation frequencies.

    Raises:
        CalibrationError: if no validation frequencies are available.
    """
    grid = device.npu.frequencies
    if reference_freqs_mhz is None:
        reference_freqs_mhz = (grid.min_mhz, grid.max_mhz)
    if validation_freqs_mhz is None:
        validation_freqs_mhz = [
            f
            for f in device.npu.frequencies.points
            if f not in reference_freqs_mhz
        ]
    if not validation_freqs_mhz:
        raise CalibrationError("no validation frequencies")
    records: list[PowerPredictionRecord] = []
    for trace in loads:
        all_freqs = [*reference_freqs_mhz, *validation_freqs_mhz]
        observations = measure_load_at_frequencies(
            device, telemetry, trace, all_freqs
        )
        model = fit_load_power_model(
            trace.name,
            [observations[f] for f in reference_freqs_mhz],
            constants,
        )
        records.extend(
            _validation_records(model, observations, validation_freqs_mhz)
        )
    return PowerValidation(records=tuple(records))


def _validation_records(
    model: LoadPowerModel,
    observations: dict[float, PowerObservation],
    freqs: Sequence[float],
) -> list[PowerPredictionRecord]:
    records = []
    for freq in freqs:
        prediction = model.predict(freq)
        measured = observations[freq]
        records.append(
            PowerPredictionRecord(
                load=model.name,
                freq_mhz=freq,
                rail="aicore",
                predicted_watts=prediction.aicore_watts,
                measured_watts=measured.aicore_watts,
            )
        )
        records.append(
            PowerPredictionRecord(
                load=model.name,
                freq_mhz=freq,
                rail="soc",
                predicted_watts=prediction.soc_watts,
                measured_watts=measured.soc_watts,
            )
        )
    return records
