"""One cluster member: a varied NPU with its executor stack.

Per-device variation enters the simulation at exactly two points:

* **Timing** — :class:`VariedEvaluator` wraps the shared ground-truth
  evaluator and scales every operator's duration by the device's speed
  bin.  Power is untouched: a slow die at a given frequency and
  utilisation draws the same power, it just holds it longer — which is
  how binning costs energy.
* **Thermals** — the device's :class:`~repro.npu.spec.NpuSpec` carries
  the board's ambient offset, so its leakage and equilibrium temperature
  shift with its position in the rack.

Everything else is the single-device stack unchanged: the same
:class:`~repro.npu.device.NpuDevice`, the same
:class:`~repro.dvfs.executor.DvfsExecutor`, and the same
:class:`~repro.dvfs.guard.GuardedDvfsExecutor` guarding each device's
control plane under its own :class:`~repro.npu.faults.FaultInjector`.
Operator timing is temperature-independent in this simulator, so all
devices share one memoised evaluator regardless of their ambient.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster.spec import DeviceProfile
from repro.dvfs.executor import DvfsExecutor
from repro.dvfs.guard import GuardConfig, GuardedDvfsExecutor
from repro.dvfs.strategy import DvfsStrategy
from repro.npu.device import ExecutionResult, NpuDevice
from repro.npu.execution import GroundTruthEvaluator, OperatorEvaluation
from repro.npu.faults import FaultInjector
from repro.npu.spec import NpuSpec
from repro.npu.thermal import ThermalState
from repro.units import US_PER_S
from repro.workloads.trace import Trace

#: Stream-name prefix of each device's fault injector.
DEVICE_FAULT_STREAM = "cluster-device"


class VariedEvaluator:
    """Duration-scaling wrapper over a shared ground-truth evaluator.

    Implements the evaluator protocol :class:`~repro.npu.device.NpuDevice`
    consumes (``evaluate`` plus the four power methods).  Only
    ``duration_us`` is scaled — utilisation, alpha and therefore power
    stay those of the nominal die.
    """

    def __init__(
        self, inner: GroundTruthEvaluator, duration_scale: float
    ) -> None:
        self._inner = inner
        self._scale = float(duration_scale)

    @property
    def duration_scale(self) -> float:
        """The operator-duration multiplier applied by this wrapper."""
        return self._scale

    def evaluate(self, spec, freq_mhz: float) -> OperatorEvaluation:
        evaluation = self._inner.evaluate(spec, freq_mhz)
        if self._scale == 1.0:
            return evaluation
        return replace(
            evaluation, duration_us=evaluation.duration_us * self._scale
        )

    def aicore_power(self, evaluation, delta_celsius: float) -> float:
        return self._inner.aicore_power(evaluation, delta_celsius)

    def soc_power(self, evaluation, delta_celsius: float) -> float:
        return self._inner.soc_power(evaluation, delta_celsius)

    def idle_aicore_power(self, freq_mhz: float, delta_celsius: float) -> float:
        return self._inner.idle_aicore_power(freq_mhz, delta_celsius)

    def idle_soc_power(self, freq_mhz: float, delta_celsius: float) -> float:
        return self._inner.idle_soc_power(freq_mhz, delta_celsius)


class ClusterDevice:
    """One ring member: profile + NPU + guarded DVFS executor."""

    def __init__(
        self,
        profile: DeviceProfile,
        base_npu: NpuSpec,
        base_evaluator: GroundTruthEvaluator | None = None,
        guard: GuardConfig | None = None,
        seed: int = 0,
    ) -> None:
        self._profile = profile
        npu = profile.npu_for(base_npu)
        inner = base_evaluator or GroundTruthEvaluator(base_npu)
        scale = profile.total_duration_scale
        evaluator = VariedEvaluator(inner, scale) if scale != 1.0 else inner
        self._device = NpuDevice(npu, evaluator=evaluator)
        self._executor = DvfsExecutor(self._device)
        self._injector = FaultInjector.from_seed(
            profile.fault,
            seed,
            f"{DEVICE_FAULT_STREAM}-{profile.device_id}",
        )
        if profile.degraded:
            self._injector.record(
                site="silicon",
                kind="degraded",
                detail=(
                    f"operator durations x{profile.extra_duration_scale:.2f}"
                    + (
                        f" ({profile.override_reason})"
                        if profile.override_reason
                        else ""
                    )
                ),
            )
        self._guarded = GuardedDvfsExecutor(
            self._executor,
            guard,
            self._injector if profile.fault.any_active else None,
        )

    @property
    def profile(self) -> DeviceProfile:
        """The device's realised variation."""
        return self._profile

    @property
    def device_id(self) -> int:
        """Position in the ring."""
        return self._profile.device_id

    @property
    def npu(self) -> NpuSpec:
        """The per-device hardware description (ambient applied)."""
        return self._device.npu

    @property
    def device(self) -> NpuDevice:
        """The underlying executable device."""
        return self._device

    @property
    def guarded(self) -> GuardedDvfsExecutor:
        """The guarded executor strategies run through."""
        return self._guarded

    @property
    def injector(self) -> FaultInjector:
        """The device's fault source and event log."""
        return self._injector

    def run(
        self,
        trace: Trace,
        strategy: DvfsStrategy | None = None,
        initial_celsius: float | None = None,
    ) -> tuple[ExecutionResult, float]:
        """Replay one iteration; returns the result and the final frequency.

        Without a strategy the device runs the uniform maximum-frequency
        baseline.  With one, the strategy is validated and compiled
        through the guarded executor, so per-device control-plane faults
        (and the guard's defences) apply exactly as on a single device.
        The final frequency is what the device idles at while waiting at
        the barrier.
        """
        if strategy is None:
            result = self._device.run(trace, initial_celsius=initial_celsius)
            return result, self._device.npu.max_frequency_mhz
        self._guarded.validate(trace, strategy)
        plan = self._guarded.compile(strategy)
        result = self._device.run(trace, plan, initial_celsius=initial_celsius)
        # The frequency the device parked at (last simulated chunk) is
        # what it idles at while waiting for the barrier.
        final = (
            result.chunks[-1].freq_mhz
            if result.chunks
            else self._device.npu.max_frequency_mhz
        )
        return result, float(final)

    def idle(
        self,
        duration_us: float,
        freq_mhz: float,
        start_celsius: float,
        steps: int = 8,
    ) -> tuple[float, float, float]:
        """Integrate idle energy over a barrier wait.

        Returns ``(aicore_energy_j, soc_energy_j, end_celsius)``.  The
        wait is split into ``steps`` constant-power sub-intervals, each
        using the temperature at its start and then advancing the exact
        RC solution — the same discretisation the device itself uses for
        host gaps.
        """
        if duration_us <= 0:
            return 0.0, 0.0, start_celsius
        evaluator = self._device.evaluator
        thermal = ThermalState(self._device.npu.thermal, start_celsius)
        step_us = duration_us / steps
        aicore_energy = 0.0
        soc_energy = 0.0
        for _ in range(steps):
            delta = thermal.delta_celsius
            aicore_w = evaluator.idle_aicore_power(freq_mhz, delta)
            soc_w = evaluator.idle_soc_power(freq_mhz, delta)
            aicore_energy += aicore_w * step_us / US_PER_S
            soc_energy += soc_w * step_us / US_PER_S
            thermal.advance(soc_w, step_us)
        return aicore_energy, soc_energy, thermal.celsius
