"""Cluster description: N varied devices behind one interconnect.

Real fleets are not N copies of the datasheet chip.  Silicon speed
binning spreads operator latency a few percent between dies, and rack
thermal gradients put some boards in warmer air than others.  Both
matter for synchronous data-parallel training: the *slowest* device sets
the step time, so per-device variation is precisely what creates the
reclaimable slack on every other device.

:class:`ClusterSpec` is the immutable description; per-device draws come
from the repo's standard seeded-stream plumbing
(:class:`repro.analysis.rng.RngFactory`), with a *fixed number of draws
per device* so profiles are stable under any later extension of the
drawing code — the same discipline :mod:`repro.npu.faults` uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analysis.rng import RngFactory
from repro.cluster.collective import InterconnectSpec
from repro.errors import ConfigurationError
from repro.npu.faults import FaultConfig
from repro.npu.spec import NpuSpec, default_npu_spec

#: Stream name the per-device variation draws come from.
VARIATION_STREAM = "cluster-variation"


@dataclass(frozen=True)
class DeviceVariation:
    """Statistical spread of the per-device silicon/thermal draws.

    Attributes:
        speed_sigma: relative sigma of the operator-duration scale
            (speed binning); 0.03 spreads dies a few percent.
        max_speed_spread: clamp on the duration scale, as a fraction
            around 1.0 (0.10 keeps every die within +-10%).
        ambient_sigma_celsius: sigma of the per-board ambient offset
            (rack thermal gradient).
        max_ambient_spread_celsius: clamp on the ambient offset.
    """

    speed_sigma: float = 0.03
    max_speed_spread: float = 0.10
    ambient_sigma_celsius: float = 2.0
    max_ambient_spread_celsius: float = 8.0

    def __post_init__(self) -> None:
        for name in (
            "speed_sigma",
            "max_speed_spread",
            "ambient_sigma_celsius",
            "max_ambient_spread_celsius",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.max_speed_spread >= 1.0:
            raise ConfigurationError(
                f"max_speed_spread must be < 1: {self.max_speed_spread}"
            )

    @classmethod
    def none(cls) -> "DeviceVariation":
        """Identical devices (useful as an experimental control)."""
        return cls(
            speed_sigma=0.0,
            max_speed_spread=0.0,
            ambient_sigma_celsius=0.0,
            max_ambient_spread_celsius=0.0,
        )


@dataclass(frozen=True)
class DeviceOverride:
    """An explicit per-device condition layered over the seeded draws.

    Attributes:
        device_id: which device the override applies to.
        extra_duration_scale: additional operator-duration multiplier
            (> 1 models in-field degradation: aging, derating, a stuck
            fan forcing a thermal offset into timing margins).
        fault: control-plane fault rates for this device's injector
            (``None`` keeps the cluster-wide healthy default).
        reason: free-form tag recorded in the device's fault-event log.
    """

    device_id: int
    extra_duration_scale: float = 1.0
    fault: FaultConfig | None = None
    reason: str = ""

    def __post_init__(self) -> None:
        if self.device_id < 0:
            raise ConfigurationError(
                f"device_id must be >= 0: {self.device_id}"
            )
        if self.extra_duration_scale <= 0:
            raise ConfigurationError(
                f"extra_duration_scale must be positive: "
                f"{self.extra_duration_scale}"
            )


@dataclass(frozen=True)
class DeviceProfile:
    """One device's realised variation (the output of the seeded draws).

    Attributes:
        device_id: position in the cluster (also the ring order).
        duration_scale: operator-duration multiplier from speed binning
            (1.0 nominal, > 1 slower).
        ambient_offset_celsius: board ambient relative to the cluster's
            nominal ambient.
        extra_duration_scale: explicit degradation multiplier from a
            :class:`DeviceOverride` (1.0 when healthy).
        fault: control-plane fault rates for this device.
        override_reason: the override's tag (empty when healthy).
    """

    device_id: int
    duration_scale: float
    ambient_offset_celsius: float
    extra_duration_scale: float = 1.0
    fault: FaultConfig = field(default_factory=FaultConfig.none)
    override_reason: str = ""

    @property
    def total_duration_scale(self) -> float:
        """Combined operator-duration multiplier (binning x degradation)."""
        return self.duration_scale * self.extra_duration_scale

    @property
    def degraded(self) -> bool:
        """Whether an explicit degradation override applies."""
        return self.extra_duration_scale != 1.0

    def npu_for(self, base: NpuSpec) -> NpuSpec:
        """The per-device hardware spec: base with this board's ambient."""
        if self.ambient_offset_celsius == 0.0:
            return base
        return replace(
            base,
            thermal=replace(
                base.thermal,
                ambient_celsius=base.thermal.ambient_celsius
                + self.ambient_offset_celsius,
            ),
        )


@dataclass(frozen=True)
class ClusterSpec:
    """Immutable description of one data-parallel cluster.

    Attributes:
        name: label used in reports.
        n_devices: ring size.
        npu: the nominal accelerator every device is built from.
        variation: statistical spread of the per-device draws.
        interconnect: ring-link characteristics.
        gradient_bytes: all-reduce payload per training step (the
            gradient size of the replicated model).
        seed: root seed of the per-device variation draws.
        overrides: explicit per-device conditions (degradation, faults).
    """

    name: str = "ring-cluster"
    n_devices: int = 8
    npu: NpuSpec = field(default_factory=default_npu_spec)
    variation: DeviceVariation = field(default_factory=DeviceVariation)
    interconnect: InterconnectSpec = field(default_factory=InterconnectSpec)
    gradient_bytes: float = 64 * 2**20
    seed: int = 0
    overrides: tuple[DeviceOverride, ...] = ()

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ConfigurationError(
                f"n_devices must be >= 1: {self.n_devices}"
            )
        if self.gradient_bytes < 0:
            raise ConfigurationError(
                f"gradient_bytes must be non-negative: {self.gradient_bytes}"
            )
        seen: set[int] = set()
        for override in self.overrides:
            if override.device_id >= self.n_devices:
                raise ConfigurationError(
                    f"override targets device {override.device_id}, but the "
                    f"cluster has {self.n_devices} devices"
                )
            if override.device_id in seen:
                raise ConfigurationError(
                    f"duplicate override for device {override.device_id}"
                )
            seen.add(override.device_id)

    @property
    def allreduce_us(self) -> float:
        """Per-step gradient-exchange time on this cluster."""
        return self.interconnect.allreduce_us(
            self.gradient_bytes, self.n_devices
        )

    def device_profiles(self) -> tuple[DeviceProfile, ...]:
        """The seeded per-device draws, overrides applied.

        Each device consumes exactly two draws (speed, ambient) from the
        :data:`VARIATION_STREAM` generator, in device order, so profile
        ``i`` depends only on ``(seed, i)`` — growing the cluster appends
        devices without re-rolling the existing ones.
        """
        rng = RngFactory(self.seed).generator(VARIATION_STREAM)
        by_id = {override.device_id: override for override in self.overrides}
        profiles: list[DeviceProfile] = []
        for device_id in range(self.n_devices):
            speed_draw = float(rng.standard_normal())
            ambient_draw = float(rng.standard_normal())
            spread = self.variation.max_speed_spread
            scale = 1.0 + self.variation.speed_sigma * speed_draw
            scale = min(1.0 + spread, max(1.0 - spread, scale))
            ambient = self.variation.ambient_sigma_celsius * ambient_draw
            cap = self.variation.max_ambient_spread_celsius
            ambient = min(cap, max(-cap, ambient))
            override = by_id.get(device_id)
            profiles.append(
                DeviceProfile(
                    device_id=device_id,
                    duration_scale=scale,
                    ambient_offset_celsius=ambient,
                    extra_duration_scale=(
                        override.extra_duration_scale if override else 1.0
                    ),
                    fault=(
                        override.fault
                        if override is not None and override.fault is not None
                        else FaultConfig.none()
                    ),
                    override_reason=override.reason if override else "",
                )
            )
        return tuple(profiles)

    def with_degraded_device(
        self, device_id: int, slowdown: float, reason: str = "degraded"
    ) -> "ClusterSpec":
        """A copy with one device explicitly slowed by ``slowdown``x."""
        override = DeviceOverride(
            device_id=device_id,
            extra_duration_scale=slowdown,
            reason=reason,
        )
        return replace(
            self,
            overrides=self._without(device_id) + (override,),
        )

    def with_device_fault(
        self, device_id: int, fault: FaultConfig, reason: str = "faulted"
    ) -> "ClusterSpec":
        """A copy with one device's control plane running under faults."""
        existing = {o.device_id: o for o in self.overrides}.get(device_id)
        override = DeviceOverride(
            device_id=device_id,
            extra_duration_scale=(
                existing.extra_duration_scale if existing else 1.0
            ),
            fault=fault,
            reason=reason,
        )
        return replace(
            self,
            overrides=self._without(device_id) + (override,),
        )

    def _without(self, device_id: int) -> tuple[DeviceOverride, ...]:
        return tuple(
            o for o in self.overrides if o.device_id != device_id
        )
