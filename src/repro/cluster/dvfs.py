"""Cluster-aware DVFS: slack reclamation and a fleet GA objective.

Two policies, both reusing the per-operator perf/power models unchanged:

* **Slack reclamation** (:func:`reclaim_slack`) — deterministic and
  search-free.  The straggler's maximum-frequency arrival time defines
  the barrier; every other device is downclocked to the *lowest* grid
  frequency that still arrives by then.  Step time is unchanged (the
  straggler still sets it) while every non-critical device trades
  useless barrier-waiting for cheaper, slower compute — energy savings
  at ~zero step-time cost.
* **Fleet GA** (:func:`search_cluster_frequencies`) — the existing
  genetic algorithm of :mod:`repro.dvfs.ga`, re-targeted: one gene per
  *device* instead of per stage, scored by fleet ``energy x step-time``
  (the cluster analogue of the paper's Eq. 17 objective, with the same
  2x feasibility bonus for plans within the step-time budget).

Both consume :class:`DeviceFrequencyTable` — per-device, per-grid-
frequency measurements of the full trace replay, built by actually
running each device at each grid point.  Tables are pure functions of
``(profile, npu, trace)``; building them is embarrassingly parallel and
deterministic, so :class:`repro.serve.pool.OptimizerPool` fans the work
out across processes with byte-identical results at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.device import ClusterDevice
from repro.cluster.simulator import SimulatedCluster
from repro.cluster.spec import ClusterSpec, DeviceProfile
from repro.dvfs.ga import GaConfig, GaResult, run_search
from repro.dvfs.preprocessing import Stage, StageKind
from repro.dvfs.strategy import DvfsStrategy, constant_strategy
from repro.errors import ConfigurationError, StrategyError
from repro.npu.spec import NpuSpec
from repro.units import US_PER_S
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class DeviceFrequencyTable:
    """One device's trace replay measured at every grid frequency.

    All sequences are indexed by ascending grid frequency.  Durations
    are non-increasing in frequency; ``soc/aicore_energy_j`` are the
    compute-phase energies; the idle powers (measured at the device's
    own ambient) price the barrier wait.
    """

    device_id: int
    freqs_mhz: tuple[float, ...]
    duration_us: tuple[float, ...]
    soc_energy_j: tuple[float, ...]
    aicore_energy_j: tuple[float, ...]
    idle_soc_watts: tuple[float, ...]
    idle_aicore_watts: tuple[float, ...]

    @property
    def max_freq_duration_us(self) -> float:
        """Arrival time at the maximum grid frequency."""
        return self.duration_us[-1]

    def lowest_index_meeting(self, target_us: float) -> int:
        """Lowest grid index whose arrival is within ``target_us``.

        Raises:
            StrategyError: when even the maximum frequency misses the
                target (the caller set an infeasible barrier).
        """
        for index, duration in enumerate(self.duration_us):
            if duration <= target_us:
                return index
        raise StrategyError(
            f"device {self.device_id} cannot reach the barrier at "
            f"{target_us:.0f} us even at {self.freqs_mhz[-1]:.0f} MHz "
            f"({self.duration_us[-1]:.0f} us)"
        )


@dataclass(frozen=True)
class ClusterStrategy:
    """A per-device frequency plan for one synchronised workload.

    ``strategies`` line up with device ids and are plain single-device
    :class:`~repro.dvfs.strategy.DvfsStrategy` objects, so the whole
    existing executor/guard/store stack applies to each device
    unchanged.
    """

    workload: str
    target_compute_us: float
    allreduce_us: float
    straggler_id: int
    frequencies_mhz: tuple[float, ...]
    predicted_compute_us: tuple[float, ...]
    strategies: tuple[DvfsStrategy, ...]

    @property
    def n_devices(self) -> int:
        """Fleet size the plan covers."""
        return len(self.strategies)

    def strategy_json(self) -> tuple[str, ...]:
        """Per-device serialized strategies (the byte-identity payload)."""
        return tuple(strategy.to_json() for strategy in self.strategies)


def _table_job(
    payload: tuple[DeviceProfile, NpuSpec, Trace, tuple[float, ...], int],
) -> DeviceFrequencyTable:
    """Build one device's table (module-level so workers can pickle it)."""
    profile, base_npu, trace, freqs, seed = payload
    member = ClusterDevice(profile, base_npu, seed=seed)
    return build_device_table(member, trace, freqs)


def build_device_table(
    member: ClusterDevice,
    trace: Trace,
    freqs_mhz: tuple[float, ...] | None = None,
) -> DeviceFrequencyTable:
    """Measure one device's trace replay at every grid frequency.

    Each grid point runs through the same compile-and-execute path the
    reclaimed plan will later use (a constant strategy through the
    guarded executor), so table entries and deployed arrivals agree to
    the last bit.
    """
    freqs = freqs_mhz or member.npu.frequencies.points
    durations: list[float] = []
    soc: list[float] = []
    aicore: list[float] = []
    idle_soc: list[float] = []
    idle_aicore: list[float] = []
    evaluator = member.device.evaluator
    for freq in freqs:
        probe = constant_strategy(trace.name, freq, duration_us=1.0)
        result, _ = member.run(trace, probe)
        durations.append(result.duration_us)
        soc.append(result.soc_energy_j)
        aicore.append(result.aicore_energy_j)
        idle_soc.append(evaluator.idle_soc_power(freq, 0.0))
        idle_aicore.append(evaluator.idle_aicore_power(freq, 0.0))
    return DeviceFrequencyTable(
        device_id=member.device_id,
        freqs_mhz=tuple(freqs),
        duration_us=tuple(durations),
        soc_energy_j=tuple(soc),
        aicore_energy_j=tuple(aicore),
        idle_soc_watts=tuple(idle_soc),
        idle_aicore_watts=tuple(idle_aicore),
    )


def build_frequency_tables(
    cluster: SimulatedCluster,
    trace: Trace,
    workers: int = 0,
) -> tuple[DeviceFrequencyTable, ...]:
    """Build all device tables, optionally fanning out across processes.

    The serial (``workers <= 1``) and parallel paths execute the same
    pure job, so results are byte-identical at any worker count — the
    property the `ext_cluster` experiment asserts.
    """
    freqs = cluster.spec.npu.frequencies.points
    payloads = [
        (profile, cluster.spec.npu, trace, freqs, cluster.spec.seed)
        for profile in cluster.profiles
    ]
    # Imported lazily: the serve package sits above the cluster layer in
    # the dependency order, and the serial path does not need it.
    from repro.serve.pool import OptimizerPool

    with OptimizerPool(workers) as pool:
        tables = pool.map_jobs(_table_job, payloads)
    return tuple(tables)


def reclaim_slack(
    tables: tuple[DeviceFrequencyTable, ...],
    workload: str,
    allreduce_us: float = 0.0,
    slack_margin: float = 0.0,
) -> ClusterStrategy:
    """Downclock non-critical devices to arrive just-in-time.

    The barrier target is the slowest device's maximum-frequency
    arrival, optionally stretched by ``slack_margin`` (a fraction; 0
    keeps the step time untouched, small positive values trade bounded
    step-time loss for deeper downclocking).  Each device gets the
    lowest grid frequency that still meets the target, as a constant
    single-stage strategy — zero SetFreq operations at run time.
    """
    if not tables:
        raise ConfigurationError("reclaim_slack needs at least one table")
    if slack_margin < 0:
        raise ConfigurationError(
            f"slack_margin must be non-negative: {slack_margin}"
        )
    arrivals = [table.max_freq_duration_us for table in tables]
    straggler_id = arrivals.index(max(arrivals))
    target = max(arrivals) * (1.0 + slack_margin)
    frequencies: list[float] = []
    predicted: list[float] = []
    strategies: list[DvfsStrategy] = []
    for table in tables:
        index = table.lowest_index_meeting(target)
        freq = table.freqs_mhz[index]
        duration = table.duration_us[index]
        frequencies.append(freq)
        predicted.append(duration)
        strategies.append(constant_strategy(workload, freq, duration))
    return ClusterStrategy(
        workload=workload,
        target_compute_us=target,
        allreduce_us=allreduce_us,
        straggler_id=straggler_id,
        frequencies_mhz=tuple(frequencies),
        predicted_compute_us=tuple(predicted),
        strategies=tuple(strategies),
    )


@dataclass(frozen=True)
class ClusterScoreBreakdown:
    """Predicted fleet metrics of one gene assignment."""

    step_us: float
    fleet_soc_energy_j: float
    feasible: bool
    frequencies_mhz: tuple[float, ...]


class ClusterScorer:
    """Fleet ``energy x step-time`` objective over per-device genes.

    Satisfies the scorer protocol of :func:`repro.dvfs.ga.run_search`
    (``score`` / ``stage_count`` / ``frequency_count``): an individual
    assigns one grid frequency per *device*, and its score is the
    baseline's energy-time product over the individual's, doubled when
    the step time stays within the loss target — the direct fleet
    analogue of the paper's Eq. 17.
    """

    def __init__(
        self,
        tables: tuple[DeviceFrequencyTable, ...],
        allreduce_us: float,
        step_loss_target: float = 0.005,
    ) -> None:
        if not tables:
            raise ConfigurationError("ClusterScorer needs at least one table")
        if not 0 <= step_loss_target < 1:
            raise ConfigurationError(
                f"step_loss_target must be in [0, 1): {step_loss_target}"
            )
        self._freqs = tables[0].freqs_mhz
        for table in tables:
            if table.freqs_mhz != self._freqs:
                raise ConfigurationError(
                    "all device tables must share one frequency grid"
                )
        self._allreduce_us = float(allreduce_us)
        self._loss_target = float(step_loss_target)
        self._durations = np.array(
            [table.duration_us for table in tables]
        )  # (devices, freqs)
        self._soc_energy = np.array([table.soc_energy_j for table in tables])
        self._idle_soc_w = np.array([table.idle_soc_watts for table in tables])
        baseline = np.full(len(tables), len(self._freqs) - 1, dtype=int)
        self._baseline_step_us, self._baseline_energy_j = self._evaluate(
            baseline[None, :]
        )
        self._step_limit_us = float(self._baseline_step_us[0]) * (
            1.0 + self._loss_target
        )

    @property
    def stage_count(self) -> int:
        """One gene per device."""
        return self._durations.shape[0]

    @property
    def frequency_count(self) -> int:
        """Size of the shared frequency grid."""
        return len(self._freqs)

    @property
    def freqs_mhz(self) -> tuple[float, ...]:
        """The shared grid, ascending."""
        return self._freqs

    @property
    def baseline_step_us(self) -> float:
        """Step time with every device at maximum frequency."""
        return float(self._baseline_step_us[0])

    @property
    def baseline_energy_j(self) -> float:
        """Fleet SoC energy with every device at maximum frequency."""
        return float(self._baseline_energy_j[0])

    def _evaluate(
        self, population: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Step time and fleet SoC energy for each individual."""
        devices = np.arange(self._durations.shape[0])
        arrivals = self._durations[devices[None, :], population]  # (P, D)
        compute = arrivals.max(axis=1)  # (P,)
        step = compute + self._allreduce_us
        active = self._soc_energy[devices[None, :], population]
        idle_w = self._idle_soc_w[devices[None, :], population]
        idle_us = compute[:, None] - arrivals + self._allreduce_us
        energy = (active + idle_w * idle_us / US_PER_S).sum(axis=1)
        return step, energy

    def score(self, population: np.ndarray) -> np.ndarray:
        """Eq. 17-style score: normalised E*t product, 2x when feasible."""
        population = np.asarray(population, dtype=int)
        step, energy = self._evaluate(population)
        baseline_product = self.baseline_energy_j * self.baseline_step_us
        norm = baseline_product / (energy * step)
        feasible = step <= self._step_limit_us * (1.0 + 1e-12)
        return norm * np.where(feasible, 2.0, 1.0)

    def breakdown(self, genes: np.ndarray) -> ClusterScoreBreakdown:
        """Predicted fleet metrics of one individual."""
        genes = np.asarray(genes, dtype=int)
        step, energy = self._evaluate(genes[None, :])
        return ClusterScoreBreakdown(
            step_us=float(step[0]),
            fleet_soc_energy_j=float(energy[0]),
            feasible=bool(step[0] <= self._step_limit_us * (1.0 + 1e-12)),
            frequencies_mhz=tuple(self._freqs[g] for g in genes),
        )

    def synthetic_stages(self) -> tuple[Stage, ...]:
        """One pseudo-stage per device, for the GA's prior seeding.

        Devices are HFC-like (the barrier makes every device latency-
        relevant until reclamation proves otherwise), so the GA's prior
        individuals start the fleet near the maximum frequency.
        """
        stages: list[Stage] = []
        clock = 0.0
        for index in range(self.stage_count):
            duration = float(self._durations[index, -1])
            stages.append(
                Stage(
                    index=index,
                    kind=StageKind.HFC,
                    start_us=clock,
                    duration_us=duration,
                    op_indices=(index,),
                    sensitive_time_us=duration,
                )
            )
            clock += duration
        return tuple(stages)


def search_cluster_frequencies(
    tables: tuple[DeviceFrequencyTable, ...],
    workload: str,
    allreduce_us: float,
    step_loss_target: float = 0.005,
    config: GaConfig | None = None,
) -> tuple[ClusterStrategy, GaResult, ClusterScoreBreakdown]:
    """GA search over per-device frequencies with the fleet objective.

    Reuses :func:`repro.dvfs.ga.run_search` unchanged — the scorer swaps
    stages for devices.  The all-max individual is always seeded (it is
    the GA's baseline individual) and always feasible, so the result is
    never worse than uniform maximum frequency.
    """
    scorer = ClusterScorer(tables, allreduce_us, step_loss_target)
    stages = scorer.synthetic_stages()
    result = run_search(scorer, stages, scorer.freqs_mhz, config)
    breakdown = scorer.breakdown(result.best_genes)
    frequencies: list[float] = []
    predicted: list[float] = []
    strategies: list[DvfsStrategy] = []
    for table, gene in zip(tables, result.best_genes):
        freq = table.freqs_mhz[int(gene)]
        duration = table.duration_us[int(gene)]
        frequencies.append(freq)
        predicted.append(duration)
        strategies.append(constant_strategy(workload, freq, duration))
    target = max(predicted)
    straggler_id = predicted.index(target)
    strategy = ClusterStrategy(
        workload=workload,
        target_compute_us=target,
        allreduce_us=allreduce_us,
        straggler_id=straggler_id,
        frequencies_mhz=tuple(frequencies),
        predicted_compute_us=tuple(predicted),
        strategies=tuple(strategies),
    )
    return strategy, result, breakdown
