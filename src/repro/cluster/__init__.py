"""Multi-device data-parallel simulation with cluster-aware DVFS.

The paper optimises one NPU at a time; its deployment story (Sect. 8.1)
is synchronous data-parallel fleets, where per-device DVFS interacts
with the all-reduce barrier: slowing the critical device stalls every
peer, while slowing a non-critical device is free.  This package grows
the simulator from one chip to a cluster:

* :mod:`repro.cluster.spec` — N devices with seeded per-device variation
  (silicon speed bins, rack thermal gradients) plus explicit overrides
  (degradation, per-device control-plane faults);
* :mod:`repro.cluster.collective` — the ring all-reduce cost law;
* :mod:`repro.cluster.simulator` — synchronous step execution: the step
  completes at the barrier of the slowest device, and everyone else's
  wait is priced as idle energy;
* :mod:`repro.cluster.dvfs` — slack reclamation (downclock non-critical
  devices to just-in-time arrival) and a fleet ``energy x step-time``
  objective for the existing GA;
* :mod:`repro.cluster.serve` — per-device strategy fingerprints and
  store-backed caching through :mod:`repro.serve`.

Run ``python -m repro.cluster`` for a quick fleet demo.
"""

from repro.cluster.collective import InterconnectSpec
from repro.cluster.device import ClusterDevice, VariedEvaluator
from repro.cluster.dvfs import (
    ClusterScorer,
    ClusterStrategy,
    DeviceFrequencyTable,
    build_frequency_tables,
    reclaim_slack,
    search_cluster_frequencies,
)
from repro.cluster.serve import cached_reclaim, device_request_fingerprint
from repro.cluster.simulator import (
    ClusterStepResult,
    DeviceStepOutcome,
    SimulatedCluster,
)
from repro.cluster.spec import (
    ClusterSpec,
    DeviceOverride,
    DeviceProfile,
    DeviceVariation,
)

__all__ = [
    "ClusterDevice",
    "ClusterScorer",
    "ClusterSpec",
    "ClusterStepResult",
    "ClusterStrategy",
    "DeviceFrequencyTable",
    "DeviceOverride",
    "DeviceProfile",
    "DeviceStepOutcome",
    "DeviceVariation",
    "InterconnectSpec",
    "SimulatedCluster",
    "VariedEvaluator",
    "build_frequency_tables",
    "cached_reclaim",
    "device_request_fingerprint",
    "reclaim_slack",
    "search_cluster_frequencies",
]
