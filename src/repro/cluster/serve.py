"""Fingerprinting and store-backed caching of per-device strategies.

A reclaimed cluster plan is just one single-device strategy per device,
so the existing :class:`repro.serve.store.StrategyStore` persists it
unchanged — one record per ``(trace, cluster config, device profile)``
fingerprint.  A fleet that re-submits the same training job (the normal
case, per the paper's Sect. 8.1 amortization argument) then pays zero
table builds: every device's plan is a store hit.

Fingerprints follow the serve package's discipline: the trace hash
excludes the name, the config hash covers every knob the plan depends
on (cluster topology, interconnect, variation, gradient payload,
reclamation margin, root seed), and the per-device spec hash covers the
nominal hardware *plus* the device's realised profile — a degraded or
re-binned device changes its own fingerprint and nobody else's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.dvfs import (
    ClusterStrategy,
    build_frequency_tables,
    reclaim_slack,
)
from repro.cluster.simulator import SimulatedCluster
from repro.cluster.spec import ClusterSpec, DeviceProfile
from repro.serve.fingerprint import (
    combine_fingerprints,
    payload_fingerprint,
    spec_fingerprint,
    trace_fingerprint,
)
from repro.serve.store import StrategyStore
from repro.workloads.trace import Trace


def cluster_config_hash(spec: ClusterSpec, slack_margin: float = 0.0) -> str:
    """Hash of every cluster-level knob a reclaimed plan depends on."""
    return payload_fingerprint(
        "cluster_config",
        {
            "n_devices": spec.n_devices,
            "variation": spec.variation,
            "interconnect": spec.interconnect,
            "gradient_bytes": spec.gradient_bytes,
            "seed": spec.seed,
            "slack_margin": slack_margin,
        },
    )


def device_spec_hash(spec: ClusterSpec, profile: DeviceProfile) -> str:
    """Hash of one device's hardware: nominal spec + realised profile."""
    return payload_fingerprint(
        "cluster_device",
        {
            "npu": spec_fingerprint(spec.npu),
            "profile": profile,
        },
    )


def device_request_fingerprint(
    trace: Trace,
    spec: ClusterSpec,
    profile: DeviceProfile,
    slack_margin: float = 0.0,
) -> str:
    """The store key for one device's share of a cluster plan."""
    return combine_fingerprints(
        trace_fingerprint(trace),
        cluster_config_hash(spec, slack_margin),
        device_spec_hash(spec, profile),
    )


@dataclass(frozen=True)
class CachedReclaimResult:
    """A cluster plan plus where its device strategies came from."""

    strategy: ClusterStrategy
    #: Store hits, per device order (True = served from the store).
    hits: tuple[bool, ...]
    #: Whether the frequency tables had to be built this call.
    computed: bool

    @property
    def hit_count(self) -> int:
        """How many device strategies the store served."""
        return sum(self.hits)


def cached_reclaim(
    cluster: SimulatedCluster,
    trace: Trace,
    store: StrategyStore,
    workers: int = 0,
    slack_margin: float = 0.0,
) -> CachedReclaimResult:
    """Slack reclamation through the persistent strategy store.

    On a full hit the plan is reassembled from the stored per-device
    strategies without touching the devices; on any miss the frequency
    tables are built (fanned out over ``workers`` processes), the plan
    is recomputed, and every device's strategy is persisted.  Both paths
    produce byte-identical strategies — the stored record *is* the
    reclamation output.
    """
    spec = cluster.spec
    config_hash = cluster_config_hash(spec, slack_margin)
    fingerprints: list[str] = []
    spec_hashes: list[str] = []
    for profile in cluster.profiles:
        spec_hashes.append(device_spec_hash(spec, profile))
        fingerprints.append(
            device_request_fingerprint(trace, spec, profile, slack_margin)
        )
    lookups = [
        store.lookup(fingerprint, config_hash, spec_hash)
        for fingerprint, spec_hash in zip(fingerprints, spec_hashes)
    ]
    hits = tuple(hit is not None for hit in lookups)
    if all(hits):
        strategies = tuple(hit.strategy for hit in lookups)
        predicted = tuple(
            strategy.plans[-1].start_us + strategy.plans[-1].duration_us
            for strategy in strategies
        )
        target = max(predicted)
        return CachedReclaimResult(
            strategy=ClusterStrategy(
                workload=trace.name,
                # The tightest barrier the stored plans were built for:
                # the straggler's predicted arrival.
                target_compute_us=target,
                allreduce_us=spec.allreduce_us,
                straggler_id=predicted.index(target),
                frequencies_mhz=tuple(
                    strategy.plans[-1].freq_mhz for strategy in strategies
                ),
                predicted_compute_us=predicted,
                strategies=strategies,
            ),
            hits=hits,
            computed=False,
        )
    tables = build_frequency_tables(cluster, trace, workers=workers)
    strategy = reclaim_slack(
        tables,
        trace.name,
        allreduce_us=spec.allreduce_us,
        slack_margin=slack_margin,
    )
    for fingerprint, spec_hash, device_strategy in zip(
        fingerprints, spec_hashes, strategy.strategies
    ):
        store.put(fingerprint, device_strategy, config_hash, spec_hash)
    return CachedReclaimResult(strategy=strategy, hits=hits, computed=True)


# -- Fleet-scale reclamation through the store ---------------------------
#
# The fleet layer (:mod:`repro.fleet`) sits above the cluster package in
# the import order (its spec embeds a ClusterSpec), so everything below
# imports fleet types lazily inside the function bodies.


def fleet_config_hash(
    spec,
    active_ids: tuple[int, ...],
    slack_margin: float = 0.0,
) -> str:
    """Hash of every fleet-level knob a reclaimed fleet plan depends on.

    Unlike :func:`cluster_config_hash`, the *membership* is part of the
    key: the barrier target is the straggler's arrival over the devices
    that are active right now, so a plan cached for one membership must
    not be served to another (e.g. after the straggler left).
    """
    return payload_fingerprint(
        "fleet_config",
        {
            "n_devices": spec.n_devices,
            "capacity": spec.capacity,
            "variation": spec.variation,
            "topology": spec.topology,
            "gradient_bytes": spec.gradient_bytes,
            "seed": spec.seed,
            "slack_margin": slack_margin,
            "active": tuple(int(i) for i in active_ids),
        },
    )


def fleet_device_fingerprint(
    trace: Trace,
    spec,
    active_ids: tuple[int, ...],
    device_id: int,
    slack_margin: float = 0.0,
) -> str:
    """The store key for one fleet device's share of a reclaimed plan."""
    profile = spec.device_profiles()[device_id]
    return combine_fingerprints(
        trace_fingerprint(trace),
        fleet_config_hash(spec, active_ids, slack_margin),
        device_spec_hash(spec.cluster_spec(), profile),
    )


@dataclass(frozen=True)
class FleetCachedReclaimResult:
    """A fleet plan plus where its device strategies came from."""

    #: A :class:`repro.fleet.simulator.FleetPlan`.
    plan: object
    #: Store hits, per active device in id order.
    hits: tuple[bool, ...]
    #: Whether the duration table had to be built this call.
    computed: bool

    @property
    def hit_count(self) -> int:
        """How many device strategies the store served."""
        return sum(self.hits)


def fleet_cached_reclaim(
    sim,
    store: StrategyStore,
    slack_margin: float = 0.0,
) -> FleetCachedReclaimResult:
    """Fleet slack reclamation through the persistent strategy store.

    The fleet analogue of :func:`cached_reclaim`: on a full hit the
    :class:`~repro.fleet.simulator.FleetPlan` is reassembled from the
    stored per-device strategies without building the duration table; on
    any miss the vectorized reclamation runs and every active device's
    strategy is persisted.  Both paths produce byte-identical per-device
    strategies, so a fleet resubmitting the same job (same trace, same
    membership) pays zero table builds.
    """
    import numpy as np

    from repro.fleet.dvfs import plan_strategies, reclaim_fleet_slack
    from repro.fleet.simulator import FleetPlan

    spec = sim.spec
    trace = sim.trace
    active = tuple(int(i) for i in sim.active_ids)
    config_hash = fleet_config_hash(spec, active, slack_margin)
    trace_hash = trace_fingerprint(trace)
    profiles = spec.device_profiles()
    spec_hashes = [
        device_spec_hash(spec.cluster_spec(), profiles[i]) for i in active
    ]
    fingerprints = [
        combine_fingerprints(trace_hash, config_hash, spec_hash)
        for spec_hash in spec_hashes
    ]
    lookups = [
        store.lookup(fingerprint, config_hash, spec_hash)
        for fingerprint, spec_hash in zip(fingerprints, spec_hashes)
    ]
    hits = tuple(hit is not None for hit in lookups)
    if all(hits):
        grid = tuple(float(f) for f in spec.npu.frequencies.points)
        capacity = spec.capacity
        freq_index = np.full(capacity, len(grid) - 1, dtype=np.intp)
        freq_mhz = np.full(capacity, grid[-1], dtype=float)
        predicted = np.zeros(capacity, dtype=float)
        covered = np.zeros(capacity, dtype=bool)
        for device_id, hit in zip(active, lookups):
            plan = hit.strategy.plans[-1]
            freq_index[device_id] = grid.index(plan.freq_mhz)
            freq_mhz[device_id] = plan.freq_mhz
            predicted[device_id] = plan.start_us + plan.duration_us
            covered[device_id] = True
        arrivals = predicted[list(active)]
        # The tightest barrier the stored plans were built for: the
        # straggler's predicted arrival (mirrors cached_reclaim).
        target = float(arrivals.max())
        straggler_id = int(active[int(np.argmax(arrivals))])
        return FleetCachedReclaimResult(
            plan=FleetPlan(
                workload=trace.name,
                target_compute_us=target,
                straggler_id=straggler_id,
                freqs_mhz=grid,
                freq_index=freq_index,
                freq_mhz=freq_mhz,
                predicted_us=predicted,
                covered=covered,
            ),
            hits=hits,
            computed=False,
        )
    plan = reclaim_fleet_slack(sim, slack_margin=slack_margin)
    for fingerprint, spec_hash, device_strategy in zip(
        fingerprints, spec_hashes, plan_strategies(plan)
    ):
        store.put(fingerprint, device_strategy, config_hash, spec_hash)
    return FleetCachedReclaimResult(plan=plan, hits=hits, computed=True)
