"""Fingerprinting and store-backed caching of per-device strategies.

A reclaimed cluster plan is just one single-device strategy per device,
so the existing :class:`repro.serve.store.StrategyStore` persists it
unchanged — one record per ``(trace, cluster config, device profile)``
fingerprint.  A fleet that re-submits the same training job (the normal
case, per the paper's Sect. 8.1 amortization argument) then pays zero
table builds: every device's plan is a store hit.

Fingerprints follow the serve package's discipline: the trace hash
excludes the name, the config hash covers every knob the plan depends
on (cluster topology, interconnect, variation, gradient payload,
reclamation margin, root seed), and the per-device spec hash covers the
nominal hardware *plus* the device's realised profile — a degraded or
re-binned device changes its own fingerprint and nobody else's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.dvfs import (
    ClusterStrategy,
    build_frequency_tables,
    reclaim_slack,
)
from repro.cluster.simulator import SimulatedCluster
from repro.cluster.spec import ClusterSpec, DeviceProfile
from repro.serve.fingerprint import (
    combine_fingerprints,
    payload_fingerprint,
    spec_fingerprint,
    trace_fingerprint,
)
from repro.serve.store import StrategyStore
from repro.workloads.trace import Trace


def cluster_config_hash(spec: ClusterSpec, slack_margin: float = 0.0) -> str:
    """Hash of every cluster-level knob a reclaimed plan depends on."""
    return payload_fingerprint(
        "cluster_config",
        {
            "n_devices": spec.n_devices,
            "variation": spec.variation,
            "interconnect": spec.interconnect,
            "gradient_bytes": spec.gradient_bytes,
            "seed": spec.seed,
            "slack_margin": slack_margin,
        },
    )


def device_spec_hash(spec: ClusterSpec, profile: DeviceProfile) -> str:
    """Hash of one device's hardware: nominal spec + realised profile."""
    return payload_fingerprint(
        "cluster_device",
        {
            "npu": spec_fingerprint(spec.npu),
            "profile": profile,
        },
    )


def device_request_fingerprint(
    trace: Trace,
    spec: ClusterSpec,
    profile: DeviceProfile,
    slack_margin: float = 0.0,
) -> str:
    """The store key for one device's share of a cluster plan."""
    return combine_fingerprints(
        trace_fingerprint(trace),
        cluster_config_hash(spec, slack_margin),
        device_spec_hash(spec, profile),
    )


@dataclass(frozen=True)
class CachedReclaimResult:
    """A cluster plan plus where its device strategies came from."""

    strategy: ClusterStrategy
    #: Store hits, per device order (True = served from the store).
    hits: tuple[bool, ...]
    #: Whether the frequency tables had to be built this call.
    computed: bool

    @property
    def hit_count(self) -> int:
        """How many device strategies the store served."""
        return sum(self.hits)


def cached_reclaim(
    cluster: SimulatedCluster,
    trace: Trace,
    store: StrategyStore,
    workers: int = 0,
    slack_margin: float = 0.0,
) -> CachedReclaimResult:
    """Slack reclamation through the persistent strategy store.

    On a full hit the plan is reassembled from the stored per-device
    strategies without touching the devices; on any miss the frequency
    tables are built (fanned out over ``workers`` processes), the plan
    is recomputed, and every device's strategy is persisted.  Both paths
    produce byte-identical strategies — the stored record *is* the
    reclamation output.
    """
    spec = cluster.spec
    config_hash = cluster_config_hash(spec, slack_margin)
    fingerprints: list[str] = []
    spec_hashes: list[str] = []
    for profile in cluster.profiles:
        spec_hashes.append(device_spec_hash(spec, profile))
        fingerprints.append(
            device_request_fingerprint(trace, spec, profile, slack_margin)
        )
    lookups = [
        store.lookup(fingerprint, config_hash, spec_hash)
        for fingerprint, spec_hash in zip(fingerprints, spec_hashes)
    ]
    hits = tuple(hit is not None for hit in lookups)
    if all(hits):
        strategies = tuple(hit.strategy for hit in lookups)
        predicted = tuple(
            strategy.plans[-1].start_us + strategy.plans[-1].duration_us
            for strategy in strategies
        )
        target = max(predicted)
        return CachedReclaimResult(
            strategy=ClusterStrategy(
                workload=trace.name,
                # The tightest barrier the stored plans were built for:
                # the straggler's predicted arrival.
                target_compute_us=target,
                allreduce_us=spec.allreduce_us,
                straggler_id=predicted.index(target),
                frequencies_mhz=tuple(
                    strategy.plans[-1].freq_mhz for strategy in strategies
                ),
                predicted_compute_us=predicted,
                strategies=strategies,
            ),
            hits=hits,
            computed=False,
        )
    tables = build_frequency_tables(cluster, trace, workers=workers)
    strategy = reclaim_slack(
        tables,
        trace.name,
        allreduce_us=spec.allreduce_us,
        slack_margin=slack_margin,
    )
    for fingerprint, spec_hash, device_strategy in zip(
        fingerprints, spec_hashes, strategy.strategies
    ):
        store.put(fingerprint, device_strategy, config_hash, spec_hash)
    return CachedReclaimResult(strategy=strategy, hits=hits, computed=True)
