"""Interconnect and collective-communication model of the cluster.

Data-parallel training synchronises gradients once per step with an
all-reduce.  The dominant algorithm on ring-connected accelerators is the
*ring all-reduce* (reduce-scatter followed by all-gather): each of the
``N`` devices sends its payload around the ring twice in ``2 * (N - 1)``
pipelined phases, moving ``2 * (N - 1) / N`` of the payload over its
slowest link.  The standard cost law is therefore

    t = 2 * (N - 1) / N * payload / bandwidth  +  2 * (N - 1) * latency

which this module implements verbatim.  The collective is a *barrier*:
no device leaves the all-reduce before the slowest device has arrived,
which is exactly the property the slack-reclamation pass in
:mod:`repro.cluster.dvfs` exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import gbps_to_bytes_per_us


@dataclass(frozen=True)
class InterconnectSpec:
    """Per-link characteristics of the device interconnect.

    Attributes:
        link_bandwidth_gbps: sustained point-to-point bandwidth of one
            ring link, in GB/s (HCCS-class links sustain tens of GB/s).
        link_latency_us: per-phase software + wire latency of one ring
            hop, in microseconds.
    """

    link_bandwidth_gbps: float = 50.0
    link_latency_us: float = 12.0

    def __post_init__(self) -> None:
        if self.link_bandwidth_gbps <= 0:
            raise ConfigurationError(
                f"link_bandwidth_gbps must be positive: "
                f"{self.link_bandwidth_gbps}"
            )
        if self.link_latency_us < 0:
            raise ConfigurationError(
                f"link_latency_us must be non-negative: {self.link_latency_us}"
            )

    def allreduce_us(self, payload_bytes: float, n_devices: int) -> float:
        """Ring all-reduce wall time for one gradient exchange.

        A single device has nothing to exchange; the collective is free.

        Raises:
            ConfigurationError: on a non-positive device count or a
                negative payload.
        """
        if n_devices < 1:
            raise ConfigurationError(
                f"n_devices must be >= 1: {n_devices}"
            )
        if payload_bytes < 0:
            raise ConfigurationError(
                f"payload_bytes must be non-negative: {payload_bytes}"
            )
        if n_devices == 1:
            return 0.0
        phases = 2 * (n_devices - 1)
        transferred = payload_bytes * phases / n_devices
        bandwidth = gbps_to_bytes_per_us(self.link_bandwidth_gbps)
        return transferred / bandwidth + phases * self.link_latency_us
