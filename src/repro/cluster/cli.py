"""Command-line entry point: ``python -m repro.cluster``.

Simulates one data-parallel training step on an N-device fleet, applies
slack reclamation (and optionally the fleet GA), and prints the
per-device table plus the fleet summary.

Examples::

    python -m repro.cluster gpt3 --scale 0.02 --devices 8
    python -m repro.cluster bert --scale 0.05 --ga --workers 4
    python -m repro.cluster gpt3 --scale 0.02 --degrade 3 --slowdown 1.3
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.cluster.dvfs import (
    build_frequency_tables,
    reclaim_slack,
    search_cluster_frequencies,
)
from repro.cluster.simulator import SimulatedCluster
from repro.cluster.spec import ClusterSpec
from repro.core.report import format_table
from repro.dvfs.ga import GaConfig
from repro.errors import ReproError
from repro.workloads import generate, workload_names


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description=(
            "Simulate synchronous data-parallel training on a fleet of "
            "varied NPUs and reclaim barrier slack with per-device DVFS."
        ),
    )
    parser.add_argument(
        "workload",
        nargs="?",
        default="gpt3",
        help=f"workload name (one of: {', '.join(workload_names())})",
    )
    parser.add_argument(
        "--scale", type=float, default=0.05, help="workload scale"
    )
    parser.add_argument(
        "--devices", type=int, default=8, help="fleet size"
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--gradient-mb",
        type=float,
        default=64.0,
        help="all-reduce payload per step, in MiB",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="processes for the table build (0 = inline)",
    )
    parser.add_argument(
        "--ga",
        action="store_true",
        help="also run the fleet GA objective after reclamation",
    )
    parser.add_argument(
        "--iterations", type=int, default=80, help="GA iterations"
    )
    parser.add_argument(
        "--population", type=int, default=40, help="GA population size"
    )
    parser.add_argument(
        "--degrade",
        type=int,
        default=None,
        metavar="DEVICE",
        help="degrade one device and show the re-targeted reclamation",
    )
    parser.add_argument(
        "--slowdown",
        type=float,
        default=1.3,
        help="duration multiplier of the degraded device",
    )
    return parser


def _print_step(title: str, report_text: str) -> None:
    print(f"== {title} ==")
    print(report_text)
    print()


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        trace = generate(args.workload, scale=args.scale, seed=args.seed)
        spec = ClusterSpec(
            n_devices=args.devices,
            gradient_bytes=args.gradient_mb * 2**20,
            seed=args.seed,
        )
        cluster = SimulatedCluster(spec)
        baseline = cluster.run_step(trace)
        tables = build_frequency_tables(cluster, trace, workers=args.workers)
        plan = reclaim_slack(
            tables, trace.name, allreduce_us=spec.allreduce_us
        )
        reclaimed = cluster.run_step(
            trace, plan.strategies, target_compute_us=plan.target_compute_us
        )
        _print_step(
            f"slack reclamation ({args.devices} devices)",
            reclaimed.report(baseline).render(),
        )
        if args.ga:
            ga_plan, ga_result, breakdown = search_cluster_frequencies(
                tables,
                trace.name,
                allreduce_us=spec.allreduce_us,
                config=GaConfig(
                    population_size=args.population,
                    iterations=args.iterations,
                    seed=args.seed,
                    patience=30,
                ),
            )
            ga_step = cluster.run_step(
                trace,
                ga_plan.strategies,
                target_compute_us=ga_plan.target_compute_us,
            )
            _print_step(
                f"fleet GA ({ga_result.generations} generations, "
                f"predicted step {breakdown.step_us / 1000.0:.2f} ms)",
                ga_step.report(baseline).render(),
            )
        if args.degrade is not None:
            degraded_cluster = SimulatedCluster(
                spec.with_degraded_device(
                    args.degrade, args.slowdown, reason="cli --degrade"
                )
            )
            stale = degraded_cluster.run_step(
                trace,
                plan.strategies,
                target_compute_us=plan.target_compute_us,
            )
            rows = [i.to_row() for i in stale.incidents]
            print(f"== stale plan on degraded device {args.degrade} ==")
            print(format_table(rows) if rows else "(no overruns)")
            print()
            degraded_tables = build_frequency_tables(
                degraded_cluster, trace, workers=args.workers
            )
            new_plan = reclaim_slack(
                degraded_tables, trace.name, allreduce_us=spec.allreduce_us
            )
            degraded_baseline = degraded_cluster.run_step(trace)
            retargeted = degraded_cluster.run_step(
                trace,
                new_plan.strategies,
                target_compute_us=new_plan.target_compute_us,
            )
            _print_step(
                f"re-targeted reclamation (straggler now device "
                f"{new_plan.straggler_id})",
                retargeted.report(degraded_baseline).render(),
            )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
