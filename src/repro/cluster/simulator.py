"""Data-parallel step execution over N varied devices.

Synchronous data parallelism replays the *same* operator trace on every
device, then exchanges gradients in a ring all-reduce.  The all-reduce
is a barrier: the step completes at

    step = max_d(compute_d) + allreduce

and every faster device spends ``max_d(compute_d) - compute_d`` waiting,
idling at whatever frequency its DVFS plan parked it at.  That wait is
not free — idle power at the barrier is integrated with the same RC
thermal model as everywhere else — and it is exactly the slack the
cluster DVFS pass reclaims.

The simulator also acts as the fleet's watchdog: when a step runs under
a reclaimed plan (``target_compute_us`` provided), any device arriving
measurably after the plan's target is recorded as a ``barrier_overrun``
in the cluster's :class:`~repro.dvfs.guard.IncidentLog` — the signal
that the slack plan is stale (e.g. a device degraded into the new
straggler) and must be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.device import ClusterDevice
from repro.cluster.spec import ClusterSpec, DeviceProfile
from repro.core.report import ClusterResult
from repro.dvfs.guard import GuardConfig, Incident, IncidentLog
from repro.dvfs.strategy import DvfsStrategy
from repro.errors import ConfigurationError
from repro.npu.device import ExecutionResult
from repro.npu.execution import GroundTruthEvaluator
from repro.units import US_PER_S
from repro.workloads.trace import Trace

#: Relative lateness at the barrier that counts as an overrun.
BARRIER_OVERRUN_TOLERANCE = 0.005


@dataclass(frozen=True)
class DeviceStepOutcome:
    """One device's share of a training step."""

    device_id: int
    #: Time the device took to finish its compute (arrival at the barrier).
    compute_us: float
    #: Barrier wait: how long the device idled for the straggler.
    wait_us: float
    #: Frequency the device idled at during wait + all-reduce.
    idle_freq_mhz: float
    #: Compute-phase energy.
    aicore_energy_j: float
    soc_energy_j: float
    #: Idle energy over wait + all-reduce.
    idle_aicore_energy_j: float
    idle_soc_energy_j: float
    end_celsius: float
    execution: ExecutionResult

    @property
    def total_soc_energy_j(self) -> float:
        """Compute plus barrier-idle SoC energy for the step."""
        return self.soc_energy_j + self.idle_soc_energy_j

    @property
    def total_aicore_energy_j(self) -> float:
        """Compute plus barrier-idle AICore energy for the step."""
        return self.aicore_energy_j + self.idle_aicore_energy_j


@dataclass(frozen=True)
class ClusterStepResult:
    """Outcome of one synchronous training step across the fleet."""

    cluster_name: str
    workload: str
    compute_us: float
    allreduce_us: float
    straggler_id: int
    devices: tuple[DeviceStepOutcome, ...]
    incidents: tuple[Incident, ...] = ()

    @property
    def step_us(self) -> float:
        """Wall time of the step: slowest arrival plus the collective."""
        return self.compute_us + self.allreduce_us

    @property
    def fleet_soc_energy_j(self) -> float:
        """Total SoC energy across all devices, barrier idling included."""
        return sum(d.total_soc_energy_j for d in self.devices)

    @property
    def fleet_aicore_energy_j(self) -> float:
        """Total AICore energy across all devices."""
        return sum(d.total_aicore_energy_j for d in self.devices)

    @property
    def fleet_soc_avg_watts(self) -> float:
        """Fleet-wide (summed) average SoC power over the step."""
        return self.fleet_soc_energy_j / (self.step_us / US_PER_S)

    def device_rows(self, top_k: int = 8) -> list[dict]:
        """Straggler top-k table rows plus one fleet-remainder summary.

        The ``top_k`` slowest arrivals (straggler first), then a single
        aggregate row for the remaining ``N - top_k`` devices — O(top_k)
        rows at any fleet size, and the same shape
        :meth:`repro.fleet.simulator.FleetStepResult.device_rows`
        produces, so reports stay comparable across the two simulators.
        """
        order = sorted(
            range(len(self.devices)),
            key=lambda i: -self.devices[i].compute_us,
        )
        rows = [
            {
                "device": d.device_id,
                "compute_ms": round(d.compute_us / 1000.0, 3),
                "wait_ms": round(d.wait_us / 1000.0, 3),
                "idle_mhz": round(d.idle_freq_mhz),
                "soc_j": round(d.total_soc_energy_j, 3),
                "aicore_j": round(d.total_aicore_energy_j, 3),
                "straggler": "*" if d.device_id == self.straggler_id else "",
            }
            for d in (self.devices[i] for i in order[:top_k])
        ]
        rest = [self.devices[i] for i in order[top_k:]]
        if rest:
            rows.append(
                {
                    "device": f"(+{len(rest)} faster)",
                    "compute_ms": round(
                        sum(d.compute_us for d in rest) / len(rest) / 1000.0,
                        3,
                    ),
                    "wait_ms": round(
                        sum(d.wait_us for d in rest) / len(rest) / 1000.0, 3
                    ),
                    "idle_mhz": "",
                    "soc_j": round(
                        sum(d.total_soc_energy_j for d in rest), 3
                    ),
                    "aicore_j": round(
                        sum(d.total_aicore_energy_j for d in rest), 3
                    ),
                    "straggler": "",
                }
            )
        return rows

    def report(self, baseline: "ClusterStepResult") -> ClusterResult:
        """Compare this step against a baseline step of the same workload."""
        return ClusterResult(
            cluster_name=self.cluster_name,
            workload=self.workload,
            n_devices=len(self.devices),
            baseline_step_us=baseline.step_us,
            step_us=self.step_us,
            allreduce_us=self.allreduce_us,
            baseline_soc_energy_j=baseline.fleet_soc_energy_j,
            soc_energy_j=self.fleet_soc_energy_j,
            baseline_aicore_energy_j=baseline.fleet_aicore_energy_j,
            aicore_energy_j=self.fleet_aicore_energy_j,
            straggler_id=self.straggler_id,
            device_rows=tuple(self.device_rows()),
            incidents=self.incidents,
        )


class SimulatedCluster:
    """N :class:`ClusterDevice` members behind one ring interconnect.

    All devices share one memoised ground-truth evaluator (operator
    timing is temperature-independent, and speed bins wrap the evaluator
    per device), so a fleet-wide step costs barely more than N trace
    replays.
    """

    def __init__(
        self, spec: ClusterSpec, guard: GuardConfig | None = None
    ) -> None:
        self._spec = spec
        self._evaluator = GroundTruthEvaluator(spec.npu)
        self._profiles = spec.device_profiles()
        self._devices = tuple(
            ClusterDevice(
                profile,
                spec.npu,
                base_evaluator=self._evaluator,
                guard=guard,
                seed=spec.seed,
            )
            for profile in self._profiles
        )
        self._log = IncidentLog()

    @property
    def spec(self) -> ClusterSpec:
        """The cluster description."""
        return self._spec

    @property
    def devices(self) -> tuple[ClusterDevice, ...]:
        """The ring members, in device order."""
        return self._devices

    @property
    def profiles(self) -> tuple[DeviceProfile, ...]:
        """The realised per-device variation."""
        return self._profiles

    @property
    def incident_log(self) -> IncidentLog:
        """Cluster-level incidents (barrier overruns), across all steps."""
        return self._log

    def run_step(
        self,
        trace: Trace,
        strategies: Sequence[DvfsStrategy] | None = None,
        target_compute_us: float | None = None,
        initial_celsius: Sequence[float] | None = None,
    ) -> ClusterStepResult:
        """Execute one synchronous training step.

        Args:
            trace: the operator sequence every device replays.
            strategies: one DVFS strategy per device (``None`` runs the
                uniform maximum-frequency baseline on every device).
            target_compute_us: the arrival target the strategies were
                planned for; devices arriving later than the tolerance
                are logged as barrier overruns.
            initial_celsius: per-device starting temperatures (``None``
                starts each device at its own board ambient).

        Raises:
            ConfigurationError: on strategy/temperature count mismatch.
        """
        n = len(self._devices)
        if strategies is not None and len(strategies) != n:
            raise ConfigurationError(
                f"{len(strategies)} strategies for {n} devices"
            )
        if initial_celsius is not None and len(initial_celsius) != n:
            raise ConfigurationError(
                f"{len(initial_celsius)} initial temperatures for {n} devices"
            )
        executions: list[tuple[ExecutionResult, float]] = []
        for i, member in enumerate(self._devices):
            strategy = strategies[i] if strategies is not None else None
            celsius = initial_celsius[i] if initial_celsius else None
            executions.append(member.run(trace, strategy, celsius))

        compute = [result.duration_us for result, _ in executions]
        compute_us = max(compute)
        straggler_id = compute.index(compute_us)
        allreduce_us = self._spec.allreduce_us

        incidents_before = len(self._log)
        if target_compute_us is not None:
            for device_id, arrival in enumerate(compute):
                lateness = (arrival - target_compute_us) / target_compute_us
                if lateness > BARRIER_OVERRUN_TOLERANCE:
                    self._log.record(
                        "barrier_overrun",
                        time_us=arrival,
                        detail=(
                            f"device {device_id} arrived {arrival:.0f} us, "
                            f"{lateness:.1%} past the planned barrier at "
                            f"{target_compute_us:.0f} us"
                        ),
                    )

        outcomes: list[DeviceStepOutcome] = []
        for device_id, (member, (result, idle_freq)) in enumerate(
            zip(self._devices, executions)
        ):
            wait_us = compute_us - result.duration_us
            idle_aicore, idle_soc, end_celsius = member.idle(
                wait_us + allreduce_us,
                idle_freq,
                result.end_celsius,
            )
            outcomes.append(
                DeviceStepOutcome(
                    device_id=device_id,
                    compute_us=result.duration_us,
                    wait_us=wait_us,
                    idle_freq_mhz=idle_freq,
                    aicore_energy_j=result.aicore_energy_j,
                    soc_energy_j=result.soc_energy_j,
                    idle_aicore_energy_j=idle_aicore,
                    idle_soc_energy_j=idle_soc,
                    end_celsius=end_celsius,
                    execution=result,
                )
            )
        return ClusterStepResult(
            cluster_name=self._spec.name,
            workload=trace.name,
            compute_us=compute_us,
            allreduce_us=allreduce_us,
            straggler_id=straggler_id,
            devices=tuple(outcomes),
            incidents=self._log.incidents[incidents_before:],
        )

    def run_steps(
        self,
        trace: Trace,
        strategies: Sequence[DvfsStrategy] | None = None,
        steps: int = 3,
        target_compute_us: float | None = None,
    ) -> list[ClusterStepResult]:
        """Run consecutive steps with the thermal state carried across."""
        if steps < 1:
            raise ConfigurationError(f"steps must be >= 1: {steps}")
        results: list[ClusterStepResult] = []
        celsius: Sequence[float] | None = None
        for _ in range(steps):
            result = self.run_step(
                trace, strategies, target_compute_us, celsius
            )
            results.append(result)
            celsius = [d.end_celsius for d in result.devices]
        return results
