"""Global switch for the batched cold-path pipeline.

The offline strategy-generation pipeline (profile -> fit -> score) has two
implementations: the scalar reference path, which mirrors the paper's
sequential flow operator by operator, and a batched NumPy path that
computes the same quantities array-at-a-time (one-pass multi-frequency
profiling, stacked model fits, grouped scorer tables).  The batched path
reproduces the reference bit for bit — including the measurement-noise RNG
stream — so :class:`~repro.dvfs.ga.GaResult.best_genes` are byte-identical
either way; this module is the escape hatch that forces the reference
implementations globally, mirroring :func:`repro.npu.engine.reference_only`
for the execution engine.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_BATCHED_ENABLED = True


def batched_cold_path_enabled() -> bool:
    """Whether the batched cold-path pipeline is globally enabled."""
    return _BATCHED_ENABLED


def set_batched_cold_path(enabled: bool) -> None:
    """Globally enable/disable the batched cold path (reference fallback)."""
    global _BATCHED_ENABLED
    _BATCHED_ENABLED = bool(enabled)


@contextmanager
def reference_cold_path() -> Iterator[None]:
    """Context manager forcing the scalar cold path (A/B comparisons)."""
    previous = _BATCHED_ENABLED
    set_batched_cold_path(False)
    try:
        yield
    finally:
        set_batched_cold_path(previous)
