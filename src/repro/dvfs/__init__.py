"""DVFS strategy generation and execution (paper Sect. 6 and 7.1).

Classification routes operators into bottleneck classes; preprocessing
builds the LFC/HFC frequency-candidate stages; the genetic algorithm
searches stage frequencies against the fitted performance/power models;
the executor compiles the winning strategy into SetFreq dispatches and
plays it on the device.
"""

from repro.dvfs.classification import (
    Bottleneck,
    ClassifiedOperator,
    FREQUENCY_SENSITIVE_BOTTLENECKS,
    LATENCY_BOUND_THRESHOLD,
    bottleneck_histogram,
    classify_operator,
    classify_operators,
)
from repro.dvfs.executor import DvfsExecutor, ExecutionOutcome
from repro.dvfs.ga import GaConfig, GaResult, initial_population, run_search
from repro.dvfs.guard import (
    GuardConfig,
    GuardedDvfsExecutor,
    GuardedFrequencyPlan,
    GuardedOutcome,
    Incident,
    IncidentLog,
)
from repro.dvfs.model_free import ModelFreeScorer
from repro.dvfs.sensitivity import (
    OperatorTradeCurve,
    TradePoint,
    operator_trade_curve,
    rank_by_exchange_rate,
)
from repro.dvfs.preprocessing import (
    DEFAULT_ADJUSTMENT_INTERVAL_US,
    PreprocessResult,
    SIGNIFICANT_GAP_US,
    Stage,
    StageKind,
    preprocess,
)
from repro.dvfs.scoring import (
    PopulationEvaluation,
    ScoreBreakdown,
    StageTables,
    StrategyScorer,
)
from repro.dvfs.surrogate import (
    SurrogateConfig,
    SurrogateModel,
    exact_search_only,
    fit_surrogate,
    set_surrogate_search_allowed,
    surrogate_search_allowed,
)
from repro.dvfs.strategy import (
    DvfsStrategy,
    StagePlan,
    constant_strategy,
    strategy_from_genes,
)

__all__ = [
    "Bottleneck",
    "ClassifiedOperator",
    "DEFAULT_ADJUSTMENT_INTERVAL_US",
    "DvfsExecutor",
    "DvfsStrategy",
    "ExecutionOutcome",
    "FREQUENCY_SENSITIVE_BOTTLENECKS",
    "GaConfig",
    "GaResult",
    "GuardConfig",
    "GuardedDvfsExecutor",
    "GuardedFrequencyPlan",
    "GuardedOutcome",
    "Incident",
    "IncidentLog",
    "LATENCY_BOUND_THRESHOLD",
    "ModelFreeScorer",
    "OperatorTradeCurve",
    "TradePoint",
    "PopulationEvaluation",
    "PreprocessResult",
    "SIGNIFICANT_GAP_US",
    "ScoreBreakdown",
    "Stage",
    "StageKind",
    "StagePlan",
    "StageTables",
    "StrategyScorer",
    "SurrogateConfig",
    "SurrogateModel",
    "bottleneck_histogram",
    "classify_operator",
    "classify_operators",
    "constant_strategy",
    "exact_search_only",
    "fit_surrogate",
    "initial_population",
    "operator_trade_curve",
    "preprocess",
    "rank_by_exchange_rate",
    "run_search",
    "set_surrogate_search_allowed",
    "strategy_from_genes",
    "surrogate_search_allowed",
]
