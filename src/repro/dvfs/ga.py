"""Genetic-algorithm search over stage frequencies (paper Sect. 6.3).

Individuals assign one grid frequency to each preprocessing stage.  The
initial population seeds the baseline (all stages at the maximum frequency)
and the *prior* individual (LFC stages at 1600 MHz, HFC at 1800 MHz —
Sect. 6.3.1), filling the rest with uniform-random strategies.  Each
generation keeps an elite, then fills the population by score-proportional
(roulette) selection with tail-swap crossover and point mutation
(Sect. 6.3.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.dvfs.preprocessing import Stage, StageKind
from repro.dvfs.scoring import StrategyScorer
from repro.dvfs.surrogate import (
    SurrogateConfig,
    fit_surrogate,
    surrogate_search_allowed,
)
from repro.errors import StrategyError


@dataclass(frozen=True)
class GaConfig:
    """Search hyper-parameters (defaults follow Sect. 7.4)."""

    population_size: int = 200
    iterations: int = 600
    mutation_rate: float = 0.15
    crossover_rate: float = 0.7
    elite_count: int = 2
    seed: int = 0
    #: Stop early after this many generations without best-score
    #: improvement (0 disables early stopping).  The paper observes
    #: convergence within 500 of 600 iterations; patience trims the idle
    #: tail without changing the result.
    patience: int = 0
    #: Grid frequency assigned to LFC stages in the prior individual.
    prior_lfc_mhz: float = 1600.0
    #: Grid frequency assigned to HFC stages in the prior individual.
    prior_hfc_mhz: float = 1800.0

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise StrategyError("population_size must be >= 4")
        if self.iterations < 1:
            raise StrategyError("iterations must be >= 1")
        if not 0 <= self.mutation_rate <= 1:
            raise StrategyError(f"mutation_rate out of range: {self.mutation_rate}")
        if not 0 <= self.crossover_rate <= 1:
            raise StrategyError(
                f"crossover_rate out of range: {self.crossover_rate}"
            )
        if self.elite_count < 0 or self.elite_count >= self.population_size:
            raise StrategyError(f"bad elite_count: {self.elite_count}")
        if self.patience < 0:
            raise StrategyError(f"patience must be >= 0: {self.patience}")


@dataclass(frozen=True)
class GaResult:
    """Outcome of one search run.

    ``evaluations`` counts *oracle* (analytical-scorer) evaluations only:
    surrogate matrix passes are free by design and are never included, and
    under elite score carry-over unchanged elites are not re-counted.
    """

    best_genes: np.ndarray
    best_score: float
    #: Best score after each generation (Fig. 17's trajectory).
    history: tuple[float, ...] = field(repr=False)
    generations: int
    evaluations: int
    wall_seconds: float
    #: Whether the multi-fidelity surrogate path produced this result
    #: (False for the exact GA, including surrogate-gate fallbacks).
    surrogate_used: bool = False
    #: Holdout R^2 of the surrogate fit (None on the exact path).
    surrogate_r2: float | None = None

    @property
    def converged_generation(self) -> int:
        """First generation whose best score is within 1e-9 of the final."""
        final = self.history[-1]
        for i, score in enumerate(self.history):
            if abs(score - final) <= 1e-9:
                return i
        return len(self.history) - 1


def initial_population(
    scorer: StrategyScorer,
    stages: tuple[Stage, ...],
    config: GaConfig,
    freqs_mhz: tuple[float, ...],
    rng: np.random.Generator,
) -> np.ndarray:
    """Baseline + prior individuals + uniform-random rest (Sect. 6.3.1).

    Beyond the paper's single (LFC 1600 / HFC 1800) prior, a small family
    of priors at deeper LFC levels and mildly lowered HFC levels is seeded,
    so loose loss budgets start near their region of the search space —
    with hundreds of stages, single-gene mutations alone take too long to
    walk there.
    """
    n_stages = scorer.stage_count
    n_freqs = scorer.frequency_count
    population = rng.integers(
        0, n_freqs, size=(config.population_size, n_stages)
    )
    # Baseline individual: everything at the maximum frequency.
    population[0, :] = n_freqs - 1
    # Prior family: the paper's prior first, then deeper variants.
    prior_levels = [
        (config.prior_lfc_mhz, config.prior_hfc_mhz),
        (1300.0, 1800.0),
        (1000.0, 1800.0),
        (1300.0, 1700.0),
        (1000.0, 1600.0),
        (1200.0, 1500.0),
    ]
    slots = min(len(prior_levels), config.population_size - 1)
    lfc_mask = np.array(
        [stage.kind is StageKind.LFC for stage in stages], dtype=bool
    )
    freqs_arr = np.asarray(freqs_mhz, dtype=float)
    for slot, (lfc_mhz, hfc_mhz) in enumerate(prior_levels[:slots], start=1):
        lfc_index = _nearest_index(freqs_arr, lfc_mhz)
        hfc_index = _nearest_index(freqs_arr, hfc_mhz)
        population[slot, :] = np.where(lfc_mask, lfc_index, hfc_index)
    return population


def _nearest_index(
    freqs_mhz: tuple[float, ...] | np.ndarray, target: float
) -> int:
    """Index of the grid frequency closest to ``target``.

    Accepts a precomputed ndarray so callers in a loop (the prior family
    above) convert the grid once instead of re-allocating per call.
    """
    freqs = (
        freqs_mhz
        if isinstance(freqs_mhz, np.ndarray)
        else np.asarray(freqs_mhz, dtype=float)
    )
    return int(np.argmin(np.abs(freqs - target)))


def _roulette_pick(
    rng: np.random.Generator, cumulative: np.ndarray, count: int
) -> np.ndarray:
    draws = rng.random(count) * cumulative[-1]
    return np.searchsorted(cumulative, draws)


def _breed(
    rng: np.random.Generator,
    population: np.ndarray,
    scores: np.ndarray,
    config: GaConfig,
    pop_size: int,
    n_stages: int,
    n_freqs: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One generation's selection/crossover/mutation.

    Returns ``(elite, elite_scores, children)``.  The RNG draw sequence is
    exactly the former inline loop body's, so exact-path results are
    bit-identical; ``elite_scores`` lets callers carry scores forward
    instead of re-scoring unchanged genes.
    """
    # ``[-k:]`` would return the whole array for ``elite_count == 0`` and
    # silently grow the population; slice from ``pop_size - k`` instead.
    elite_idx = np.argsort(scores)[pop_size - config.elite_count:]
    elite = population[elite_idx].copy()
    elite_scores = scores[elite_idx]

    cumulative = np.cumsum(np.maximum(scores, 1e-12))
    parent_count = pop_size - config.elite_count
    parents_a = population[_roulette_pick(rng, cumulative, parent_count)]
    parents_b = population[_roulette_pick(rng, cumulative, parent_count)]

    children = parents_a.copy()
    # Tail-swap crossover: exchange the last k genes (Sect. 6.3.3).
    do_cross = rng.random(parent_count) < config.crossover_rate
    cut = rng.integers(1, n_stages + 1, size=parent_count)
    # Masked column assignment over the crossing rows — the RNG draws
    # above are unchanged and gene copies are integer-exact, so this
    # is bit-identical to the former per-row tail-swap loop.
    cross_rows = np.nonzero(do_cross)[0]
    if cross_rows.size:
        tail = np.arange(n_stages)[None, :] >= (
            n_stages - cut[cross_rows]
        )[:, None]
        crossed = children[cross_rows]
        crossed[tail] = parents_b[cross_rows][tail]
        children[cross_rows] = crossed
    # Point mutation: one random gene to one random frequency.
    do_mutate = rng.random(parent_count) < config.mutation_rate
    positions = rng.integers(0, n_stages, size=parent_count)
    values = rng.integers(0, n_freqs, size=parent_count)
    mutate_rows = np.nonzero(do_mutate)[0]
    children[mutate_rows, positions[mutate_rows]] = values[mutate_rows]
    return elite, elite_scores, children


def run_search(
    scorer: StrategyScorer,
    stages: tuple[Stage, ...],
    freqs_mhz: tuple[float, ...],
    config: GaConfig | None = None,
    *,
    surrogate: SurrogateConfig | None = None,
) -> GaResult:
    """Run the full GA and return the fittest strategy found.

    Selection probability is proportional to the Eq. (17) score, so
    strategies meeting the performance bound (scored 2x) dominate the
    mating pool while infeasible ones still contribute genetic material.

    With ``surrogate`` enabled (and the scorer exposing its stage tables),
    a multi-fidelity variant runs instead: inner generations score a
    larger exploratory population with a fitted ridge surrogate, and only
    a per-generation top-k plus the final population see the analytical
    oracle — whose score is always the one reported.
    """
    config = config or GaConfig()
    if (
        surrogate is not None
        and surrogate.enabled
        and surrogate_search_allowed()
        and hasattr(scorer, "stage_tables")
    ):
        return _run_search_surrogate(scorer, stages, freqs_mhz, config,
                                     surrogate)
    return _run_search_exact(scorer, stages, freqs_mhz, config)


def _run_search_exact(
    scorer: StrategyScorer,
    stages: tuple[Stage, ...],
    freqs_mhz: tuple[float, ...],
    config: GaConfig,
) -> GaResult:
    """The reference single-fidelity GA (every row oracle-scored)."""
    rng = np.random.default_rng(config.seed)
    population = initial_population(scorer, stages, config, freqs_mhz, rng)
    n_stages = scorer.stage_count
    n_freqs = scorer.frequency_count
    pop_size = config.population_size

    start = time.perf_counter()
    scores = scorer.score(population)
    evaluations = pop_size
    history: list[float] = [float(scores.max())]
    stale_generations = 0

    for _ in range(config.iterations):
        elite, elite_scores, children = _breed(
            rng, population, scores, config, pop_size, n_stages, n_freqs
        )
        population = np.vstack([elite, children])
        # Elite score carry-over: elites are unchanged genes, and the
        # scorer is row-independent (per-row gathers and reductions), so
        # concatenating their previous scores with freshly scored children
        # is bit-identical to re-scoring the stacked population — while
        # charging only ``pop_size - elite_count`` oracle evaluations.
        scores = np.concatenate([elite_scores, scorer.score(children)])
        evaluations += pop_size - config.elite_count
        history.append(float(scores.max()))
        if history[-1] > history[-2] + 1e-12:
            stale_generations = 0
        else:
            stale_generations += 1
            if config.patience and stale_generations >= config.patience:
                break

    best = int(np.argmax(scores))
    return GaResult(
        best_genes=population[best].copy(),
        best_score=float(scores[best]),
        history=tuple(history),
        generations=len(history) - 1,
        evaluations=evaluations,
        wall_seconds=time.perf_counter() - start,
    )


def _run_search_surrogate(
    scorer: StrategyScorer,
    stages: tuple[Stage, ...],
    freqs_mhz: tuple[float, ...],
    config: GaConfig,
    surrogate: SurrogateConfig,
) -> GaResult:
    """Multi-fidelity GA: surrogate exploration, oracle confirmation.

    Oracle evaluations: ``fit rows + top_k * (generations + 1) + final
    population``; the surrogate's matrix passes are not counted.
    """
    start = time.perf_counter()
    rng = np.random.default_rng(config.seed)
    model, fit_evaluations = fit_surrogate(scorer, surrogate, rng)
    if model is None:
        # Quality gate failed: fall back to the exact GA.  The exact run
        # seeds its own fresh RNG, so the returned strategy is identical
        # to a plain exact run; only the fit's oracle labels are added to
        # the count.
        result = _run_search_exact(scorer, stages, freqs_mhz, config)
        return replace(
            result,
            evaluations=result.evaluations + fit_evaluations,
            wall_seconds=time.perf_counter() - start,
        )

    inner = replace(
        config,
        population_size=config.population_size * surrogate.explore_multiplier,
    )
    population = initial_population(scorer, stages, inner, freqs_mhz, rng)
    n_stages = scorer.stage_count
    n_freqs = scorer.frequency_count
    pop_size = inner.population_size
    top_k = min(surrogate.oracle_top_k, pop_size)

    # The per-generation top-k (by surrogate rank) are *collected* here
    # and oracle-scored in one deferred batch below: a small scorer call
    # per generation would pay the fixed gather overhead dozens of times.
    scores = model.score(population)
    shortlists = [population[np.argsort(scores)[pop_size - top_k:]].copy()]
    surrogate_best = float(scores.max())
    stale_generations = 0

    for _ in range(config.iterations):
        elite, elite_scores, children = _breed(
            rng, population, scores, inner, pop_size, n_stages, n_freqs
        )
        population = np.vstack([elite, children])
        scores = np.concatenate([elite_scores, model.score(children)])
        shortlists.append(
            population[np.argsort(scores)[pop_size - top_k:]].copy()
        )
        # Patience watches the surrogate's own best: oracle scores are
        # deliberately not available mid-loop.
        generation_best = float(scores.max())
        if generation_best > surrogate_best + 1e-12:
            surrogate_best = generation_best
            stale_generations = 0
        else:
            stale_generations += 1
            if config.patience and stale_generations >= config.patience:
                break

    # One oracle pass over every shortlisted candidate plus the final
    # full population: the surrogate only chose where to look, never what
    # to return.  ``scorer.score`` is row-independent (per-row gathers
    # and reductions), so the winner's batch score equals its solo score
    # bitwise — GaResult.best_score is always an exact Eq. (17) value.
    candidates = np.vstack(shortlists + [population])
    oracle = scorer.score(candidates)
    evaluations = fit_evaluations + candidates.shape[0]
    best = int(np.argmax(oracle))

    # Oracle best-so-far per generation (Fig. 17-comparable trajectory),
    # reconstructed from the shortlist slices; the final entry includes
    # the full-population re-rank.
    history: list[float] = []
    running = -np.inf
    for g in range(len(shortlists)):
        running = max(running, float(oracle[g * top_k:(g + 1) * top_k].max()))
        history.append(running)
    history[-1] = float(oracle[best])

    return GaResult(
        best_genes=candidates[best].copy(),
        best_score=float(oracle[best]),
        history=tuple(history),
        generations=len(history) - 1,
        evaluations=evaluations,
        wall_seconds=time.perf_counter() - start,
        surrogate_used=True,
        surrogate_r2=model.holdout_r2,
    )
