"""Per-operator frequency-sensitivity analysis (paper Sect. 6 intro).

The paper motivates operator-level DVFS with per-operator trade-offs:
a compute-bound MatMul sacrifices 6.9% performance for a 7.9% power gain,
while a memory-bound Gelu trades ~2% performance for a 5%-or-greater power
gain.  This module computes those trade curves for any operator from its
*fitted* models — the same artefacts the strategy search uses — so users
can inspect why the GA treats operators differently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import CalibrationError, FittingError
from repro.perf.model import WorkloadPerformanceModel
from repro.power.optable import OperatorPowerTable


@dataclass(frozen=True)
class TradePoint:
    """One operator's predicted trade at one frequency."""

    freq_mhz: float
    #: Fractional slowdown versus the maximum frequency.
    performance_loss: float
    #: Fractional AICore power reduction versus the maximum frequency.
    power_gain: float

    @property
    def exchange_rate(self) -> float:
        """Power gained per unit performance lost (higher is better).

        Infinity for operators that gain power at no measurable cost.
        """
        if self.performance_loss <= 0:
            return float("inf")
        return self.power_gain / self.performance_loss


@dataclass(frozen=True)
class OperatorTradeCurve:
    """An operator's full frequency-trade curve."""

    name: str
    op_type: str
    points: tuple[TradePoint, ...]

    def at(self, freq_mhz: float) -> TradePoint:
        """The trade point at a specific frequency.

        Raises:
            FittingError: if the frequency was not evaluated.
        """
        for point in self.points:
            if point.freq_mhz == freq_mhz:
                return point
        raise FittingError(
            f"frequency {freq_mhz} not evaluated for {self.name!r}"
        )

    def best_exchange(self, max_loss: float = 0.05) -> TradePoint | None:
        """The point with the best power-per-performance exchange under a
        loss cap (None if no point satisfies the cap)."""
        candidates = [
            p
            for p in self.points
            if p.performance_loss <= max_loss and p.freq_mhz != self.points[-1].freq_mhz
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda p: p.exchange_rate)


def operator_trade_curve(
    name: str,
    perf_model: WorkloadPerformanceModel,
    power_table: OperatorPowerTable,
    freqs_mhz: Sequence[float],
) -> OperatorTradeCurve:
    """Compute an operator's trade curve from its fitted models.

    Args:
        name: operator name present in both models.
        perf_model: fitted duration predictors.
        power_table: fitted power coefficients.
        freqs_mhz: ascending frequency grid; the last entry is the
            baseline.

    Raises:
        FittingError / CalibrationError: if the operator is unknown.
    """
    if not freqs_mhz:
        raise FittingError("empty frequency grid")
    op_model = perf_model.operators.get(name)
    if op_model is None:
        raise FittingError(f"no performance model for operator {name!r}")
    power_table.entry(name)  # raises CalibrationError if unknown
    baseline_freq = freqs_mhz[-1]
    base_time = op_model.predict_time_us(baseline_freq)
    power_matrix = power_table.aicore_power_matrix([name], freqs_mhz)[0]
    base_power = power_matrix[-1]
    points = []
    for i, freq in enumerate(freqs_mhz):
        time = op_model.predict_time_us(freq)
        points.append(
            TradePoint(
                freq_mhz=float(freq),
                performance_loss=time / base_time - 1.0,
                power_gain=1.0 - power_matrix[i] / base_power,
            )
        )
    return OperatorTradeCurve(
        name=name, op_type=op_model.op_type, points=tuple(points)
    )


def rank_by_exchange_rate(
    perf_model: WorkloadPerformanceModel,
    power_table: OperatorPowerTable,
    freqs_mhz: Sequence[float],
    names: Sequence[str] | None = None,
    max_loss: float = 0.05,
) -> list[tuple[str, TradePoint]]:
    """Rank operators by their best power/performance exchange.

    The best candidates for frequency reduction come first — the ranking
    the LFC/HFC split approximates categorically.
    """
    if names is None:
        names = list(perf_model.operators)
    ranked: list[tuple[str, TradePoint]] = []
    for name in names:
        try:
            curve = operator_trade_curve(
                name, perf_model, power_table, freqs_mhz
            )
        except (FittingError, CalibrationError):
            continue
        best = curve.best_exchange(max_loss)
        if best is not None:
            ranked.append((name, best))
    ranked.sort(key=lambda item: item[1].exchange_rate, reverse=True)
    return ranked
