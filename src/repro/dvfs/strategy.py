"""DVFS strategies: the deployable output of the search.

A :class:`DvfsStrategy` maps the preprocessed stages to target frequencies.
Consecutive stages with the same frequency are collapsed, so the strategy's
``switches`` are exactly the SetFreq operations the executor must issue —
their count is the paper's 'the generated policy triggers 821 SetFreq'
metric.  Strategies serialise to JSON for reuse across runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.dvfs.preprocessing import Stage, StageKind
from repro.errors import StrategyError


@dataclass(frozen=True)
class StagePlan:
    """One stage with its assigned frequency.

    ``anchor_op_index`` is the trace index of the stage's first operator;
    the executor anchors the SetFreq trigger to it (Fig. 14).  Idle-only
    stages have no anchor.
    """

    start_us: float
    duration_us: float
    freq_mhz: float
    kind: StageKind
    anchor_op_index: int | None = None


@dataclass(frozen=True)
class DvfsStrategy:
    """A complete frequency plan for one workload iteration."""

    workload: str
    performance_loss_target: float
    plans: tuple[StagePlan, ...]

    def __post_init__(self) -> None:
        if not self.plans:
            raise StrategyError("a strategy needs at least one stage plan")
        starts = [plan.start_us for plan in self.plans]
        if starts != sorted(starts):
            raise StrategyError("stage plans must be sorted by start time")

    @property
    def initial_freq_mhz(self) -> float:
        """Frequency in effect when the iteration starts."""
        return self.plans[0].freq_mhz

    def switches(self) -> list[tuple[float, float]]:
        """``(time_us, freq_mhz)`` change points, same-frequency collapsed.

        The length of this list is the SetFreq count per iteration.
        """
        result: list[tuple[float, float]] = []
        current = self.plans[0].freq_mhz
        for plan in self.plans[1:]:
            if plan.freq_mhz != current:
                result.append((plan.start_us, plan.freq_mhz))
                current = plan.freq_mhz
        return result

    def anchored_switches(self) -> list[tuple[int, float]]:
        """``(anchor_op_index, freq_mhz)`` change points for the executor.

        Same-frequency runs are collapsed; a change point in an idle-only
        stage anchors to the next stage that has operators.
        """
        result: list[tuple[int, float]] = []
        current = self.plans[0].freq_mhz
        pending_freq: float | None = None
        for plan in self.plans[1:]:
            if plan.freq_mhz != current:
                pending_freq = plan.freq_mhz
                current = plan.freq_mhz
            if pending_freq is not None and plan.anchor_op_index is not None:
                result.append((plan.anchor_op_index, pending_freq))
                pending_freq = None
        return result

    @property
    def setfreq_count(self) -> int:
        """SetFreq operations issued per iteration."""
        return len(self.switches())

    def frequency_histogram(self) -> dict[float, float]:
        """Total planned time per frequency, in microseconds."""
        histogram: dict[float, float] = {}
        for plan in self.plans:
            histogram[plan.freq_mhz] = histogram.get(plan.freq_mhz, 0.0) + (
                plan.duration_us
            )
        return histogram

    def mean_lfc_freq_mhz(self) -> float | None:
        """Time-weighted mean frequency over LFC stages (None if no LFC)."""
        total = 0.0
        weight = 0.0
        for plan in self.plans:
            if plan.kind is StageKind.LFC:
                total += plan.freq_mhz * plan.duration_us
                weight += plan.duration_us
        if weight == 0:
            return None
        return total / weight

    def to_json(self) -> str:
        """Serialise to a JSON document."""
        payload = {
            "workload": self.workload,
            "performance_loss_target": self.performance_loss_target,
            "plans": [
                {
                    "start_us": plan.start_us,
                    "duration_us": plan.duration_us,
                    "freq_mhz": plan.freq_mhz,
                    "kind": plan.kind.value,
                    "anchor_op_index": plan.anchor_op_index,
                }
                for plan in self.plans
            ],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, document: str) -> "DvfsStrategy":
        """Deserialise from :meth:`to_json` output.

        Raises:
            StrategyError: on malformed documents.
        """
        try:
            payload = json.loads(document)
            plans = tuple(
                StagePlan(
                    start_us=float(item["start_us"]),
                    duration_us=float(item["duration_us"]),
                    freq_mhz=float(item["freq_mhz"]),
                    kind=StageKind(item["kind"]),
                    anchor_op_index=(
                        None
                        if item.get("anchor_op_index") is None
                        else int(item["anchor_op_index"])
                    ),
                )
                for item in payload["plans"]
            )
            return cls(
                workload=payload["workload"],
                performance_loss_target=float(
                    payload["performance_loss_target"]
                ),
                plans=plans,
            )
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise StrategyError(f"malformed strategy document: {exc}") from exc

    def save(self, path: str | Path) -> None:
        """Write the strategy to a JSON file."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "DvfsStrategy":
        """Read a strategy from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


def strategy_from_genes(
    workload: str,
    stages: Sequence[Stage],
    genes: Sequence[int] | np.ndarray,
    freqs_mhz: Sequence[float],
    performance_loss_target: float,
) -> DvfsStrategy:
    """Assemble a strategy from GA genes and the preprocessed stages.

    Raises:
        StrategyError: if gene and stage counts disagree.
    """
    genes = list(np.asarray(genes, dtype=int))
    if len(genes) != len(stages):
        raise StrategyError(
            f"gene count {len(genes)} != stage count {len(stages)}"
        )
    plans = tuple(
        StagePlan(
            start_us=stage.start_us,
            duration_us=stage.duration_us,
            freq_mhz=float(freqs_mhz[gene]),
            kind=stage.kind,
            anchor_op_index=(
                stage.op_indices[0] if stage.op_indices else None
            ),
        )
        for stage, gene in zip(stages, genes)
    )
    return DvfsStrategy(
        workload=workload,
        performance_loss_target=performance_loss_target,
        plans=plans,
    )


def constant_strategy(
    workload: str, freq_mhz: float, duration_us: float
) -> DvfsStrategy:
    """A strategy holding one frequency for a whole iteration."""
    return DvfsStrategy(
        workload=workload,
        performance_loss_target=1.0,
        plans=(
            StagePlan(
                start_us=0.0,
                duration_us=duration_us,
                freq_mhz=freq_mhz,
                kind=StageKind.LFC,
            ),
        ),
    )
