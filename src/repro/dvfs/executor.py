"""DVFS strategy execution (paper Sect. 7.1, Fig. 14).

The executor turns a strategy into SetFreq dispatches on a dedicated
stream: for each frequency change at time ``s_i``, the SetFreq is
dispatched one latency *ahead* (at ``s_i - latency``), so the new frequency
takes effect exactly at the intended point.  Event record/wait
synchronisation between the compute and SetFreq streams is what makes this
precise on real hardware; the simulator gets the same effect from the
latency arithmetic.

When the hardware's control latency exceeds the planning latency — the
Fig. 18 experiment adds 14 ms to mimic an NVIDIA V100 — frequencies take
effect late: LFC operators burn power at high frequency and HFC operators
run slow at low frequency, eroding both savings and performance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dvfs.strategy import DvfsStrategy
from repro.errors import StrategyError
from repro.npu.device import ExecutionResult, NpuDevice
from repro.npu.setfreq import (
    AnchoredFrequencyPlan,
    AnchoredSwitch,
    FrequencyTimeline,
    SetFreqCommand,
)
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class ExecutionOutcome:
    """A strategy's measured outcome next to its baseline."""

    strategy: DvfsStrategy
    result: ExecutionResult
    baseline: ExecutionResult

    @property
    def performance_loss(self) -> float:
        """Fractional iteration-time increase versus the baseline."""
        return (
            self.result.duration_us - self.baseline.duration_us
        ) / self.baseline.duration_us

    @property
    def aicore_power_reduction(self) -> float:
        """Fractional AICore average-power reduction versus the baseline."""
        return 1.0 - self.result.aicore_avg_watts / self.baseline.aicore_avg_watts

    @property
    def soc_power_reduction(self) -> float:
        """Fractional SoC average-power reduction versus the baseline."""
        return 1.0 - self.result.soc_avg_watts / self.baseline.soc_avg_watts


class DvfsExecutor:
    """Compiles strategies to SetFreq dispatches and runs them."""

    def __init__(self, device: NpuDevice) -> None:
        self._device = device

    @property
    def device(self) -> NpuDevice:
        """The device strategies execute on."""
        return self._device

    def compile(self, strategy: DvfsStrategy) -> AnchoredFrequencyPlan:
        """Build the operator-anchored frequency plan for this device.

        Each change point anchors to its stage's first operator: SetFreq is
        dispatched one latency ahead on the side stream, and Event
        Record/Wait synchronisation makes the change effective exactly when
        the anchor operator starts (Fig. 14).  Any *extra* hardware delay
        beyond the documented latency (``SetFreqSpec.extra_delay_us``) is
        invisible to the planner, so the change lands late — exactly the
        V100 comparison of Fig. 18.
        """
        grid = self._device.npu.frequencies
        anchors = []
        for op_index, freq in strategy.anchored_switches():
            grid.validate(freq)
            anchors.append(AnchoredSwitch(op_index=op_index, freq_mhz=freq))
        grid.validate(strategy.initial_freq_mhz)
        return AnchoredFrequencyPlan(
            initial_mhz=strategy.initial_freq_mhz,
            anchors=tuple(anchors),
            extra_delay_us=self._device.npu.setfreq.extra_delay_us,
        )

    def compile_wall_clock(self, strategy: DvfsStrategy) -> FrequencyTimeline:
        """Build the naive wall-clock timeline (no operator anchoring).

        Provided for comparison: without event synchronisation, switches
        fire at the *planned* (baseline) times, which drift away from the
        shifted execution — an ablation of the Fig. 14 mechanism.
        """
        setfreq = self._device.npu.setfreq
        commands = [
            SetFreqCommand(
                dispatch_time_us=max(0.0, time_us - setfreq.latency_us),
                target_mhz=freq,
            )
            for time_us, freq in strategy.switches()
        ]
        return FrequencyTimeline.from_commands(
            initial_mhz=strategy.initial_freq_mhz,
            commands=commands,
            setfreq=setfreq,
            grid=self._device.npu.frequencies,
        )

    def validate(self, trace: Trace, strategy: DvfsStrategy) -> None:
        """Check that a strategy is executable against a trace.

        Strategies are keyed to operator indices; applying one generated
        for a different (or truncated) trace would silently skip switches.

        Raises:
            StrategyError: on anchor indices outside the trace, or a
                workload-name mismatch.
        """
        if strategy.workload != trace.name:
            raise StrategyError(
                f"strategy was generated for workload "
                f"{strategy.workload!r}, not {trace.name!r}"
            )
        for op_index, _ in strategy.anchored_switches():
            if op_index >= trace.operator_count:
                raise StrategyError(
                    f"strategy anchors operator index {op_index} but the "
                    f"trace has only {trace.operator_count} operators"
                )

    def execute(
        self, trace: Trace, strategy: DvfsStrategy, stable: bool = True
    ) -> ExecutionResult:
        """Run one iteration under the compiled strategy.

        Raises:
            StrategyError: if the strategy does not fit the trace.
        """
        self.validate(trace, strategy)
        timeline = self.compile(strategy)
        if stable:
            return self._device.run_stable(trace, timeline)
        return self._device.run(trace, timeline)

    def execute_with_baseline(
        self, trace: Trace, strategy: DvfsStrategy, stable: bool = True
    ) -> ExecutionOutcome:
        """Run the strategy and the max-frequency baseline, and compare."""
        baseline_timeline = FrequencyTimeline.constant(
            self._device.npu.max_frequency_mhz
        )
        if stable:
            baseline = self._device.run_stable(trace, baseline_timeline)
        else:
            baseline = self._device.run(trace, baseline_timeline)
        result = self.execute(trace, strategy, stable=stable)
        return ExecutionOutcome(
            strategy=strategy, result=result, baseline=baseline
        )
