"""Strategy scoring against the fitted models (paper Sect. 6.3.2, Eq. 17).

For a candidate strategy (one frequency per preprocessing stage), the
performance and power models predict the resulting iteration time and
average power.  Everything is precomputed into per-stage lookup tables so a
whole GA population is scored with a few vectorised gathers — this speed is
the paper's argument for model-based over model-free search (Sect. 8.1:
~milliseconds per policy, 20,000 strategies within 5 minutes).

Scoring follows Eq. (17): individuals are rewarded with (normalised)
``2 * Per^2 / Power`` when they meet the performance lower bound and get
half that score as a penalty when they do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.batching import batched_cold_path_enabled
from repro.dvfs.preprocessing import Stage
from repro.errors import StrategyError
from repro.perf.model import WorkloadPerformanceModel
from repro.power.optable import OperatorPowerTable
from repro.units import US_PER_S
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class StageTables:
    """Read-only views of the scorer's per-stage frequency lookup tables.

    ``time_us``/``aicore_energy``/``soc_energy`` are ``(stages, freqs)``
    arrays; ``volts`` is the ``(freqs,)`` rail voltage per grid frequency.
    The surrogate fitter consumes these to build its gene-indexed feature
    aggregates without re-deriving anything from the models.
    """

    time_us: np.ndarray
    aicore_energy: np.ndarray
    soc_energy: np.ndarray
    volts: np.ndarray


@dataclass(frozen=True)
class ScoreBreakdown:
    """Model-predicted outcome of one strategy."""

    time_us: float
    aicore_watts: float
    soc_watts: float
    delta_celsius: float
    score: float
    meets_target: bool

    @property
    def performance(self) -> float:
        """Iterations per second under the strategy."""
        return US_PER_S / self.time_us


class StrategyScorer:
    """Vectorised Eq. (17) scorer over the preprocessed stages.

    Args:
        trace: the workload iteration being optimised.
        stages: preprocessing output (candidate points).
        perf_model: fitted per-operator duration predictors.
        power_table: fitted per-operator power coefficients.
        freqs_mhz: the hardware frequency grid (genes index into this).
        performance_loss_target: allowed fractional slowdown (0.02 = 2%).
        objective: which rail's power the score minimises
            (``"aicore"`` like the paper's AICore optimisation, or
            ``"soc"``).
        target_utilisation: fraction of the loss budget the search is
            allowed to spend.  The fitted models carry percent-level bias,
            so deployments hold part of the budget in reserve; the paper's
            measured losses land at 80-86% of each target (Table 3), which
            this default reproduces.
    """

    def __init__(
        self,
        trace: Trace,
        stages: Sequence[Stage],
        perf_model: WorkloadPerformanceModel,
        power_table: OperatorPowerTable,
        freqs_mhz: Sequence[float],
        performance_loss_target: float = 0.02,
        objective: str = "aicore",
        target_utilisation: float = 0.85,
    ) -> None:
        if objective not in ("aicore", "soc"):
            raise StrategyError(f"unknown objective {objective!r}")
        if not 0 < performance_loss_target < 1:
            raise StrategyError(
                f"performance loss target must be in (0, 1): "
                f"{performance_loss_target}"
            )
        if not 0 < target_utilisation <= 1:
            raise StrategyError(
                f"target_utilisation must be in (0, 1]: {target_utilisation}"
            )
        self._stages = tuple(stages)
        self._freqs = np.asarray(freqs_mhz, dtype=float)
        if np.any(np.diff(self._freqs) <= 0):
            raise StrategyError(
                "frequency grid must be strictly ascending (baseline last)"
            )
        self._loss_target = performance_loss_target * target_utilisation
        self._objective = objective
        constants = power_table.constants
        self._k = constants.k_celsius_per_watt
        self._gamma_soc = constants.gamma_soc_w_per_c_v
        self._gamma_aicore = constants.gamma_aicore_w_per_c_v
        self._volts = np.array([constants.volts(f) for f in self._freqs])

        n_stages = len(self._stages)
        n_freqs = self._freqs.size
        # Per-stage lookup tables over the frequency grid.
        self._stage_time = np.zeros((n_stages, n_freqs))
        self._stage_aicore_energy = np.zeros((n_stages, n_freqs))
        self._stage_soc_energy = np.zeros((n_stages, n_freqs))
        # One per-trace name list, hoisted out of the per-stage loop.
        all_names = [entry.spec.name for entry in trace.entries]
        # Idle power depends only on the frequency grid, not on the stage:
        # build both vectors once instead of per stage.
        idle_ai = np.array(
            [
                constants.aicore_idle.predict(f, v)
                for f, v in zip(self._freqs, self._volts)
            ]
        )
        idle_soc = np.array(
            [
                constants.soc_idle.predict(f, v)
                for f, v in zip(self._freqs, self._volts)
            ]
        )
        if batched_cold_path_enabled():
            self._build_tables_grouped(
                all_names, perf_model, power_table, idle_ai, idle_soc
            )
        else:
            self._build_tables_reference(
                all_names, perf_model, power_table, idle_ai, idle_soc
            )

        # Baseline: everything at the maximum frequency.
        baseline = self.evaluate(
            np.full(n_stages, n_freqs - 1, dtype=int)[None, :]
        )
        self._baseline_time = float(baseline.time_us[0])
        self._baseline_power = float(
            baseline.aicore_watts[0]
            if objective == "aicore"
            else baseline.soc_watts[0]
        )

    def _build_tables_reference(
        self,
        all_names: list[str],
        perf_model: WorkloadPerformanceModel,
        power_table: OperatorPowerTable,
        idle_ai: np.ndarray,
        idle_soc: np.ndarray,
    ) -> None:
        """Per-stage table construction (the scalar reference path)."""
        for j, stage in enumerate(self._stages):
            names = [all_names[i] for i in stage.op_indices]
            if names:
                times = perf_model.duration_matrix(names, self._freqs)
                p_ai = power_table.aicore_power_matrix(names, self._freqs)
                p_soc = power_table.soc_power_matrix(names, self._freqs)
                self._stage_time[j] = times.sum(axis=0)
                self._stage_aicore_energy[j] = (times * p_ai).sum(axis=0)
                self._stage_soc_energy[j] = (times * p_soc).sum(axis=0)
            self._add_stage_idle(j, stage, idle_ai, idle_soc)

    def _build_tables_grouped(
        self,
        all_names: list[str],
        perf_model: WorkloadPerformanceModel,
        power_table: OperatorPowerTable,
        idle_ai: np.ndarray,
        idle_soc: np.ndarray,
    ) -> None:
        """Grouped table construction (the batched cold path).

        The per-stage loop evaluates the duration/power matrices once per
        stage *occurrence* of a name; here each distinct name gets one
        row — duration, power, and their products — and stages gather
        their rows and reduce.  The gathered rows carry the exact same
        values the per-stage matrices would, and the reduction is the
        same ``sum(axis=0)`` over the same row order, so the tables are
        bit-identical (deliberately NOT ``np.add.reduceat``, whose
        pairwise summation splits differ from ``sum`` on a gathered
        block).
        """
        uniq: dict[str, int] = {}
        stage_rows: list[np.ndarray] = []
        for stage in self._stages:
            stage_rows.append(
                np.array(
                    [
                        uniq.setdefault(all_names[i], len(uniq))
                        for i in stage.op_indices
                    ],
                    dtype=np.intp,
                )
            )
        if uniq:
            names = list(uniq)
            t_rows = perf_model.duration_matrix(names, self._freqs)
            p_ai_rows = power_table.aicore_power_matrix(names, self._freqs)
            p_soc_rows = power_table.soc_power_matrix(names, self._freqs)
            ta_rows = t_rows * p_ai_rows
            ts_rows = t_rows * p_soc_rows
        for j, stage in enumerate(self._stages):
            rows = stage_rows[j]
            if rows.size:
                self._stage_time[j] = t_rows[rows].sum(axis=0)
                self._stage_aicore_energy[j] = ta_rows[rows].sum(axis=0)
                self._stage_soc_energy[j] = ts_rows[rows].sum(axis=0)
            self._add_stage_idle(j, stage, idle_ai, idle_soc)

    def _add_stage_idle(
        self,
        j: int,
        stage: Stage,
        idle_ai: np.ndarray,
        idle_soc: np.ndarray,
    ) -> None:
        # Idle spans inside the stage (host gaps, pure-gap stages) are
        # frequency-independent: their length is the measured baseline
        # stage duration minus the operators' time at the baseline
        # (maximum) frequency, and they draw idle power.
        op_time = self._stage_time[j].copy()
        idle_time = max(0.0, stage.duration_us - float(op_time[-1]))
        self._stage_time[j] = op_time + idle_time
        self._stage_aicore_energy[j] += idle_time * idle_ai
        self._stage_soc_energy[j] += idle_time * idle_soc

    @property
    def stage_count(self) -> int:
        """Number of genes per individual."""
        return len(self._stages)

    @property
    def frequency_count(self) -> int:
        """Number of grid frequencies a gene can take."""
        return self._freqs.size

    @property
    def baseline_time_us(self) -> float:
        """Model-predicted iteration time at the maximum frequency."""
        return self._baseline_time

    @property
    def baseline_power_watts(self) -> float:
        """Objective-rail power at the maximum frequency (normaliser)."""
        return self._baseline_power

    @property
    def objective(self) -> str:
        """Which rail's power the score minimises (aicore or soc)."""
        return self._objective

    def stage_tables(self) -> StageTables:
        """The per-stage lookup tables behind :meth:`evaluate`."""
        return StageTables(
            time_us=self._stage_time,
            aicore_energy=self._stage_aicore_energy,
            soc_energy=self._stage_soc_energy,
            volts=self._volts,
        )

    @property
    def time_lower_bound_us(self) -> float:
        """Maximum admissible iteration time (Eq. 17's ``Per_lb``)."""
        return self._baseline_time * (1.0 + self._loss_target)

    def evaluate(self, population: np.ndarray) -> "PopulationEvaluation":
        """Predict time/power for a population of gene vectors.

        Args:
            population: int array of shape ``(individuals, stages)`` with
                values in ``[0, frequency_count)``.
        """
        genes = np.asarray(population)
        if genes.ndim != 2 or genes.shape[1] != self.stage_count:
            raise StrategyError(
                f"population must be (n, {self.stage_count}), got {genes.shape}"
            )
        rows = np.arange(self.stage_count)[None, :]
        time_us = self._stage_time[rows, genes].sum(axis=1)
        aicore_j = self._stage_aicore_energy[rows, genes].sum(axis=1)
        soc_j = self._stage_soc_energy[rows, genes].sum(axis=1)
        # Chip-level thermal closure (Sect. 5.4.2): the base average powers
        # gain a leakage term at the equilibrium temperature rise.  With
        # AT = k * P_soc this solves in closed form per individual.
        volts_avg = (
            self._volts[genes] * self._stage_time[rows, genes]
        ).sum(axis=1) / time_us
        soc_base = soc_j / time_us
        loop_gain = self._k * self._gamma_soc * volts_avg
        soc_watts = soc_base / np.maximum(1e-9, 1.0 - loop_gain)
        delta = self._k * soc_watts
        aicore_watts = aicore_j / time_us + (
            self._gamma_aicore * delta * volts_avg
        )
        return PopulationEvaluation(
            time_us=time_us,
            aicore_watts=aicore_watts,
            soc_watts=soc_watts,
            delta_celsius=delta,
        )

    def base_scores(self, evaluation: "PopulationEvaluation") -> np.ndarray:
        """Eq. (17) scores *without* the feasibility doubling.

        The surrogate fits this smooth part; the discontinuous 2x bonus is
        re-applied exactly from the (exact) predicted time at inference.
        """
        power = (
            evaluation.aicore_watts
            if self._objective == "aicore"
            else evaluation.soc_watts
        )
        per_norm = self._baseline_time / evaluation.time_us
        power_norm = power / self._baseline_power
        return per_norm * per_norm / power_norm

    def score_evaluation(
        self, evaluation: "PopulationEvaluation"
    ) -> np.ndarray:
        """Eq. (17) scores for an already-evaluated population."""
        base_score = self.base_scores(evaluation)
        meets = evaluation.time_us <= self.time_lower_bound_us
        return np.where(meets, 2.0 * base_score, base_score)

    def score(self, population: np.ndarray) -> np.ndarray:
        """Eq. (17) scores for a population (higher is better)."""
        return self.score_evaluation(self.evaluate(population))

    def breakdown(self, genes: Sequence[int]) -> ScoreBreakdown:
        """Full model-predicted outcome of a single strategy."""
        population = np.asarray(genes, dtype=int)[None, :]
        evaluation = self.evaluate(population)
        score = float(self.score(population)[0])
        time_us = float(evaluation.time_us[0])
        return ScoreBreakdown(
            time_us=time_us,
            aicore_watts=float(evaluation.aicore_watts[0]),
            soc_watts=float(evaluation.soc_watts[0]),
            delta_celsius=float(evaluation.delta_celsius[0]),
            score=score,
            meets_target=time_us <= self.time_lower_bound_us,
        )


@dataclass(frozen=True)
class PopulationEvaluation:
    """Vectorised model predictions for a population."""

    time_us: np.ndarray
    aicore_watts: np.ndarray
    soc_watts: np.ndarray
    delta_celsius: np.ndarray
