"""Frequency-candidate preprocessing (paper Sect. 6.2, Fig. 13).

A brute-force search over per-operator frequencies is impractical for
traces with tens of thousands of operators.  Preprocessing shrinks the
space in four steps:

1. take the execution sequence and profiling data (large inter-operator
   gaps count as idle time);
2. classify each operator's bottleneck (Sect. 6.1);
3. split the execution into Low/High Frequency Candidate (LFC/HFC) stages
   by frequency sensitivity — each stage start is a candidate point;
4. merge candidates whose stage is shorter than the frequency adjustment
   interval (e.g. 5 ms) into their neighbours.

The result is the candidate list ``{s_1..s_n}`` with durations
``{d_1..d_n}`` that the genetic algorithm assigns frequencies to.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.dvfs.classification import ClassifiedOperator
from repro.errors import StrategyError
from repro.units import ms_to_us

#: Default frequency adjustment interval (the paper uses 5 ms).
DEFAULT_ADJUSTMENT_INTERVAL_US = ms_to_us(5.0)

#: Gaps at least this long are treated as idle spans in step 1.
SIGNIFICANT_GAP_US = 50.0


class StageKind(enum.Enum):
    """Whether a stage prefers a low or high frequency."""

    LFC = "lfc"
    HFC = "hfc"


@dataclass(frozen=True)
class Stage:
    """One frequency-candidate stage.

    Attributes:
        index: position in the final candidate list.
        kind: LFC (insensitive operators dominate) or HFC.
        start_us: candidate point ``s_i`` — where the stage begins on the
            baseline timeline.
        duration_us: stage duration ``d_i`` on the baseline timeline.
        op_indices: trace-entry indices of the operators in the stage.
        sensitive_time_us: baseline time spent in frequency-sensitive
            operators within the stage (after merging, stages can mix).
    """

    index: int
    kind: StageKind
    start_us: float
    duration_us: float
    op_indices: tuple[int, ...]
    sensitive_time_us: float

    @property
    def end_us(self) -> float:
        """Stage end on the baseline timeline."""
        return self.start_us + self.duration_us

    @property
    def sensitive_fraction(self) -> float:
        """Fraction of the stage's time that is frequency sensitive."""
        if self.duration_us <= 0:
            return 0.0
        return self.sensitive_time_us / self.duration_us


@dataclass(frozen=True)
class PreprocessResult:
    """Output of the Fig. 13 pipeline."""

    stages: tuple[Stage, ...]
    adjustment_interval_us: float
    #: Stage count before interval merging (step 3's raw candidates).
    raw_stage_count: int

    def __len__(self) -> int:
        return len(self.stages)

    def stage_of_op(self, op_index: int) -> Stage:
        """The stage containing a trace-entry index.

        Raises:
            StrategyError: if the index is in no stage.
        """
        for stage in self.stages:
            if op_index in stage.op_indices:
                return stage
        raise StrategyError(f"operator index {op_index} is in no stage")


@dataclass
class _MutableStage:
    kind: StageKind
    start_us: float
    end_us: float
    op_indices: list[int]
    sensitive_time_us: float

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


def _raw_stages_from_rows(
    rows,
    significant_gap_us: float,
) -> list[_MutableStage]:
    """Steps 1-3 core over ``(index, start, duration, gap, sensitive)`` rows.

    Stage boundaries come from the profiled start/end timestamps, so small
    inter-operator gaps stay inside the surrounding stage while significant
    gaps become (or extend) LFC idle spans.  Both the object path and the
    array path feed this loop the same Python floats in the same order, so
    the stages are bit-identical either way.
    """
    stages: list[_MutableStage] = []
    for index, start_us, duration_us, gap_before_us, sensitive in rows:
        kind = StageKind.HFC if sensitive else StageKind.LFC
        op_end = start_us + duration_us
        # Step 1: a significant dispatch gap counts as idle (LFC) time.
        if gap_before_us >= significant_gap_us:
            if stages and stages[-1].kind is StageKind.LFC:
                stages[-1].end_us = start_us
            else:
                stages.append(
                    _MutableStage(
                        kind=StageKind.LFC,
                        start_us=stages[-1].end_us if stages else 0.0,
                        end_us=start_us,
                        op_indices=[],
                        sensitive_time_us=0.0,
                    )
                )
        if stages and stages[-1].kind is kind:
            stage = stages[-1]
            stage.end_us = op_end
            stage.op_indices.append(index)
            stage.sensitive_time_us += duration_us if sensitive else 0.0
        else:
            stages.append(
                _MutableStage(
                    kind=kind,
                    start_us=stages[-1].end_us if stages else 0.0,
                    end_us=op_end,
                    op_indices=[index],
                    sensitive_time_us=duration_us if sensitive else 0.0,
                )
            )
    return stages


def _raw_stages(
    classified: Sequence[ClassifiedOperator],
    significant_gap_us: float,
) -> list[_MutableStage]:
    """Steps 1-3: split the classified sequence into LFC/HFC runs."""
    return _raw_stages_from_rows(
        (
            (
                op.profiled.index,
                op.profiled.start_us,
                op.profiled.duration_us,
                op.profiled.gap_before_us,
                op.frequency_sensitive,
            )
            for op in classified
        ),
        significant_gap_us,
    )


def _coalesce_same_kind(stages: list[_MutableStage]) -> list[_MutableStage]:
    """Fuse adjacent stages of the same kind into one candidate."""
    result: list[_MutableStage] = []
    for stage in stages:
        if result and result[-1].kind is stage.kind:
            previous = result[-1]
            previous.end_us = stage.end_us
            previous.op_indices = previous.op_indices + stage.op_indices
            previous.sensitive_time_us += stage.sensitive_time_us
        else:
            result.append(stage)
    return result


def _merge_short_stages(
    stages: list[_MutableStage], interval_us: float
) -> list[_MutableStage]:
    """Step 4: merge candidates shorter than the adjustment interval.

    Raw LFC/HFC runs are greedily accumulated into groups of at least the
    adjustment interval (a trailing under-interval group joins its
    predecessor).  Each group becomes one frequency candidate whose kind is
    the time-dominant kind of its members; its operators and sensitive
    time carry over, so the scorer still knows the group's exact
    composition — merged groups are *mixed*, and the search prices the
    sensitive share of each group through the per-operator models.
    """
    merged = _coalesce_same_kind(list(stages))
    groups: list[_MutableStage] = []
    current: _MutableStage | None = None
    current_kind_time: dict[StageKind, float] = {}

    def finalise(group: _MutableStage, kind_time: dict[StageKind, float]):
        group.kind = max(kind_time, key=lambda kind: kind_time[kind])
        groups.append(group)

    for stage in merged:
        if current is None:
            current = _MutableStage(
                kind=stage.kind,
                start_us=stage.start_us,
                end_us=stage.end_us,
                op_indices=list(stage.op_indices),
                sensitive_time_us=stage.sensitive_time_us,
            )
            current_kind_time = {stage.kind: stage.duration_us}
        else:
            current.end_us = stage.end_us
            current.op_indices += stage.op_indices
            current.sensitive_time_us += stage.sensitive_time_us
            current_kind_time[stage.kind] = (
                current_kind_time.get(stage.kind, 0.0) + stage.duration_us
            )
        if current.duration_us >= interval_us:
            finalise(current, current_kind_time)
            current = None
    if current is not None:
        if groups:
            last = groups[-1]
            last.end_us = current.end_us
            last.op_indices += current.op_indices
            last.sensitive_time_us += current.sensitive_time_us
        else:
            finalise(current, current_kind_time)
    # Adjacent same-kind groups stay separate: each is at least one
    # adjustment interval long, so giving them independent frequencies
    # still respects the SetFreq spacing constraint, and mixed groups of
    # different composition deserve independent genes.
    return groups


def preprocess(
    classified: Sequence[ClassifiedOperator],
    adjustment_interval_us: float = DEFAULT_ADJUSTMENT_INTERVAL_US,
    significant_gap_us: float = SIGNIFICANT_GAP_US,
) -> PreprocessResult:
    """Run the full Fig. 13 pipeline on a classified operator sequence.

    Raises:
        StrategyError: on an empty sequence or non-positive interval.
    """
    if not classified:
        raise StrategyError("cannot preprocess an empty operator sequence")
    if adjustment_interval_us <= 0:
        raise StrategyError(
            f"adjustment interval must be positive: {adjustment_interval_us}"
        )
    raw = _raw_stages(classified, significant_gap_us)
    return _finish(raw, adjustment_interval_us)


def preprocess_arrays(
    indices: Sequence[int],
    start_us: Sequence[float],
    duration_us: Sequence[float],
    gap_before_us: Sequence[float],
    sensitive: Sequence[bool],
    adjustment_interval_us: float = DEFAULT_ADJUSTMENT_INTERVAL_US,
    significant_gap_us: float = SIGNIFICANT_GAP_US,
) -> PreprocessResult:
    """Array-input equivalent of :func:`preprocess`.

    Takes per-operator columns (trace index, baseline start/duration,
    dispatch gap, Table 1 sensitivity) instead of
    :class:`ClassifiedOperator` objects, feeding the same staging loop the
    same floats — bit-identical output without materialising thousands of
    classified-operator objects first.  Callers pass ``.tolist()`` values
    (or any sequences); sensitivity typically comes from
    :func:`repro.dvfs.classification.frequency_sensitive_mask`.

    Raises:
        StrategyError: on an empty sequence or non-positive interval.
    """
    if not len(indices):
        raise StrategyError("cannot preprocess an empty operator sequence")
    if adjustment_interval_us <= 0:
        raise StrategyError(
            f"adjustment interval must be positive: {adjustment_interval_us}"
        )
    raw = _raw_stages_from_rows(
        zip(indices, start_us, duration_us, gap_before_us, sensitive),
        significant_gap_us,
    )
    return _finish(raw, adjustment_interval_us)


def _finish(
    raw: list[_MutableStage], adjustment_interval_us: float
) -> PreprocessResult:
    """Step 4 plus freezing, shared by both preprocess entry points."""
    raw_count = len(raw)
    merged = _merge_short_stages(raw, adjustment_interval_us)
    stages = tuple(
        Stage(
            index=i,
            kind=stage.kind,
            start_us=stage.start_us,
            duration_us=stage.duration_us,
            op_indices=tuple(sorted(stage.op_indices)),
            sensitive_time_us=stage.sensitive_time_us,
        )
        for i, stage in enumerate(merged)
    )
    return PreprocessResult(
        stages=stages,
        adjustment_interval_us=adjustment_interval_us,
        raw_stage_count=raw_count,
    )
