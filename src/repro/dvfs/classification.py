"""Operator bottleneck classification (paper Sect. 6.1, Fig. 12, Table 1).

From the profiler's pipeline-utilisation ratios, each operator is routed
through the Fig. 12 decision flow:

1. **no-pipeline bound** — the sum of all pipe ratios is below 1: free time
   exists during execution (short operators dominated by pre/post work);
2. **latency bound** — the maximum ratio is below 0.8: the pipeline
   arrangement is poor (no PingPong, design flaws);
3. **uncore bound** — the maximum ratio belongs to an uncore-facing pipe
   (MTE2 = Ld, MTE3 = St);
4. **core bound** — the maximum ratio belongs to a core-domain pipe
   (cube / vector / scalar / MTE1).

AICPU, communication and idle operators never touch the AICore pipelines.
Table 1 then splits everything by AICore-frequency sensitivity: core-bound
and latency-bound operators are sensitive; Ld/St-bound, AICPU, idle and
communication operators are not.  (No-pipeline-bound operators are mostly
pre/post processing and are treated as insensitive.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.npu.operators import OperatorKind
from repro.npu.pipelines import Pipe, is_core_pipe
from repro.npu.profiler import ProfiledOperator

#: Fig. 12's latency-bound threshold on the maximum pipe ratio.
LATENCY_BOUND_THRESHOLD = 0.8

#: Fig. 12's no-pipeline test is 'sum of ratios < 1'; measured ratios carry
#: per-block edge effects and profiler noise, so a practical classifier
#: needs margin below the exact 1.0 to avoid knife-edge flips.
NO_PIPELINE_THRESHOLD = 0.9


class Bottleneck(enum.Enum):
    """The bottleneck classes of Sect. 6.1."""

    NO_PIPELINE = "no_pipeline"
    LATENCY = "latency"
    UNCORE = "uncore"
    CORE = "core"
    AICPU = "aicpu"
    COMMUNICATION = "communication"
    IDLE = "idle"


#: The Table 1 sensitivity split.
FREQUENCY_SENSITIVE_BOTTLENECKS = frozenset(
    {Bottleneck.CORE, Bottleneck.LATENCY}
)


@dataclass(frozen=True)
class ClassifiedOperator:
    """A profiled operator with its bottleneck class attached."""

    profiled: ProfiledOperator
    bottleneck: Bottleneck
    #: The busiest pipe for uncore/core-bound operators, else None.
    bound_pipe: Pipe | None

    @property
    def frequency_sensitive(self) -> bool:
        """Whether the operator reacts to AICore frequency (Table 1)."""
        return self.bottleneck in FREQUENCY_SENSITIVE_BOTTLENECKS

    @property
    def label(self) -> str:
        """A human-readable bound label, e.g. ``"cube-bound"``."""
        if self.bound_pipe is not None:
            if self.bottleneck is Bottleneck.UNCORE:
                side = "Ld" if self.bound_pipe is Pipe.MTE2 else "St"
                return f"{side}-bound"
            return f"{self.bound_pipe.value}-bound"
        return f"{self.bottleneck.value}-bound"


_KIND_BOTTLENECK = {
    OperatorKind.AICPU: Bottleneck.AICPU,
    OperatorKind.COMMUNICATION: Bottleneck.COMMUNICATION,
    OperatorKind.IDLE: Bottleneck.IDLE,
}


def classify_operator(
    profiled: ProfiledOperator,
    latency_threshold: float = LATENCY_BOUND_THRESHOLD,
    no_pipeline_threshold: float = NO_PIPELINE_THRESHOLD,
) -> ClassifiedOperator:
    """Route one profiled operator through the Fig. 12 decision flow."""
    if profiled.kind is not OperatorKind.COMPUTE:
        return ClassifiedOperator(
            profiled=profiled,
            bottleneck=_KIND_BOTTLENECK[profiled.kind],
            bound_pipe=None,
        )
    if profiled.ratio_sum() < no_pipeline_threshold:
        return ClassifiedOperator(
            profiled=profiled, bottleneck=Bottleneck.NO_PIPELINE, bound_pipe=None
        )
    pipe, max_ratio = profiled.max_ratio()
    if max_ratio < latency_threshold:
        return ClassifiedOperator(
            profiled=profiled, bottleneck=Bottleneck.LATENCY, bound_pipe=None
        )
    assert pipe is not None
    bottleneck = Bottleneck.CORE if is_core_pipe(pipe) else Bottleneck.UNCORE
    return ClassifiedOperator(
        profiled=profiled, bottleneck=bottleneck, bound_pipe=pipe
    )


def classify_operators(
    operators: Iterable[ProfiledOperator],
    latency_threshold: float = LATENCY_BOUND_THRESHOLD,
) -> list[ClassifiedOperator]:
    """Classify a full profiled sequence, preserving order."""
    return [classify_operator(op, latency_threshold) for op in operators]


def frequency_sensitive_mask(
    is_compute: np.ndarray,
    present: np.ndarray,
    ratios: np.ndarray,
    latency_threshold: float = LATENCY_BOUND_THRESHOLD,
    no_pipeline_threshold: float = NO_PIPELINE_THRESHOLD,
) -> np.ndarray:
    """Vectorised Table 1 sensitivity over a whole operator sequence.

    ``present``/``ratios`` are ``(n, 6)`` in the slot order of
    :data:`repro.npu.vectoreval.SLOT_PIPES` (MTE2, cube, vector, scalar,
    MTE1, MTE3) — the order :meth:`ProfiledOperator.ratio_sum` iterates,
    so the masked sequential accumulation below adds the same floats in
    the same order as the scalar decision flow.  ``argmax`` on the masked
    ratios keeps the first maximum, matching Python's ``max`` over the
    insertion-ordered ratio dict; slots 1-4 are the core-domain pipes.

    Returns the boolean mask of frequency-sensitive operators — exactly
    ``[classify_operator(op).frequency_sensitive for op in ops]``.
    """
    n = ratios.shape[0]
    ratio_sum = np.zeros(n)
    for slot in range(6):
        ratio_sum = np.where(
            present[:, slot], ratio_sum + ratios[:, slot], ratio_sum
        )
    masked = np.where(present, ratios, -np.inf)
    arg = masked.argmax(axis=1)
    max_ratio = np.take_along_axis(masked, arg[:, None], axis=1)[:, 0]
    core_bound = (arg >= 1) & (arg <= 4)
    sensitive = (max_ratio < latency_threshold) | core_bound
    return (
        np.asarray(is_compute, dtype=bool)
        & ~(ratio_sum < no_pipeline_threshold)
        & sensitive
    )


def bottleneck_histogram(
    classified: Iterable[ClassifiedOperator],
) -> dict[Bottleneck, int]:
    """Operator counts per bottleneck class (useful for trace inspection)."""
    counts: dict[Bottleneck, int] = {}
    for op in classified:
        counts[op.bottleneck] = counts.get(op.bottleneck, 0) + 1
    return counts
