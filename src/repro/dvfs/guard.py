"""A guarded, self-healing DVFS runtime (safety envelope under faults).

The plain :class:`~repro.dvfs.executor.DvfsExecutor` assumes a perfect
control plane.  :class:`GuardedDvfsExecutor` wraps it with the defences a
production runtime needs when the substrate misbehaves (see
:mod:`repro.npu.faults` for the fault model):

* every anchored frequency change is **verified** via a telemetry
  readback one controller latency (plus a grace period) after dispatch;
* an unverified change is **retried** with capped exponential backoff,
  up to ``GuardConfig.max_retries`` attempts;
* on retry exhaustion or detected thermal throttling the runtime
  **degrades gracefully**: the remainder of the trace reverts to the
  baseline frequency, so the measured performance loss can never exceed
  the strategy's target (running at baseline is loss zero by
  definition);
* every intervention lands in a structured :class:`IncidentLog` that
  :mod:`repro.core.report` can render, and that replays deterministically
  from the fault seed.

The guard is **zero-overhead when healthy**: with no injected SetFreq
faults it executes the exact plan the plain executor compiles (adding no
chunk boundaries, so results are byte-identical) and only performs
read-only post-hoc checks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dvfs.executor import DvfsExecutor, ExecutionOutcome
from repro.dvfs.strategy import DvfsStrategy
from repro.errors import ConfigurationError, SetFreqTimeoutError
from repro.npu.device import ExecutionResult, NpuDevice
from repro.npu.faults import FaultConfig, FaultInjector, FaultyFrequencyPlan
from repro.npu.setfreq import (
    AnchoredFrequencyPlan,
    AnchoredSwitch,
    FrequencySwitch,
    FrequencyTimeline,
)
from repro.workloads.trace import Trace

#: Frequencies are grid points; readbacks equal to the target within this
#: tolerance count as verified.
_FREQ_MATCH_TOLERANCE_MHZ = 1e-6


@dataclass(frozen=True)
class GuardConfig:
    """Tuning knobs of the guarded runtime.

    Attributes:
        max_retries: re-dispatch attempts per unverified change before the
            guard gives up on the strategy.
        backoff_base_us: delay before the first retry; attempt ``n`` waits
            ``min(backoff_cap_us, backoff_base_us * 2**n)``.
        backoff_cap_us: upper bound of the exponential backoff.
        readback_grace_us: extra settle time after the controller latency
            before the readback is trusted.
        loss_margin: slack over the strategy's performance-loss target the
            post-hoc check tolerates before reverting to baseline.
        throttle_celsius: chip temperature at which the guard treats the
            run as thermally throttled and abandons DVFS.
        revert_on_failure: revert to baseline on retry exhaustion (the
            graceful default); when False the guard raises
            :class:`~repro.errors.SetFreqTimeoutError` instead.
    """

    max_retries: int = 3
    backoff_base_us: float = 500.0
    backoff_cap_us: float = 8_000.0
    readback_grace_us: float = 200.0
    loss_margin: float = 0.005
    throttle_celsius: float = 90.0
    revert_on_failure: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0: {self.max_retries}"
            )
        if self.backoff_base_us <= 0:
            raise ConfigurationError(
                f"backoff_base_us must be positive: {self.backoff_base_us}"
            )
        if self.backoff_cap_us < self.backoff_base_us:
            raise ConfigurationError(
                "backoff_cap_us must be >= backoff_base_us: "
                f"{self.backoff_cap_us} < {self.backoff_base_us}"
            )
        if self.readback_grace_us < 0:
            raise ConfigurationError(
                f"readback_grace_us must be >= 0: {self.readback_grace_us}"
            )
        if self.loss_margin < 0:
            raise ConfigurationError(
                f"loss_margin must be >= 0: {self.loss_margin}"
            )
        if self.throttle_celsius <= 0:
            raise ConfigurationError(
                f"throttle_celsius must be positive: {self.throttle_celsius}"
            )

    def backoff_us(self, attempt: int) -> float:
        """Capped exponential backoff before retry ``attempt`` (0-based)."""
        return min(self.backoff_cap_us, self.backoff_base_us * 2.0**attempt)


@dataclass(frozen=True)
class Incident:
    """One guard intervention or detection."""

    kind: str
    time_us: float | None = None
    op_index: int | None = None
    attempt: int = 0
    detail: str = ""

    def to_row(self) -> dict:
        """Table row for reports."""
        return {
            "kind": self.kind,
            "time_us": "" if self.time_us is None else round(self.time_us, 1),
            "op_index": "" if self.op_index is None else self.op_index,
            "attempt": self.attempt,
            "detail": self.detail,
        }


class IncidentLog:
    """Ordered record of everything the guard noticed and did."""

    def __init__(self) -> None:
        self._incidents: list[Incident] = []

    def record(
        self,
        kind: str,
        time_us: float | None = None,
        op_index: int | None = None,
        attempt: int = 0,
        detail: str = "",
    ) -> Incident:
        """Append one incident and return it."""
        incident = Incident(
            kind=kind,
            time_us=time_us,
            op_index=op_index,
            attempt=attempt,
            detail=detail,
        )
        self._incidents.append(incident)
        return incident

    @property
    def incidents(self) -> tuple[Incident, ...]:
        """All incidents, in order."""
        return tuple(self._incidents)

    def __len__(self) -> int:
        return len(self._incidents)

    def counts_by_kind(self) -> dict[str, int]:
        """How many incidents of each kind occurred."""
        counts: dict[str, int] = {}
        for incident in self._incidents:
            counts[incident.kind] = counts.get(incident.kind, 0) + 1
        return counts

    def to_rows(self) -> list[dict]:
        """Table rows for reports."""
        return [incident.to_row() for incident in self._incidents]

    def clear(self) -> None:
        """Drop all recorded incidents."""
        self._incidents = []


@dataclass
class _Watch:
    """An outstanding frequency-change verification."""

    deadline_us: float
    freq_mhz: float
    op_index: int | None
    attempt: int


@dataclass
class _Retry:
    """A re-dispatch waiting for its backoff to elapse."""

    due_us: float
    freq_mhz: float
    op_index: int | None
    attempt: int


class GuardedFrequencyPlan:
    """Online guard around a (possibly faulty) anchored frequency plan.

    Implements the device timeline protocol (``on_op_start`` /
    ``frequency_at`` / ``next_switch_after`` / ``reset``).  For each
    anchored change it arms a *watch*: one controller latency plus a grace
    period after dispatch, the guard reads the frequency back (through the
    injector's possibly-faulty telemetry) and compares it to the target.
    Unverified changes are re-dispatched with capped exponential backoff;
    a newer anchored change supersedes all outstanding watches and
    retries.  When the retry budget is exhausted the plan reverts the
    remainder of the execution to the baseline frequency (or raises
    :class:`~repro.errors.SetFreqTimeoutError` when configured to).
    """

    def __init__(
        self,
        inner: AnchoredFrequencyPlan,
        anchors: dict[int, float],
        baseline_mhz: float,
        extra_delay_us: float,
        revert_latency_us: float,
        config: GuardConfig,
        log: IncidentLog,
        injector: FaultInjector | None = None,
    ) -> None:
        self._inner = inner
        self._anchors = dict(anchors)
        self._baseline = float(baseline_mhz)
        self._verify_after = extra_delay_us + config.readback_grace_us
        self._revert_latency = float(revert_latency_us)
        self._config = config
        self._log = log
        self._injector = injector
        self._watches: list[_Watch] = []
        self._retries: list[_Retry] = []
        self._fallback_from: float | None = None

    @property
    def initial_mhz(self) -> float:
        """Frequency in effect at time zero."""
        return self._inner.initial_mhz

    @property
    def switch_count(self) -> int:
        """Number of anchored switches in the plan."""
        return self._inner.switch_count

    @property
    def applied_switch_count(self) -> int:
        """Switches that have taken effect so far in this execution."""
        return self._inner.applied_switch_count

    @property
    def dropped_switch_count(self) -> int:
        """Requests superseded while waiting for a busy controller."""
        return self._inner.dropped_switch_count

    @property
    def fallback_engaged(self) -> bool:
        """Whether this execution reverted to the baseline frequency."""
        return self._fallback_from is not None

    def reset(self) -> None:
        """Prepare the plan for a fresh execution (the log persists)."""
        self._inner.reset()
        self._watches = []
        self._retries = []
        self._fallback_from = None

    def on_op_start(self, op_index: int, time_us: float) -> None:
        """Dispatch the anchored change (if any) and arm its watch."""
        if self._fallback_from is not None:
            return
        expected = self._anchors.get(op_index)
        if expected is not None:
            # A newer anchored change supersedes any outstanding
            # verification: retrying a stale target would fight it.
            self._watches = []
            self._retries = []
        self._inner.on_op_start(op_index, time_us)
        if expected is not None:
            self._watches.append(
                _Watch(
                    deadline_us=time_us + self._verify_after,
                    freq_mhz=expected,
                    op_index=op_index,
                    attempt=0,
                )
            )

    def frequency_at(self, time_us: float) -> float:
        """Frequency in effect now; issues due retries and verifications."""
        if self._fallback_from is not None:
            if time_us >= self._fallback_from:
                return self._baseline
            return self._inner.frequency_at(time_us)
        self._issue_due_retries(time_us)
        freq = self._inner.frequency_at(time_us)
        self._verify_due(freq, time_us)
        if self._fallback_from is not None and time_us >= self._fallback_from:
            return self._baseline
        return freq

    def next_switch_after(self, time_us: float) -> FrequencySwitch | None:
        """Next point the device must re-consult the plan at."""
        if self._fallback_from is not None:
            if time_us >= self._fallback_from:
                return None
            nxt = self._inner.next_switch_after(time_us)
            if nxt is not None and nxt.time_us < self._fallback_from:
                return nxt
            return FrequencySwitch(
                time_us=self._fallback_from, freq_mhz=self._baseline
            )
        boundaries: list[tuple[float, float]] = []
        nxt = self._inner.next_switch_after(time_us)
        if nxt is not None:
            boundaries.append((nxt.time_us, nxt.freq_mhz))
        for watch in self._watches:
            if watch.deadline_us > time_us:
                boundaries.append((watch.deadline_us, watch.freq_mhz))
        for retry in self._retries:
            if retry.due_us > time_us:
                boundaries.append((retry.due_us, retry.freq_mhz))
        if not boundaries:
            return None
        when, freq = min(boundaries, key=lambda b: b[0])
        return FrequencySwitch(time_us=when, freq_mhz=freq)

    def _issue_due_retries(self, time_us: float) -> None:
        due = [r for r in self._retries if r.due_us <= time_us]
        if not due:
            return
        self._retries = [r for r in self._retries if r.due_us > time_us]
        for retry in due:
            self._inner.request(retry.freq_mhz, time_us)
            self._watches.append(
                _Watch(
                    deadline_us=time_us + self._verify_after,
                    freq_mhz=retry.freq_mhz,
                    op_index=retry.op_index,
                    attempt=retry.attempt,
                )
            )

    def _verify_due(self, true_mhz: float, time_us: float) -> None:
        remaining: list[_Watch] = []
        for watch in self._watches:
            if watch.deadline_us > time_us:
                remaining.append(watch)
                continue
            reading = (
                self._injector.read_frequency(true_mhz, time_us)
                if self._injector is not None
                else true_mhz
            )
            if (
                reading is not None
                and abs(reading - watch.freq_mhz) <= _FREQ_MATCH_TOLERANCE_MHZ
            ):
                continue  # verified
            self._log.record(
                "readback_dropout" if reading is None else "setfreq_unverified",
                time_us=time_us,
                op_index=watch.op_index,
                attempt=watch.attempt,
                detail=(
                    f"expected {watch.freq_mhz:.0f} MHz, "
                    + ("no reading" if reading is None else f"read {reading:.0f}")
                ),
            )
            if watch.attempt < self._config.max_retries:
                backoff = self._config.backoff_us(watch.attempt)
                self._retries.append(
                    _Retry(
                        due_us=time_us + backoff,
                        freq_mhz=watch.freq_mhz,
                        op_index=watch.op_index,
                        attempt=watch.attempt + 1,
                    )
                )
                self._log.record(
                    "setfreq_retry",
                    time_us=time_us,
                    op_index=watch.op_index,
                    attempt=watch.attempt + 1,
                    detail=f"backoff {backoff:.0f} us",
                )
            else:
                self._engage_fallback(time_us, watch)
                return
        self._watches = remaining

    def _engage_fallback(self, time_us: float, watch: _Watch) -> None:
        if not self._config.revert_on_failure:
            raise SetFreqTimeoutError(
                f"frequency change to {watch.freq_mhz:.0f} MHz at operator "
                f"{watch.op_index} unverified after "
                f"{self._config.max_retries} retries"
            )
        self._watches = []
        self._retries = []
        self._fallback_from = time_us + self._revert_latency
        self._log.record(
            "baseline_revert",
            time_us=time_us,
            op_index=watch.op_index,
            attempt=watch.attempt,
            detail=(
                f"retry budget exhausted; baseline "
                f"{self._baseline:.0f} MHz from t={self._fallback_from:.0f} us"
            ),
        )


@dataclass(frozen=True)
class GuardedOutcome(ExecutionOutcome):
    """An :class:`ExecutionOutcome` plus the guard's intervention record."""

    incidents: tuple[Incident, ...] = ()
    fell_back: bool = False

    @property
    def intervention_count(self) -> int:
        """How many incidents the guard recorded during the run."""
        return len(self.incidents)


class GuardedDvfsExecutor:
    """A :class:`DvfsExecutor` wrapper that survives control-plane faults.

    With no fault injector (or an all-zero fault config) this is a
    transparent wrapper: it compiles and runs the exact plan the wrapped
    executor would, then performs read-only post-hoc checks — results are
    byte-identical to the plain executor's.  With faults active it swaps
    in the faulty plan, guards it online, and enforces the safety
    envelope: the measured performance loss never exceeds the strategy's
    target plus ``GuardConfig.loss_margin``, because any violating (or
    throttling) run is replaced by the baseline for the remaining
    iterations.
    """

    def __init__(
        self,
        executor: DvfsExecutor,
        config: GuardConfig | None = None,
        injector: FaultInjector | None = None,
    ) -> None:
        self._executor = executor
        self._config = config or GuardConfig()
        self._injector = injector
        self._log = IncidentLog()

    @property
    def executor(self) -> DvfsExecutor:
        """The wrapped plain executor."""
        return self._executor

    @property
    def device(self) -> NpuDevice:
        """The device strategies execute on."""
        return self._executor.device

    @property
    def config(self) -> GuardConfig:
        """The guard's tuning knobs."""
        return self._config

    @property
    def injector(self) -> FaultInjector | None:
        """The fault source, when running under injection."""
        return self._injector

    @property
    def incidents(self) -> tuple[Incident, ...]:
        """Incidents recorded by the most recent execution."""
        return self._log.incidents

    def validate(self, trace: Trace, strategy: DvfsStrategy) -> None:
        """Check that a strategy is executable against a trace."""
        self._executor.validate(trace, strategy)

    def compile(
        self, strategy: DvfsStrategy
    ) -> AnchoredFrequencyPlan | GuardedFrequencyPlan:
        """Build the execution plan, guarded only when faults are active."""
        fault = self._fault_config()
        if fault is None or not fault.setfreq_active:
            # Healthy control plane: the plain plan, byte-identical
            # execution, post-hoc verification only.
            return self._executor.compile(strategy)
        npu = self.device.npu
        grid = npu.frequencies
        anchors: dict[int, float] = {}
        for op_index, freq in strategy.anchored_switches():
            grid.validate(freq)
            anchors[op_index] = freq
        grid.validate(strategy.initial_freq_mhz)
        inner = FaultyFrequencyPlan(
            initial_mhz=strategy.initial_freq_mhz,
            anchors=tuple(
                AnchoredSwitch(op_index=i, freq_mhz=f)
                for i, f in anchors.items()
            ),
            injector=self._injector,
            extra_delay_us=npu.setfreq.extra_delay_us,
        )
        return GuardedFrequencyPlan(
            inner=inner,
            anchors=anchors,
            baseline_mhz=npu.max_frequency_mhz,
            extra_delay_us=npu.setfreq.extra_delay_us,
            revert_latency_us=npu.setfreq.total_latency_us,
            config=self._config,
            log=self._log,
            injector=self._injector,
        )

    def execute(
        self, trace: Trace, strategy: DvfsStrategy, stable: bool = True
    ) -> ExecutionResult:
        """Run one iteration under the (guarded) compiled strategy."""
        self._executor.validate(trace, strategy)
        plan = self.compile(strategy)
        device = self._attempt_device()
        if stable:
            return device.run_stable(trace, plan)
        return device.run(trace, plan)

    def execute_with_baseline(
        self, trace: Trace, strategy: DvfsStrategy, stable: bool = True
    ) -> GuardedOutcome:
        """Run strategy and baseline, enforce the envelope, and compare.

        The post-hoc checks run on every execution (healthy included):
        anchored frequencies are verified against the recorded operator
        start frequencies, the thermal trajectory is checked against the
        throttle threshold, and the measured loss is checked against the
        target plus margin.  Any violation reverts the remainder of the
        workload to the baseline — which is exactly what the returned
        outcome then measures (loss and savings both zero).
        """
        self._log.clear()
        self._executor.validate(trace, strategy)
        device = self.device
        baseline_timeline = FrequencyTimeline.constant(
            device.npu.max_frequency_mhz
        )
        if stable:
            baseline = device.run_stable(trace, baseline_timeline)
        else:
            baseline = device.run(trace, baseline_timeline)

        attempt_device = self._attempt_device()
        plan = self.compile(strategy)
        if stable:
            result = attempt_device.run_stable(trace, plan)
        else:
            result = attempt_device.run(trace, plan)

        self._verify_anchors(result, strategy)
        revert = False
        if self._throttled(attempt_device, result):
            revert = True
        loss = (
            result.duration_us - baseline.duration_us
        ) / baseline.duration_us
        limit = strategy.performance_loss_target + self._config.loss_margin
        if loss > limit:
            self._log.record(
                "loss_violation",
                detail=f"measured loss {loss:.4f} exceeds limit {limit:.4f}",
            )
            revert = True
        fell_back = isinstance(plan, GuardedFrequencyPlan) and (
            plan.fallback_engaged
        )
        if revert:
            self._log.record(
                "baseline_revert",
                detail="remaining iterations revert to baseline frequency",
            )
            # Reverting means the workload keeps running at the baseline
            # frequency from here on; the baseline run *is* that outcome.
            result = baseline
            fell_back = True
        return GuardedOutcome(
            strategy=strategy,
            result=result,
            baseline=baseline,
            incidents=self._log.incidents,
            fell_back=fell_back,
        )

    def _fault_config(self) -> FaultConfig | None:
        if self._injector is None:
            return None
        return self._injector.config

    def _attempt_device(self) -> NpuDevice:
        """The device the strategy attempt runs on (ambient faults apply)."""
        fault = self._fault_config()
        if fault is None or not fault.environment_active:
            return self.device
        offset = self._injector.ambient_offset_celsius()
        if offset == 0.0:
            return self.device
        self._log.record(
            "ambient_step",
            detail=f"ambient +{offset:.0f} C for this execution",
        )
        npu = self.device.npu
        hotter = replace(
            npu,
            thermal=replace(
                npu.thermal,
                ambient_celsius=npu.thermal.ambient_celsius + offset,
            ),
        )
        # Operator timing is temperature-independent, so the memoised
        # evaluator can be shared with the nominal device.
        return NpuDevice(hotter, evaluator=self.device.evaluator)

    def _verify_anchors(
        self, result: ExecutionResult, strategy: DvfsStrategy
    ) -> None:
        """Post-hoc check: each anchor started at its planned frequency."""
        extra = self.device.npu.setfreq.extra_delay_us
        if extra > 0:
            # Changes legitimately land late on slow controllers; anchor
            # starts are not expected to match (Fig. 18 semantics).
            return
        for op_index, freq in strategy.anchored_switches():
            record = result.records[op_index]
            if abs(record.start_freq_mhz - freq) > _FREQ_MATCH_TOLERANCE_MHZ:
                self._log.record(
                    "anchor_mismatch",
                    time_us=record.start_us,
                    op_index=op_index,
                    detail=(
                        f"planned {freq:.0f} MHz, ran at "
                        f"{record.start_freq_mhz:.0f} MHz"
                    ),
                )

    def _throttled(
        self, device: NpuDevice, result: ExecutionResult
    ) -> bool:
        """Post-hoc check: did the run reach the throttle region?

        Considers both the hottest chunk actually simulated and the
        equilibrium temperature the run's average power implies — a short
        run at high ambient heats slowly (RC time constant of tens of
        seconds) but *will* reach equilibrium under sustained traffic.
        """
        peak = max(chunk.celsius for chunk in result.chunks)
        equilibrium = device.npu.thermal.equilibrium_celsius(
            result.soc_avg_watts
        )
        hottest = max(peak, equilibrium)
        if hottest < self._config.throttle_celsius:
            return False
        self._log.record(
            "throttle_detected",
            detail=(
                f"projected {hottest:.1f} C >= "
                f"{self._config.throttle_celsius:.1f} C threshold"
            ),
        )
        return True
