"""Ridge-regression surrogate scorer for the GA (NeuroScalar-style).

The analytical :class:`~repro.dvfs.scoring.StrategyScorer` is already fast
(a few gathers per population), but the multi-fidelity GA wants to score a
much larger exploratory population per generation and reserve the exact
model for a top-k re-rank.  Following NeuroScalar's recipe — train a cheap
learned predictor on engine outputs, keep the detailed model as the oracle
— this module fits a closed-form ridge regression (NumPy ``lstsq``, no new
dependencies) from the same stacked per-stage frequency tables the grouped
scorer builds, in one shot.

The trick that keeps inference at *one gather per population* is the
feature choice.  The smooth part of the Eq. (17) score is regressed on
four aggregates that are each linear in the one-hot (stage, frequency)
assignment::

    T  = sum_j time[j, g_j]          total predicted time
    Ea = sum_j aicore_energy[j, g_j] total AICore energy
    Es = sum_j soc_energy[j, g_j]    total SoC energy
    VT = sum_j volts[g_j] * time[j, g_j]   voltage-time integral

Any linear model ``b0 + b . [T, Ea, Es, VT]`` therefore collapses into a
single per-(stage, frequency) weight table ``W[j, f]`` plus a bias, so a
population is scored by gathering ``W`` exactly like the exact scorer
gathers its time table.  The discontinuous 2x feasibility bonus is NOT
regressed: it is re-applied exactly from the exact time table, so the
surrogate is only ever approximate on the smooth part.

A holdout R^2 gate (against oracle scores) decides whether the fit is
trustworthy; below the floor the caller falls back to the exact GA.  The
returned strategy's score is *always* produced by the oracle — the
surrogate only shapes which candidates get oracle attention.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.dvfs.scoring import StrategyScorer
from repro.errors import StrategyError

_SURROGATE_ENABLED = True


def surrogate_search_allowed() -> bool:
    """Whether surrogate-assisted search is globally allowed.

    This is a process-global kill switch in the spirit of
    :func:`repro.batching.batched_cold_path_enabled`: it is *not* part of
    the strategy fingerprint, because disabling it only forces the exact
    oracle path — the safe direction — and never changes which strategy a
    given (config, trace) pair converges to being cached under.
    """
    return _SURROGATE_ENABLED


def set_surrogate_search_allowed(enabled: bool) -> None:
    """Globally allow/forbid surrogate-assisted search."""
    global _SURROGATE_ENABLED
    _SURROGATE_ENABLED = bool(enabled)


@contextmanager
def exact_search_only() -> Iterator[None]:
    """Context manager forcing the exact GA (A/B comparisons, debugging)."""
    previous = _SURROGATE_ENABLED
    set_surrogate_search_allowed(False)
    try:
        yield
    finally:
        set_surrogate_search_allowed(previous)


@dataclass(frozen=True)
class SurrogateConfig:
    """Knobs for the surrogate fit and the multi-fidelity GA around it."""

    #: Master switch; off by default so existing configs are unchanged.
    enabled: bool = False
    #: Oracle-labelled training rows (includes one constant-frequency row
    #: per grid point for coverage of the feasibility boundary).
    train_size: int = 160
    #: Oracle-labelled holdout rows for the R^2 quality gate.
    holdout_size: int = 64
    #: Ridge penalty on the (standardised) feature weights.
    ridge_lambda: float = 1e-6
    #: Minimum holdout R^2 (on full Eq. 17 scores) to trust the fit;
    #: below this the search falls back to the exact GA.
    r2_floor: float = 0.9
    #: Inner (surrogate-scored) population is this multiple of
    #: ``GaConfig.population_size``.
    explore_multiplier: int = 2
    #: Individuals per generation re-scored by the analytical oracle.
    oracle_top_k: int = 4

    def __post_init__(self) -> None:
        if self.train_size < 8:
            raise StrategyError(f"train_size must be >= 8: {self.train_size}")
        if self.holdout_size < 4:
            raise StrategyError(
                f"holdout_size must be >= 4: {self.holdout_size}"
            )
        if self.ridge_lambda < 0:
            raise StrategyError(
                f"ridge_lambda must be >= 0: {self.ridge_lambda}"
            )
        if self.explore_multiplier < 1:
            raise StrategyError(
                f"explore_multiplier must be >= 1: {self.explore_multiplier}"
            )
        if self.oracle_top_k < 1:
            raise StrategyError(
                f"oracle_top_k must be >= 1: {self.oracle_top_k}"
            )


@dataclass(frozen=True)
class SurrogateModel:
    """A fitted surrogate: two flat gathers score a whole population.

    ``weights`` is the learned per-(stage, frequency) score table
    ``W[j, f]``; ``time_us`` is the *exact* stage time table, used to
    re-apply the feasibility doubling exactly.  Both are pre-ravelled so
    scoring is two 1-D ``take`` gathers plus row sums — measurably faster
    than a single 3-D fancy-index on the stacked table.
    """

    weights: np.ndarray = field(repr=False)
    time_us: np.ndarray = field(repr=False)
    bias: float
    time_lower_bound_us: float
    holdout_r2: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_weights_flat", np.ascontiguousarray(self.weights.ravel())
        )
        object.__setattr__(
            self, "_time_flat", np.ascontiguousarray(self.time_us.ravel())
        )
        object.__setattr__(
            self,
            "_offsets",
            np.arange(self.weights.shape[0]) * self.weights.shape[1],
        )

    @property
    def stage_count(self) -> int:
        """Number of genes per individual."""
        return self.weights.shape[0]

    def score(self, population: np.ndarray) -> np.ndarray:
        """Approximate Eq. (17) scores (exact feasibility doubling)."""
        flat = np.asarray(population) + self._offsets
        base = self._weights_flat.take(flat).sum(axis=1) + self.bias
        meets = (
            self._time_flat.take(flat).sum(axis=1)
            <= self.time_lower_bound_us
        )
        return np.where(meets, 2.0 * base, base)


def _design_matrix(
    tables, population: np.ndarray
) -> np.ndarray:
    """The (rows, 4) aggregate features [T, Ea, Es, VT] for a population."""
    rows = np.arange(population.shape[1])[None, :]
    time = tables.time_us[rows, population]
    features = np.empty((population.shape[0], 4))
    features[:, 0] = time.sum(axis=1)
    features[:, 1] = tables.aicore_energy[rows, population].sum(axis=1)
    features[:, 2] = tables.soc_energy[rows, population].sum(axis=1)
    features[:, 3] = (tables.volts[population] * time).sum(axis=1)
    return features


def fit_surrogate(
    scorer: StrategyScorer,
    config: SurrogateConfig,
    rng: np.random.Generator,
) -> tuple[SurrogateModel | None, int]:
    """Fit the ridge surrogate; returns ``(model, oracle_evaluations)``.

    ``model`` is ``None`` when the holdout R^2 gate fails (the caller then
    runs the exact GA).  ``oracle_evaluations`` counts the labelled rows —
    they are real :meth:`StrategyScorer.score` work either way.
    """
    n_stages = scorer.stage_count
    n_freqs = scorer.frequency_count
    n_rows = config.train_size + config.holdout_size
    population = rng.integers(0, n_freqs, size=(n_rows, n_stages))
    # Constant-frequency rows straddle the feasibility boundary and pin
    # the per-frequency extremes of every aggregate feature.
    for f in range(min(n_freqs, config.train_size)):
        population[f, :] = f

    tables = scorer.stage_tables()
    evaluation = scorer.evaluate(population)
    y_base = scorer.base_scores(evaluation)
    y_full = scorer.score_evaluation(evaluation)
    features = _design_matrix(tables, population)

    train = slice(0, config.train_size)
    hold = slice(config.train_size, n_rows)

    # Standardised ridge via lstsq on the augmented system: the intercept
    # column is unpenalised, the four feature columns are shrunk by
    # sqrt(lambda) rows.
    mean = features[train].mean(axis=0)
    std = features[train].std(axis=0)
    std = np.where(std > 0, std, 1.0)
    z_train = (features[train] - mean) / std
    n_feat = features.shape[1]
    top = np.hstack([z_train, np.ones((config.train_size, 1))])
    bottom = np.hstack(
        [np.sqrt(config.ridge_lambda) * np.eye(n_feat),
         np.zeros((n_feat, 1))]
    )
    system = np.vstack([top, bottom])
    target = np.concatenate([y_base[train], np.zeros(n_feat)])
    beta_scaled, *_ = np.linalg.lstsq(system, target, rcond=None)
    beta = beta_scaled[:n_feat] / std
    bias = float(beta_scaled[n_feat] - (beta * mean).sum())

    # Collapse the linear model into the per-(stage, frequency) weight
    # table: each aggregate feature is a sum of per-stage gene-indexed
    # entries, so the weighted sum of features is itself one table gather.
    weights = (
        beta[0] * tables.time_us
        + beta[1] * tables.aicore_energy
        + beta[2] * tables.soc_energy
        + beta[3] * (tables.volts[None, :] * tables.time_us)
    )

    # Holdout predictions straight from the feature matrix (equivalent to
    # a model.score call, without constructing a throwaway model).
    base = features[hold] @ beta + bias
    meets = features[hold][:, 0] <= scorer.time_lower_bound_us
    predicted = np.where(meets, 2.0 * base, base)
    actual = y_full[hold]
    ss_res = float(((actual - predicted) ** 2).sum())
    ss_tot = float(((actual - actual.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
    if not np.isfinite(r2) or r2 < config.r2_floor:
        return None, n_rows
    return (
        SurrogateModel(
            weights=weights,
            time_us=tables.time_us,
            bias=bias,
            time_lower_bound_us=scorer.time_lower_bound_us,
            holdout_r2=r2,
        ),
        n_rows,
    )
