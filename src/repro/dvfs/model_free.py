"""Model-free strategy evaluation (the alternative of paper Sect. 8.1).

Instead of scoring GA individuals with fitted performance/power models, a
model-free search executes every candidate strategy on the real system and
scores the measured outcome.  The paper rejects this because each
evaluation costs a full training iteration (~11 s for GPT-3), so only ~30
strategies fit in the time the model-based scorer needs for 20,000.

This module implements that alternative faithfully so the trade-off can be
measured (see the ``sec81`` experiment): the same Eq. (17) score, computed
from device executions rather than model predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.dvfs.preprocessing import Stage
from repro.dvfs.strategy import strategy_from_genes
from repro.errors import StrategyError
from repro.npu.device import NpuDevice
from repro.npu.setfreq import FrequencyTimeline
from repro.workloads.trace import Trace


@dataclass
class ModelFreeScorer:
    """Eq. (17) scoring by actually executing each candidate strategy.

    Drop-in compatible with the GA's use of :class:`StrategyScorer`
    (``score``, ``stage_count``, ``frequency_count``), but every individual
    costs one device execution.  ``evaluations`` and ``simulated_seconds``
    track the price paid.

    Args:
        device: the system strategies are evaluated on.
        trace: the workload iteration.
        stages: preprocessing output (candidate points).
        freqs_mhz: the hardware frequency grid.
        performance_loss_target: Eq. (17)'s feasibility bound.
        objective: power rail the score minimises.
    """

    device: NpuDevice
    trace: Trace
    stages: Sequence[Stage]
    freqs_mhz: Sequence[float]
    performance_loss_target: float = 0.02
    objective: str = "aicore"
    evaluations: int = field(default=0, init=False)
    #: Accumulated simulated wall time spent executing candidates, seconds.
    simulated_seconds: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.objective not in ("aicore", "soc"):
            raise StrategyError(f"unknown objective {self.objective!r}")
        baseline = self.device.run_stable(
            self.trace,
            FrequencyTimeline.constant(self.device.npu.max_frequency_mhz),
        )
        self._baseline_time = baseline.duration_us
        self._baseline_power = (
            baseline.aicore_avg_watts
            if self.objective == "aicore"
            else baseline.soc_avg_watts
        )
        self._equilibrium_celsius = baseline.start_celsius
        self._cache: dict[tuple[int, ...], float] = {}

    @property
    def stage_count(self) -> int:
        """Number of genes per individual."""
        return len(self.stages)

    @property
    def frequency_count(self) -> int:
        """Number of grid frequencies a gene can take."""
        return len(self.freqs_mhz)

    @property
    def baseline_time_us(self) -> float:
        """Measured baseline iteration time."""
        return self._baseline_time

    def score(self, population: np.ndarray) -> np.ndarray:
        """Execute every individual and score the measured outcome."""
        genes = np.asarray(population)
        if genes.ndim != 2 or genes.shape[1] != self.stage_count:
            raise StrategyError(
                f"population must be (n, {self.stage_count}), got {genes.shape}"
            )
        return np.array([self._score_one(tuple(row)) for row in genes])

    def _score_one(self, genes: tuple[int, ...]) -> float:
        cached = self._cache.get(genes)
        if cached is not None:
            return cached
        from repro.dvfs.executor import DvfsExecutor

        strategy = strategy_from_genes(
            self.trace.name, self.stages, list(genes), self.freqs_mhz,
            self.performance_loss_target,
        )
        executor = DvfsExecutor(self.device)
        result = self.device.run(
            self.trace,
            executor.compile(strategy),
            initial_celsius=self._equilibrium_celsius,
        )
        self.evaluations += 1
        self.simulated_seconds += result.duration_us / 1e6
        power = (
            result.aicore_avg_watts
            if self.objective == "aicore"
            else result.soc_avg_watts
        )
        per_norm = self._baseline_time / result.duration_us
        power_norm = power / self._baseline_power
        base = per_norm * per_norm / power_norm
        meets = result.duration_us <= self._baseline_time * (
            1.0 + self.performance_loss_target
        )
        score = 2.0 * base if meets else base
        self._cache[genes] = score
        return score
