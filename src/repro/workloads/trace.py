"""Workload traces: the operator sequence of one training/inference iteration.

The paper observes (Sect. 6) that long-lived AI workloads repeat the same
iteration, so optimizing one iteration's operator sequence optimizes the
whole run.  A :class:`Trace` is that sequence: operator instances in
dispatch order, each with an optional host-side gap before it (scheduling
idle time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import WorkloadError
from repro.workloads.operator import OperatorKind, OperatorSpec


@dataclass(frozen=True)
class TraceEntry:
    """One dispatched operator instance.

    Attributes:
        spec: the operator executed.
        gap_before_us: unconditional host-side idle time between the
            previous operator's completion and this operator's start.
        host_interval_us: minimum spacing between the *starts* of the
            previous operator and this one, modelling a host that
            dispatches at a bounded rate.  When the device outruns the
            host, it idles until the dispatch arrives — the host-bound
            regime of Sect. 8.4, where lowering the frequency mostly fills
            existing idle time.  Zero means no host constraint.
    """

    spec: OperatorSpec
    gap_before_us: float = 0.0
    host_interval_us: float = 0.0

    def __post_init__(self) -> None:
        if self.gap_before_us < 0:
            raise WorkloadError(
                f"gap_before_us must be non-negative: {self.gap_before_us}"
            )
        if self.host_interval_us < 0:
            raise WorkloadError(
                f"host_interval_us must be non-negative: {self.host_interval_us}"
            )


@dataclass(frozen=True)
class Trace:
    """An ordered operator sequence forming one workload iteration."""

    name: str
    entries: tuple[TraceEntry, ...]
    #: Human-readable description of the workload (model, batch, phase).
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("trace name must be non-empty")
        if not self.entries:
            raise WorkloadError(f"trace {self.name!r} has no entries")

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    @property
    def operator_count(self) -> int:
        """Number of dispatched operators in the iteration."""
        return len(self.entries)

    def unique_specs(self) -> list[OperatorSpec]:
        """Distinct operator specs, in first-appearance order."""
        seen: dict[OperatorSpec, None] = {}
        for entry in self.entries:
            seen.setdefault(entry.spec, None)
        return list(seen)

    def count_by_kind(self) -> dict[OperatorKind, int]:
        """Operator counts per kind (compute/AICPU/communication/idle)."""
        counts: dict[OperatorKind, int] = {}
        for entry in self.entries:
            counts[entry.spec.kind] = counts.get(entry.spec.kind, 0) + 1
        return counts

    def count_by_type(self) -> dict[str, int]:
        """Operator counts per op_type (MatMul, Gelu, ...)."""
        counts: dict[str, int] = {}
        for entry in self.entries:
            counts[entry.spec.op_type] = counts.get(entry.spec.op_type, 0) + 1
        return counts

    def total_gap_us(self) -> float:
        """Sum of host-side gaps across the iteration."""
        return sum(entry.gap_before_us for entry in self.entries)

    def fingerprint(self) -> str:
        """Stable content hash of the operator sequence.

        Covers every entry's spec (shapes, character, kind), gap and
        host pacing — but *not* the trace name or description, so the
        same iteration submitted under different job names fingerprints
        identically and the strategy service coalesces the requests
        (see :mod:`repro.serve.fingerprint`).
        """
        from repro.serve.fingerprint import trace_fingerprint

        return trace_fingerprint(self)


def build_trace(
    name: str,
    items: Iterable[OperatorSpec | TraceEntry],
    description: str = "",
) -> Trace:
    """Build a trace from specs (zero gaps) and/or explicit entries."""
    entries = []
    for item in items:
        if isinstance(item, TraceEntry):
            entries.append(item)
        elif isinstance(item, OperatorSpec):
            entries.append(TraceEntry(spec=item))
        else:
            raise WorkloadError(
                f"trace items must be OperatorSpec or TraceEntry, got "
                f"{type(item).__name__}"
            )
    return Trace(name=name, entries=tuple(entries), description=description)


@dataclass
class TraceBuilder:
    """Incremental trace construction used by the workload generators."""

    name: str
    description: str = ""
    _entries: list[TraceEntry] = field(default_factory=list)

    def add(self, spec: OperatorSpec, gap_before_us: float = 0.0) -> "TraceBuilder":
        """Append one operator instance."""
        self._entries.append(TraceEntry(spec=spec, gap_before_us=gap_before_us))
        return self

    def add_entry_with_host_interval(
        self, spec: OperatorSpec, host_interval_us: float
    ) -> "TraceBuilder":
        """Append an operator whose start is paced by the host dispatcher."""
        self._entries.append(
            TraceEntry(spec=spec, host_interval_us=host_interval_us)
        )
        return self

    def add_repeated(
        self, spec: OperatorSpec, count: int, gap_before_us: float = 0.0
    ) -> "TraceBuilder":
        """Append ``count`` consecutive instances of the same operator."""
        if count < 0:
            raise WorkloadError(f"count must be non-negative: {count}")
        for _ in range(count):
            self.add(spec, gap_before_us)
        return self

    def extend(self, other: Iterable[TraceEntry]) -> "TraceBuilder":
        """Append entries from another sequence."""
        for entry in other:
            self._entries.append(entry)
        return self

    @property
    def pending_count(self) -> int:
        """Number of entries accumulated so far."""
        return len(self._entries)

    def build(self) -> Trace:
        """Finalise into an immutable :class:`Trace`."""
        return Trace(
            name=self.name,
            entries=tuple(self._entries),
            description=self.description,
        )
