"""Workload inspection: where does an iteration spend its time?

Before optimising a workload it helps to know its composition — per-type
time shares, the frequency-sensitive fraction, bandwidth pressure, and the
population of sub-20 us glue operators the paper excludes from modelling.
:func:`summarize_trace` computes all of it from one baseline execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.rng import RngFactory
from repro.dvfs.classification import classify_operators
from repro.npu.device import NpuDevice
from repro.npu.profiler import CannStyleProfiler, SHORT_OPERATOR_CUTOFF_US
from repro.npu.setfreq import FrequencyTimeline
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class TypeShare:
    """One operator type's share of the iteration."""

    op_type: str
    count: int
    time_us: float
    time_share: float
    frequency_sensitive_share: float


@dataclass(frozen=True)
class TraceSummary:
    """Composition of one workload iteration at the baseline frequency."""

    trace_name: str
    operator_count: int
    duration_us: float
    aicore_avg_watts: float
    soc_avg_watts: float
    #: Fraction of wall time in frequency-sensitive operators (Table 1).
    sensitive_time_fraction: float
    #: Fraction of *operators* below the 20 us modelling cutoff.
    short_operator_fraction: float
    #: Fraction of wall time those short operators account for.
    short_operator_time_fraction: float
    by_type: tuple[TypeShare, ...]

    def top_types(self, count: int = 10) -> list[TypeShare]:
        """The ``count`` most time-consuming operator types."""
        return sorted(
            self.by_type, key=lambda share: share.time_us, reverse=True
        )[:count]

    def render(self, top: int = 10) -> str:
        """Human-readable composition report."""
        lines = [
            f"{self.trace_name}: {self.operator_count} operators, "
            f"{self.duration_us / 1e6:.4f}s at baseline, "
            f"AICore {self.aicore_avg_watts:.1f} W / "
            f"SoC {self.soc_avg_watts:.1f} W",
            f"  frequency-sensitive time: "
            f"{self.sensitive_time_fraction:.1%}",
            f"  sub-{SHORT_OPERATOR_CUTOFF_US:.0f}us operators: "
            f"{self.short_operator_fraction:.1%} of count, "
            f"{self.short_operator_time_fraction:.1%} of time",
            "  top operator types by time:",
        ]
        for share in self.top_types(top):
            lines.append(
                f"    {share.op_type:<18} {share.count:>5} ops  "
                f"{share.time_share:>6.1%} of time  "
                f"(sensitive {share.frequency_sensitive_share:.0%})"
            )
        return "\n".join(lines)


def summarize_trace(
    trace: Trace, device: NpuDevice, seed: int = 0
) -> TraceSummary:
    """Profile one baseline iteration and summarise its composition."""
    result = device.run_stable(
        trace, FrequencyTimeline.constant(device.npu.max_frequency_mhz)
    )
    profiler = CannStyleProfiler(
        device.npu, RngFactory(seed).generator("summary-profiler")
    )
    report = profiler.profile(result)
    classified = classify_operators(report.operators)

    total_time = sum(op.profiled.duration_us for op in classified)
    sensitive_time = sum(
        op.profiled.duration_us
        for op in classified
        if op.frequency_sensitive
    )
    short_ops = [
        op
        for op in classified
        if op.profiled.duration_us < SHORT_OPERATOR_CUTOFF_US
    ]
    short_time = sum(op.profiled.duration_us for op in short_ops)

    per_type: dict[str, list] = {}
    for op in classified:
        per_type.setdefault(op.profiled.op_type, []).append(op)
    shares = []
    for op_type, members in sorted(per_type.items()):
        type_time = sum(op.profiled.duration_us for op in members)
        type_sensitive = sum(
            op.profiled.duration_us
            for op in members
            if op.frequency_sensitive
        )
        shares.append(
            TypeShare(
                op_type=op_type,
                count=len(members),
                time_us=type_time,
                time_share=type_time / total_time if total_time else 0.0,
                frequency_sensitive_share=(
                    type_sensitive / type_time if type_time else 0.0
                ),
            )
        )
    return TraceSummary(
        trace_name=trace.name,
        operator_count=trace.operator_count,
        duration_us=result.duration_us,
        aicore_avg_watts=result.aicore_avg_watts,
        soc_avg_watts=result.soc_avg_watts,
        sensitive_time_fraction=(
            sensitive_time / total_time if total_time else 0.0
        ),
        short_operator_fraction=(
            len(short_ops) / len(classified) if classified else 0.0
        ),
        short_operator_time_fraction=(
            short_time / total_time if total_time else 0.0
        ),
        by_type=tuple(shares),
    )
