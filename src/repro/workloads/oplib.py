"""Parameterised builders for common AI operators.

Each builder converts high-level workload parameters (matrix shapes, tensor
element counts, transfer volumes) into the ground-truth
:class:`ComputeCharacter` the simulator executes.  The conversion constants
model an Ascend-910-class AICore array:

* the cube (matrix) engines retire ``CUBE_FLOPS_PER_CYCLE`` flops per core
  cycle across all AICores (~354 Tflop/s fp16 at 1800 MHz);
* the vector engines retire ``VECTOR_FLOPS_PER_CYCLE`` flops per cycle.

Operator families differ in where their cycles go (pipe mix), how much data
they move per computed flop, their timeline scenario, and their fixed
pre/post-processing overhead — these differences are exactly what makes
some operators compute-bound (HFC candidates) and others memory-bound (LFC
candidates) in the paper's Sect. 6 strategy.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.npu.pipelines import Pipe
from repro.npu.timeline import Scenario
from repro.units import gbps_to_bytes_per_us
from repro.workloads.operator import (
    ComputeCharacter,
    OperatorKind,
    OperatorSpec,
    make_fixed_operator,
)

#: Aggregate cube-engine throughput across all AICores, flops per cycle.
CUBE_FLOPS_PER_CYCLE = 196_608.0
#: Aggregate vector-engine throughput across all AICores, flops per cycle.
VECTOR_FLOPS_PER_CYCLE = 6_144.0
#: Effective inter-device link bandwidth for collectives, GB/s.
LINK_BANDWIDTH_GBPS = 28.0

#: Bounds on the number of double-buffered blocks an operator tiles into.
_MIN_BLOCKS = 1
_MAX_BLOCKS = 24
#: Target core cycles per tile; controls how many blocks an op splits into.
_TARGET_BLOCK_CYCLES = 40_000.0
#: Target transfer volume per tile: tiles must fit the L1/L0 buffers, so
#: memory-heavy operators split into many blocks even when their compute
#: is tiny (this is what lets them pipeline and become Ld/St bound).
_TARGET_BLOCK_BYTES = 3_000_000.0


def _choose_blocks(total_core_cycles: float, total_bytes: float = 0.0) -> int:
    """Pick a realistic tile count for a given compute and transfer size."""
    by_compute = total_core_cycles / _TARGET_BLOCK_CYCLES
    by_bytes = total_bytes / _TARGET_BLOCK_BYTES
    blocks = int(round(max(by_compute, by_bytes)))
    return max(_MIN_BLOCKS, min(_MAX_BLOCKS, blocks))


def _character(
    scenario: Scenario,
    total_core_cycles: float,
    core_mix: dict[Pipe, float],
    total_ld_bytes: float,
    total_st_bytes: float,
    bandwidth_derate: float,
    fixed_overhead_us: float,
    n_blocks: int | None = None,
) -> ComputeCharacter:
    blocks = (
        n_blocks
        if n_blocks is not None
        else _choose_blocks(total_core_cycles, total_ld_bytes + total_st_bytes)
    )
    return ComputeCharacter(
        scenario=scenario,
        n_blocks=blocks,
        core_cycles_per_block=total_core_cycles / blocks,
        core_mix=ComputeCharacter.make_mix(core_mix),
        ld_bytes_per_block=total_ld_bytes / blocks,
        st_bytes_per_block=total_st_bytes / blocks,
        bandwidth_derate=bandwidth_derate,
        fixed_overhead_us=fixed_overhead_us,
    )


def matmul(
    name: str,
    m: int,
    k: int,
    n: int,
    batch: int = 1,
    dtype_bytes: int = 2,
    bandwidth_derate: float = 1.15,
    op_type: str = "MatMul",
) -> OperatorSpec:
    """A (possibly batched) matrix multiply — the canonical cube-bound op.

    MatMul is the paper's example of a compute-bound operator that trades
    ~7% performance for ~8% power under frequency reduction (Sect. 6).
    """
    if min(m, k, n, batch) < 1:
        raise WorkloadError(f"matmul dims must be >= 1: {m}x{k}x{n} b{batch}")
    flops = 2.0 * batch * m * k * n
    core_cycles = flops / CUBE_FLOPS_PER_CYCLE
    ld_bytes = batch * (m * k + k * n) * dtype_bytes
    st_bytes = batch * m * n * dtype_bytes
    character = _character(
        scenario=Scenario.PINGPONG_INDEPENDENT,
        total_core_cycles=core_cycles,
        core_mix={Pipe.CUBE: 0.84, Pipe.MTE1: 0.11, Pipe.SCALAR: 0.05},
        total_ld_bytes=ld_bytes,
        total_st_bytes=st_bytes,
        bandwidth_derate=bandwidth_derate,
        fixed_overhead_us=1.0,
    )
    return OperatorSpec(name=name, op_type=op_type, compute=character)


#: Fraction of peak cube throughput a convolution typically achieves
#: (im2col inefficiency, edge tiles, small-channel underutilisation).
CONV_CUBE_EFFICIENCY = 0.5


def conv2d(
    name: str,
    batch: int,
    c_in: int,
    c_out: int,
    h_out: int,
    w_out: int,
    kernel: int = 3,
    dtype_bytes: int = 2,
    cube_efficiency: float = CONV_CUBE_EFFICIENCY,
) -> OperatorSpec:
    """A 2D convolution, executed on the cube engines via im2col."""
    if min(batch, c_in, c_out, h_out, w_out, kernel) < 1:
        raise WorkloadError(f"conv2d dims must be >= 1 for {name!r}")
    if not 0 < cube_efficiency <= 1:
        raise WorkloadError(f"cube_efficiency must be in (0, 1]: {cube_efficiency}")
    flops = 2.0 * batch * c_out * h_out * w_out * c_in * kernel * kernel
    core_cycles = flops / (CUBE_FLOPS_PER_CYCLE * cube_efficiency)
    input_bytes = batch * c_in * h_out * w_out * dtype_bytes * 1.3  # halo reads
    weight_bytes = c_out * c_in * kernel * kernel * dtype_bytes
    st_bytes = batch * c_out * h_out * w_out * dtype_bytes
    character = _character(
        scenario=Scenario.PINGPONG_INDEPENDENT,
        total_core_cycles=core_cycles,
        core_mix={Pipe.CUBE: 0.85, Pipe.MTE1: 0.10, Pipe.SCALAR: 0.05},
        total_ld_bytes=input_bytes + weight_bytes,
        total_st_bytes=st_bytes,
        bandwidth_derate=1.2,
        fixed_overhead_us=1.2,
    )
    return OperatorSpec(name=name, op_type="Conv2D", compute=character)


def elementwise(
    name: str,
    op_type: str,
    elements: int,
    inputs: int = 2,
    flops_per_element: float = 1.0,
    dtype_bytes: int = 2,
    bandwidth_derate: float = 0.85,
) -> OperatorSpec:
    """A vector elementwise operator (Add, Mul, RealDiv, Gelu, Tanh, ...).

    Vector operators fall short of peak uncore bandwidth (launch
    overheads, strided access); the default derate puts their saturation
    point near 1200 MHz, so they are frequency-flat over most of the DVFS
    range — the LFC sweet spot the paper finds sits at 1200-1300 MHz.

    These move ~``inputs + 1`` tensors through the uncore per pass while
    doing little arithmetic, so at high core frequency they saturate the
    uncore bandwidth and become Ld/St-bound — the paper's LFC candidates.
    """
    if elements < 1:
        raise WorkloadError(f"elements must be >= 1 for {name!r}")
    core_cycles = elements * flops_per_element / VECTOR_FLOPS_PER_CYCLE
    ld_bytes = float(inputs) * elements * dtype_bytes
    st_bytes = float(elements * dtype_bytes)
    character = _character(
        scenario=Scenario.PINGPONG_INDEPENDENT,
        total_core_cycles=core_cycles,
        core_mix={Pipe.VECTOR: 0.9, Pipe.SCALAR: 0.1},
        total_ld_bytes=ld_bytes,
        total_st_bytes=st_bytes,
        bandwidth_derate=bandwidth_derate,
        fixed_overhead_us=0.5,
    )
    return OperatorSpec(name=name, op_type=op_type, compute=character)


def reduction(
    name: str,
    op_type: str,
    elements: int,
    reduce_factor: int = 64,
    flops_per_element: float = 1.5,
    dtype_bytes: int = 2,
) -> OperatorSpec:
    """A reduction operator (ReduceMean, ReduceSum, Softmax denominators).

    Reads a large tensor, writes a small one; the serial dependency between
    passes makes it a PingPong-free operator in our model.
    """
    if elements < 1 or reduce_factor < 1:
        raise WorkloadError(f"bad reduction parameters for {name!r}")
    core_cycles = elements * flops_per_element / VECTOR_FLOPS_PER_CYCLE
    character = _character(
        scenario=Scenario.PINGPONG_FREE_INDEPENDENT,
        total_core_cycles=core_cycles,
        core_mix={Pipe.VECTOR: 0.75, Pipe.SCALAR: 0.25},
        total_ld_bytes=float(elements * dtype_bytes),
        total_st_bytes=float(max(1, elements // reduce_factor) * dtype_bytes),
        bandwidth_derate=0.8,
        fixed_overhead_us=0.6,
    )
    return OperatorSpec(name=name, op_type=op_type, compute=character)


def normalization(
    name: str,
    op_type: str,
    elements: int,
    dtype_bytes: int = 2,
    passes: int = 2,
) -> OperatorSpec:
    """A normalisation operator (LayerNorm, BNTrainingUpdate).

    Statistics and normalisation passes depend on each other, so Ld and St
    cannot overlap: the pingpong-dependent scenario of Sect. 4.2.4.
    """
    if elements < 1 or passes < 1:
        raise WorkloadError(f"bad normalization parameters for {name!r}")
    core_cycles = elements * passes * 2.0 / VECTOR_FLOPS_PER_CYCLE
    character = _character(
        scenario=Scenario.PINGPONG_DEPENDENT,
        total_core_cycles=core_cycles,
        core_mix={Pipe.VECTOR: 0.8, Pipe.SCALAR: 0.2},
        total_ld_bytes=float(passes * elements * dtype_bytes),
        total_st_bytes=float(elements * dtype_bytes),
        bandwidth_derate=0.85,
        fixed_overhead_us=0.7,
    )
    return OperatorSpec(name=name, op_type=op_type, compute=character)


def softmax(name: str, elements: int, dtype_bytes: int = 2) -> OperatorSpec:
    """Softmax: exp/sum/divide passes with a serial dependency chain."""
    if elements < 1:
        raise WorkloadError(f"elements must be >= 1 for {name!r}")
    core_cycles = elements * 6.0 / VECTOR_FLOPS_PER_CYCLE
    character = _character(
        scenario=Scenario.PINGPONG_INDEPENDENT,
        total_core_cycles=core_cycles,
        core_mix={Pipe.VECTOR: 0.85, Pipe.SCALAR: 0.15},
        total_ld_bytes=float(2 * elements * dtype_bytes),
        total_st_bytes=float(elements * dtype_bytes),
        bandwidth_derate=0.8,
        fixed_overhead_us=0.6,
    )
    return OperatorSpec(name=name, op_type="SoftmaxV2", compute=character)


def scalar_glue(
    name: str,
    op_type: str = "Cast",
    elements: int = 4096,
    dtype_bytes: int = 2,
) -> OperatorSpec:
    """A tiny glue operator (Cast, Reshape prep, scalar bookkeeping).

    Dominated by fixed pre/post-processing — the 'no-pipeline bound' class
    of Sect. 6.1: the sum of its pipe ratios stays below 1.  These are the
    sub-20 us operators the paper excludes from model fitting.
    """
    if elements < 1:
        raise WorkloadError(f"elements must be >= 1 for {name!r}")
    core_cycles = max(200.0, elements / VECTOR_FLOPS_PER_CYCLE)
    character = _character(
        scenario=Scenario.PINGPONG_FREE_INDEPENDENT,
        total_core_cycles=core_cycles,
        core_mix={Pipe.SCALAR: 0.6, Pipe.VECTOR: 0.4},
        total_ld_bytes=float(elements * dtype_bytes),
        total_st_bytes=float(elements * dtype_bytes),
        bandwidth_derate=0.8,
        fixed_overhead_us=6.0,
        n_blocks=1,
    )
    return OperatorSpec(name=name, op_type=op_type, compute=character)


def transpose(
    name: str, elements: int, dtype_bytes: int = 2
) -> OperatorSpec:
    """A data-movement operator with a poorly overlapped pipeline.

    Balanced Ld/core/St costs in the serial scenario keep every pipe's
    ratio below 0.8: the 'latency-bound' class of Sect. 6.1.
    """
    if elements < 1:
        raise WorkloadError(f"elements must be >= 1 for {name!r}")
    core_cycles = elements * 5.5 / VECTOR_FLOPS_PER_CYCLE
    character = _character(
        scenario=Scenario.PINGPONG_FREE_DEPENDENT,
        total_core_cycles=core_cycles,
        core_mix={Pipe.MTE1: 0.6, Pipe.VECTOR: 0.4},
        total_ld_bytes=float(elements * dtype_bytes),
        total_st_bytes=float(elements * dtype_bytes),
        bandwidth_derate=0.7,
        fixed_overhead_us=0.8,
    )
    return OperatorSpec(name=name, op_type="TransposeD", compute=character)


def communication(
    name: str,
    volume_bytes: float,
    op_type: str = "HcclAllReduce",
    link_gbps: float = LINK_BANDWIDTH_GBPS,
) -> OperatorSpec:
    """A collective-communication operator (duration set by link bandwidth).

    Communication runs on the HCCS links/uncore and is insensitive to the
    AICore frequency (Table 1).
    """
    if volume_bytes <= 0:
        raise WorkloadError(f"volume must be positive for {name!r}")
    duration_us = volume_bytes / gbps_to_bytes_per_us(link_gbps)
    return make_fixed_operator(
        name, OperatorKind.COMMUNICATION, duration_us, op_type=op_type
    )


def aicpu(name: str, duration_us: float, op_type: str = "AICPU") -> OperatorSpec:
    """An operator executed on the AICPU rather than the AICore."""
    return make_fixed_operator(name, OperatorKind.AICPU, duration_us, op_type)


def idle(name: str, duration_us: float) -> OperatorSpec:
    """A scheduler-generated idle span."""
    return make_fixed_operator(name, OperatorKind.IDLE, duration_us, "Idle")
