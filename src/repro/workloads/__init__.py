"""Synthetic workload traces for the simulated NPU.

Operator specs describe ground-truth execution character; trace generators
assemble them into the training/inference iterations of the models the
paper evaluates (GPT-3, BERT, ResNet-50/152, VGG19, ViT, DeiT, AlexNet,
ShuffleNetV2Plus, Llama2 inference) plus single-operator micro loads for
calibration.
"""

from repro.workloads.operator import (
    ComputeCharacter,
    OperatorKind,
    OperatorSpec,
    make_fixed_operator,
)
from repro.workloads.registry import (
    PERF_VALIDATION_WORKLOADS,
    POWER_VALIDATION_WORKLOADS,
    generate,
    micro_loops,
    workload_names,
)
from repro.workloads.serialization import (
    load_trace,
    save_trace,
    trace_from_json,
    trace_to_json,
)
from repro.workloads.summary import TraceSummary, TypeShare, summarize_trace
from repro.workloads.trace import Trace, TraceBuilder, TraceEntry, build_trace

__all__ = [
    "ComputeCharacter",
    "OperatorKind",
    "OperatorSpec",
    "PERF_VALIDATION_WORKLOADS",
    "POWER_VALIDATION_WORKLOADS",
    "Trace",
    "TraceBuilder",
    "TraceEntry",
    "TraceSummary",
    "TypeShare",
    "build_trace",
    "generate",
    "load_trace",
    "make_fixed_operator",
    "micro_loops",
    "save_trace",
    "summarize_trace",
    "trace_from_json",
    "trace_to_json",
    "workload_names",
]
