"""Public re-export of operator specification types.

The canonical definitions live in :mod:`repro.npu.operators` (the simulator
executes them); workload code imports them from here.
"""

from repro.npu.operators import (
    ComputeCharacter,
    OperatorKind,
    OperatorSpec,
    make_fixed_operator,
)

__all__ = [
    "ComputeCharacter",
    "OperatorKind",
    "OperatorSpec",
    "make_fixed_operator",
]
