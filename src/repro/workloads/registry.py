"""Registry of named workload generators.

Maps the workload names used throughout the experiments (and the CLI) to
their generator callables.  Every generator accepts ``scale`` and ``seed``
keyword arguments.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.errors import WorkloadError
from repro.workloads.generators import cnns, llama2, micro, models
from repro.workloads.trace import Trace


class WorkloadGenerator(Protocol):
    """A callable producing one iteration trace."""

    def __call__(self, scale: float = 1.0, seed: int = 0) -> Trace: ...


_REGISTRY: dict[str, Callable[..., Trace]] = {
    "gpt3": models.gpt3_training,
    "bert": models.bert_training,
    "vit_base": models.vit_base_training,
    "deit_small": models.deit_small_training,
    "resnet50": cnns.resnet50_training,
    "resnet152": cnns.resnet152_training,
    "vgg19": cnns.vgg19_training,
    "alexnet": cnns.alexnet_training,
    "shufflenetv2plus": cnns.shufflenet_training,
    "llama2_inference": llama2.llama2_inference,
}

#: The seven models used for performance-model validation in Sect. 7.2.
PERF_VALIDATION_WORKLOADS: tuple[str, ...] = (
    "resnet50",
    "vit_base",
    "bert",
    "deit_small",
    "alexnet",
    "shufflenetv2plus",
    "vgg19",
)

#: The workloads used for power-model validation in Sect. 7.3 (Table 2).
POWER_VALIDATION_WORKLOADS: tuple[str, ...] = (
    "gpt3",
    "bert",
    "vgg19",
    "resnet50",
    "vit_base",
)


def workload_names() -> list[str]:
    """All registered trace-generator names."""
    return sorted(_REGISTRY)


def generate(name: str, scale: float = 1.0, seed: int = 0, **kwargs) -> Trace:
    """Generate a named workload trace.

    Raises:
        WorkloadError: for an unknown workload name.
    """
    try:
        generator = _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {workload_names()}"
        ) from None
    return generator(scale=scale, seed=seed, **kwargs)


def micro_loops() -> dict[str, Callable[..., Trace]]:
    """The single-operator micro workloads (calibration/validation loads)."""
    return {
        "softmax_loop": micro.softmax_loop,
        "tanh_loop": micro.tanh_loop,
        "matmul_loop": micro.matmul_loop,
        "gelu_loop": micro.gelu_loop,
        "calibration_load": micro.mixed_calibration_load,
    }
