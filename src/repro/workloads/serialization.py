"""JSON (de)serialisation for operator specs and traces.

Traces are the interchange format of this library: a profiled production
workload can be exported once and optimised offline, and regression suites
can pin exact traces.  The format is versioned and self-describing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import WorkloadError
from repro.npu.pipelines import Pipe
from repro.npu.timeline import Scenario
from repro.workloads.operator import (
    ComputeCharacter,
    OperatorKind,
    OperatorSpec,
)
from repro.workloads.trace import Trace, TraceEntry

#: Format version written into every document.
FORMAT_VERSION = 1


def spec_to_dict(spec: OperatorSpec) -> dict[str, Any]:
    """Serialise one operator spec to plain data."""
    payload: dict[str, Any] = {
        "name": spec.name,
        "op_type": spec.op_type,
        "kind": spec.kind.value,
    }
    if spec.compute is not None:
        compute = spec.compute
        payload["compute"] = {
            "scenario": compute.scenario.value,
            "n_blocks": compute.n_blocks,
            "core_cycles_per_block": compute.core_cycles_per_block,
            "core_mix": {
                pipe.value: fraction for pipe, fraction in compute.core_mix
            },
            "ld_bytes_per_block": compute.ld_bytes_per_block,
            "st_bytes_per_block": compute.st_bytes_per_block,
            "bandwidth_derate": compute.bandwidth_derate,
            "fixed_overhead_us": compute.fixed_overhead_us,
        }
    else:
        payload["fixed_duration_us"] = spec.fixed_duration_us
    return payload


def spec_from_dict(payload: dict[str, Any]) -> OperatorSpec:
    """Deserialise one operator spec.

    Raises:
        WorkloadError: on malformed payloads.
    """
    try:
        kind = OperatorKind(payload["kind"])
        if "compute" in payload:
            raw = payload["compute"]
            character = ComputeCharacter(
                scenario=Scenario(raw["scenario"]),
                n_blocks=int(raw["n_blocks"]),
                core_cycles_per_block=float(raw["core_cycles_per_block"]),
                core_mix=ComputeCharacter.make_mix(
                    {
                        Pipe(name): float(fraction)
                        for name, fraction in raw["core_mix"].items()
                    }
                ),
                ld_bytes_per_block=float(raw["ld_bytes_per_block"]),
                st_bytes_per_block=float(raw["st_bytes_per_block"]),
                bandwidth_derate=float(raw["bandwidth_derate"]),
                fixed_overhead_us=float(raw["fixed_overhead_us"]),
            )
            return OperatorSpec(
                name=payload["name"],
                op_type=payload["op_type"],
                kind=kind,
                compute=character,
            )
        return OperatorSpec(
            name=payload["name"],
            op_type=payload["op_type"],
            kind=kind,
            compute=None,
            fixed_duration_us=float(payload["fixed_duration_us"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkloadError(f"malformed operator payload: {exc}") from exc


def trace_to_json(trace: Trace) -> str:
    """Serialise a trace (specs deduplicated) to a JSON document."""
    specs = trace.unique_specs()
    spec_index = {spec: i for i, spec in enumerate(specs)}
    payload = {
        "format_version": FORMAT_VERSION,
        "name": trace.name,
        "description": trace.description,
        "specs": [spec_to_dict(spec) for spec in specs],
        "entries": [
            {
                "spec": spec_index[entry.spec],
                "gap_before_us": entry.gap_before_us,
                "host_interval_us": entry.host_interval_us,
            }
            for entry in trace.entries
        ],
    }
    return json.dumps(payload)


def trace_from_json(document: str) -> Trace:
    """Deserialise a trace written by :func:`trace_to_json`.

    Raises:
        WorkloadError: on malformed documents or unknown format versions.
    """
    try:
        payload = json.loads(document)
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"malformed trace document: {exc}") from exc
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported trace format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        specs = [spec_from_dict(raw) for raw in payload["specs"]]
        entries = tuple(
            TraceEntry(
                spec=specs[int(raw["spec"])],
                gap_before_us=float(raw.get("gap_before_us", 0.0)),
                host_interval_us=float(raw.get("host_interval_us", 0.0)),
            )
            for raw in payload["entries"]
        )
        return Trace(
            name=payload["name"],
            entries=entries,
            description=payload.get("description", ""),
        )
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise WorkloadError(f"malformed trace document: {exc}") from exc


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace to a JSON file."""
    Path(path).write_text(trace_to_json(trace), encoding="utf-8")


def load_trace(path: str | Path) -> Trace:
    """Read a trace from a JSON file."""
    return trace_from_json(Path(path).read_text(encoding="utf-8"))
