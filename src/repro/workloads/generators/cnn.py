"""CNN training-iteration trace emitter.

Emits one training step of a convolutional network described as a list of
stages: each stage is a (repeated) convolution block with its
batch-normalisation and activation operators, followed by the backward
pass, gradient all-reduce and optimizer update.  CNN iterations are
BN/activation heavy, which gives them a different LFC/HFC balance from the
transformers (visible in Table 3: ResNet sees smaller AICore savings than
BERT/GPT-3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.workloads import oplib
from repro.workloads.generators.base import ShapeJitter, generator_rng
from repro.workloads.trace import Trace, TraceBuilder


@dataclass(frozen=True)
class ConvStage:
    """One convolutional stage of a CNN.

    Attributes:
        c_in: input channels.
        c_out: output channels.
        h: output feature-map height.
        w: output feature-map width.
        kernel: square kernel size.
        repeats: how many times the block repeats in the stage.
        pointwise: if True the block is a 1x1 (projection) convolution.
    """

    c_in: int
    c_out: int
    h: int
    w: int
    kernel: int = 3
    repeats: int = 1
    pointwise: bool = False

    def __post_init__(self) -> None:
        if min(self.c_in, self.c_out, self.h, self.w, self.repeats) < 1:
            raise WorkloadError(f"bad conv stage: {self}")


@dataclass(frozen=True)
class CnnConfig:
    """A CNN training-step description."""

    name: str
    stages: tuple[ConvStage, ...]
    batch: int
    classifier_width: int = 1000
    glue_per_block: int = 6
    comm_bytes_total: float = 100e6
    optimizer_aicpu_us: float = 250.0
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.stages:
            raise WorkloadError(f"CNN {self.name!r} has no stages")
        if self.batch < 1:
            raise WorkloadError(f"batch must be >= 1: {self.batch}")


def build_cnn_training_trace(config: CnnConfig) -> Trace:
    """One full CNN training iteration (forward + backward + optimizer)."""
    rng = generator_rng(config.name, config.seed)
    jitter = ShapeJitter(rng)
    builder = TraceBuilder(config.name, config.description)
    blocks = _enumerate_blocks(config)
    for index, stage in blocks:
        _emit_block_forward(builder, config, index, stage, jitter)
    _emit_classifier(builder, config, jitter)
    for index, stage in reversed(blocks):
        _emit_block_backward(builder, config, index, stage, jitter)
    builder.add(
        oplib.communication(
            f"{config.name}.allreduce", jitter.scale(config.comm_bytes_total)
        )
    )
    _emit_optimizer(builder, config, jitter)
    return builder.build()


def _enumerate_blocks(config: CnnConfig) -> list[tuple[int, ConvStage]]:
    blocks: list[tuple[int, ConvStage]] = []
    index = 0
    for stage in config.stages:
        for _ in range(stage.repeats):
            blocks.append((index, stage))
            index += 1
    return blocks


def _emit_block_forward(
    builder: TraceBuilder,
    config: CnnConfig,
    index: int,
    stage: ConvStage,
    jitter: ShapeJitter,
) -> None:
    p = f"{config.name}.b{index}.fwd"
    kernel = 1 if stage.pointwise else stage.kernel
    builder.add(
        oplib.conv2d(
            f"{p}.conv", config.batch, stage.c_in, stage.c_out,
            jitter.size(stage.h), stage.w, kernel=kernel,
        )
    )
    elements = config.batch * stage.c_out * stage.h * stage.w
    builder.add(
        oplib.normalization(
            f"{p}.bn", "BNTrainingUpdate", jitter.size(elements)
        )
    )
    builder.add(
        oplib.elementwise(f"{p}.relu", "Relu", jitter.size(elements), inputs=1)
    )
    for i in range(config.glue_per_block):
        builder.add(
            oplib.scalar_glue(
                f"{p}.glue.{i}", op_type=("Cast", "Assign", "Mul")[i % 3],
                elements=jitter.size(2500 + 500 * (i % 5)),
            )
        )


def _emit_block_backward(
    builder: TraceBuilder,
    config: CnnConfig,
    index: int,
    stage: ConvStage,
    jitter: ShapeJitter,
) -> None:
    p = f"{config.name}.b{index}.bwd"
    elements = config.batch * stage.c_out * stage.h * stage.w
    builder.add(
        oplib.elementwise(f"{p}.relu_grad", "ReluGrad", jitter.size(elements),
                          inputs=2)
    )
    builder.add(
        oplib.normalization(
            f"{p}.bn_grad", "BNTrainingReduceGrad", jitter.size(elements),
            passes=3,
        )
    )
    kernel = 1 if stage.pointwise else stage.kernel
    builder.add(
        oplib.conv2d(
            f"{p}.dgrad", config.batch, stage.c_out, stage.c_in,
            jitter.size(stage.h), stage.w, kernel=kernel,
        )
    )
    builder.add(
        oplib.conv2d(
            f"{p}.wgrad", config.batch, stage.c_in, stage.c_out,
            jitter.size(stage.h), stage.w, kernel=kernel,
        )
    )
    for i in range(max(1, config.glue_per_block // 2)):
        builder.add(
            oplib.scalar_glue(
                f"{p}.glue.{i}", op_type=("Cast", "ZerosLike")[i % 2],
                elements=jitter.size(2000 + 400 * (i % 4)),
            )
        )


def _emit_classifier(
    builder: TraceBuilder, config: CnnConfig, jitter: ShapeJitter
) -> None:
    last = config.stages[-1]
    p = f"{config.name}.head"
    builder.add(
        oplib.reduction(
            f"{p}.gap", "ReduceMean",
            jitter.size(config.batch * last.c_out * last.h * last.w),
            reduce_factor=last.h * last.w,
        )
    )
    builder.add(
        oplib.matmul(f"{p}.fc", config.batch, last.c_out, config.classifier_width)
    )
    builder.add(
        oplib.softmax(f"{p}.softmax",
                      jitter.size(config.batch * config.classifier_width))
    )
    builder.add(oplib.aicpu(f"{p}.loss", jitter.scale(60.0)))


def _emit_optimizer(
    builder: TraceBuilder, config: CnnConfig, jitter: ShapeJitter
) -> None:
    builder.add(oplib.aicpu(f"{config.name}.opt.prep",
                            jitter.scale(config.optimizer_aicpu_us)))
    params = sum(
        s.c_in * s.c_out * (1 if s.pointwise else s.kernel) ** 2 * s.repeats
        for s in config.stages
    )
    builder.add(
        oplib.elementwise(
            f"{config.name}.opt.sgd", "ApplyMomentum", max(1, params // 8),
            inputs=3, flops_per_element=4.0, dtype_bytes=4,
        )
    )
