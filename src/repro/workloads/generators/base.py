"""Shared infrastructure for workload-trace generators.

Generators synthesise the operator sequences of one training/inference
iteration for the models the paper evaluates.  Real profiler traces show
small shape-to-shape variation between layers (padding, fused epilogues,
alignment), which matters here because it gives each operator instance its
own fitted model, as on real hardware — :class:`ShapeJitter` provides that
deterministic variation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.rng import RngFactory
from repro.errors import WorkloadError


@dataclass
class ShapeJitter:
    """Deterministic multiplicative jitter for generator shape parameters."""

    rng: np.random.Generator
    #: Fractional spread; 0.06 means sizes vary by roughly +-6%.
    spread: float = 0.06

    def scale(self, value: float) -> float:
        """Jitter a float parameter multiplicatively."""
        if self.spread <= 0:
            return value
        factor = 1.0 + self.rng.uniform(-self.spread, self.spread)
        return value * factor

    def size(self, value: int, minimum: int = 1) -> int:
        """Jitter an integer size, staying at or above ``minimum``."""
        return max(minimum, int(round(self.scale(float(value)))))


def generator_rng(workload_name: str, seed: int) -> np.random.Generator:
    """The deterministic RNG stream for a named generator."""
    return RngFactory(seed).generator(f"workload/{workload_name}")


def scaled_layer_count(layers: int, scale: float, minimum: int = 1) -> int:
    """Scale a model's layer count, keeping at least ``minimum`` layers.

    The ``scale`` knob lets tests and quick benchmarks run structurally
    identical but smaller iterations (fewer layers, same per-layer op mix).
    """
    if scale <= 0:
        raise WorkloadError(f"scale must be positive: {scale}")
    return max(minimum, int(round(layers * scale)))
