"""Micro-benchmark workloads: steady loops of a single operator.

The paper's calibration flow runs 'test loads' — a single operator repeated
under steady state — to characterise temperature/power behaviour (Fig. 10)
and to validate the power model on individual operators (Softmax and Tanh
in Table 2).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads import oplib
from repro.workloads.operator import OperatorSpec
from repro.workloads.trace import Trace, TraceBuilder


def operator_loop(spec: OperatorSpec, repeats: int, name: str | None = None) -> Trace:
    """Repeat one operator back-to-back ``repeats`` times."""
    if repeats < 1:
        raise WorkloadError(f"repeats must be >= 1: {repeats}")
    builder = TraceBuilder(
        name or f"{spec.op_type.lower()}_loop",
        f"steady loop of {spec.name} x{repeats}",
    )
    builder.add_repeated(spec, repeats)
    return builder.build()


def softmax_loop(repeats: int = 400, elements: int = 24_000_000) -> Trace:
    """A steady Softmax test load (Table 2 validation subject)."""
    return operator_loop(
        oplib.softmax("softmax_micro", elements), repeats, "softmax_loop"
    )


def tanh_loop(repeats: int = 400, elements: int = 24_000_000) -> Trace:
    """A steady Tanh test load (Table 2 validation subject)."""
    op = oplib.elementwise(
        "tanh_micro", "Tanh", elements, inputs=1, flops_per_element=6.0
    )
    return operator_loop(op, repeats, "tanh_loop")


def matmul_loop(repeats: int = 200, m: int = 4096, k: int = 4096,
                n: int = 4096) -> Trace:
    """A steady compute-bound MatMul test load (Fig. 10 line)."""
    return operator_loop(
        oplib.matmul("matmul_micro", m, k, n), repeats, "matmul_loop"
    )


def gelu_loop(repeats: int = 400, elements: int = 48_000_000) -> Trace:
    """A steady memory-bound Gelu test load (Fig. 10 line)."""
    op = oplib.elementwise(
        "gelu_micro", "Gelu", elements, inputs=1, flops_per_element=4.0
    )
    return operator_loop(op, repeats, "gelu_loop")


def mixed_calibration_load(repeats: int = 60) -> Trace:
    """The offline 'test load' used for gamma extraction (Sect. 5.4.2).

    A mixed compute/memory loop that heats the chip well above ambient so
    the post-load cooldown exposes the leakage-temperature slope.
    """
    builder = TraceBuilder("calibration_load", "offline gamma test load")
    matmul = oplib.matmul("cal_matmul", 4096, 4096, 4096)
    gelu = oplib.elementwise("cal_gelu", "Gelu", 48_000_000, inputs=1,
                             flops_per_element=4.0)
    for _ in range(repeats):
        builder.add(matmul)
        builder.add(gelu)
    return builder.build()
