"""Concrete transformer workloads named in the paper.

Each function returns one training-iteration trace.  The ``scale``
parameter shrinks the layer count (structure-preserving) so tests and quick
benchmarks stay fast; ``scale=1.0`` approximates the paper's full-size
iterations (e.g. GPT-3 with ~18,000 operators and an ~11 s iteration).
"""

from __future__ import annotations

from repro.workloads.generators.base import scaled_layer_count
from repro.workloads.generators.transformer import (
    TransformerConfig,
    build_transformer_training_trace,
)
from repro.workloads.trace import Trace


def gpt3_training(scale: float = 1.0, seed: int = 0, tokens: int = 2560) -> Trace:
    """One GPT-3 (175B-class) training iteration.

    At ``scale=1.0`` the trace has ~18,000 operators and runs ~11 s at
    1800 MHz on the simulated NPU, matching Table 3's baseline row.
    """
    config = TransformerConfig(
        name="gpt3",
        hidden=12288,
        layers=scaled_layer_count(96, scale),
        tokens=tokens,
        heads=96,
        seq_len=2048,
        glue_per_layer=110,
        comm_bytes_per_layer=220e6,
        tp_comm_bytes=2.0 * 12288 * tokens,
        seed=seed,
        description="GPT-3 175B-class training iteration (synthetic trace)",
    )
    return build_transformer_training_trace(config)


def bert_training(scale: float = 1.0, seed: int = 0) -> Trace:
    """One BERT-large training iteration (~0.31 s at 1800 MHz)."""
    config = TransformerConfig(
        name="bert",
        hidden=1024,
        layers=scaled_layer_count(24, scale),
        tokens=24576,
        heads=16,
        seq_len=512,
        glue_per_layer=48,
        comm_bytes_per_layer=28e6,
        optimizer_aicpu_us=90.0,
        seed=seed,
        description="BERT-large training iteration (synthetic trace)",
    )
    return build_transformer_training_trace(config)


def vit_base_training(scale: float = 1.0, seed: int = 0) -> Trace:
    """One ViT-Base training iteration."""
    config = TransformerConfig(
        name="vit_base",
        hidden=768,
        layers=scaled_layer_count(12, scale),
        tokens=12608,  # batch 64 x 197 patch tokens
        heads=12,
        seq_len=197,
        glue_per_layer=44,
        comm_bytes_per_layer=15e6,
        optimizer_aicpu_us=70.0,
        seed=seed,
        description="ViT-Base training iteration (synthetic trace)",
    )
    return build_transformer_training_trace(config)


def deit_small_training(scale: float = 1.0, seed: int = 0) -> Trace:
    """One DeiT-Small training iteration."""
    config = TransformerConfig(
        name="deit_small",
        hidden=384,
        layers=scaled_layer_count(12, scale),
        tokens=12608,
        heads=6,
        seq_len=197,
        glue_per_layer=40,
        comm_bytes_per_layer=5e6,
        optimizer_aicpu_us=60.0,
        seed=seed,
        description="DeiT-Small training iteration (synthetic trace)",
    )
    return build_transformer_training_trace(config)
