"""Workload trace generators (transformers, CNNs, inference, micro loads)."""
