"""Transformer training-iteration trace emitter.

Emits the operator sequence of one data-parallel training step of a
GPT/BERT/ViT-style transformer: for each layer, the forward pass
(normalisations, QKV/attention/FFN matmuls, softmax, activations, plus a
cloud of small glue operators), the corresponding backward pass (dgrad and
wgrad matmuls, activation backwards), gradient all-reduce, and optimizer
update operators.  The op mix is deliberately shaped so that:

* large matmuls dominate time (cube-bound, HFC candidates);
* elementwise/normalisation ops saturate uncore bandwidth (LFC candidates);
* a large population of sub-20 us glue ops exists (the paper's 58.3% of
  operators contributing 0.9% of time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.workloads import oplib
from repro.workloads.generators.base import ShapeJitter, generator_rng
from repro.workloads.trace import Trace, TraceBuilder


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture and batch configuration of a transformer training step.

    Attributes:
        name: trace name, e.g. ``"gpt3"``.
        hidden: model width ``h``.
        layers: number of transformer blocks.
        tokens: tokens per device-level micro step (batch x sequence).
        heads: attention heads.
        ffn_mult: FFN expansion factor.
        glue_per_layer: number of small glue operators emitted per layer.
        comm_bytes_per_layer: gradient all-reduce volume per layer (the
            already-overlapped remainder visible on the timeline).
        optimizer_aicpu_us: AICPU time per layer for the optimizer step.
        seed: jitter seed.
        attention_spans_tokens: if True, attention score/context matmuls
            span the full token count (training); if False the workload is
            a decode step.
    """

    name: str
    hidden: int
    layers: int
    tokens: int
    heads: int
    #: Sequence length; ``tokens / seq_len`` is the effective batch.  The
    #: attention matrices scale with ``tokens * seq_len``, not tokens^2.
    #: None means a single sequence (seq_len == tokens).
    seq_len: int | None = None
    ffn_mult: int = 4
    glue_per_layer: int = 110
    comm_bytes_per_layer: float = 256e6
    #: Tensor-parallel all-reduce volume per occurrence (two in the
    #: forward pass, two in the backward pass of every layer, as in
    #: Megatron-style training).  Zero disables TP communication.
    tp_comm_bytes: float = 0.0
    optimizer_aicpu_us: float = 180.0
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if min(self.hidden, self.layers, self.tokens, self.heads) < 1:
            raise WorkloadError(f"bad transformer config for {self.name!r}")
        if self.hidden % self.heads != 0:
            raise WorkloadError(
                f"hidden {self.hidden} not divisible by heads {self.heads}"
            )
        if self.seq_len is not None and not 1 <= self.seq_len <= self.tokens:
            raise WorkloadError(
                f"seq_len {self.seq_len} must be in [1, tokens]"
            )

    @property
    def effective_seq_len(self) -> int:
        """Sequence length used for attention shapes."""
        return self.seq_len if self.seq_len is not None else self.tokens


def build_transformer_training_trace(config: TransformerConfig) -> Trace:
    """One full training iteration (forward + backward + optimizer)."""
    rng = generator_rng(config.name, config.seed)
    jitter = ShapeJitter(rng)
    builder = TraceBuilder(config.name, config.description)
    for layer in range(config.layers):
        _emit_layer_forward(builder, config, layer, jitter)
    for layer in reversed(range(config.layers)):
        _emit_layer_backward(builder, config, layer, jitter)
        if config.comm_bytes_per_layer > 0:
            builder.add(
                oplib.communication(
                    f"{config.name}.allreduce.l{layer}",
                    jitter.scale(config.comm_bytes_per_layer),
                )
            )
    _emit_optimizer(builder, config, jitter)
    return builder.build()


def _emit_layer_forward(
    builder: TraceBuilder, config: TransformerConfig, layer: int, jitter: ShapeJitter
) -> None:
    h, m = config.hidden, config.tokens
    heads = config.heads
    seq = config.effective_seq_len
    dk = h // heads
    p = f"{config.name}.l{layer}.fwd"

    builder.add(oplib.normalization(f"{p}.ln1", "LayerNorm", jitter.size(m * h)))
    builder.add(oplib.matmul(f"{p}.qkv", jitter.size(m), h, 3 * h))
    builder.add(
        oplib.elementwise(f"{p}.qkv_bias", "Add", jitter.size(m * 3 * h), inputs=2)
    )
    builder.add(oplib.transpose(f"{p}.qkv_t", jitter.size(m * h)))
    builder.add(
        oplib.matmul(f"{p}.scores", jitter.size(m), dk, seq, batch=heads,
                     op_type="BatchMatMul", bandwidth_derate=0.7)
    )
    builder.add(
        oplib.softmax(f"{p}.softmax", jitter.size(heads * m * seq // 2))
    )
    builder.add(
        oplib.elementwise(
            f"{p}.attn_drop", "DropOutDoMask",
            jitter.size(heads * m * seq // 2), inputs=2,
        )
    )
    builder.add(
        oplib.matmul(f"{p}.context", jitter.size(m), seq, dk, batch=heads,
                     op_type="BatchMatMul", bandwidth_derate=0.7)
    )
    builder.add(oplib.transpose(f"{p}.ctx_t", jitter.size(m * h)))
    builder.add(oplib.matmul(f"{p}.proj", jitter.size(m), h, h))
    if config.tp_comm_bytes > 0:
        builder.add(
            oplib.communication(f"{p}.tp_ar1",
                                jitter.scale(config.tp_comm_bytes))
        )
    builder.add(oplib.elementwise(f"{p}.res1", "Add", jitter.size(m * h), inputs=2))
    builder.add(oplib.normalization(f"{p}.ln2", "LayerNorm", jitter.size(m * h)))
    builder.add(oplib.matmul(f"{p}.ffn1", jitter.size(m), h, config.ffn_mult * h))
    builder.add(
        oplib.elementwise(
            f"{p}.gelu", "Gelu", jitter.size(m * config.ffn_mult * h),
            inputs=1, flops_per_element=4.0,
        )
    )
    builder.add(oplib.matmul(f"{p}.ffn2", jitter.size(m), config.ffn_mult * h, h))
    if config.tp_comm_bytes > 0:
        builder.add(
            oplib.communication(f"{p}.tp_ar2",
                                jitter.scale(config.tp_comm_bytes))
        )
    builder.add(oplib.elementwise(f"{p}.res2", "Add", jitter.size(m * h), inputs=2))
    _emit_glue(builder, f"{p}.glue", config.glue_per_layer // 2, jitter)


def _emit_layer_backward(
    builder: TraceBuilder, config: TransformerConfig, layer: int, jitter: ShapeJitter
) -> None:
    h, m = config.hidden, config.tokens
    heads = config.heads
    seq = config.effective_seq_len
    dk = h // heads
    f = config.ffn_mult
    p = f"{config.name}.l{layer}.bwd"

    builder.add(
        oplib.elementwise(f"{p}.gelu_grad", "GeluGrad", jitter.size(m * f * h),
                          inputs=2, flops_per_element=5.0)
    )
    builder.add(oplib.matmul(f"{p}.ffn2_dgrad", jitter.size(m), h, f * h))
    builder.add(oplib.matmul(f"{p}.ffn2_wgrad", f * h, jitter.size(m), h))
    builder.add(oplib.matmul(f"{p}.ffn1_dgrad", jitter.size(m), f * h, h))
    builder.add(oplib.matmul(f"{p}.ffn1_wgrad", h, jitter.size(m), f * h))
    if config.tp_comm_bytes > 0:
        builder.add(
            oplib.communication(f"{p}.tp_ar1",
                                jitter.scale(config.tp_comm_bytes))
        )
    builder.add(
        oplib.normalization(f"{p}.ln2_grad", "LayerNormGrad", jitter.size(m * h),
                            passes=3)
    )
    builder.add(oplib.matmul(f"{p}.proj_dgrad", jitter.size(m), h, h))
    builder.add(oplib.matmul(f"{p}.proj_wgrad", h, jitter.size(m), h))
    builder.add(
        oplib.matmul(f"{p}.ctx_dgrad", jitter.size(m), dk, seq, batch=heads,
                     op_type="BatchMatMul", bandwidth_derate=0.7)
    )
    builder.add(
        oplib.elementwise(f"{p}.softmax_grad", "SoftmaxGrad",
                          jitter.size(heads * m * seq // 2), inputs=2,
                          flops_per_element=3.0)
    )
    builder.add(
        oplib.matmul(f"{p}.scores_dgrad", jitter.size(m), seq, dk, batch=heads,
                     op_type="BatchMatMul", bandwidth_derate=0.7)
    )
    builder.add(oplib.matmul(f"{p}.qkv_dgrad", jitter.size(m), 3 * h, h))
    builder.add(oplib.matmul(f"{p}.qkv_wgrad", 3 * h, jitter.size(m), h))
    if config.tp_comm_bytes > 0:
        builder.add(
            oplib.communication(f"{p}.tp_ar2",
                                jitter.scale(config.tp_comm_bytes))
        )
    builder.add(
        oplib.normalization(f"{p}.ln1_grad", "LayerNormGrad", jitter.size(m * h),
                            passes=3)
    )
    builder.add(
        oplib.elementwise(f"{p}.res_grad", "Add", jitter.size(m * h), inputs=2)
    )
    _emit_glue(builder, f"{p}.glue", config.glue_per_layer - config.glue_per_layer // 2,
               jitter)


def _emit_glue(
    builder: TraceBuilder, prefix: str, count: int, jitter: ShapeJitter
) -> None:
    """Emit a cloud of sub-20 us glue operators (casts, slices, scales)."""
    glue_types = ("Cast", "Mul", "StridedSliceD", "ZerosLike", "Assign")
    for i in range(count):
        op_type = glue_types[i % len(glue_types)]
        builder.add(
            oplib.scalar_glue(
                f"{prefix}.{i}", op_type=op_type,
                elements=jitter.size(3000 + 600 * (i % 7)),
            )
        )


def _emit_optimizer(
    builder: TraceBuilder, config: TransformerConfig, jitter: ShapeJitter
) -> None:
    """Optimizer step: AICPU bookkeeping plus fused parameter updates."""
    h = config.hidden
    for layer in range(config.layers):
        p = f"{config.name}.opt.l{layer}"
        builder.add(oplib.aicpu(f"{p}.step_check", jitter.scale(
            config.optimizer_aicpu_us)))
        builder.add(
            oplib.elementwise(
                f"{p}.adam", "ApplyAdamW", jitter.size(12 * h * h // 64),
                inputs=3, flops_per_element=6.0, dtype_bytes=4,
            )
        )
