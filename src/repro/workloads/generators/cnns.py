"""Concrete CNN workloads named in the paper.

ResNet-50/152 appear in Table 3; VGG19, AlexNet, DeiT and ShuffleNetV2Plus
appear in the performance-model validation of Sect. 7.2.  ShuffleNetV2Plus
is generated with exactly 4,343 compute operators at ``scale=1.0`` to match
the fitting-cost experiment of Sect. 4.3.
"""

from __future__ import annotations

from repro.workloads import oplib
from repro.workloads.generators.base import scaled_layer_count
from repro.workloads.generators.cnn import (
    CnnConfig,
    ConvStage,
    build_cnn_training_trace,
)
from repro.workloads.operator import OperatorKind
from repro.workloads.trace import Trace, TraceBuilder

#: Exact compute-operator count of the ShuffleNetV2Plus trace (Sect. 4.3).
SHUFFLENET_OPERATOR_COUNT = 4343


def _resnet_stages(block_repeats: tuple[int, int, int, int]) -> tuple[ConvStage, ...]:
    """Bottleneck stages of a ResNet, one ConvStage per conv position."""
    r1, r2, r3, r4 = block_repeats
    return (
        ConvStage(3, 64, 112, 112, kernel=7, repeats=1),
        ConvStage(64, 64, 56, 56, kernel=1, repeats=r1, pointwise=True),
        ConvStage(64, 64, 56, 56, kernel=3, repeats=r1),
        ConvStage(64, 256, 56, 56, kernel=1, repeats=r1, pointwise=True),
        ConvStage(256, 128, 28, 28, kernel=1, repeats=r2, pointwise=True),
        ConvStage(128, 128, 28, 28, kernel=3, repeats=r2),
        ConvStage(128, 512, 28, 28, kernel=1, repeats=r2, pointwise=True),
        ConvStage(512, 256, 14, 14, kernel=1, repeats=r3, pointwise=True),
        ConvStage(256, 256, 14, 14, kernel=3, repeats=r3),
        ConvStage(256, 1024, 14, 14, kernel=1, repeats=r3, pointwise=True),
        ConvStage(1024, 512, 7, 7, kernel=1, repeats=r4, pointwise=True),
        ConvStage(512, 512, 7, 7, kernel=3, repeats=r4),
        ConvStage(512, 2048, 7, 7, kernel=1, repeats=r4, pointwise=True),
    )


def _scale_stages(
    stages: tuple[ConvStage, ...], scale: float
) -> tuple[ConvStage, ...]:
    if scale >= 1.0:
        return stages
    return tuple(
        ConvStage(
            s.c_in, s.c_out, s.h, s.w, s.kernel,
            scaled_layer_count(s.repeats, scale), s.pointwise,
        )
        for s in stages
    )


def resnet50_training(scale: float = 1.0, seed: int = 0, batch: int = 1024) -> Trace:
    """One ResNet-50 training iteration (~0.32 s at 1800 MHz)."""
    config = CnnConfig(
        name="resnet50",
        stages=_scale_stages(_resnet_stages((3, 4, 6, 3)), scale),
        batch=batch,
        comm_bytes_total=51e6,
        seed=seed,
        description="ResNet-50 training iteration (synthetic trace)",
    )
    return build_cnn_training_trace(config)


def resnet152_training(scale: float = 1.0, seed: int = 0, batch: int = 768) -> Trace:
    """One ResNet-152 training iteration (~0.64 s at 1800 MHz)."""
    config = CnnConfig(
        name="resnet152",
        stages=_scale_stages(_resnet_stages((3, 8, 36, 3)), scale),
        batch=batch,
        comm_bytes_total=120e6,
        seed=seed,
        description="ResNet-152 training iteration (synthetic trace)",
    )
    return build_cnn_training_trace(config)


def vgg19_training(scale: float = 1.0, seed: int = 0, batch: int = 128) -> Trace:
    """One VGG-19 training iteration."""
    stages = (
        ConvStage(3, 64, 224, 224, repeats=1),
        ConvStage(64, 64, 224, 224, repeats=1),
        ConvStage(64, 128, 112, 112, repeats=2),
        ConvStage(128, 256, 56, 56, repeats=4),
        ConvStage(256, 512, 28, 28, repeats=4),
        ConvStage(512, 512, 14, 14, repeats=4),
    )
    config = CnnConfig(
        name="vgg19",
        stages=_scale_stages(stages, scale),
        batch=batch,
        comm_bytes_total=280e6,
        seed=seed,
        description="VGG-19 training iteration (synthetic trace)",
    )
    return build_cnn_training_trace(config)


def alexnet_training(scale: float = 1.0, seed: int = 0, batch: int = 512) -> Trace:
    """One AlexNet training iteration."""
    stages = (
        ConvStage(3, 64, 55, 55, kernel=11, repeats=1),
        ConvStage(64, 192, 27, 27, kernel=5, repeats=1),
        ConvStage(192, 384, 13, 13, repeats=1),
        ConvStage(384, 256, 13, 13, repeats=1),
        ConvStage(256, 256, 13, 13, repeats=1),
    )
    config = CnnConfig(
        name="alexnet",
        stages=_scale_stages(stages, scale),
        batch=batch,
        classifier_width=4096,
        comm_bytes_total=120e6,
        seed=seed,
        description="AlexNet training iteration (synthetic trace)",
    )
    return build_cnn_training_trace(config)


def shufflenet_training(scale: float = 1.0, seed: int = 0, batch: int = 256) -> Trace:
    """One ShuffleNetV2Plus training iteration.

    At ``scale=1.0`` the trace contains exactly
    :data:`SHUFFLENET_OPERATOR_COUNT` compute operators (the population the
    paper's Sect. 4.3 fitting-cost comparison uses); the tail is padded
    with small channel-shuffle glue operators to reach the exact count.
    """
    stages = (
        ConvStage(3, 16, 112, 112, repeats=1),
        ConvStage(16, 48, 56, 56, kernel=1, repeats=12, pointwise=True),
        ConvStage(48, 48, 56, 56, kernel=3, repeats=12),
        ConvStage(48, 96, 28, 28, kernel=1, repeats=24, pointwise=True),
        ConvStage(96, 96, 28, 28, kernel=3, repeats=24),
        ConvStage(96, 192, 14, 14, kernel=1, repeats=48, pointwise=True),
        ConvStage(192, 192, 14, 14, kernel=3, repeats=48),
        ConvStage(192, 384, 7, 7, kernel=1, repeats=24, pointwise=True),
        ConvStage(384, 384, 7, 7, kernel=3, repeats=24),
    )
    config = CnnConfig(
        name="shufflenetv2plus",
        stages=_scale_stages(stages, scale),
        batch=batch,
        glue_per_block=4,
        comm_bytes_total=15e6,
        seed=seed,
        description="ShuffleNetV2Plus training iteration (synthetic trace)",
    )
    base = build_cnn_training_trace(config)
    if scale != 1.0:
        return base
    return _pad_compute_operators(base, SHUFFLENET_OPERATOR_COUNT)


def _pad_compute_operators(trace: Trace, target: int) -> Trace:
    """Pad a trace with shuffle glue ops until it has ``target`` compute ops."""
    compute = sum(
        1 for e in trace.entries if e.spec.kind is OperatorKind.COMPUTE
    )
    if compute > target:
        raise AssertionError(
            f"{trace.name} base trace already has {compute} compute ops "
            f"(> target {target}); shrink the stage plan"
        )
    builder = TraceBuilder(trace.name, trace.description)
    builder.extend(trace.entries)
    for i in range(target - compute):
        builder.add(
            oplib.scalar_glue(
                f"{trace.name}.shuffle.{i}", op_type="ChannelShuffle",
                elements=3000 + 700 * (i % 9),
            )
        )
    return builder.build()
