"""Llama2 inference (decode) workload — the host-bound scenario of Sect. 8.4.

During auto-regressive decoding, the host CPU dispatches small operators
slower than the NPU executes them, leaving the NPU idle between operators.
The paper observes that lowering the AICore frequency then mostly *fills
idle time*: on its device, dropping all operators to 1300 MHz cost only
2.48% performance while cutting AICore power by ~25%.

We model the host with a per-operator minimum dispatch interval
(``host_interval_us``): an operator cannot start sooner than that interval
after the previous operator started, regardless of how fast the previous
one finished.
"""

from __future__ import annotations

from repro.workloads import oplib
from repro.workloads.generators.base import (
    ShapeJitter,
    generator_rng,
    scaled_layer_count,
)
from repro.workloads.trace import Trace, TraceBuilder


def llama2_inference(
    scale: float = 1.0,
    seed: int = 0,
    decode_steps: int = 8,
    batch: int = 8,
    hidden: int = 4096,
    host_interval_us: float = 48.0,
) -> Trace:
    """A span of Llama2-7B-class decode steps under host-bound dispatch.

    Args:
        scale: shrinks the layer count for fast tests.
        seed: shape-jitter seed.
        decode_steps: how many tokens are decoded in the trace.
        batch: concurrent sequences.
        hidden: model width.
        host_interval_us: host dispatch interval between operator starts.
    """
    layers = scaled_layer_count(32, scale)
    rng = generator_rng("llama2_inference", seed)
    jitter = ShapeJitter(rng, spread=0.04)
    builder = TraceBuilder(
        "llama2_inference",
        "Llama2 decode steps, host-bound dispatch (synthetic trace)",
    )
    ffn = int(hidden * 2.6875)  # 11008 for hidden 4096
    for step in range(decode_steps):
        for layer in range(layers):
            p = f"llama2.s{step}.l{layer}"
            context = 512 + 32 * step  # KV cache grows as decoding proceeds
            # Decode-step GEMVs stream their weight matrices from HBM
            # (batch is tiny), so they run at memory bandwidth and are
            # nearly flat in core frequency: derate below the DVFS range.
            decode_derate = 0.85
            ops = [
                oplib.normalization(f"{p}.rms1", "RmsNorm",
                                    jitter.size(batch * hidden), passes=1),
                oplib.matmul(f"{p}.qkv", batch, hidden, 3 * hidden,
                             bandwidth_derate=decode_derate),
                oplib.matmul(f"{p}.scores", batch, hidden, context,
                             op_type="BatchMatMul",
                             bandwidth_derate=decode_derate),
                oplib.softmax(f"{p}.softmax", jitter.size(batch * 32 * context)),
                oplib.matmul(f"{p}.context", batch, context, hidden,
                             op_type="BatchMatMul",
                             bandwidth_derate=decode_derate),
                oplib.matmul(f"{p}.proj", batch, hidden, hidden,
                             bandwidth_derate=decode_derate),
                oplib.normalization(f"{p}.rms2", "RmsNorm",
                                    jitter.size(batch * hidden), passes=1),
                oplib.matmul(f"{p}.gate", batch, hidden, ffn,
                             bandwidth_derate=decode_derate),
                oplib.matmul(f"{p}.up", batch, hidden, ffn,
                             bandwidth_derate=decode_derate),
                oplib.elementwise(f"{p}.silu", "Swish",
                                  jitter.size(batch * ffn), inputs=2,
                                  flops_per_element=4.0),
                oplib.matmul(f"{p}.down", batch, ffn, hidden,
                             bandwidth_derate=decode_derate),
                oplib.scalar_glue(f"{p}.cast", elements=jitter.size(4000)),
            ]
            for op in ops:
                builder.add_entry_with_host_interval(
                    op, jitter.scale(host_interval_us)
                )
        builder.add_entry_with_host_interval(
            oplib.matmul(f"llama2.s{step}.lm_head", batch, hidden, 32000,
                         bandwidth_derate=0.85),
            jitter.scale(host_interval_us),
        )
        builder.add_entry_with_host_interval(
            oplib.aicpu(f"llama2.s{step}.sample", jitter.scale(120.0)),
            jitter.scale(host_interval_us),
        )
    return builder.build()
