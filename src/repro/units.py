"""Unit conventions and conversion helpers.

The library uses a single, consistent set of units everywhere:

===========================  =========================================
Quantity                     Unit
===========================  =========================================
Core frequency ``f``         MHz (megahertz)
Time / durations             microseconds (us)
Cycles                       dimensionless; ``cycles = time_us * f_mhz``
Voltage ``V``                volts
Power                        watts
Temperature                  degrees Celsius
Memory volume                bytes
Bandwidth                    bytes per microsecond (B/us == MB/s)
===========================  =========================================

Microseconds x megahertz equals cycles exactly, which keeps the paper's
``Cycle(f) = T(f) * f`` identity free of conversion constants.
"""

from __future__ import annotations

US_PER_S = 1_000_000.0
US_PER_MS = 1_000.0
MHZ_PER_GHZ = 1_000.0

#: One gigabyte per second expressed in bytes per microsecond.
BYTES_PER_US_PER_GBPS = 1_000.0


def seconds_to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * US_PER_S


def us_to_seconds(us: float) -> float:
    """Convert microseconds to seconds."""
    return us / US_PER_S


def ms_to_us(ms: float) -> float:
    """Convert milliseconds to microseconds."""
    return ms * US_PER_MS


def us_to_ms(us: float) -> float:
    """Convert microseconds to milliseconds."""
    return us / US_PER_MS


def gbps_to_bytes_per_us(gbps: float) -> float:
    """Convert gigabytes/second to bytes/microsecond."""
    return gbps * BYTES_PER_US_PER_GBPS


def bytes_per_us_to_gbps(bytes_per_us: float) -> float:
    """Convert bytes/microsecond to gigabytes/second."""
    return bytes_per_us / BYTES_PER_US_PER_GBPS


def cycles(time_us: float, freq_mhz: float) -> float:
    """Number of core cycles elapsed in ``time_us`` at ``freq_mhz``."""
    return time_us * freq_mhz


def time_us_from_cycles(cycle_count: float, freq_mhz: float) -> float:
    """Wall time in microseconds for ``cycle_count`` cycles at ``freq_mhz``."""
    if freq_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_mhz}")
    return cycle_count / freq_mhz
