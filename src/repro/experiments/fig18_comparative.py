"""Fig. 18 — why millisecond-latency, fine-grained DVFS matters.

Two comparative experiments on GPT-3 training at the 2% loss target:

* **V100-like delay** — the SetFreq deployment is delayed by 14 ms
  (simulating NVIDIA V100's ~15 ms frequency-control latency): power
  savings shrink substantially (paper: AICore 15.27% -> 7.07%, SoC
  5.56% -> 3.41%) with a similar performance drop.
* **Coarse adjustment intervals** — regenerating the policy with a 100 ms
  or 1 s frequency adjustment interval merges most candidates away (821 ->
  38 -> 4 SetFreq), losing savings and slightly worsening performance.
"""

from __future__ import annotations

from repro.core import EnergyOptimizer, OptimizerConfig
from repro.dvfs import GaConfig
from repro.experiments.base import ExperimentResult, percent
from repro.npu import SetFreqSpec, default_npu_spec
from repro.units import ms_to_us
from repro.workloads import generate

PAPER = {
    "fast_dvfs": {"loss": 0.0159, "soc": 0.0556, "aicore": 0.1527},
    "v100_delay": {"loss": 0.0169, "soc": 0.0341, "aicore": 0.0707},
    "fai_100ms": {"loss": 0.0174, "soc": 0.0360, "aicore": 0.0930},
    "fai_1s": {"loss": 0.0197, "soc": 0.0348, "aicore": 0.1009},
    "setfreq_counts": {"fai_5ms": 821, "fai_100ms": 38, "fai_1s": 4},
}


def run(
    scale: float = 0.1,
    seed: int = 0,
    iterations: int = 600,
    population: int = 200,
) -> ExperimentResult:
    """Regenerate the Fig. 18 comparative experiments."""
    ga = GaConfig(population_size=population, iterations=iterations, seed=seed)
    trace = generate("gpt3", scale=scale, seed=seed)

    def optimize(config: OptimizerConfig, shared_calibration=None):
        optimizer = EnergyOptimizer(config)
        if shared_calibration is not None:
            optimizer.use_calibration(shared_calibration)
        return optimizer, optimizer.optimize(trace)

    base_config = OptimizerConfig(
        performance_loss_target=0.02, ga=ga, seed=seed
    )
    base_optimizer, fast = optimize(base_config)
    calibration = base_optimizer.calibrate()

    # V100-like delay: the same strategy executed on hardware whose
    # frequency control lands 14 ms late.
    delayed_spec = default_npu_spec().with_setfreq(
        SetFreqSpec(extra_delay_us=ms_to_us(14.0))
    )
    delayed_config = OptimizerConfig(
        npu=delayed_spec, performance_loss_target=0.02, ga=ga, seed=seed
    )
    _, delayed = optimize(delayed_config, calibration)

    # Coarse frequency adjustment intervals.  The interval scales with the
    # workload so the granularity *relative to the iteration* matches the
    # paper (at scale=1.0 these are the true 100 ms and 1 s intervals).
    _, fai_100ms = optimize(
        base_config.with_interval(ms_to_us(100.0) * scale), calibration
    )
    _, fai_1s = optimize(
        base_config.with_interval(ms_to_us(1000.0) * scale), calibration
    )

    variants = {
        "fast_dvfs (FAI 5 ms)": fast,
        "v100_delay (14 ms late)": delayed,
        "fai_100ms": fai_100ms,
        "fai_1s": fai_1s,
    }
    rows = []
    for label, report in variants.items():
        rows.append(
            {
                "variant": label,
                "perf_loss": percent(report.performance_loss),
                "soc_reduction": percent(report.soc_power_reduction),
                "aicore_reduction": percent(report.aicore_power_reduction),
                "setfreq_count": report.setfreq_count,
            }
        )

    def efficiency_score(report):
        """Eq. 17's energy-efficiency metric, Per^2 / Power, normalised to
        the baseline (higher is better; the baseline scores 1.0)."""
        per_norm = 1.0 / (1.0 + report.performance_loss)
        power_norm = 1.0 - report.aicore_power_reduction
        return per_norm * per_norm / power_norm

    return ExperimentResult(
        experiment_id="fig18",
        title="Millisecond DVFS vs delayed / coarse control (Fig. 18)",
        paper_reference=PAPER,
        measured={
            "delay_degrades_efficiency": (
                efficiency_score(delayed) < efficiency_score(fast)
            ),
            "delay_breaks_loss_target": delayed.performance_loss > 0.02,
            "delay_worsens_perf": (
                delayed.performance_loss > fast.performance_loss
            ),
            "fast_efficiency_score": efficiency_score(fast),
            "delayed_efficiency_score": efficiency_score(delayed),
            "coarse_fai_fewer_setfreq": (
                fai_1s.setfreq_count
                < fai_100ms.setfreq_count
                < fast.setfreq_count
            ),
            "coarse_fai_less_savings": (
                fai_100ms.aicore_power_reduction
                < fast.aicore_power_reduction
            ),
        },
        rows=rows,
        notes=(
            "The delayed variant re-runs the same pipeline on a device "
            "whose SetFreq lands 14 ms after the planned point (a busy "
            "controller holds the latest superseding request); the FAI "
            "variants regenerate the policy with merged candidates. "
            "Divergence note: our 2% policy drives LFC stages deeper "
            "(1000-1300 MHz) than the paper's near-optimal prior "
            "(1600 MHz), so the 14 ms-late up-switches cost more "
            "performance here and, by keeping the chip at low frequency "
            "longer, can show a larger *average power* drop.  The claim "
            "that matters is preserved: on the paper's own Per^2/Power "
            "efficiency metric the delayed system is strictly worse, and "
            "it blows through the 2% performance contract."
        ),
    )
